#!/usr/bin/env python
"""A weight-update query service backed by one precomputed oracle.

Scenario: a network operator re-prices links all day — fibre leases
change, congestion surcharges come and go — and each proposed re-pricing
asks the same question: *does our current spanning backbone remain the
minimum-cost one, or does the optimum shift?*

Instead of re-running MST (or even the O(log D_T)-round verification)
per query, we run the Theorem 4.1 sensitivity pipeline ONCE, wrap the
result in a SensitivityOracle, and then serve a stream of one million
weight-update queries from plain array lookups — no MPC rounds at all.

Run:  python examples/weight_update_service.py
"""

import time

import numpy as np

from repro import known_mst_instance
from repro.analysis import render_table
from repro.core.sensitivity import mst_sensitivity
from repro.oracle import SensitivityOracle

N = 3000
EXTRA_M = 6000
TOTAL_QUERIES = 1_000_000
BATCH = 100_000


def main() -> None:
    graph, _ = known_mst_instance("random", n=N, extra_m=EXTRA_M, rng=41)
    print(f"backbone instance: n={graph.n}, m={graph.m} "
          f"({graph.m_tree} tree edges)")

    # ---- one-time precomputation (the paper's pipeline) ----------------
    t0 = time.perf_counter()
    result = mst_sensitivity(graph)
    oracle = SensitivityOracle.from_result(graph, result)
    build_s = time.perf_counter() - t0
    print(f"precompute: {result.rounds} MPC rounds "
          f"(core {result.core_rounds}), oracle built in {build_s:.2f}s")

    # ---- simulate the query stream -------------------------------------
    rng = np.random.default_rng(7)
    served = 0
    survived = 0
    t0 = time.perf_counter()
    while served < TOTAL_QUERIES:
        k = min(BATCH, TOTAL_QUERIES - served)
        edges = rng.integers(0, graph.m, size=k)
        # re-pricings scatter around the current weight: small drifts
        # mostly, the occasional big spike or fire-sale discount
        drift = rng.normal(0.0, 0.2, size=k)
        spike = rng.random(size=k) < 0.02
        new_w = graph.w[edges] + np.where(spike, drift * 25.0, drift)
        survived += int(oracle.survives_bulk(edges, new_w).sum())
        served += k
    stream_s = time.perf_counter() - t0
    qps = served / stream_s
    print(f"\nserved {served:,} weight-update queries in {stream_s:.2f}s "
          f"({qps:,.0f} queries/s)")
    print(f"MST survived {survived:,} of them "
          f"({100.0 * survived / served:.1f}%); the rest would shift "
          f"the optimum")

    # ---- a few point queries with explanations -------------------------
    tree_idx = np.flatnonzero(graph.tree_mask)
    slack = oracle.sensitivity_bulk(tree_idx)
    finite = np.isfinite(slack)
    fragile = tree_idx[finite][np.argsort(slack[finite])[:4]]
    rows = []
    for e in fragile:
        e = int(e)
        f = oracle.replacement_edge(e)
        rows.append((
            f"{graph.u[e]}-{graph.v[e]}",
            round(float(graph.w[e]), 4),
            round(float(oracle.sensitivity(e)), 4),
            f"{graph.u[f]}-{graph.v[f]}",
            round(float(graph.w[f]), 4),
        ))
    print("\nmost fragile backbone links and their standby replacements:")
    print(render_table(
        ["link", "price", "headroom", "replacement", "repl. price"], rows,
    ))

    e = int(fragile[0])
    thr = float(oracle.threshold[e])
    assert oracle.survives(e, thr) and not oracle.survives(e, thr + 1e-6)
    print(f"link {graph.u[e]}-{graph.v[e]}: any price up to {thr:.4f} keeps "
          f"the backbone optimal; one tick above hands traffic to its "
          f"replacement")


if __name__ == "__main__":
    main()
