#!/usr/bin/env python
"""A live weight-update query service over two network backbones.

Scenario: a network operator re-prices links all day — fibre leases
change, congestion surcharges come and go — and a planning fleet keeps
asking the same questions: *does our spanning backbone remain the
minimum-cost one if this link is re-priced? what is the standby
replacement? how much headroom does a link have?*

This drives the real S19 serving stack end to end, in-process:

1. two instances (a random mesh and a grid fabric) are registered with
   a :class:`~repro.service.SensitivityService` — one Theorem 4.1
   precomputation each, then every query is O(1);
2. concurrent clients fire a mixed point-query stream; the service
   micro-batches them into vectorised oracle calls across edge-range
   shards;
3. committed re-pricings flow through the write path: an
   oracle-preserving one is patched in place with ZERO pipeline
   stages, a structure-changing one triggers an incremental rebuild —
   the weight-blind stages replay from the artifact cache — and the
   new oracle generation swaps in atomically under the live load.

Run:  python examples/weight_update_service.py
"""

import asyncio

import numpy as np

from repro import ServiceClient, SensitivityService, ServiceConfig
from repro import known_mst_instance
from repro.analysis import render_table
from repro.service.loadgen import make_plan, run_inprocess

N = 3000
EXTRA_M = 6000
TOTAL_QUERIES = 200_000
SHARDS = 3


async def main() -> None:
    service = SensitivityService(ServiceConfig(
        shards=SHARDS, max_batch=512, batch_window_s=0.001,
        queue_depth=1 << 15,
    ))
    instances = {}
    for shape, seed in (("random", 41), ("grid", 42)):
        graph, _ = known_mst_instance(shape, n=N, extra_m=EXTRA_M, rng=seed)
        service.add_instance(shape, graph)
        instances[shape] = graph.m
        print(f"backbone {shape!r}: n={graph.n}, m={graph.m} "
              f"({graph.m_tree} links in the spanning backbone), "
              f"{SHARDS} shards")
    await service.start()
    client = ServiceClient(service, instance="random")

    # ---- the query stream ----------------------------------------------
    plan = make_plan(instances, TOTAL_QUERIES, seed=7)
    stats = await run_inprocess(service, plan, clients=8, pipeline=256)
    s = stats.summary()
    print(f"\nserved {s['answered']:,} weight-update queries in "
          f"{s['wall_s']:.2f}s ({s['qps']:,.0f} queries/s) across "
          f"{len(instances)} backbones, shed {s['shed']}")
    m = await client.metrics()
    occ = [sh["batch_occupancy"]
           for sh in m["instances"]["random"]["shards"]]
    p99 = max(sh["p99_ms"] for sh in m["instances"]["random"]["shards"])
    print(f"micro-batching: mean occupancy "
          f"{sum(occ) / len(occ):,.0f} queries/batch, p99 latency "
          f"{p99:.2f}ms")

    # ---- committed re-pricings through the write path ------------------
    inst = service.instances["random"]
    graph = inst.updater.graph
    oracle = inst.updater.oracle
    cover = oracle.covering_edges()

    # a standby link gets more expensive: nothing in the oracle moves
    e1 = int(np.flatnonzero(~graph.tree_mask & ~cover)[0])
    rep = await client.update(e1, float(graph.w[e1]) + 0.9)
    print(f"\nre-price standby link {graph.u[e1]}-{graph.v[e1]} "
          f"(+0.9): {rep['action']} — {rep['stages_executed']} pipeline "
          f"stages, {rep['verification_reruns']} verification stages "
          f"re-run, generation {rep['generation']}")

    # a covering minimiser moves: thresholds change, incremental rebuild
    e2 = int(np.flatnonzero(~graph.tree_mask & cover)[0])
    rep = await client.update(e2, float(graph.w[e2]) + 2.0)
    print(f"re-price covering link {graph.u[e2]}-{graph.v[e2]} "
          f"(+2.0): {rep['action']} — replayed "
          f"{rep['stages_cached']} cached stages, re-ran "
          f"{rep['stages_executed']} (generation {rep['generation']}, "
          f"{rep['wall_s'] * 1e3:.0f}ms, reads kept flowing)")

    # ---- a few point queries with explanations -------------------------
    oracle = inst.updater.oracle  # the swapped-in generation
    tree_idx = np.flatnonzero(graph.tree_mask)
    slack = oracle.sensitivity_bulk(tree_idx)
    finite = np.isfinite(slack)
    fragile = tree_idx[finite][np.argsort(slack[finite])[:4]]
    rows = []
    for e in fragile:
        e = int(e)
        f = await client.replacement_edge(e)
        rows.append((
            f"{graph.u[e]}-{graph.v[e]}",
            round(float(graph.w[e]), 4),
            round(await client.sensitivity(e), 4),
            f"{graph.u[f]}-{graph.v[f]}",
            round(float(graph.w[f]), 4),
        ))
    print("\nmost fragile backbone links and their standby replacements:")
    print(render_table(
        ["link", "price", "headroom", "replacement", "repl. price"], rows,
    ))

    e = int(fragile[0])
    thr = float(oracle.threshold[e])
    assert await client.survives(e, thr)
    assert not await client.survives(e, thr + 1e-6)
    print(f"link {graph.u[e]}-{graph.v[e]}: any price up to {thr:.4f} keeps "
          f"the backbone optimal; one tick above hands traffic to its "
          f"replacement")

    await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
