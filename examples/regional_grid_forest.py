#!/usr/bin/env python
"""Spanning-forest analysis of disconnected regional power grids.

Remark 2.4: the algorithms extend to disconnected graphs and spanning
forests. Here three electrically isolated regional grids (no
interconnects) each run a minimum-cost distribution tree; one audit over
the whole dataset verifies all regions at once and ranks, per region,
the line whose cost increase would first trigger a re-plan.

Run:  python examples/regional_grid_forest.py
"""

import numpy as np

from repro import msf_sensitivity, verify_msf
from repro.analysis import render_table
from repro.baselines import kruskal_mst
from repro.graph.graph import WeightedGraph


def regional_grid(side: int, rng, offset: int):
    """A side x side grid of substations with redundant ties."""
    n = side * side
    edges = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                edges.append((v, v + 1, 1.0 + rng.uniform(0, 1)))
            if r + 1 < side:
                edges.append((v, v + side, 1.0 + rng.uniform(0, 1)))
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges])
    g = WeightedGraph(n=n, u=u, v=v, w=w)
    idx, _ = kruskal_mst(g)
    mask = np.zeros(g.m, dtype=bool)
    mask[idx] = True
    # endpoints shifted into the global id space; n is the region size
    return (u + offset, v + offset, w, mask), n


def main() -> None:
    rng = np.random.default_rng(33)
    parts, names = [], []
    offset = 0
    for name, side in (("north", 14), ("central", 10), ("coast", 8)):
        part, n = regional_grid(side, rng, offset)
        parts.append(part)
        names.append((name, offset, offset + n))
        offset += n
    total = WeightedGraph(
        n=offset,
        u=np.concatenate([p[0] for p in parts]),
        v=np.concatenate([p[1] for p in parts]),
        w=np.concatenate([p[2] for p in parts]),
        tree_mask=np.concatenate([p[3] for p in parts]),
    )
    print(f"dataset: {offset} substations in {len(parts)} isolated regions, "
          f"{total.m} lines")

    audit = verify_msf(total)
    print(f"forest verified minimal: {audit.is_mst} "
          f"(rounds {audit.rounds})\n")

    sens = msf_sensitivity(total)
    rows = []
    for name, lo, hi in names:
        in_region = (total.u[sens.tree_index] >= lo) & \
                    (total.u[sens.tree_index] < hi)
        region_idx = sens.tree_index[in_region]
        region_sens = sens.sensitivity[region_idx]
        k = int(np.argmin(region_sens))
        e = int(region_idx[k])
        rows.append((
            name, hi - lo,
            f"{int(total.u[e])}–{int(total.v[e])}",
            round(float(total.w[e]), 3),
            round(float(region_sens[k]), 4),
        ))
    print("per-region: first line to re-plan if costs drift")
    print(render_table(
        ["region", "substations", "line", "cost", "cost slack"], rows
    ))


if __name__ == "__main__":
    main()
