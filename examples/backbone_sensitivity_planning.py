#!/usr/bin/env python
"""Capacity planning on a wide-area backbone via MST sensitivity.

A WAN backbone: a country-spanning ring of core sites with regional
spurs, plus leased-line shortcut offers. The operator runs traffic on
the minimum-cost spanning tree and wants to know:

* which *active* (tree) links are close to being priced out — i.e. how
  much their lease cost can rise before the optimal tree changes
  (Definition 1.2, tree-edge sensitivity = mc(e) - w(e)); and
* which *offered* (non-tree) links are close to being worth buying —
  how much their price must drop to enter the optimal tree
  (non-tree sensitivity = w(e) - pathmax(e)).

This exercises the *high-diameter* regime (a ring has D_T = Θ(n)), the
other end of the spectrum from the datacenter example.

Run:  python examples/backbone_sensitivity_planning.py
"""

import numpy as np

from repro import mst_sensitivity
from repro.analysis import render_table
from repro.baselines import kruskal_mst, sequential_sensitivity
from repro.graph.graph import WeightedGraph


def backbone(n_core: int, spurs_per_core: int, n_offers: int,
             rng) -> WeightedGraph:
    """Ring of core sites + regional spurs + random shortcut offers."""
    edges = []
    # core ring: cost ~ distance, one deliberately expensive ocean link
    for i in range(n_core):
        cost = 10.0 + rng.uniform(0, 2) + (25.0 if i == n_core - 1 else 0)
        edges.append((i, (i + 1) % n_core, cost))
    # regional spurs
    n = n_core
    for c in range(n_core):
        for _ in range(spurs_per_core):
            edges.append((c, n, 3.0 + rng.uniform(0, 1)))
            n += 1
    # leased-line offers between random sites
    for _ in range(n_offers):
        a, b = rng.integers(0, n, 2)
        if a != b:
            edges.append((int(a), int(b), 12.0 + rng.uniform(0, 10)))
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges])
    g = WeightedGraph(n=n, u=u, v=v, w=w)
    idx, _ = kruskal_mst(g)
    mask = np.zeros(g.m, dtype=bool)
    mask[idx] = True
    return WeightedGraph(n=n, u=u, v=v, w=w, tree_mask=mask)


def main() -> None:
    rng = np.random.default_rng(17)
    g = backbone(n_core=60, spurs_per_core=6, n_offers=250, rng=rng)
    print(f"backbone: {g.n} sites, {g.m} links "
          f"({g.m_tree} active, {g.m - g.m_tree} offers)")

    sens = mst_sensitivity(g)
    # cross-check against the sequential oracle, as an operator would
    oracle = sequential_sensitivity(g)
    assert np.allclose(sens.sensitivity, oracle.sensitivity)
    print(f"analysis rounds: {sens.rounds} "
          f"(D_T estimate {sens.diameter_estimate})\n")

    tree_sens = sens.sensitivity[sens.tree_index]
    at_risk = np.argsort(tree_sens)[:6]
    rows = []
    for k in at_risk:
        e = int(sens.tree_index[k])
        rows.append((f"{int(g.u[e])}–{int(g.v[e])}",
                     round(float(g.w[e]), 2),
                     round(float(tree_sens[k]), 2)))
    print("active links nearest to being priced out:")
    print(render_table(["link", "cost", "price slack"], rows))

    off_sens = sens.sensitivity[sens.nontree_index]
    best = np.argsort(off_sens)[:6]
    rows = []
    for k in best:
        e = int(sens.nontree_index[k])
        rows.append((f"{int(g.u[e])}–{int(g.v[e])}",
                     round(float(g.w[e]), 2),
                     round(float(off_sens[k]), 2)))
    print("offers closest to being worth buying (needed discount):")
    print(render_table(["offer", "price", "required discount"], rows))


if __name__ == "__main__":
    main()
