#!/usr/bin/env python
"""Audit a datacenter fabric's routing tree — the low-diameter regime.

The paper's motivation: real network topologies have small diameter, so
an O(log D_T)-round verifier beats the Θ(log n) recompute bound by a
widening margin as fabrics scale out. This example builds folded-Clos
(fat-tree-like) fabrics — diameter 4 regardless of size — flags a
"primary routing tree" (lowest-latency spanning tree), and audits it:

1. is the routing tree actually a minimum-latency spanning tree?
2. which links can degrade (latency increase) before reroutes happen?

Run:  python examples/datacenter_topology_audit.py
"""

import numpy as np

from repro import mst_sensitivity, verify_mst
from repro.analysis import render_table
from repro.baselines import kruskal_mst
from repro.graph.graph import WeightedGraph


def folded_clos(pods: int, tors_per_pod: int, spines: int, rng) -> WeightedGraph:
    """spine -- aggregation -- ToR fabric with latency weights.

    Vertices: [spines][pods aggregation][pods*tors ToR]. Every
    aggregation switch uplinks to every spine; every ToR uplinks to its
    pod's aggregation switch twice (primary + backup port).
    """
    agg0 = spines
    tor0 = spines + pods
    n = spines + pods + pods * tors_per_pod
    edges = []
    for p in range(pods):
        for s in range(spines):
            edges.append((s, agg0 + p, 1.0 + rng.uniform(0, 0.2)))
        for t in range(tors_per_pod):
            tor = tor0 + p * tors_per_pod + t
            edges.append((agg0 + p, tor, 0.5 + rng.uniform(0, 0.1)))
            edges.append((agg0 + p, tor, 0.5 + rng.uniform(0, 0.1)))
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges])
    g = WeightedGraph(n=n, u=u, v=v, w=w)
    # primary routing tree = min-latency spanning tree
    idx, _ = kruskal_mst(g)
    mask = np.zeros(g.m, dtype=bool)
    mask[idx] = True
    return WeightedGraph(n=n, u=u, v=v, w=w, tree_mask=mask)


def main() -> None:
    rng = np.random.default_rng(20240610)
    rows = []
    for pods, tors in ((4, 8), (8, 16), (16, 32), (32, 48)):
        g = folded_clos(pods, tors, spines=4, rng=rng)
        audit = verify_mst(g, oracle_labels=True)
        assert audit.is_mst, "primary routing tree should be min-latency"
        rows.append((
            g.n, g.m, audit.diameter_estimate, audit.core_rounds,
            int(np.ceil(np.log2(g.n))),
        ))
    print("fabric audit — rounds stay flat while the fabric scales out")
    print(render_table(
        ["switches", "links", "D_T estimate", "verify core rounds",
         "log2(n) (recompute scale)"],
        rows,
    ))

    # sensitivity: how much can each in-tree link degrade before the
    # routing tree is no longer optimal?
    g = folded_clos(8, 16, spines=4, rng=rng)
    sens = mst_sensitivity(g, oracle_labels=True)
    tree_sens = sens.sensitivity[sens.tree_index]
    finite = np.isfinite(tree_sens)
    frag = np.argsort(tree_sens)[:8]
    rows = []
    for k in frag:
        e = int(sens.tree_index[k])
        rows.append((int(g.u[e]), int(g.v[e]),
                     round(float(g.w[e]), 3),
                     round(float(tree_sens[k]) * 1000, 2)))
    print("links to watch: smallest latency headroom before a reroute")
    print(render_table(
        ["switch a", "switch b", "latency", "headroom (ms x1000)"], rows
    ))
    print(f"(bridge links with no alternative: {(~finite).sum()})")


if __name__ == "__main__":
    main()
