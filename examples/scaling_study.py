#!/usr/bin/env python
"""Round-complexity scaling study — the paper's headline figure, live.

Sweeps the candidate tree's diameter at fixed n and prints verification
and sensitivity core rounds with their log-fits, plus the same run on
the message-level engine for one small instance to show the engines
agree (same charged rounds, packets actually exchanged).

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import mst_sensitivity, verify_mst
from repro.analysis import fit_log, render_table
from repro.graph.generators import attach_nontree_edges, backbone_tree
from repro.mpc import MPCConfig

N = 4096


def main() -> None:
    diameters = [8, 32, 128, 512, 2048]
    rows = []
    for d in diameters:
        tree = backbone_tree(N, d, rng=d)
        g = attach_nontree_edges(tree, 2 * N, rng=d + 1, mode="mst")
        v = verify_mst(g, oracle_labels=True)
        s = mst_sensitivity(g, oracle_labels=True)
        assert v.is_mst
        rows.append((d, v.core_rounds, s.core_rounds,
                     v.report.peak_global_words))
    vfit = fit_log(diameters, [r[1] for r in rows])
    sfit = fit_log(diameters, [r[2] for r in rows])
    print(f"diameter sweep at n={N}, m=3n (backbone trees)")
    print(render_table(
        ["D_T", "verify core rounds", "sens core rounds", "peak words"],
        rows,
    ))
    print(f"verify  ≈ {vfit.slope:.1f}·log2(D) {vfit.intercept:+.1f}  "
          f"(R²={vfit.r2:.3f})")
    print(f"sens    ≈ {sfit.slope:.1f}·log2(D) {sfit.intercept:+.1f}  "
          f"(R²={sfit.r2:.3f})")

    # message-level cross-check on a small instance
    tree = backbone_tree(64, 16, rng=3)
    g = attach_nontree_edges(tree, 128, rng=4, mode="mst")
    local = verify_mst(g, engine="local")
    dist = verify_mst(g, engine="distributed", config=MPCConfig(delta=0.6))
    assert local.rounds == dist.rounds
    assert np.allclose(local.pathmax, dist.pathmax)
    print(f"\nmessage-level engine agrees on n=64: "
          f"{dist.rounds} model rounds, "
          f"{dist.report.transport_rounds} physical exchanges")


if __name__ == "__main__":
    main()
