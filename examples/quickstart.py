#!/usr/bin/env python
"""Quickstart: verify an MST and analyse its sensitivity in simulated MPC.

Builds a random weighted graph whose flagged spanning tree is its MST,
runs the O(log D_T)-round verification (Theorem 3.1) and sensitivity
(Theorem 4.1) pipelines, and prints the round/memory accounting the
paper's claims are about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import known_mst_instance, mst_sensitivity, verify_mst
from repro.analysis import render_table
from repro.graph.generators import perturb_break_mst


def main() -> None:
    # a 2000-vertex graph with 4000 extra edges; the flagged tree is the
    # (unique) MST by construction
    graph, tree = known_mst_instance("random", n=2000, extra_m=4000, rng=7)
    print(f"instance: n={graph.n}, m={graph.m}, "
          f"tree diameter={tree.diameter()}")

    # ---- verification (Theorem 3.1) -----------------------------------
    result = verify_mst(graph)
    print(f"\nis MST?          {result.is_mst}")
    print(f"rounds total:    {result.rounds}")
    print(f"  core (paper):  {result.core_rounds}")
    print(f"  substrate:     {result.substrate_rounds}")
    print(f"peak memory:     {result.report.peak_global_words} words "
          f"(input is {graph.total_words()})")
    print(f"diameter est.:   {result.diameter_estimate} (Remark 2.3)")

    # a broken instance is rejected with a witness
    broken = perturb_break_mst(graph, rng=9)
    bad = verify_mst(broken)
    print(f"\nperturbed copy:  is_mst={bad.is_mst}, "
          f"witness edges={bad.violating_edges[:5]}")

    # ---- sensitivity (Theorem 4.1) ------------------------------------
    sens = mst_sensitivity(graph)
    tree_sens = sens.sensitivity[sens.tree_index]
    finite = np.isfinite(tree_sens)
    print(f"\nsensitivity rounds: {sens.rounds} "
          f"(notes peak {sens.notes_peak} <= O(n))")
    print(f"tree edges:   {finite.sum()} swappable, "
          f"{(~finite).sum()} bridges (infinite slack)")

    # the five most fragile tree edges (smallest weight slack)
    order = np.argsort(tree_sens)
    rows = []
    for k in order[:5]:
        e = sens.tree_index[k]
        rows.append((int(graph.u[e]), int(graph.v[e]),
                     round(float(graph.w[e]), 4),
                     round(float(tree_sens[k]), 4)))
    print("\nmost fragile MST edges (least slack before replacement):")
    print(render_table(["u", "v", "weight", "slack"], rows))


if __name__ == "__main__":
    main()
