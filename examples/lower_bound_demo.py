#!/usr/bin/env python
"""The Theorem 5.2 hard family: why Ω(log D_T) rounds are unavoidable.

Graphs of *constant* diameter (an apex vertex adjacent to everything)
whose candidate tree hides a 1-vs-2-cycle instance: deciding whether the
candidate is an MST is exactly deciding whether the hidden cycle
structure is connected — conditionally requiring Ω(log n) = Ω(log D_T)
rounds. The demo shows measured rounds growing with n while the graph
diameter stays 2, and that the verifier answers both sides correctly.

Run:  python examples/lower_bound_demo.py
"""

from repro import one_vs_two_cycles_instance, verify_mst
from repro.analysis import fit_log, render_table


def main() -> None:
    rows = []
    sizes = [32, 128, 512, 2048]
    for n in sizes:
        g_yes, apex = one_vs_two_cycles_instance(n, two_cycles=False, rng=n)
        g_no, _ = one_vs_two_cycles_instance(n, two_cycles=True, rng=n)
        r_yes = verify_mst(g_yes, oracle_labels=True)
        r_no = verify_mst(g_no, oracle_labels=True)
        assert r_yes.is_mst and not r_no.is_mst
        rows.append((n, 2, "~n", r_yes.rounds,
                     f"{r_no.reason} (rejected)"))
    print("1-vs-2-cycle family: graph diameter 2, tree diameter Θ(n)")
    print(render_table(
        ["n", "diam(G)", "D_T", "rounds (yes side)", "no side"], rows
    ))
    fit = fit_log(sizes, [r[3] for r in rows])
    print(f"rounds ≈ {fit.slope:.1f}·log2(n) {fit.intercept:+.1f} "
          f"(R² = {fit.r2:.3f}) — growing with log D_T as Theorem 5.2 "
          f"says any verifier must (conditioned on 1-vs-2-cycle).")


if __name__ == "__main__":
    main()
