"""The S19 service layer: batching identity, swaps, shedding, updates.

The load-bearing claims:

* micro-batched answers are *bit-identical* to direct oracle point
  queries, under many concurrent clients and across shards;
* a generation swap during a live query storm never tears a read —
  every response matches the oracle of the generation it reports;
* a full shard queue sheds with a structured response instead of
  queueing unboundedly, and recovers afterwards;
* the write path classifies with the oracle's own thresholds:
  oracle-preserving updates run zero pipeline stages, structure-
  changing ones replay the weight-blind prefix from the artifact
  cache and re-run only the weight-reading suffix;
* TCP JSON-lines round-trips the same dispatch path;
* mmap-shared shard oracles answer identically to in-memory ones.
"""

import argparse
import asyncio
import json
import time

import numpy as np
import pytest

from repro.baselines.seq_verify import verify_by_recompute
from repro.errors import ValidationError
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle
from repro.service import (
    SensitivityService,
    ServiceClient,
    ServiceConfig,
    plan_shards,
    route,
)
from repro.service.loadgen import make_plan, run_inprocess


def run(coro):
    return asyncio.run(coro)


def make_graph(n=240, seed=11, shape="random"):
    g, _ = known_mst_instance(shape, n, extra_m=2 * n, rng=seed)
    return g


async def started_service(graph, name="default", **cfg_kw):
    cfg_kw.setdefault("shards", 3)
    cfg_kw.setdefault("batch_window_s", 0.001)
    svc = SensitivityService(ServiceConfig(**cfg_kw))
    svc.add_instance(name, graph)
    await svc.start()
    return svc


class TestShardPlan:
    def test_ranges_partition_edge_space(self):
        specs = plan_shards(1001, 4)
        assert specs[0].edge_lo == 0 and specs[-1].edge_hi == 1001
        for a, b in zip(specs, specs[1:]):
            assert a.edge_hi == b.edge_lo
        sizes = [len(s) for s in specs]
        assert max(sizes) - min(sizes) <= 1

    def test_route_hits_owner(self):
        specs = plan_shards(997, 5)
        for e in range(997):
            i = route(specs, e)
            assert specs[i].edge_lo <= e < specs[i].edge_hi

    def test_route_rejects_out_of_range(self):
        specs = plan_shards(10, 2)
        with pytest.raises(ValidationError):
            route(specs, 10)

    def test_more_shards_than_edges(self):
        specs = plan_shards(3, 8)
        assert sum(len(s) for s in specs) == 3


class TestBatchedBitIdentity:
    def test_concurrent_clients_match_point_oracle(self):
        g = make_graph()
        oracle = build_oracle(g, oracle_labels=True)
        rng = np.random.default_rng(5)
        q = 600
        edges = rng.integers(0, g.m, q)
        weights = rng.uniform(0.0, 2.0, q)
        ops = []
        for e in edges:
            if g.tree_mask[e]:
                ops.append(rng.choice(
                    ["survives", "sensitivity", "replacement_edge"]))
            else:
                ops.append(rng.choice(
                    ["survives", "sensitivity", "entry_threshold"]))

        async def scenario():
            svc = await started_service(g)
            client = ServiceClient(svc)

            async def one(i):
                op = ops[i]
                kw = ({"weight": float(weights[i])}
                      if op == "survives" else {})
                return await client.call(op, edge=int(edges[i]), **kw)

            # 8 concurrent clients interleave their submissions so
            # micro-batches mix queries from different clients
            chunks = [list(range(w, q, 8)) for w in range(8)]

            results = [None] * q

            async def worker(idxs):
                for i in idxs:
                    results[i] = await one(i)

            await asyncio.gather(*(worker(c) for c in chunks))
            await svc.stop()
            return results

        results = run(scenario())
        for i, resp in enumerate(results):
            e = int(edges[i])
            assert resp["ok"], resp
            op = ops[i]
            if op == "survives":
                expect = oracle.survives(e, float(weights[i]))
            elif op == "sensitivity":
                expect = oracle.sensitivity(e)
            elif op == "replacement_edge":
                expect = oracle.replacement_edge(e)
            else:
                expect = oracle.entry_threshold(e)
            assert resp["result"] == expect, (op, e, resp, expect)

    def test_pipelined_loadgen_all_answered(self):
        g = make_graph()

        async def scenario():
            svc = await started_service(g, queue_depth=1 << 14)
            plan = make_plan({"default": g.m}, 5000, seed=3)
            stats = await run_inprocess(svc, plan, clients=8, pipeline=128)
            await svc.stop()
            return stats, svc.metrics()

        stats, metrics = run(scenario())
        assert stats.answered == 5000 and stats.errors == 0
        snaps = metrics["instances"]["default"]["shards"]
        assert sum(s["queries"] for s in snaps) == 5000
        assert any(s["batch_occupancy"] > 1.5 for s in snaps)

    def test_wrong_edge_kind_is_structured_error(self):
        g = make_graph()
        t = int(np.flatnonzero(g.tree_mask)[0])
        nt = int(np.flatnonzero(~g.tree_mask)[0])

        async def scenario():
            svc = await started_service(g)
            client = ServiceClient(svc)
            a = await client.call("entry_threshold", edge=t)
            b = await client.call("replacement_edge", edge=nt)
            c = await client.call("sensitivity", edge=g.m + 5)
            await svc.stop()
            return a, b, c

        a, b, c = run(scenario())
        assert not a["ok"] and "not a non-tree edge" in a["error"]
        assert not b["ok"] and "not a tree edge" in b["error"]
        assert not c["ok"] and "out of range" in c["error"]


class TestGenerationSwap:
    def test_no_torn_reads_under_query_storm(self):
        g = make_graph(n=200, seed=21)
        oracle0 = build_oracle(g, oracle_labels=True)
        cover = oracle0.covering_edges()
        # two structure-changing updates (covering minimisers raised)
        movers = np.flatnonzero(~g.tree_mask & cover)[:2]
        rng = np.random.default_rng(9)
        q_edges = rng.integers(0, g.m, 4000)
        q_weights = rng.uniform(0.0, 2.0, 4000)

        async def scenario():
            svc = await started_service(g, shards=2,
                                        batch_window_s=0.0005,
                                        queue_depth=1 << 14)
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            oracles = {0: oracle0}
            responses = []
            storm_done = asyncio.Event()

            async def storm():
                i = 0
                while not storm_done.is_set():
                    e = int(q_edges[i % len(q_edges)])
                    w = float(q_weights[i % len(q_weights)])
                    resp = await client.call("survives", edge=e, weight=w)
                    if resp.get("ok"):
                        responses.append((resp["generation"], e, w,
                                          resp["result"]))
                    i += 1

            storms = [asyncio.ensure_future(storm()) for _ in range(6)]
            await asyncio.sleep(0.05)
            for k, e in enumerate(movers):
                rep = await client.update(int(e), float(g.w[e]) + 3.0 + k)
                assert rep["action"] == "rebuilt", rep
                oracles[rep["generation"]] = inst.updater.oracle
                await asyncio.sleep(0.05)
            storm_done.set()
            await asyncio.gather(*storms)
            await svc.stop()
            return responses

        responses = run(scenario())
        gens = {gen for gen, *_ in responses}
        assert gens >= {0, 2}, f"storm missed the swaps: {gens}"
        # the updates moved at least one observable answer
        changed = any(
            True
            for gen, e, w, _ in responses
            if gen == 0
            for other_gen, other_e, other_w, other_r in responses
            if other_gen == 2 and other_e == e and other_w == w
        )
        assert changed or len(gens) > 1

    def test_every_answer_matches_its_generation(self):
        # replayed deterministically: answers must equal the oracle of
        # the generation each response reports — no mixing
        g = make_graph(n=180, seed=8)

        async def scenario():
            svc = await started_service(g, shards=2)
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            oracles = {0: inst.updater.oracle}
            cover = inst.updater.oracle.covering_edges()
            mover = int(np.flatnonzero(~g.tree_mask & cover)[0])

            rng = np.random.default_rng(2)
            checks = []

            async def ask(e, w):
                resp = await client.call("survives", edge=int(e),
                                         weight=float(w))
                checks.append((resp["generation"], int(e), float(w),
                               resp["result"]))

            edges = rng.integers(0, g.m, 300)
            weights = rng.uniform(0.0, 2.0, 300)
            await asyncio.gather(*(ask(e, w)
                                   for e, w in zip(edges[:150], weights[:150])))
            rep = await client.update(mover, float(g.w[mover]) + 4.0)
            oracles[rep["generation"]] = inst.updater.oracle
            await asyncio.gather(*(ask(e, w)
                                   for e, w in zip(edges[150:], weights[150:])))
            await svc.stop()
            return checks, oracles

        checks, oracles = run(scenario())
        for gen, e, w, got in checks:
            assert got == oracles[gen].survives(e, w), (gen, e, w)


class TestLoadShedding:
    def test_full_queue_sheds_and_recovers(self):
        g = make_graph(n=120, seed=4)

        async def scenario():
            svc = await started_service(
                g, shards=1, queue_depth=8, max_batch=8,
                batch_window_s=0.25,
            )
            client = ServiceClient(svc)
            burst = await asyncio.gather(
                *(client.call("sensitivity", edge=i % g.m)
                  for i in range(64))
            )
            sheds = [r for r in burst if r.get("shed")]
            served = [r for r in burst if r.get("ok")]
            # after the burst drains the service accepts queries again
            again = await client.call("sensitivity", edge=0)
            metrics = await client.metrics()
            await svc.stop()
            return sheds, served, again, metrics

        sheds, served, again, metrics = run(scenario())
        assert sheds, "queue bound never shed"
        assert served, "shedding starved every query"
        assert len(sheds) + len(served) == 64
        assert again["ok"]
        shard0 = metrics["instances"]["default"]["shards"][0]
        assert shard0["shed"] == len(sheds)


class TestClientCancellation:
    def test_cancelled_query_does_not_poison_batch_mates(self):
        """Regression: a client that stops waiting (``asyncio.wait_for``
        timeout) leaves a cancelled future inside a live batch;
        ``set_result`` on it used to raise ``InvalidStateError``, and the
        per-op error handler then failed every co-batched healthy query
        of that op with a spurious ``internal`` error."""
        g = make_graph(n=120, seed=9)

        async def scenario():
            svc = await started_service(
                g, shards=1, max_batch=64, batch_window_s=0.1,
            )
            client = ServiceClient(svc)
            edges = [e for e in range(16)]

            async def impatient(e):
                # cancelled long before the 0.1s batching window closes
                try:
                    return await asyncio.wait_for(
                        client.call("sensitivity", edge=e), timeout=0.01)
                except asyncio.TimeoutError:
                    return {"timed_out": True}

            # the doomed query must enqueue *first*: only batch-mates
            # ordered after the cancelled future were poisoned
            first = asyncio.ensure_future(impatient(edges[0]))
            for _ in range(4):   # let wait_for's inner task reach submit
                await asyncio.sleep(0)
            rest = [asyncio.ensure_future(client.call("sensitivity", edge=e))
                    for e in edges[1:]]
            results = await asyncio.gather(first, *rest)
            metrics = await client.metrics()
            await svc.stop()
            return results, metrics

        results, _ = run(scenario())
        assert results[0] == {"timed_out": True}
        oracle = build_oracle(g)
        for e, resp in zip([e for e in range(16)][1:], results[1:]):
            assert resp.get("ok"), resp  # batch-mates must still succeed
            assert resp.get("error_kind") is None
            assert resp["result"] == pytest.approx(
                float(oracle.sensitivity_bulk(np.array([e]))[0]))


class TestUpdatePath:
    def test_preserving_update_runs_zero_stages(self):
        g = make_graph(n=200, seed=13)

        async def scenario():
            svc = await started_service(g)
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            oracle = inst.updater.oracle
            cover = oracle.covering_edges()
            e = int(np.flatnonzero(~g.tree_mask & ~cover)[0])
            old = float(g.w[e])
            rep = await client.update(e, old + 1.5)
            sens = await client.sensitivity(e)
            thr = await client.entry_threshold(e)
            metrics = await client.metrics()
            await svc.stop()
            return e, old, rep, sens, thr, metrics

        e, old, rep, sens, thr, metrics = run(scenario())
        assert rep["action"] == "patched" and rep["ok"]
        assert rep["stages_executed"] == 0 and rep["verification_reruns"] == 0
        assert rep["generation"] == 0  # no swap needed
        assert sens == (old + 1.5) - thr  # slack reflects the new price
        ups = metrics["instances"]["default"]["updates"]
        assert ups["preserving"] == 1 and ups["rebuilds"] == 0
        assert ups["stages_executed"] == 0

    def test_bridge_tree_edge_update_is_preserving(self):
        # a sparse instance: some tree edges are uncovered (bridges)
        g, _ = known_mst_instance("random", 80, extra_m=5, rng=2)

        async def scenario():
            svc = await started_service(g, shards=2)
            client = ServiceClient(svc)
            oracle = svc.instances["default"].updater.oracle
            bridges = np.flatnonzero(
                g.tree_mask & ~np.isfinite(oracle.threshold))
            e = int(bridges[0])
            rep = await client.update(e, float(g.w[e]) + 100.0)
            sens = await client.sensitivity(e)
            await svc.stop()
            return rep, sens

        rep, sens = run(scenario())
        assert rep["action"] == "patched" and rep["stages_executed"] == 0
        assert sens == float("inf")

    def test_structure_changing_update_rebuilds_incrementally(self):
        g = make_graph(n=200, seed=17)

        async def scenario():
            svc = await started_service(g)
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            oracle = inst.updater.oracle
            cover = oracle.covering_edges()
            e = int(np.flatnonzero(~g.tree_mask & cover)[0])
            rep = await client.update(e, float(g.w[e]) + 2.0)
            await svc.stop()
            return rep, inst

        rep, inst = run(scenario())
        assert rep["action"] == "rebuilt" and rep["generation"] == 1
        # weight-scoped keys: the whole weight-blind validate→lca
        # prefix replays from cache; only the weight-reading suffix
        # (adgraph..decide + the four sens stages) re-runs
        assert sorted(rep["cached"]) == sorted(
            ["validate", "rooting", "dfs", "diameter", "clustering", "lca"])
        assert rep["stages_executed"] == 8
        assert rep["verification_reruns"] == 4  # adgraph..decide only
        # the rebuilt oracle matches a cold build on the new weights
        cold = build_oracle(inst.updater.graph, oracle_labels=True)
        warm = inst.updater.oracle
        np.testing.assert_array_equal(cold.threshold, warm.threshold)
        np.testing.assert_array_equal(cold.sens, warm.sens)

    def test_rejected_update_changes_nothing(self):
        g = make_graph(n=150, seed=19)

        async def scenario():
            svc = await started_service(g)
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            nt = int(np.flatnonzero(~g.tree_mask)[0])
            before = float(inst.updater.graph.w[nt])
            rep = await client.update(nt, 1e-9)  # below its entry threshold
            after = float(inst.updater.graph.w[nt])
            metrics = await client.metrics()
            await svc.stop()
            return rep, before, after, metrics

        rep, before, after, metrics = run(scenario())
        assert rep["action"] == "rejected" and not rep["ok"]
        assert not rep["survives"]
        assert before == after
        assert metrics["instances"]["default"]["updates"]["rejected"] == 1

    def test_updated_instance_still_serves_a_real_mst(self):
        g = make_graph(n=100, seed=23)

        async def scenario():
            svc = await started_service(g, shards=2)
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            oracle = inst.updater.oracle
            cover = oracle.covering_edges()
            nt = np.flatnonzero(~g.tree_mask)
            for e in (int(np.flatnonzero(~g.tree_mask & ~cover)[0]),
                      int(np.flatnonzero(~g.tree_mask & cover)[0]),
                      int(nt[3])):
                await client.update(e, float(inst.updater.graph.w[e]) + 0.7)
            await svc.stop()
            return inst.updater.graph

        graph = run(scenario())
        assert verify_by_recompute(graph)


class TestTcpFrontDoor:
    def test_json_lines_roundtrip(self):
        g = make_graph(n=150, seed=29)

        async def scenario():
            svc = SensitivityService(ServiceConfig(
                shards=2, batch_window_s=0.001, port=0))
            svc.add_instance("default", g)
            await svc.start(serve_tcp=True)
            host, port = svc.tcp_address
            reader, writer = await asyncio.open_connection(host, port)

            async def rpc(obj):
                writer.write((json.dumps(obj) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            pong = await rpc({"op": "ping", "id": 1})
            desc = await rpc({"op": "instances"})
            t = int(np.flatnonzero(g.tree_mask)[0])
            ans = await rpc({"op": "survives", "edge": t, "weight": 0.1,
                             "id": "q1", "instance": "default"})
            bad = await rpc({"op": "nope"})
            garbled = None
            writer.write(b"{not json}\n")
            await writer.drain()
            garbled = json.loads(await reader.readline())
            bye = await rpc({"op": "shutdown"})
            await svc.serve_forever()
            await svc.stop()
            return pong, desc, ans, bad, garbled, bye

        pong, desc, ans, bad, garbled, bye = run(scenario())
        assert pong == {"ok": True, "result": "pong", "id": 1}
        assert desc["result"]["default"]["m"] == 449
        assert ans["ok"] and ans["result"] is True and ans["id"] == "q1"
        assert not bad["ok"]
        assert not garbled["ok"] and "bad request" in garbled["error"]
        assert bye == {"ok": True, "result": "bye"}


class TestMmapSharing:
    def test_mmap_shards_answer_identically(self, tmp_path):
        g = make_graph(n=160, seed=31)

        async def scenario(mmap_dir):
            svc = await started_service(g, shards=3, mmap_dir=mmap_dir)
            client = ServiceClient(svc)
            rng = np.random.default_rng(1)
            edges = rng.integers(0, g.m, 400)
            weights = rng.uniform(0.0, 2.0, 400)
            out = []
            for e, w in zip(edges, weights):
                out.append(await client.survives(int(e), float(w)))
                out.append(await client.sensitivity(int(e)))
            await svc.stop()
            return out, svc

        plain, _ = run(scenario(None))
        mapped, svc = run(scenario(str(tmp_path)))
        assert plain == mapped
        # the shards really did map a shared snapshot: each threshold
        # array is a zero-copy view over a read-only memmap
        inst = svc.instances["default"]
        for s in inst.shards:
            arr = s.oracle.threshold
            assert isinstance(arr, np.memmap) or isinstance(arr.base,
                                                            np.memmap)
            assert not arr.flags.owndata

    def test_preserving_update_on_mmap_shards(self, tmp_path):
        g = make_graph(n=140, seed=37)

        async def scenario():
            svc = await started_service(g, shards=2,
                                        mmap_dir=str(tmp_path))
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            cover = inst.updater.oracle.covering_edges()
            e = int(np.flatnonzero(~g.tree_mask & ~cover)[0])
            old = float(g.w[e])
            rep = await client.update(e, old + 2.0)
            sens = await client.sensitivity(e)
            thr = await client.entry_threshold(e)
            await svc.stop()
            return rep, sens, thr, old

        rep, sens, thr, old = run(scenario())
        assert rep["action"] == "patched"
        assert sens == (old + 2.0) - thr


class TestServeProcess:
    """`python -m repro serve` + loadgen over a real socket."""

    def test_serve_loadgen_shutdown(self):
        import os
        import subprocess
        import sys

        env = os.environ.copy()
        src = str((__import__("pathlib").Path(__file__)
                   .resolve().parents[1] / "src"))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--shapes",
             "random,power_law", "--n", "200", "--shards", "2",
             "--port", "0", "--window-ms", "1"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            port = None
            for line in proc.stdout:
                if line.startswith("listening on"):
                    port = int(line.split()[2].rsplit(":", 1)[1])
                    break
            assert port, "server never reported its port"

            from repro.service.loadgen import make_plan, run_tcp

            plan = make_plan({"random": 599, "power_law": 599}, 800, seed=5)
            stats = run(run_tcp("127.0.0.1", port, plan, clients=4,
                                shutdown=True))
            assert stats.answered + stats.type_errors >= stats.answered > 0
            assert stats.errors == 0 and stats.qps > 0
            tail = proc.stdout.read()
            assert "served" in tail and "shed 0" in tail
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


    def test_rebuild_unlinks_superseded_snapshot(self, tmp_path):
        import os

        g = make_graph(n=120, seed=41)

        async def scenario():
            svc = await started_service(g, shards=2,
                                        mmap_dir=str(tmp_path))
            client = ServiceClient(svc)
            inst = svc.instances["default"]
            cover = inst.updater.oracle.covering_edges()
            movers = np.flatnonzero(~g.tree_mask & cover)[:2]
            for k, e in enumerate(movers):
                rep = await client.update(
                    int(e), float(inst.updater.graph.w[e]) + 2.0 + k)
                assert rep["action"] == "rebuilt"
            # old generations still serve from already-mapped pages,
            # but only the latest snapshot file remains on disk
            ans = await client.sensitivity(int(movers[0]))
            path = inst.updater.snapshot_path
            digest = inst.updater.snapshot_digest
            await svc.stop()
            return ans, path, digest

        _, path, digest = run(scenario())
        snaps = sorted(os.listdir(tmp_path))
        # digest-addressed: one file, named by its own content hash
        assert snaps == [os.path.basename(path)]
        assert snaps == [f"default-{digest[:16]}.npz"]
        from repro.serialize import file_digest
        assert file_digest(path) == digest


class TestShutdownLatency:
    def test_stop_mid_window_is_prompt(self):
        """stop() issued while a batcher sits inside its fill window
        must cut the window short: the queued query still answers, and
        the whole shutdown lands well under window_s."""
        g = make_graph(n=120, seed=37)

        async def scenario():
            svc = await started_service(g, shards=1, batch_window_s=0.5)
            q = asyncio.get_running_loop().create_task(
                svc.query("sensitivity", 0))
            await asyncio.sleep(0.05)  # the worker is now mid-window
            t0 = time.perf_counter()
            await svc.stop()
            stopped_in = time.perf_counter() - t0
            return stopped_in, await q

        stopped_in, ans = run(scenario())
        assert ans["ok"]
        assert stopped_in < 0.25  # far below the 0.5s fill window


class TestLoadgenHandshake:
    """The discovery handshake must never hang the load generator."""

    def _args(self, port, timeout=0.5):
        return argparse.Namespace(host="127.0.0.1", port=port, queries=10,
                                  clients=2, seed=0, connect_timeout=timeout,
                                  shutdown=False)

    def test_mute_server_times_out_with_exit_1(self, capsys):
        from repro.service.loadgen import _main_async

        async def scenario():
            async def mute(reader, writer):
                await reader.read()  # consume everything, answer nothing
                writer.close()

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _main_async(self._args(port))
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()) == 1
        err = capsys.readouterr().err
        assert "did not answer the instances handshake" in err

    def test_slammed_connection_exits_1(self, capsys):
        from repro.service.loadgen import _main_async

        async def scenario():
            async def slam(reader, writer):
                writer.close()

            server = await asyncio.start_server(slam, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _main_async(self._args(port))
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()) == 1
        err = capsys.readouterr().err
        assert "closed the connection during the instances handshake" in err
