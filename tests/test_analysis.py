"""Analysis/harness tests: tables, log fits, sweep helpers."""

import numpy as np
import pytest

from repro.analysis import (
    diameter_sweep_instances,
    fit_log,
    growth_ratio,
    render_table,
    sensitivity_rounds_row,
    to_csv,
    verification_rounds_row,
)


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["a", "bb"], [(1, 2.5), (30, 4.25)])
        lines = out.strip().split("\n")
        assert lines[0].endswith("bb")
        assert set(lines[1]) == {"-"}
        assert "30" in lines[3]

    def test_float_formatting(self):
        out = render_table(["x"], [(0.0001,), (float("inf"),),
                                   (float("nan"),)])
        assert "1.000e-04" in out
        assert "inf" in out
        assert "-" in out

    def test_csv(self):
        out = to_csv(["a", "b"], [(1, 2), (3, 4)])
        assert out.splitlines() == ["a,b", "1,2", "3,4"]

    def test_csv_quotes_special_characters(self):
        out = to_csv(["msg"], [("shapes (3,) (4,)",), ('say "hi"',)])
        assert out.splitlines() == [
            "msg", '"shapes (3,) (4,)"', '"say ""hi"""',
        ]


class TestFitLog:
    def test_exact_log_data(self):
        d = [2, 4, 8, 16, 32]
        r = [10 * np.log2(x) + 3 for x in d]
        fit = fit_log(d, r)
        assert abs(fit.slope - 10) < 1e-9
        assert abs(fit.intercept - 3) < 1e-9
        assert fit.r2 == pytest.approx(1.0)

    def test_linear_data_fits_poorly(self):
        d = [2, 4, 8, 16, 32, 64, 128, 256]
        r = [float(x) for x in d]
        fit = fit_log(d, r)
        assert fit.r2 < 0.9

    def test_predict(self):
        fit = fit_log([2, 4, 8], [1, 2, 3])
        np.testing.assert_allclose(fit.predict(np.array([16.0])), [4.0])

    def test_constant_data(self):
        fit = fit_log([2, 4, 8], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_growth_ratio(self):
        assert growth_ratio([2, 8], [10, 14]) == pytest.approx(2.0)
        assert growth_ratio([4, 4], [1, 2]) == 0.0


class TestSweepHelpers:
    def test_instances_have_exact_diameters(self):
        from repro.graph.tree import RootedTree

        pairs = diameter_sweep_instances(200, [4, 16, 64], extra_m=100)
        for d, g in pairs:
            tm = g.tree_mask
            t = RootedTree.from_edges(g.n, g.u[tm], g.v[tm], g.w[tm], root=0)
            assert t.diameter() == d

    def test_verification_row_fields(self):
        pairs = diameter_sweep_instances(150, [8], extra_m=150)
        row = verification_rounds_row(pairs[0][1])
        for key in ("rounds_total", "rounds_core", "rounds_substrate",
                    "peak_words", "d_hat", "clusters_final"):
            assert key in row
        assert row["rounds_core"] > 0

    def test_sensitivity_row_fields(self):
        pairs = diameter_sweep_instances(150, [8], extra_m=150)
        row = sensitivity_rounds_row(pairs[0][1])
        for key in ("rounds_total", "rounds_core", "notes_peak", "d_hat"):
            assert key in row
