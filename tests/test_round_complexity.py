"""The paper's complexity claims, asserted as tests.

* Theorem 3.1/4.1: the core phases' rounds grow like ``log D_T``
  (flat in ``n`` at fixed diameter, logarithmic in ``D_T`` at fixed n);
* optimal utilisation: peak global memory stays linear in ``m + n``;
* §3 strawman: the naive path-collection verifier needs ``Θ(n·D_T)``
  words, diverging from the pipeline as ``D_T`` grows;
* Theorem 5.2: on the 1-vs-2-cycle family, rounds grow with
  ``log D_T = Θ(log n)`` even though the *graph* diameter is 2.
"""

import numpy as np
import pytest

from repro.analysis import diameter_sweep_instances, fit_log, growth_ratio
from repro.baselines import naive_verify_mst
from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    one_vs_two_cycles_instance,
)
from repro.mpc import LocalRuntime

DIAMS = [4, 16, 64, 256]
N = 600


def core_rounds_for(d, what="verify"):
    tree = backbone_tree(N, d, rng=d)
    g = attach_nontree_edges(tree, 2 * N, rng=d + 1, mode="mst")
    if what == "verify":
        return verify_mst(g, oracle_labels=True).core_rounds
    return mst_sensitivity(g, oracle_labels=True).core_rounds


class TestLogDiameterScaling:
    def test_verification_rounds_logarithmic_in_diameter(self):
        rounds = [core_rounds_for(d) for d in DIAMS]
        assert rounds == sorted(rounds)
        fit = fit_log(DIAMS, rounds)
        assert fit.r2 > 0.9, f"poor log fit: {fit}"
        # doubling D adds a bounded number of rounds (log, not poly)
        assert growth_ratio(DIAMS, rounds) < 80

    def test_sensitivity_rounds_logarithmic_in_diameter(self):
        rounds = [core_rounds_for(d, "sens") for d in DIAMS]
        assert rounds == sorted(rounds)
        fit = fit_log(DIAMS, rounds)
        assert fit.r2 > 0.9

    def test_rounds_flat_in_n_at_fixed_diameter(self):
        d = 16
        rounds = []
        for n in (200, 400, 800, 1600):
            tree = backbone_tree(n, d, rng=7)
            g = attach_nontree_edges(tree, 2 * n, rng=8, mode="mst")
            rounds.append(verify_mst(g, oracle_labels=True).core_rounds)
        # quadrupling n while D_T is fixed must not grow rounds much:
        # the only n-dependence is the clustering running slightly longer
        assert max(rounds) - min(rounds) <= 0.5 * min(rounds)

    def test_sensitivity_constant_factor_over_verification(self):
        tree = backbone_tree(400, 64, rng=1)
        g = attach_nontree_edges(tree, 800, rng=2, mode="mst")
        v = verify_mst(g, oracle_labels=True).core_rounds
        s = mst_sensitivity(g, oracle_labels=True).core_rounds
        assert v < s <= 5 * v


class TestLinearMemory:
    @pytest.mark.parametrize("d", [8, 128])
    def test_pipeline_memory_linear(self, d):
        tree = backbone_tree(800, d, rng=3)
        g = attach_nontree_edges(tree, 1600, rng=4, mode="mst")
        r = verify_mst(g, oracle_labels=True)
        assert r.report.peak_global_words <= 30 * g.total_words()

    def test_naive_memory_blows_up_with_diameter(self):
        n = 500
        peaks = []
        for d in (8, 64, 400):
            tree = backbone_tree(n, d, rng=5)
            g = attach_nontree_edges(tree, n, rng=6, mode="mst")
            rt = LocalRuntime()
            res = naive_verify_mst(rt, g)
            assert res.is_mst
            peaks.append(res.peak_words)
        # superlinear growth in D (Θ(n·D) path storage)
        assert peaks[2] > 6 * peaks[0]

    def test_pipeline_beats_naive_at_large_diameter(self):
        n = 500
        tree = backbone_tree(n, 400, rng=7)
        g = attach_nontree_edges(tree, n, rng=8, mode="mst")
        rt = LocalRuntime()
        naive = naive_verify_mst(rt, g)
        real = verify_mst(g, oracle_labels=True)
        assert real.report.peak_global_words < naive.peak_words / 3


class TestLowerBoundFamily:
    def test_rounds_grow_despite_constant_graph_diameter(self):
        sizes = [32, 128, 512]
        rounds = []
        for n in sizes:
            g, _ = one_vs_two_cycles_instance(n, two_cycles=False, rng=n)
            rounds.append(verify_mst(g, oracle_labels=True).rounds)
        assert rounds == sorted(rounds)
        assert rounds[-1] > rounds[0]
        fit = fit_log(sizes, rounds)
        assert fit.r2 > 0.85

    def test_two_cycle_side_detected_at_every_size(self):
        for n in (32, 128, 512):
            g, _ = one_vs_two_cycles_instance(n, two_cycles=True, rng=n)
            assert not verify_mst(g, oracle_labels=True).is_mst


class TestClusterDecay:
    def test_cluster_counts_reach_target_in_log_steps(self):
        for d in (8, 64):
            tree = backbone_tree(1000, d, rng=9)
            g = attach_nontree_edges(tree, 1000, rng=10, mode="mst")
            r = verify_mst(g, oracle_labels=True)
            counts = r.cluster_counts
            steps = len(counts) - 1
            assert counts[-1] <= max(1, 1000 // d)
            assert steps <= 14 * int(np.log2(2 * d) + 1)
