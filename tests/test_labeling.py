"""Weight-preserving labelling (Definition 3.2) against brute force.

The brute force recomputes, from the definition, for the *final*
clustering: ``θ(c)`` by walking the parent cluster's segment, and
``ω_lo/ω_hi`` by walking each half-edge's tree path and keeping the
maxima of the pieces inside the endpoint clusters.
"""

import numpy as np
import pytest

from repro.core.adgraph import split_at_lca
from repro.core.hierarchy import build_hierarchy
from repro.core.labeling import evaluate_pathmax, run_weight_labeling
from repro.graph.generators import attach_nontree_edges, tree_instance
from repro.graph.tree import RootedTree
from repro.mpc import LocalRuntime

SHAPES = ["path", "binary", "caterpillar", "random"]


def setup(shape, n, seed):
    rng = np.random.default_rng(seed)
    t0 = tree_instance(shape, n, seed)
    w = rng.uniform(0, 1, n)
    w[t0.root] = 0.0
    tree = RootedTree(parent=t0.parent, root=t0.root, weight=w)
    rt = LocalRuntime()
    _, low, high = tree.euler_intervals()
    d = max(1, tree.diameter())
    h = build_hierarchy(rt, tree.parent, w, tree.root, low, high, d)

    eu = rng.integers(0, n, 3 * n)
    ev = rng.integers(0, n - 1, 3 * n)
    ev = np.where(ev >= eu, ev + 1, ev)
    lca = tree.lca(eu, ev)
    halves = split_at_lca(rt, eu, ev, np.ones(3 * n), lca)
    labeled = run_weight_labeling(rt, h, halves, low, high)
    return tree, rt, h, halves, labeled, low, high


def walk_up(tree, frm, to):
    """Vertices and parent-edge weights from `frm` (exclusive of `to`)."""
    x = frm
    verts, edges = [x], []
    while x != to:
        edges.append((x, float(tree.weight[x])))
        x = int(tree.parent[x])
        verts.append(x)
    return verts, edges


class TestThetaDefinition:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_theta_matches_bruteforce(self, shape):
        tree, rt, h, halves, labeled, low, high = setup(shape, 80, 1)
        cl = labeled.clusters
        leader_of = {int(l): int(l) for l in cl.col("leader")}
        vleader = h.final_leader
        for leader, pcl, theta in zip(cl.col("leader"), cl.col("pcl"),
                                      cl.col("theta")):
            if leader == tree.root:
                continue
            # θ(c): max weight from ℓ(parent cluster) down to p(ℓ(c))
            _, edges = walk_up(tree, int(tree.parent[leader]), int(pcl))
            want = max((w for _, w in edges), default=-np.inf)
            assert np.isclose(theta, want) or (theta == want == -np.inf)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_cluster_cross_weights(self, shape):
        tree, rt, h, halves, labeled, low, high = setup(shape, 60, 2)
        cl = labeled.clusters
        for leader, cw in zip(cl.col("leader"), cl.col("cw")):
            if leader == tree.root:
                continue
            assert np.isclose(cw, tree.weight[leader])


class TestOmegaDefinition:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [1, 5])
    def test_omega_matches_bruteforce(self, shape, seed):
        tree, rt, h, halves, labeled, low, high = setup(shape, 70, seed)
        vleader = h.final_leader
        for i in range(len(halves)):
            lo, hi = int(halves.lo[i]), int(halves.hi[i])
            verts, edges = walk_up(tree, lo, hi)
            in_lo = [w for c, w in edges if vleader[c] == vleader[lo]
                     and vleader[int(tree.parent[c])] == vleader[lo]]
            in_hi = [w for c, w in edges if vleader[c] == vleader[hi]
                     and vleader[int(tree.parent[c])] == vleader[hi]]
            want_lo = max(in_lo, default=-np.inf)
            want_hi = max(in_hi, default=-np.inf)
            if labeled.internal[i]:
                # same cluster: a single ω value covering the whole path
                assert vleader[lo] == vleader[hi]
                whole = max((w for _, w in edges), default=-np.inf)
                assert np.isclose(labeled.omega_lo[i], whole)
                assert np.isclose(labeled.omega_hi[i], whole)
            else:
                assert vleader[lo] != vleader[hi]
                ok_lo = np.isclose(labeled.omega_lo[i], want_lo) or (
                    labeled.omega_lo[i] == want_lo
                )
                ok_hi = np.isclose(labeled.omega_hi[i], want_hi) or (
                    labeled.omega_hi[i] == want_hi
                )
                assert ok_lo, (i, labeled.omega_lo[i], want_lo)
                assert ok_hi, (i, labeled.omega_hi[i], want_hi)


class TestPathmax:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_observation_33(self, shape, seed):
        tree, rt, h, halves, labeled, low, high = setup(shape, 90, seed)
        pm = evaluate_pathmax(rt, h, labeled)
        want = tree.path_max_to_ancestor(halves.lo, halves.hi)
        assert np.allclose(pm, want)

    def test_empty_edges(self):
        tree, rt, h, halves, labeled, low, high = setup("binary", 31, 0)
        from repro.core.adgraph import HalfEdges

        empty = HalfEdges(
            eid=np.empty(0, np.int64), lo=np.empty(0, np.int64),
            hi=np.empty(0, np.int64), w=np.empty(0, np.float64),
        )
        lab = run_weight_labeling(rt, h, empty, low, high)
        assert len(evaluate_pathmax(rt, h, lab)) == 0
