"""Message-level engine: protocol behaviour and model enforcement."""

import numpy as np
import pytest

from repro.errors import CapacityError, ValidationError
from repro.mpc import DistributedRuntime, Fabric, FleetState, MPCConfig, Table
from repro.mpc.cost import CostTracker


class TestColumnarFabric:
    """The vectorised route/control rounds of the columnar fleet."""

    def test_route_is_destination_stable_permutation(self):
        t = CostTracker()
        f = Fabric(3, 1000, t)
        # rows machine-major: machine 0 holds [0,1], machine 1 holds [2]
        state = FleetState({"x": np.array([10, 11, 12])},
                           np.array([0, 0, 1], dtype=np.int64))
        out = f.route(state, np.array([2, 1, 1]), words_per_row=1)
        # receiver-major, then sender, then send order
        assert out.mid.tolist() == [1, 1, 2]
        assert out.cols["x"].tolist() == [11, 12, 10]
        assert f.rounds_executed == 1
        assert t.report().transport_rounds == 1
        assert f.words_moved == 3

    def test_route_send_cap_enforced(self):
        f = Fabric(2, 10, CostTracker())
        state = FleetState({"x": np.arange(11)}, np.zeros(11, dtype=np.int64))
        with pytest.raises(CapacityError) as e:
            f.route(state, np.ones(11, dtype=np.int64), words_per_row=1)
        assert e.value.machine == 0

    def test_route_receive_cap_enforced(self):
        f = Fabric(3, 10, CostTracker())
        mid = np.repeat([0, 1], 6)
        state = FleetState({"x": np.arange(12)}, mid)
        with pytest.raises(CapacityError) as e:
            f.route(state, np.full(12, 2, dtype=np.int64), words_per_row=1)
        assert e.value.machine == 2
        assert e.value.words == 12

    def test_route_bad_peer_rejected(self):
        f = Fabric(2, 100, CostTracker())
        state = FleetState({"x": np.array([1])}, np.array([0]))
        with pytest.raises(ValidationError):
            f.route(state, np.array([5]), words_per_row=1)

    def test_route_words_per_row_models_record_width(self):
        # 4 rows of 3-word records: 12 words > s even though only one
        # physical column rides along
        f = Fabric(2, 10, CostTracker())
        state = FleetState({"x": np.arange(4)}, np.zeros(4, dtype=np.int64))
        with pytest.raises(CapacityError):
            f.route(state, np.ones(4, dtype=np.int64), words_per_row=3)

    def test_control_round_checks_and_charges(self):
        t = CostTracker()
        f = Fabric(3, 10, t)
        f.control(np.array([4, 0, 0]), np.array([0, 4, 0]))
        assert f.rounds_executed == 1
        assert f.words_moved == 4
        assert t.report().transport_rounds == 1
        with pytest.raises(CapacityError) as e:
            f.control(np.array([0, 11, 0]), np.array([0, 0, 11]))
        assert e.value.machine == 1  # send checked before receive


class TestFabric:
    def test_delivery_order_deterministic(self):
        f = Fabric(3, 1000, CostTracker())
        out = [[(2, Table(x=[1]))], [(2, Table(x=[2]))], []]
        inbox = f.exchange(out)
        assert [t.col("x")[0] for t in inbox[2]] == [1, 2]

    def test_send_cap_enforced(self):
        f = Fabric(2, 10, CostTracker())
        big = Table(x=np.arange(11))
        with pytest.raises(CapacityError) as e:
            f.exchange([[(1, big)], []])
        assert e.value.machine == 0

    def test_receive_cap_enforced(self):
        f = Fabric(3, 10, CostTracker())
        part = Table(x=np.arange(6))
        with pytest.raises(CapacityError) as e:
            f.exchange([[(2, part)], [(2, part)], []])
        assert e.value.machine == 2

    def test_bad_peer_rejected(self):
        f = Fabric(2, 100, CostTracker())
        with pytest.raises(ValidationError):
            f.exchange([[(5, Table(x=[1]))], []])

    def test_wrong_outbox_count(self):
        f = Fabric(2, 100, CostTracker())
        with pytest.raises(ValidationError):
            f.exchange([[]])

    def test_rounds_counted(self):
        t = CostTracker()
        f = Fabric(2, 100, t)
        f.exchange([[], []])
        f.exchange([[], []])
        assert f.rounds_executed == 2
        assert t.report().transport_rounds == 2


class TestDeployment:
    def test_m_le_s_required(self):
        # tiny delta + big input would need more machines than local words
        with pytest.raises(ValidationError):
            DistributedRuntime(MPCConfig(delta=0.05, min_machine_words=16 + 240),
                               total_words_hint=10_000_000)

    def test_deployment_scales_with_hint(self):
        small = DistributedRuntime(MPCConfig(delta=0.6), total_words_hint=1000)
        big = DistributedRuntime(MPCConfig(delta=0.6), total_words_hint=100_000)
        assert big.s >= small.s
        assert big.m >= small.m

    def test_oversized_table_rejected(self):
        dr = DistributedRuntime(MPCConfig(delta=0.6), total_words_hint=500)
        huge = Table(a=np.arange(100_000))
        with pytest.raises(CapacityError):
            dr.sort(huge, ("a",))


class TestProtocols:
    def setup_method(self):
        self.dr = DistributedRuntime(MPCConfig(delta=0.6, seed=7),
                                     total_words_hint=30_000)
        self.rng = np.random.default_rng(3)

    def test_sort_many_duplicates_balanced(self):
        # constant keys exercise the tie-spreading router
        t = Table(k=np.zeros(600, dtype=np.int64), g=np.arange(600))
        s = self.dr.sort(t, ("k",))
        assert s.col("g").tolist() == list(range(600))

    def test_sort_reverse_input(self):
        t = Table(k=np.arange(500)[::-1].copy())
        s = self.dr.sort(t, ("k",))
        assert np.array_equal(s.col("k"), np.arange(500))

    def test_scan_spanning_machines(self):
        n = 700
        t = Table(k=np.repeat(np.arange(7), 100), v=np.ones(n, dtype=np.int64))
        out = self.dr.scan(t, "v", "sum", by=("k",))
        assert np.array_equal(out, np.tile(np.arange(1, 101), 7))

    def test_scan_single_segment_spanning_all(self):
        t = Table(v=np.ones(800, dtype=np.int64))
        out = self.dr.scan(t, "v", "sum")
        assert out[-1] == 800

    def test_broadcast_tree_reaches_everyone(self):
        payload = Table(x=np.arange(5))
        got = self.dr._broadcast_tree(0, payload)
        assert len(got) == self.dr.m
        assert all(g.equals(payload) for g in got)

    def test_broadcast_too_large_rejected(self):
        payload = Table(x=np.arange(self.dr.s))
        with pytest.raises(CapacityError):
            self.dr._broadcast_tree(0, payload)

    def test_filter_rebalances_in_three_charged_rounds(self):
        t = Table(a=np.arange(300))
        before = self.dr.report().transport_rounds
        # skewed survivor counts per shard exercise the 3-round rebalance
        out = self.dr.filter(t, t.col("a") % 3 == 0)
        assert np.array_equal(out.col("a"), np.arange(0, 300, 3))
        # counts to 0, offsets out, rows to block positions
        assert self.dr.report().transport_rounds - before == 3

    def test_scatter_blocks_and_caps(self):
        cap, need = self.dr._scatter(300, 2)
        assert cap == self.dr._rows_cap(2)
        assert need == -(-300 // cap)
        counts = self.dr._block_counts(300, cap)
        assert counts.sum() == 300
        assert np.array_equal(np.flatnonzero(counts), np.arange(need))
        mid = self.dr._block_mid(300, cap)
        assert np.array_equal(np.bincount(mid, minlength=self.dr.m), counts)

    def test_transport_rounds_recorded(self):
        t = Table(k=self.rng.integers(0, 50, 300))
        before = self.dr.report().transport_rounds
        self.dr.sort(t, ("k",))
        assert self.dr.report().transport_rounds > before

    def test_machine_peak_tracked(self):
        t = Table(k=self.rng.integers(0, 50, 300))
        self.dr.sort(t, ("k",))
        rep = self.dr.report()
        assert 0 < rep.peak_machine_words <= self.dr.s
