"""Cost model, phase attribution, and memory accounting tests."""

import pytest

from repro.mpc import CostModel, CostTracker, MPCConfig, LocalRuntime, Table
from repro.mpc.cost import PRIMITIVES


class TestCostModel:
    def test_unit_mode_charges_one(self):
        m = CostModel(mode="unit")
        for p in PRIMITIVES:
            assert m.rounds_for(p) == 1

    def test_theory_mode_scales_with_delta(self):
        shallow = CostModel(mode="theory", delta=0.5)
        deep = CostModel(mode="theory", delta=0.1)
        assert deep.rounds_for("sort") > shallow.rounds_for("sort")

    def test_theory_sort_is_ceil_inverse_delta(self):
        m = CostModel(mode="theory", delta=0.25)
        assert m.rounds_for("sort") == 4

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            CostModel().rounds_for("teleport")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CostModel(mode="wishful").rounds_for("sort")


class TestTracker:
    def test_charge_accumulates(self):
        t = CostTracker()
        t.charge("sort")
        t.charge("scan")
        assert t.rounds_total == 2

    def test_phase_attribution(self):
        t = CostTracker()
        t.push_phase("a")
        t.charge("sort")
        t.push_phase("b")
        t.charge("scan")
        t.charge("scan")
        t.pop_phase("b")
        t.pop_phase("a")
        rep = t.report()
        assert rep.rounds_by_phase["a"] == 1
        assert rep.rounds_by_phase["a/b"] == 2
        assert rep.rounds_in("a") == 3

    def test_phase_stack_misuse_detected(self):
        t = CostTracker()
        t.push_phase("a")
        with pytest.raises(ValueError):
            t.pop_phase("b")

    def test_phase_name_no_slash(self):
        t = CostTracker()
        with pytest.raises(ValueError):
            t.push_phase("a/b")

    def test_memory_peak_tracks_transients(self):
        t = CostTracker()
        t.charge("sort", words_touched=500)
        t.charge("sort", words_touched=100)
        assert t.peak_global_words == 500

    def test_retained_memory_adds_to_peak(self):
        t = CostTracker()
        t.retain("paths", 1000)
        t.charge("sort", words_touched=500)
        assert t.peak_global_words == 1500
        t.release("paths")
        t.charge("sort", words_touched=200)
        assert t.peak_global_words == 1500  # peak is sticky

    def test_transport_rounds_independent(self):
        t = CostTracker()
        t.charge_transport_round(5)
        assert t.report().transport_rounds == 5
        assert t.rounds_total == 0


class TestRuntimePhases:
    def test_nested_phase_context(self):
        rt = LocalRuntime()
        with rt.phase("outer"):
            rt.sort(Table(a=[2, 1]), ("a",))
            with rt.phase("inner"):
                rt.sort(Table(a=[2, 1]), ("a",))
        rep = rt.report()
        assert rep.rounds_in("outer") == 2
        assert rep.rounds_by_phase["outer/inner"] == 1

    def test_phase_exits_on_exception(self):
        rt = LocalRuntime()
        with pytest.raises(RuntimeError):
            with rt.phase("x"):
                raise RuntimeError("boom")
        assert rt.tracker.current_phase == "<root>"

    def test_theory_mode_propagates_from_config(self):
        rt = LocalRuntime(MPCConfig(cost_mode="theory", delta=0.2))
        rt.sort(Table(a=[2, 1]), ("a",))
        assert rt.rounds == 5  # ceil(1/0.2)
