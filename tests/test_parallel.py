"""Process-parallel executor: pool fault isolation, shm blocks, and the
``executor="process"`` vs serial differential sweep.

The executor is a *physical* knob: every observable — outputs, plan
statuses, and the full :class:`CostReport` dict (rounds, per-phase
paths, primitive counts, peaks, transport rounds) — must be
bit-identical to serial execution, across both engines and all instance
families. Crash tests exercise the pool's claim-slot attribution and
the executor's inline fallback: one dying worker never fails a run.
"""

import asyncio

import numpy as np
import pytest

from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.errors import ValidationError
from repro.graph.generators import TREE_SHAPES, known_mst_instance, \
    perturb_break_mst
from repro.mpc import LocalRuntime, MPCConfig, Table
from repro.mpc import parallel
from repro.mpc.parallel import (
    ShmBlock,
    WorkerPool,
    attach_columns,
    copy_columns,
    default_start_method,
    get_pool,
    run_partitions,
    share_columns,
    shutdown_pool,
)


@pytest.fixture(scope="module")
def pool():
    """One shared pool for the module (spawning workers is the slow part)."""
    p = get_pool()
    p.ping()
    yield p


#: Force dispatch on small test instances (the default 32768-row floor
#: would keep everything inline at these sizes).
PROC = MPCConfig(executor="process", executor_min_rows=0)
SER = MPCConfig()
PROC_DIST = MPCConfig(delta=0.6, executor="process", executor_min_rows=0)
SER_DIST = MPCConfig(delta=0.6)


def _configs(engine):
    return (PROC_DIST, SER_DIST) if engine == "distributed" else (PROC, SER)


# -- shared-memory column blocks -----------------------------------------------


class TestShmBlocks:
    def test_roundtrip_mixed_dtypes(self):
        cols = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0, 1, 100),
            "c": np.array([True, False] * 50),
        }
        shm, block = share_columns(cols)
        try:
            back = copy_columns(block)
            assert set(back) == set(cols)
            for k in cols:
                np.testing.assert_array_equal(back[k], cols[k])
                assert back[k].dtype == cols[k].dtype
        finally:
            shm.close()
            shm.unlink()

    def test_views_are_zero_copy_and_aligned(self):
        cols = {"x": np.arange(7, dtype=np.int64),
                "y": np.arange(7, dtype=np.float64)}
        shm, block = share_columns(cols)
        try:
            shm2, views = attach_columns(block)
            try:
                for _, _, _, off in block.meta:
                    assert off % 64 == 0
                assert views["x"].base is not None  # a view, not a copy
                np.testing.assert_array_equal(views["x"], cols["x"])
            finally:
                shm2.close()
        finally:
            shm.close()
            shm.unlink()

    def test_block_handle_is_picklable(self):
        import pickle

        block = ShmBlock(name="psm_test", nbytes=64,
                         meta=(("a", "<i8", (8,), 0),))
        assert pickle.loads(pickle.dumps(block)) == block

    def test_empty_columns(self):
        shm, block = share_columns({"e": np.empty(0, dtype=np.int64)})
        try:
            back = copy_columns(block)
            assert len(back["e"]) == 0
        finally:
            shm.close()
            shm.unlink()


# -- the worker pool -----------------------------------------------------------


class TestWorkerPool:
    def test_explicit_start_method_never_fork_by_default(self, monkeypatch):
        monkeypatch.delenv(parallel.START_METHOD_ENV, raising=False)
        assert default_start_method() in ("forkserver", "spawn")

    def test_env_override_and_validation(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV, "spawn")
        assert default_start_method() == "spawn"
        monkeypatch.setenv(parallel.START_METHOD_ENV, "not-a-method")
        with pytest.raises(ValidationError):
            default_start_method()

    def test_map_preserves_order(self, pool):
        outs = pool.map("ping", list(range(8)))
        assert [o.value for o in outs] == list(range(8))
        assert all(o.ok for o in outs)

    def test_task_error_is_outcome_not_crash(self, pool):
        out = pool.wait([pool.submit(
            "call", ("repro.mpc.parallel", "no_such_function", None))])[0]
        assert not out.ok and not out.crashed
        assert "AttributeError" in out.error
        assert "no_such_function" in out.traceback

    def test_worker_crash_is_attributed_and_pool_survives(self, pool):
        from repro.errors import WorkerCrashed

        before = pool.crashes
        crashed = pool.wait([pool.submit("crash", 9)])[0]
        assert not crashed.ok and crashed.crashed
        assert "exitcode 9" in crashed.error
        assert pool.crashes == before + 1
        with pytest.raises(WorkerCrashed):
            crashed.unwrap()
        # the respawned slot serves new work
        alive = pool.wait([pool.submit("ping", "again")])[0]
        assert alive.ok and alive.value == "again"

    def test_crash_does_not_discard_sibling_results(self, pool):
        """The claim-slot protocol: results reported before the crash
        (over the surviving pipe) and tasks queued after it all land."""
        tids = [pool.submit("ping", i) for i in range(5)]
        tids.append(pool.submit("crash", 3))
        tids.append(pool.submit("ping", 99))
        outs = pool.wait(tids)
        assert [o.ok for o in outs] == [True] * 5 + [False, True]
        assert outs[5].crashed
        assert outs[6].value == 99

    def test_closed_pool_rejects_submissions(self):
        p = WorkerPool(1)
        p.close()
        from repro.errors import ExecutorError

        with pytest.raises(ExecutorError):
            p.submit("ping", 1)


# -- planner dispatch ----------------------------------------------------------


class TestExecutorDispatch:
    def test_sort_results_installed_bit_identical(self, pool):
        rt = LocalRuntime(PROC)
        k = np.array([5, 1, 4, 1, 3], dtype=np.int64)
        v = np.array([0.5, 0.1, 0.4, 0.15, 0.3])
        out = rt.sort(Table(k=k, v=v), ("k",))
        rt.flush_plan()
        order = np.argsort(k, kind="stable")
        np.testing.assert_array_equal(out.col("k"), k[order])
        np.testing.assert_array_equal(out.col("v"), v[order])
        assert rt.planner.executor.dispatched == 1
        assert out.plan_node.status == "executed"
        assert out.plan_node.physical == "argsort-permute"

    def test_elision_still_decided_in_parent(self, pool):
        rt = LocalRuntime(PROC)
        t = Table(k=np.arange(64, dtype=np.int64))
        out = rt.sort(t, ("k",))
        rt.flush_plan()
        assert out.plan_node.status == "elided"
        assert rt.planner.executor.dispatched == 0

    def test_min_rows_keeps_small_sorts_inline(self, pool):
        rt = LocalRuntime(MPCConfig(executor="process",
                                    executor_min_rows=1000))
        out = rt.sort(Table(k=np.array([2, 1], dtype=np.int64)), ("k",))
        rt.flush_plan()
        np.testing.assert_array_equal(out.col("k"), [1, 2])
        assert rt.planner.executor.dispatched == 0

    def test_composite_key_sorts_dispatch(self, pool):
        rt = LocalRuntime(PROC)
        a = np.array([1, 0, 1, 0], dtype=np.int64)
        b = np.array([0, 1, 1, 0], dtype=np.int64)
        out = rt.sort(Table(a=a, b=b), ("a", "b"))
        rt.flush_plan()
        np.testing.assert_array_equal(out.col("a"), [0, 0, 1, 1])
        np.testing.assert_array_equal(out.col("b"), [0, 1, 0, 1])
        assert rt.planner.executor.dispatched == 1

    def test_worker_crash_falls_back_inline(self, pool, monkeypatch):
        """Kill a worker mid-plan: the sabotaged segment re-executes
        inline (bit-identical kernels), the crash is counted, and the
        pool survives for the remaining dispatches."""
        orig = WorkerPool.submit
        hit = {"n": 0}

        def sabotage(self, kind, payload):
            if kind == "sort" and hit["n"] == 0:
                hit["n"] += 1
                return orig(self, "crash", 5)
            return orig(self, kind, payload)

        monkeypatch.setattr(WorkerPool, "submit", sabotage)
        before = pool.crashes
        rt = LocalRuntime(PROC)
        rng = np.random.default_rng(0)
        tables = [Table(k=rng.integers(0, 1000, size=256),
                        v=rng.standard_normal(256)) for _ in range(3)]
        outs = [rt.sort(t, ("k",)) for t in tables]
        rt.flush_plan()
        monkeypatch.undo()
        for t, out in zip(tables, outs):
            order = np.argsort(t.col("k"), kind="stable")
            np.testing.assert_array_equal(out.col("k"), t.col("k")[order])
            np.testing.assert_array_equal(out.col("v"), t.col("v")[order])
        assert rt.planner.executor.dispatched == 3
        assert rt.planner.executor.inline_fallbacks == 1
        assert pool.crashes > before
        assert pool.wait([pool.submit("ping", 1)])[0].ok

    def test_serial_config_never_touches_pool(self):
        rt = LocalRuntime(SER)
        assert rt.planner.executor is None

    def test_record_mode_engine_gets_no_executor(self):
        from repro.mpc import DistributedRuntime

        rt = DistributedRuntime(PROC_DIST)
        assert rt.planner.executor is None  # transport is physical truth

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValidationError):
            MPCConfig(executor="threads")
        with pytest.raises(ValidationError):
            MPCConfig(executor="process", executor_workers=0)


# -- the differential sweep: process vs serial, both engines -------------------


@pytest.mark.parametrize("engine", ("local", "distributed"))
@pytest.mark.parametrize("n", (512, 1024))
@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_executor_bit_identical_sensitivity(engine, n, shape, pool):
    g, _ = known_mst_instance(shape, n, extra_m=2 * n, rng=n + len(shape))
    proc_cfg, ser_cfg = _configs(engine)
    sp = mst_sensitivity(g, engine=engine, config=proc_cfg)
    ss = mst_sensitivity(g, engine=engine, config=ser_cfg)
    np.testing.assert_array_equal(sp.sensitivity, ss.sensitivity)
    np.testing.assert_array_equal(sp.mc, ss.mc)
    np.testing.assert_array_equal(sp.pathmax, ss.pathmax)
    assert sp.report.to_dict() == ss.report.to_dict()


@pytest.mark.parametrize("engine", ("local", "distributed"))
@pytest.mark.parametrize("n", (512, 1024))
@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_executor_bit_identical_verification(engine, n, shape, pool):
    g, _ = known_mst_instance(shape, n, extra_m=2 * n, rng=3 * n)
    g = perturb_break_mst(g, rng=n + 1)
    proc_cfg, ser_cfg = _configs(engine)
    rp = verify_mst(g, engine=engine, config=proc_cfg)
    rs = verify_mst(g, engine=engine, config=ser_cfg)
    assert rp.is_mst == rs.is_mst
    np.testing.assert_array_equal(rp.violating_edges, rs.violating_edges)
    np.testing.assert_array_equal(rp.pathmax, rs.pathmax)
    assert rp.report.to_dict() == rs.report.to_dict()


# -- workload-level partitions -------------------------------------------------


class TestRunPartitions:
    def test_partition_reports_bit_identical_to_serial(self, pool):
        gs = [known_mst_instance("random", 256, extra_m=512, rng=s)[0]
              for s in range(4)]
        outs = run_partitions(gs, kind="sensitivity", engine="local",
                              pool=pool)
        assert all(o.ok for o in outs)
        for g, o in zip(gs, outs):
            ser = mst_sensitivity(g, engine="local")
            np.testing.assert_array_equal(o.value["sensitivity"],
                                          ser.sensitivity)
            np.testing.assert_array_equal(o.value["mc"], ser.mc)
            assert o.value["report"] == ser.report.to_dict()

    def test_verify_partitions_both_engines(self, pool):
        g, _ = known_mst_instance("caterpillar", 256, extra_m=512, rng=3)
        broken = perturb_break_mst(g, rng=4)
        for engine, cfg in (("local", None), ("distributed", SER_DIST)):
            outs = run_partitions([g, broken], kind="verify", engine=engine,
                                  config=cfg, pool=pool)
            assert outs[0].value["is_mst"]
            assert not outs[1].value["is_mst"]
            ser = verify_mst(broken, engine=engine, config=cfg)
            assert outs[1].value["report"] == ser.report.to_dict()

    def test_rejects_unknown_kind(self, pool):
        with pytest.raises(ValidationError):
            run_partitions([], kind="frobnicate")


# -- spawn-context safety under an active service ------------------------------


class TestServiceCoexistence:
    def test_pool_dispatch_under_running_service(self, pool):
        """A live asyncio service (event loop + shard workers + update
        thread machinery) in the parent must not leak into workers —
        the explicit forkserver/spawn context never snapshots it."""
        from repro.service import SensitivityService, ServiceConfig

        g, _ = known_mst_instance("random", 200, extra_m=400, rng=6)

        async def scenario():
            svc = SensitivityService(ServiceConfig(shards=2,
                                                   batch_window_s=0.001))
            svc.add_instance("default", g)
            await svc.start()
            try:
                # dispatch pool work while the loop is live: run the
                # blocking pool calls on a thread so the service's loop
                # keeps ticking mid-flight
                outs = await asyncio.to_thread(
                    run_partitions, [g], "sensitivity", "local", None, pool)
                # and the service still answers afterwards
                ans = await svc.query("sensitivity", 0)
                return outs, ans
            finally:
                await svc.stop()

        outs, ans = asyncio.run(scenario())
        assert outs[0].ok
        ser = mst_sensitivity(g, engine="local")
        np.testing.assert_array_equal(outs[0].value["sensitivity"],
                                      ser.sensitivity)
        assert ans["ok"]


# -- pool lifecycle ------------------------------------------------------------


class TestPoolLifecycle:
    def test_get_pool_is_shared_and_grows(self):
        a = get_pool()
        b = get_pool()
        assert a is b
        before = a.workers
        c = get_pool(before + 1)
        assert c is a and c.workers == before + 1

    def test_shutdown_then_fresh_pool(self):
        shutdown_pool()
        p = get_pool()
        assert not p.closed
        assert p.wait([p.submit("ping", 0)])[0].ok
