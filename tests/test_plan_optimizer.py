"""Planner/optimizer: plan shapes, rewrite rules, lazy-table semantics.

Three layers:

1. golden plan-shape fixtures — per-pipeline-phase counts of elided
   sorts and fused joins for one fixed seeded instance, so an optimizer
   regression that silently stops firing is caught even though outputs
   would remain correct;
2. rewrite unit tests — each rule (elide-sort, reuse-sort, fuse-reduce-
   join, operator selection, dup-check elision) observed directly on
   the plan log, with outputs compared bitwise (values *and* dtypes)
   against the eager engine;
3. lazy-table mechanics — deferral until flush points, error timing at
   the logical call site, schema/cardinality without materialisation.
"""

import numpy as np
import pytest

from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import distributed_hint
from repro.errors import KeyPackingError, ProtocolError
from repro.graph.generators import known_mst_instance
from repro.mpc import LocalRuntime, MPCConfig, Table, make_runtime
from repro.mpc.plan import LazyTable


def planned_rt(**kw) -> LocalRuntime:
    return LocalRuntime(MPCConfig(seed=1234, planner=True, **kw))


def eager_rt(**kw) -> LocalRuntime:
    return LocalRuntime(MPCConfig(seed=1234, planner=False, **kw))


def assert_tables_bitwise(a: Table, b: Table):
    assert tuple(a.columns) == tuple(b.columns)
    for c in a.columns:
        assert a.col(c).dtype == b.col(c).dtype, c
        np.testing.assert_array_equal(a.col(c), b.col(c), err_msg=c)


# -- golden plan-shape fixtures ------------------------------------------------

#: Fixed instance: random shape, n=256, extra_m=512, rng=7 — recorded
#: per-phase logical sort counts and optimizer firings for the full
#: sensitivity pipeline on the local engine. If a rule silently stops
#: firing (counts drop to 0 / shift), this fails even though outputs
#: would still be bit-identical.
GOLDEN_PHASE_SHAPE = {
    "substrate/validate": {"nodes": 21, "n_sort": 0, "elided_sort": 0, "fused_join": 0},
    "substrate/rooting": {"nodes": 28, "n_sort": 1, "elided_sort": 0, "fused_join": 1},
    "substrate/dfs": {"nodes": 28, "n_sort": 2, "elided_sort": 0, "fused_join": 0},
    "substrate/diameter": {"nodes": 10, "n_sort": 0, "elided_sort": 0, "fused_join": 0},
    "core/clustering": {"nodes": 56, "n_sort": 0, "elided_sort": 0, "fused_join": 0},
    "core/lca": {"nodes": 29, "n_sort": 12, "elided_sort": 2, "fused_join": 0},
    "core/adgraph": {"nodes": 1, "n_sort": 0, "elided_sort": 0, "fused_join": 0},
    "core/labels": {"nodes": 115, "n_sort": 19, "elided_sort": 1, "fused_join": 0},
    "core/pathmax": {"nodes": 11, "n_sort": 2, "elided_sort": 1, "fused_join": 0},
    "core/decide": {"nodes": 3, "n_sort": 0, "elided_sort": 0, "fused_join": 1},
    "core/sens-contract": {"nodes": 134, "n_sort": 19, "elided_sort": 1, "fused_join": 0},
    "core/sens-cluster": {"nodes": 17, "n_sort": 2, "elided_sort": 1, "fused_join": 1},
    "core/sens-unwind": {"nodes": 82, "n_sort": 8, "elided_sort": 1, "fused_join": 8},
    "core/sens-finalize": {"nodes": 2, "n_sort": 0, "elided_sort": 0, "fused_join": 1},
}

GOLDEN_TOTALS = {"nodes": 537, "n_sort": 65, "elided_sort": 7,
                 "fused_join": 12}


class TestGoldenPlanShape:
    @pytest.fixture(scope="class")
    def plan_log(self):
        g, _ = known_mst_instance("random", 256, extra_m=512, rng=7)
        rt = make_runtime("local", MPCConfig(),
                          total_words_hint=distributed_hint(g))
        mst_sensitivity(g, runtime=rt)
        return rt.planner.log

    def test_per_phase_shape(self, plan_log):
        summary = plan_log.phase_summary()
        assert set(summary) == set(GOLDEN_PHASE_SHAPE)
        for phase, want in GOLDEN_PHASE_SHAPE.items():
            got = summary[phase]
            for key, value in want.items():
                assert got.get(key, 0) == value, (phase, key, got)

    def test_totals(self, plan_log):
        tot = plan_log.totals()
        for key, value in GOLDEN_TOTALS.items():
            assert tot.get(key, 0) == value, key

    def test_rewrites_fire_broadly(self, plan_log):
        """Coarse floors that should survive small refactors: the join
        rewrites and sub-plan reuse must stay the common case."""
        tot = plan_log.totals()
        assert tot.get("phys_direct-address", 0) >= 150
        assert tot.get("phys_dense-gather", 0) >= 30
        assert tot.get("reused", 0) >= 50
        # binary-search survives only for wide-span composite keys
        assert tot.get("phys_binary-search", 0) <= tot["n_lookup"] // 3


# -- rewrite rules, observed on the log ---------------------------------------


class TestSortRules:
    def test_sort_of_sorted_input_elided(self):
        rt = planned_rt()
        t = Table(k=np.arange(50, dtype=np.int64), v=np.arange(50.0))
        out = rt.sort(t, ("k",))
        out.col("k")  # force
        node = out.plan_node
        assert node.status == "elided"
        assert node.physical == "identity"
        assert_tables_bitwise(Table._wrap(dict(out._materialize()._cols)),
                              eager_rt().sort(t, ("k",)))

    def test_unsorted_input_executes(self, rng):
        rt = planned_rt()
        k = rng.integers(0, 100, size=64)
        t = Table(k=k, v=rng.standard_normal(64))
        out = rt.sort(t, ("k",))
        out.col("k")
        assert out.plan_node.status == "executed"
        assert_tables_bitwise(Table._wrap(dict(out._cols)),
                              eager_rt().sort(t, ("k",)))

    def test_same_sort_reused(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 100, size=64))
        a = rt.sort(t, ("k",))
        b = rt.sort(t, ("k",))
        assert b is a  # common sub-plan: same node output
        statuses = [n.status for n in rt.planner.log.nodes if n.op == "sort"]
        assert statuses == ["pending", "reused"]
        assert rt.rounds == 2  # both *logical* sorts are charged

    def test_elision_charges_rounds(self):
        """Elision is physical only — the logical plan still pays."""
        rt = planned_rt()
        t = Table(k=np.arange(10, dtype=np.int64))
        out = rt.sort(t, ("k",))
        out.col("k")
        assert out.plan_node.status == "elided"
        assert rt.rounds == 1


class TestJoinRules:
    def test_fuse_reduce_join(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 40, size=200),
                  v=rng.standard_normal(200))
        groups = rt.reduce_by_key(t, ("k",), {"m": ("v", "max")})
        q = Table(k=rng.integers(0, 40, size=64))
        out = rt.lookup(q, ("k",), groups, ("k",), {"m": "m"},
                        default={"m": -1.0})
        node = rt.planner.log.nodes[-1]
        assert node.op == "lookup" and node.status == "fused"
        ref = eager_rt()
        eg = ref.reduce_by_key(t, ("k",), {"m": ("v", "max")})
        eo = ref.lookup(q, ("k",), eg, ("k",), {"m": "m"}, default={"m": -1.0})
        assert_tables_bitwise(out, eo)

    def test_dense_gather_selected(self):
        rt = planned_rt()
        data = Table(k=np.arange(100, dtype=np.int64),
                     v=np.arange(100, dtype=np.int64) * 3)
        q = Table(k=np.array([7, 99, 0, 42], dtype=np.int64))
        out = rt.lookup(q, ("k",), data, ("k",), {"v": "v"})
        assert rt.planner.log.nodes[-1].physical == "dense-gather"
        assert out.col("v").tolist() == [21, 297, 0, 126]

    def test_wide_span_falls_back_to_binary_search(self):
        rt = planned_rt()
        data = Table(k=np.array([0, 10**12, 2 * 10**12], dtype=np.int64),
                     v=np.array([1, 2, 3], dtype=np.int64))
        q = Table(k=np.array([10**12, 5], dtype=np.int64))
        out = rt.lookup(q, ("k",), data, ("k",), {"v": "v"},
                        default={"v": -1})
        assert rt.planner.log.nodes[-1].physical == "binary-search"
        assert out.col("v").tolist() == [2, -1]

    def test_direct_address_predecessor_matches_eager(self, rng):
        rt, ref = planned_rt(), eager_rt()
        dk = np.sort(rng.integers(0, 500, size=80))
        data = Table(k=dk, v=np.arange(80, dtype=np.int64))
        q = Table(k=rng.integers(-10, 520, size=200))
        out = rt.predecessor(q, "k", data, "k", {"v": "v"}, {"v": -5})
        assert rt.planner.log.nodes[-1].physical in ("direct-address",
                                                     "dense-gather")
        eo = ref.predecessor(q, "k", data, "k", {"v": "v"}, {"v": -5})
        assert_tables_bitwise(out, eo)

    def test_duplicate_first_wins_matches_eager(self, rng):
        """check_unique=False + duplicate keys: searchsorted-left picks
        the first duplicate; direct addressing must agree."""
        rt, ref = planned_rt(), eager_rt()
        dk = np.sort(rng.integers(0, 30, size=60))  # many duplicates
        data = Table(k=dk, v=np.arange(60, dtype=np.int64))
        q = Table(k=rng.integers(0, 35, size=100))
        out = rt.lookup(q, ("k",), data, ("k",), {"v": "v"},
                        default={"v": -1}, check_unique=False)
        eo = ref.lookup(q, ("k",), data, ("k",), {"v": "v"},
                        default={"v": -1}, check_unique=False)
        assert_tables_bitwise(out, eo)

    def test_dup_check_elided_on_second_lookup(self, rng):
        rt = planned_rt()
        data = Table(k=np.sort(rng.choice(1000, size=50, replace=False)),
                     v=np.arange(50, dtype=np.int64))
        q = Table(k=rng.integers(0, 1000, size=20))
        rt.lookup(q, ("k",), data, ("k",), {"v": "v"}, default={"v": -1})
        rt.lookup(q, ("k",), data, ("k",), {"v": "v"}, default={"v": -1})
        notes = [n.note for n in rt.planner.log.nodes if n.op == "lookup"]
        assert "dup-check elided" in notes[1]

    def test_with_cols_overwriting_key_invalidates_sortedness(self, rng):
        """Regression: replacing a sorted key column on a lazy sort
        output must drop the table's sorted_by fact — otherwise a later
        join trusts stale sortedness and answers from unsorted data."""
        rt, ref = planned_rt(), eager_rt()
        t = Table(k=rng.integers(0, 50, size=40), v=rng.standard_normal(40))
        s = rt.sort(t, ("k",))
        unsorted = rng.permutation(np.arange(40, dtype=np.int64))
        s2 = s.with_cols(k=unsorted)
        q = Table(k=rng.integers(0, 40, size=25))
        out = rt.lookup(q, ("k",), s2, ("k",), {"v": "v"},
                        default={"v": -1.0})
        es = ref.sort(t, ("k",)).with_cols(k=unsorted)
        eo = ref.lookup(q, ("k",), es, ("k",), {"v": "v"},
                        default={"v": -1.0})
        assert_tables_bitwise(out, eo)

    def test_rename_collision_drops_props(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 50, size=20), v=rng.integers(0, 5, size=20))
        s = rt.sort(t, ("k",))
        collided = s.rename({"v": "k"})  # two columns mapped onto "k"
        assert rt.planner.props_of(collided) is None or \
            rt.planner.props_of(collided).sorted_by is None

    def test_address_table_reused_across_joins(self, rng):
        rt = planned_rt()
        data = Table(k=np.sort(rng.choice(400, size=50, replace=False)),
                     v=np.arange(50, dtype=np.int64))
        qa = Table(k=rng.integers(0, 400, size=30))
        qb = Table(k=rng.integers(0, 400, size=30))
        rt.lookup(qa, ("k",), data, ("k",), {"v": "v"}, default={"v": -1})
        rt.lookup(qb, ("k",), data, ("k",), {"v": "v"}, default={"v": -1})
        nodes = [n for n in rt.planner.log.nodes if n.op == "lookup"]
        assert not nodes[0].reuse and nodes[1].reuse


class TestRandomizedPrimitiveEquivalence:
    """Planned vs eager, bitwise (values and dtypes), on random tables."""

    @pytest.mark.parametrize("seed", range(6))
    def test_join_sweep(self, seed):
        rng = np.random.default_rng(seed)
        rt, ref = planned_rt(), eager_rt()
        nd = int(rng.integers(0, 80))
        nq = int(rng.integers(0, 120))
        dk = np.sort(rng.choice(3000, size=nd, replace=False)) \
            if rng.random() < 0.5 else rng.choice(3000, size=nd, replace=False)
        data = Table(k=dk.astype(np.int64),
                     f=rng.standard_normal(nd),
                     i=rng.integers(0, 9, size=nd))
        q = Table(k=rng.integers(0, 3200, size=nq))
        kw = dict(default={"f": -1.5, "i": -1})
        po = rt.lookup(q, ("k",), data, ("k",), {"f": "f", "i": "i"}, **kw)
        eo = ref.lookup(q, ("k",), data, ("k",), {"f": "f", "i": "i"}, **kw)
        assert_tables_bitwise(po, eo)
        pp = rt.predecessor(q, "k", data, "k", {"f": "f"}, {"f": float("-inf")})
        ep = ref.predecessor(q, "k", data, "k", {"f": "f"}, {"f": float("-inf")})
        assert_tables_bitwise(pp, ep)
        assert rt.rounds == ref.rounds

    @pytest.mark.parametrize("seed", range(4))
    def test_sort_reduce_scan_sweep(self, seed):
        rng = np.random.default_rng(100 + seed)
        rt, ref = planned_rt(), eager_rt()
        n = int(rng.integers(1, 150))
        t = Table(k=rng.integers(0, 12, size=n),
                  v=rng.standard_normal(n))
        ps = rt.sort(t, ("k",))
        es = ref.sort(t, ("k",))
        ps._materialize()
        assert_tables_bitwise(Table._wrap(dict(ps._cols)), es)
        pr = rt.reduce_by_key(t, ("k",), {"s": ("v", "sum"),
                                          "m": ("v", "min")})
        er = ref.reduce_by_key(t, ("k",), {"s": ("v", "sum"),
                                           "m": ("v", "min")})
        assert_tables_bitwise(pr, er)
        np.testing.assert_array_equal(
            rt.scan(es, "v", "sum", by=("k",), exclusive=True),
            ref.scan(es, "v", "sum", by=("k",), exclusive=True),
        )
        assert rt.scalar(t, "v", "max") == ref.scalar(t, "v", "max")
        assert rt.rounds == ref.rounds


# -- lazy tables and flush points ---------------------------------------------


class TestLazyFlushPoints:
    def test_sort_defers_until_column_access(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 50, size=40), v=rng.standard_normal(40))
        out = rt.sort(t, ("k",))
        assert isinstance(out, LazyTable)
        assert out.plan_node.status == "pending"
        assert len(out) == 40 and out.words == 80          # no execution
        assert set(out.columns) == {"k", "v"}
        out.col("v")                                       # flush point
        assert out.plan_node.status == "executed"

    def test_phase_exit_flushes(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 50, size=16))
        with rt.phase("p"):
            out = rt.sort(t, ("k",))
            assert out.plan_node.status == "pending"
        assert out.plan_node.status in ("executed", "elided")

    def test_scalar_read_flushes(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 50, size=16))
        out = rt.sort(t, ("k",))
        rt.scalar(Table(x=np.ones(3, dtype=np.int64)), "x", "sum")
        assert out.plan_node.status in ("executed", "elided")

    def test_lazy_derivations_stay_lazy(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 50, size=8), v=rng.standard_normal(8))
        out = rt.sort(t, ("k",))
        derived = out.with_cols(extra=np.arange(8, dtype=np.int64))
        sel = derived.select(["k", "extra"])
        assert out.plan_node.status == "pending"
        assert set(sel.columns) == {"k", "extra"}
        assert len(sel) == 8
        np.testing.assert_array_equal(np.sort(t.col("k")), sel.col("k"))

    def test_concat_forces(self, rng):
        rt = planned_rt()
        t = Table(k=rng.integers(0, 50, size=8))
        out = rt.sort(t, ("k",))
        cat = Table.concat([out, Table(k=np.array([99], dtype=np.int64))])
        assert len(cat) == 9
        assert out.plan_node.status in ("executed", "elided")

    def test_error_timing_at_logical_call_site(self):
        rt = planned_rt()
        with pytest.raises(KeyPackingError):
            rt.sort(Table(a=[1.5]), ("a",))
        with pytest.raises(ProtocolError):
            rt.lookup(Table(k=[1]), ("k",), Table(k=[1, 1], v=[1, 2]),
                      ("k",), {"v": "v"})
        with pytest.raises(ProtocolError):
            rt.lookup(Table(k=[9]), ("k",), Table(k=[1], v=[1]), ("k",),
                      {"v": "v"})

    def test_expand_join_identical_planned_vs_eager(self, rng):
        rt, ref = planned_rt(), eager_rt()
        q = Table(g=rng.integers(0, 8, size=20), tag=np.arange(20))
        d = Table(g=rng.integers(0, 8, size=50), val=rng.standard_normal(50))
        po = rt.expand_join(q, ("g",), d, ("g",), {"val": "val"},
                            carry=("tag",))
        eo = ref.expand_join(q, ("g",), d, ("g",), {"val": "val"},
                             carry=("tag",))
        assert_tables_bitwise(po._materialize(), eo)
        assert rt.rounds == ref.rounds
