"""S23 streaming dynamic-graph subsystem: batches, splices, generations.

The load-bearing claims:

* ``InstanceUpdater.apply_batch`` is *bit-identical* to a cold rebuild
  from an empty store after any batch — non-tree-only batches take the
  spliced scoped path, tree-affecting ones replay honestly, and both
  must produce the exact oracle a fresh pipeline run would;
* ``classify`` handles its boundary cases (bridge tree edges, a
  non-tree edge lowered exactly onto its path-max, no-ops on covering
  minimisers) the way a brute-force rebuild says it must;
* out-of-range wire edge ids are a structured ``bad_request``, not an
  ``IndexError`` (satellite: hardened write path);
* re-publishing an identical snapshot is a no-op rename — same digest,
  same path, nothing unlinked (satellite: content-addressed handoff);
* the :class:`StreamIngestor` coalesces concurrent wire requests into
  one generation swap, sheds past ``depth``, and keeps serving reads
  that are bit-consistent with the generation they report.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import known_mst_instance
from repro.oracle import SensitivityOracle
from repro.pipeline import ArtifactStore, run_sensitivity
from repro.service import (
    InstanceUpdater,
    OracleShard,
    SensitivityService,
    ServiceClient,
    ServiceConfig,
    StreamIngestor,
    plan_shards,
)


def run(coro):
    return asyncio.run(coro)


def make_graph(n=240, seed=11, shape="random"):
    g, _ = known_mst_instance(shape, n, extra_m=2 * n, rng=seed)
    return g


async def started_service(graph, name="default", **cfg_kw):
    cfg_kw.setdefault("shards", 3)
    cfg_kw.setdefault("batch_window_s", 0.001)
    svc = SensitivityService(ServiceConfig(**cfg_kw))
    svc.add_instance(name, graph)
    await svc.start()
    return svc


def cold_oracle(g):
    """Brute-force reference: full pipeline from an empty store."""
    result, _run = run_sensitivity(g, engine="local", oracle_labels=True,
                                   store=ArtifactStore())
    return SensitivityOracle.from_result(g, result)


def assert_oracle_identical(a, b):
    np.testing.assert_array_equal(a.w, b.w)
    np.testing.assert_array_equal(a.tree_mask, b.tree_mask)
    np.testing.assert_array_equal(a.threshold, b.threshold)
    np.testing.assert_array_equal(a.sens, b.sens)
    np.testing.assert_array_equal(a.cover_edge, b.cover_edge)


def make_shards(up, k=2):
    specs = plan_shards(up.graph.m, k)
    return [OracleShard(spec, orc, generation=up.generation)
            for spec, orc in zip(specs, up.shard_oracles(len(specs)))]


def heavy_ops(g, k):
    hi = float(g.w.max())
    return [{"kind": "add", "u": j % g.n, "v": (j * 7 + 1) % g.n
             if (j * 7 + 1) % g.n != j % g.n else (j + 1) % g.n,
             "weight": hi + 1 + j} for j in range(k)]


class TestApplyBatchBitIdentity:
    """The tentpole acceptance bar: incremental == cold, bit for bit."""

    def test_churn_cycle_matches_cold_rebuild(self):
        g = make_graph()
        up = InstanceUpdater.build("t", g)
        gen0 = up.generation

        # 1. heavy adds: non-tree only → spliced scoped replay
        r1 = up.apply_batch(heavy_ops(up.graph, 8))
        assert r1.action == "rebuilt" and r1.scoped
        assert r1.stages_spliced == 5 and not r1.tree_affected
        assert r1.m == g.m + 8 and len(r1.added_ids) == 8
        assert_oracle_identical(up.oracle, cold_oracle(up.graph))

        # 2. reprice two of them heavier: still non-tree only
        r2 = up.apply_batch([
            {"kind": "reprice", "edge": r1.added_ids[0],
             "weight": float(up.graph.w.max()) + 50},
            {"kind": "reprice", "edge": r1.added_ids[1],
             "weight": float(up.graph.w.max()) + 60},
        ])
        assert r2.action == "rebuilt" and r2.scoped
        assert_oracle_identical(up.oracle, cold_oracle(up.graph))

        # 3. remove the added edges again
        r3 = up.apply_batch([{"kind": "remove", "edge": e}
                             for e in r1.added_ids])
        assert r3.action == "rebuilt" and r3.scoped
        assert r3.m == g.m and len(r3.removed_ids) == 8
        assert_oracle_identical(up.oracle, cold_oracle(up.graph))

        # 4. a cheap add that swaps the tree: the honest full path
        r4 = up.apply_batch([{"kind": "add", "u": 0, "v": g.n // 2,
                              "weight": float(up.graph.w.min()) / 2}])
        assert r4.action == "rebuilt" and r4.tree_affected and not r4.scoped
        assert r4.stages_spliced == 0
        assert_oracle_identical(up.oracle, cold_oracle(up.graph))

        assert up.generation == gen0 + 4  # one swap per batch, exactly

    def test_all_rejected_batch_swaps_nothing(self):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g)
        before = cold_oracle(up.graph)
        r = up.apply_batch([{"kind": "remove", "edge": up.graph.m + 3},
                            {"kind": "frobnicate"}])
        assert r.action == "rejected" and r.n_applied == 0
        assert len(r.rejected_ops) == 2
        assert up.generation == 0
        assert_oracle_identical(up.oracle, before)

    def test_mixed_batch_reports_per_op_rejections(self):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g)
        ops = heavy_ops(up.graph, 2) + [{"kind": "remove", "edge": -4}]
        r = up.apply_batch(ops)
        assert r.action == "rebuilt" and r.n_applied == 2
        assert r.rejected_ops and "out of range" in r.rejected_ops[0][1]
        assert_oracle_identical(up.oracle, cold_oracle(up.graph))


class TestClassifyBoundaries:
    """Satellite: classify's edge cases, pinned by brute-force rebuild."""

    def test_bridge_tree_edge_has_infinite_threshold_and_patches(self):
        g, _ = known_mst_instance("random", 30, extra_m=2, rng=1)
        up = InstanceUpdater.build("t", g)
        bridges = np.flatnonzero(g.tree_mask & np.isinf(up.oracle.threshold))
        assert len(bridges), "fixture needs a bridge"
        e = int(bridges[0])
        new_w = float(g.w[e]) + 100.0  # nothing covers it: any raise holds
        assert up.classify(e, new_w) == "patched"
        shards = make_shards(up)
        rep = up.apply(shards, e, new_w)
        assert rep.action == "patched" and up.generation == 0
        # brute force agrees: the tree is unmoved, the oracle identical
        ref = cold_oracle(up.graph)
        assert bool(ref.tree_mask[e])
        assert_oracle_identical(up.oracle, ref)

    def test_nontree_lowered_exactly_to_pathmax_stays_out(self):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g)
        nontree = np.flatnonzero(~g.tree_mask)
        # strict drop: threshold (== path-max) strictly below the weight
        cand = nontree[up.oracle.threshold[nontree] < up.oracle.w[nontree]]
        e = int(cand[0])
        thr = float(up.oracle.threshold[e])
        # the cycle rule is non-strict: landing exactly on the path-max
        # survives, but ties do NOT enter the tree — a rebuild, after
        # which brute force must keep the same tree
        assert up.classify(e, thr) == "rebuilt"
        rep = up.apply(make_shards(up), e, thr)
        assert rep.action == "rebuilt" and up.generation == 1
        assert not bool(up.graph.tree_mask[e])
        ref = cold_oracle(up.graph)
        assert not bool(ref.tree_mask[e])
        assert_oracle_identical(up.oracle, ref)

    def test_noop_on_covering_minimiser_patches(self):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g)
        covering = np.flatnonzero(~g.tree_mask & up.oracle.covering_edges())
        assert len(covering), "fixture needs a covering minimiser"
        e = int(covering[0])
        old = float(up.graph.w[e])
        assert up.classify(e, old) == "patched"  # no-op, even on a minimiser
        rep = up.apply(make_shards(up), e, old)
        assert rep.action == "patched" and up.generation == 0
        assert_oracle_identical(up.oracle, cold_oracle(up.graph))
        # ...but actually *lowering* it must rebuild: it is the recorded
        # minimiser of some tree edge's replacement, so a lower price
        # changes that tree edge's sensitivity
        lower = old - 0.5 * (old - float(up.oracle.threshold[e]))
        if lower > float(up.oracle.threshold[e]):
            assert up.classify(e, lower) == "rebuilt"


class TestBadRequestHardening:
    """Satellite: out-of-range wire ids are structured, never IndexError."""

    def test_apply_raises_structured_bad_request(self):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g)
        shards = make_shards(up)
        for bad in (-1, up.graph.m, up.graph.m + 7):
            with pytest.raises(ServiceError) as ei:
                up.apply(shards, bad, 1.0)
            assert ei.value.kind == "bad_request"
            assert "out of range" in str(ei.value)
        assert up.generation == 0  # nothing applied

    def test_wire_update_answers_structured_error(self):
        async def scenario():
            svc = await started_service(make_graph(n=120))
            client = ServiceClient(service=svc)
            try:
                resp = await client.update(-1, 1.0)
                assert resp["ok"] is False
                assert "out of range" in resp["error"]
                resp = await client.update(10**9, 1.0)
                assert resp["ok"] is False
            finally:
                await svc.stop()
        run(scenario())


class TestSnapshotRepublish:
    """Satellite: identical content re-publish is a no-op rename."""

    def test_identical_republish_keeps_path_and_file(self, tmp_path):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g, mmap_dir=str(tmp_path))
        p1 = up.publish_snapshot()
        d1 = up.snapshot_digest
        p2 = up.publish_snapshot()
        assert p2 == p1 and up.snapshot_digest == d1
        assert os.path.exists(p1)  # the old snapshot was NOT unlinked
        # exactly one non-temp snapshot on disk
        files = [f for f in os.listdir(tmp_path) if not f.startswith(".")]
        assert files == [os.path.basename(p1)]

    def test_changed_content_supersedes_old_snapshot(self, tmp_path):
        g = make_graph(n=120)
        up = InstanceUpdater.build("t", g, mmap_dir=str(tmp_path))
        p1 = up.publish_snapshot()
        up.apply_batch(heavy_ops(up.graph, 2))
        p2 = up.publish_snapshot()
        assert p2 != p1
        assert not os.path.exists(p1)  # superseded snapshot unlinked
        assert os.path.exists(p2)


class SlowApplyService:
    """Stub service whose structural apply blocks on a gate."""

    def __init__(self):
        self.gate = asyncio.Event()
        self.calls = []

    async def _apply_structural(self, instance, ops):
        self.calls.append(list(ops))
        await self.gate.wait()
        return {"ok": True, "n_applied": len(ops)}


class TestIngestor:
    def test_rejects_empty_and_malformed(self):
        async def scenario():
            ing = StreamIngestor(SlowApplyService(), "x")
            for bad in ([], None, "ops", 7):
                resp = await ing.submit(bad)
                assert resp["ok"] is False and "non-empty" in resp["error"]
        run(scenario())

    def test_sheds_past_depth_and_recovers(self):
        async def scenario():
            svc = SlowApplyService()
            ing = StreamIngestor(svc, "x", depth=1)
            t1 = asyncio.ensure_future(ing.submit([{"kind": "a"}]))
            for _ in range(3):  # let the drain loop adopt batch 1
                await asyncio.sleep(0)
            t2 = asyncio.ensure_future(ing.submit([{"kind": "b"}]))
            await asyncio.sleep(0)
            # one request pending behind the in-flight apply: full
            shed = await ing.submit([{"kind": "c"}])
            assert shed["ok"] is False and shed["shed"] is True
            assert ing.metrics.shed == 1
            svc.gate.set()
            r1, r2 = await asyncio.gather(t1, t2)
            assert r1["ok"] and r2["ok"]
            assert svc.calls[0] == [{"kind": "a"}]
            assert svc.calls[1] == [{"kind": "b"}]
            await ing.stop()
            # post-stop submissions answer, not hang
            resp = await ing.submit([{"kind": "d"}])
            assert resp["ok"] is False and "stopped" in resp["error"]
        run(scenario())

    def test_exception_in_apply_answers_all_waiters(self):
        class Exploding:
            async def _apply_structural(self, instance, ops):
                raise RuntimeError("boom")

        async def scenario():
            ing = StreamIngestor(Exploding(), "x")
            resp = await ing.submit([{"kind": "a"}])
            assert resp["ok"] is False and "boom" in resp["error"]
            err = StreamIngestor(_ServiceErrorStub(), "x")
            resp = await err.submit([{"kind": "a"}])
            assert resp["ok"] is False
            assert resp["error_kind"] == "bad_request"
        run(scenario())


class _ServiceErrorStub:
    async def _apply_structural(self, instance, ops):
        raise ServiceError("nope", kind="bad_request")


class TestServiceStreaming:
    """The wire path: update_batch through a live sharded service."""

    def test_batch_grows_instance_and_serves_new_edges(self):
        async def scenario():
            g = make_graph()
            svc = await started_service(g)
            client = ServiceClient(service=svc)
            try:
                ops = heavy_ops(g, 6)
                resp = await client.update_batch(ops)
                assert resp["ok"] and resp["action"] == "rebuilt"
                assert resp["scoped"] and resp["generation"] == 1
                assert resp["m"] == g.m + 6
                assert resp["coalesced_requests"] == 1
                desc = svc.describe_instances()["default"]
                assert desc["m"] == g.m + 6 and desc["generation"] == 1
                # shards re-planned over the grown edge space
                assert desc["shards"][-1]["edge_hi"] == g.m + 6
                # the new edges answer point queries, bit-equal to the
                # updater's own oracle
                up = svc.instances["default"].updater
                for e in resp["added_ids"]:
                    got = await client.sensitivity(e)
                    assert got == float(up.oracle.sens[e])
                    assert await client.survives(e, 1e12) is True
                    # dropping strictly below its entry threshold would
                    # pull it into the tree: not MST-preserving
                    thr = float(up.oracle.threshold[e])
                    assert await client.survives(e, thr - 1.0) is False
                # stream metrics surface per instance
                m = svc.metrics()["instances"]["default"]["stream"]
                assert m["batches_applied"] == 1
                assert m["scoped_replays"] == 1 and m["full_replays"] == 0
                # removing them again shrinks the instance
                resp2 = await client.update_batch(
                    [{"kind": "remove", "edge": e}
                     for e in resp["added_ids"]])
                assert resp2["ok"] and resp2["m"] == g.m
                assert resp2["generation"] == 2
            finally:
                await svc.stop()
        run(scenario())

    def test_concurrent_submits_coalesce_into_one_generation(self):
        async def scenario():
            g = make_graph()
            svc = await started_service(g)
            client = ServiceClient(service=svc)
            try:
                hi = float(g.w.max())
                reqs = [client.update_batch(
                    [{"kind": "add", "u": j, "v": j + 19,
                      "weight": hi + 1 + j}]) for j in range(4)]
                resps = await asyncio.gather(*reqs)
                assert all(r["ok"] for r in resps)
                # all four wire requests rode one rebuild
                assert {r["coalesced_requests"] for r in resps} == {4}
                assert {r["generation"] for r in resps} == {1}
                up = svc.instances["default"].updater
                assert up.generation == 1 and up.graph.m == g.m + 4
                m = svc.metrics()["instances"]["default"]["stream"]
                assert m["requests_received"] == 4
                assert m["requests_merged"] == 3
                assert m["batches_applied"] == 1
            finally:
                await svc.stop()
        run(scenario())

    def test_tree_affecting_batch_full_replay_still_consistent(self):
        async def scenario():
            g = make_graph(n=120)
            svc = await started_service(g)
            client = ServiceClient(service=svc)
            try:
                resp = await client.update_batch(
                    [{"kind": "add", "u": 0, "v": g.n // 2,
                      "weight": float(g.w.min()) / 2}])
                assert resp["ok"] and resp["tree_affected"]
                assert resp["scoped"] is False
                up = svc.instances["default"].updater
                assert_oracle_identical(up.oracle, cold_oracle(up.graph))
                new_e = resp["added_ids"][0]
                assert await client.sensitivity(new_e) == \
                    float(up.oracle.sens[new_e])
            finally:
                await svc.stop()
        run(scenario())

    def test_rejected_batch_is_structured_on_the_wire(self):
        async def scenario():
            g = make_graph(n=120)
            svc = await started_service(g)
            client = ServiceClient(service=svc)
            try:
                resp = await client.update_batch(
                    [{"kind": "remove", "edge": g.m + 1}])
                assert resp["ok"] is False
                assert resp["action"] == "rejected"
                assert "out of range" in resp["rejected_ops"][0][1]
                resp = await client.update_batch([])
                assert resp["ok"] is False
                resp = await client.call("update_batch", ops=[{"kind": "x"}],
                                         instance="nope")
                assert resp["ok"] is False
            finally:
                await svc.stop()
        run(scenario())


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
