"""Minimum spanning forest support (Remark 2.4)."""

import numpy as np
import pytest

from repro.baselines import sequential_sensitivity, verify_by_recompute
from repro.core.forest import msf_sensitivity, stitch_components, verify_msf
from repro.errors import ValidationError
from repro.graph.generators import known_mst_instance, perturb_break_mst
from repro.graph.graph import WeightedGraph
from repro.mpc import LocalRuntime


def union_graphs(parts):
    """Disjoint union of graphs, relabelling vertices consecutively."""
    n = 0
    u, v, w, mask = [], [], [], []
    for g in parts:
        u.append(g.u + n)
        v.append(g.v + n)
        w.append(g.w)
        mask.append(g.tree_mask)
        n += g.n
    return WeightedGraph(
        n=n, u=np.concatenate(u), v=np.concatenate(v),
        w=np.concatenate(w), tree_mask=np.concatenate(mask),
    )


def two_component_instance(seed=0):
    g1, _ = known_mst_instance("random", 40, extra_m=80, rng=seed)
    g2, _ = known_mst_instance("caterpillar", 30, extra_m=60, rng=seed + 1)
    return union_graphs([g1, g2])


class TestStitching:
    def test_single_component_passthrough(self):
        g, _ = known_mst_instance("random", 30, extra_m=50, rng=2)
        rt = LocalRuntime()
        aug, anchors, reason = stitch_components(rt, g)
        assert aug is g and len(anchors) == 1 and reason == "ok"

    def test_two_components_linked(self):
        g = two_component_instance()
        rt = LocalRuntime()
        aug, anchors, reason = stitch_components(rt, g)
        assert reason == "ok" and len(anchors) == 2
        assert aug.m == g.m + 1
        assert aug.w[-1] > g.w.max()
        assert aug.tree_mask[-1]

    def test_component_mismatch_detected(self):
        # T misses one component entirely
        g1, _ = known_mst_instance("random", 20, extra_m=30, rng=3)
        g2, _ = known_mst_instance("path", 10, extra_m=10, rng=4)
        bad_mask = g2.tree_mask.copy()
        g2b = WeightedGraph(n=g2.n, u=g2.u, v=g2.v, w=g2.w,
                            tree_mask=np.zeros_like(bad_mask))
        g = union_graphs([g1, g2b])
        rt = LocalRuntime()
        aug, _, reason = stitch_components(rt, g)
        assert aug is None and reason == "forest-components-mismatch"

    def test_cycle_in_forest_detected(self):
        # right edge count but a cycle: components of T differ from G
        g = WeightedGraph.from_edges(
            4,
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)],
            tree_edges=[(0, 1), (1, 2), (0, 2)],
        )
        rt = LocalRuntime()
        aug, _, reason = stitch_components(rt, g)
        assert aug is None


class TestVerifyMSF:
    def test_true_msf_accepted(self):
        g = two_component_instance(5)
        r = verify_msf(g)
        assert r.is_mst

    def test_perturbed_component_rejected(self):
        g1, _ = known_mst_instance("random", 40, extra_m=80, rng=6)
        g2, _ = known_mst_instance("caterpillar", 30, extra_m=60, rng=7)
        bad = union_graphs([g1, perturb_break_mst(g2, rng=7)])
        r = verify_msf(bad)
        assert not r.is_mst
        assert len(r.violating_edges) >= 1
        assert np.all(r.violating_edges < bad.m)
        # the violation lives in the second component's edge range
        assert np.all(r.violating_edges >= g1.m)

    def test_three_components_with_isolated_vertex(self):
        g1, _ = known_mst_instance("binary", 31, extra_m=60, rng=8)
        iso = WeightedGraph(n=1, u=np.empty(0, np.int64),
                            v=np.empty(0, np.int64),
                            w=np.empty(0, np.float64))
        g2, _ = known_mst_instance("star", 20, extra_m=40, rng=9)
        g = union_graphs([g1, iso, g2])
        assert verify_msf(g).is_mst

    def test_connected_input_same_as_verify_mst(self):
        from repro.core.verification import verify_mst

        g, _ = known_mst_instance("random", 50, extra_m=100, rng=10)
        assert verify_msf(g).is_mst == verify_mst(g).is_mst


class TestMSFSensitivity:
    def test_matches_per_component_oracle(self):
        g1, _ = known_mst_instance("random", 40, extra_m=90, rng=11)
        g2, _ = known_mst_instance("binary", 31, extra_m=70, rng=12)
        g = union_graphs([g1, g2])
        r = msf_sensitivity(g)
        o1 = sequential_sensitivity(g1)
        o2 = sequential_sensitivity(g2, root=0)
        want = np.concatenate([o1.sensitivity, o2.sensitivity])
        np.testing.assert_allclose(r.sensitivity, want)

    def test_sensitivity_array_sized_to_original_edges(self):
        g = two_component_instance(13)
        r = msf_sensitivity(g)
        assert len(r.sensitivity) == g.m

    def test_invalid_forest_raises(self):
        g1, _ = known_mst_instance("random", 20, extra_m=40, rng=14)
        mask = g1.tree_mask.copy()
        mask[np.flatnonzero(mask)[0]] = False  # drop a tree edge
        bad = WeightedGraph(n=g1.n, u=g1.u, v=g1.v, w=g1.w, tree_mask=mask)
        with pytest.raises(ValidationError):
            msf_sensitivity(bad)
