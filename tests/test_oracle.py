"""Oracle correctness: brute-force cross-checks against MST recompute.

Every ``survives``/``entry_threshold``/``replacement_edge`` answer is
validated by actually changing the weight and re-running Kruskal
(``seq_mst``), including exact-tie queries and bridge (infinite
sensitivity) edges.
"""

import numpy as np
import pytest

from repro.baselines.seq_mst import kruskal_mst, mst_weight
from repro.core.results import SensitivityResult
from repro.core.sensitivity import mst_sensitivity
from repro.errors import ValidationError
from repro.graph.generators import known_mst_instance
from repro.graph.tree import RootedTree
from repro.oracle import SensitivityOracle, build_oracle

EPS = 0.005


def brute_survives(g, e, x) -> bool:
    """Ground truth: is the flagged tree still an MST with w(e)=x?"""
    w = g.w.copy()
    w[e] = x
    g2 = g.with_weights(w)
    tree_sum = g2.w[g2.tree_mask].sum()
    return bool(np.isclose(tree_sum, mst_weight(g2), rtol=1e-9, atol=1e-9))


def candidate_weights(g, oracle, e):
    """Original weight, both sides of the threshold, the exact tie, and
    far-out extremes."""
    thr = oracle.threshold[e]
    cands = [float(g.w[e]), 1e9, -1e9]
    if np.isfinite(thr):
        cands += [float(thr), float(thr) - EPS, float(thr) + EPS]
    return cands


@pytest.mark.parametrize("shape,seed,mode", [
    ("random", 0, "mst"),
    ("random", 1, "tight"),     # exact ties with the path maximum
    ("caterpillar", 2, "mst"),
    ("binary", 3, "tight"),
])
def test_survives_matches_recompute(shape, seed, mode):
    g, _ = known_mst_instance(shape, 16, extra_m=24, rng=seed, mode=mode)
    oracle = build_oracle(g)
    for e in range(g.m):
        for x in candidate_weights(g, oracle, e):
            assert oracle.survives(e, x) == brute_survives(g, e, x), \
                f"edge {e} (tree={bool(g.tree_mask[e])}) at weight {x}"


def test_exact_tie_queries_survive():
    g, _ = known_mst_instance("random", 20, extra_m=30, rng=5, mode="tight")
    oracle = build_oracle(g)
    # "tight" mode plants non-tree edges at exactly their path maximum:
    # zero sensitivity, and a query at the threshold itself must survive
    nt = np.flatnonzero(~g.tree_mask)
    tied = nt[oracle.sensitivity_bulk(nt) == 0.0]
    assert len(tied) > 0
    for e in tied:
        assert oracle.entry_threshold(e) == g.w[e]
        assert oracle.survives(e, float(g.w[e]))
        assert brute_survives(g, int(e), float(g.w[e]))


def test_bridges_have_infinite_sensitivity():
    # only 3 extra edges on 30 vertices: most tree edges are uncovered
    g, _ = known_mst_instance("random", 30, extra_m=3, rng=7)
    oracle = build_oracle(g)
    tree_idx = np.flatnonzero(g.tree_mask)
    bridges = [int(e) for e in tree_idx
               if not np.isfinite(oracle.sensitivity(e))]
    assert bridges, "instance should contain bridges"
    for e in bridges:
        assert oracle.replacement_edge(e) is None
        assert oracle.survives(e, 1e12)
        assert brute_survives(g, e, 1e12)


def test_replacement_edge_is_cheapest_cover():
    g, _ = known_mst_instance("random", 18, extra_m=40, rng=11)
    r = mst_sensitivity(g)
    oracle = SensitivityOracle.from_result(g, r)
    tu, tv, tw = g.tree_edges()
    tree = RootedTree.from_edges(g.n, tu, tv, tw, root=r.root)
    nt_idx = np.flatnonzero(~g.tree_mask)

    def covers(f, child) -> bool:
        au = tree.is_ancestor(np.array([child]), np.array([g.u[f]]))[0]
        av = tree.is_ancestor(np.array([child]), np.array([g.v[f]]))[0]
        return bool(au) != bool(av)

    for e in np.flatnonzero(g.tree_mask):
        child = int(g.u[e] if r.parent[g.u[e]] == g.v[e] else g.v[e])
        cover_ws = [g.w[f] for f in nt_idx if covers(f, child)]
        f = oracle.replacement_edge(int(e))
        if not cover_ws:
            assert f is None
            continue
        assert f is not None and not g.tree_mask[f]
        assert covers(f, child)
        assert g.w[f] == min(cover_ws) == oracle.threshold[e]
        # pricing e past its threshold really swaps in an edge of that weight
        w2 = g.w.copy()
        w2[e] = oracle.threshold[e] + 1.0
        new_mst, new_total = kruskal_mst(g.with_weights(w2))
        old_tree_sum = g.w[g.tree_mask].sum()
        expected = old_tree_sum - g.w[e] + oracle.threshold[e]
        assert np.isclose(new_total, expected, rtol=1e-9, atol=1e-9)
        assert e not in set(new_mst.tolist())


def test_bulk_agrees_with_point_queries():
    g, _ = known_mst_instance("binary", 63, extra_m=120, rng=13)
    oracle = build_oracle(g)
    rng = np.random.default_rng(42)
    edges = rng.integers(0, g.m, size=500)
    weights = rng.uniform(-1.0, 3.0, size=500)
    bulk = oracle.survives_bulk(edges, weights)
    point = np.array([oracle.survives(int(e), float(x))
                      for e, x in zip(edges, weights)])
    np.testing.assert_array_equal(bulk, point)
    np.testing.assert_array_equal(oracle.sensitivity_bulk(edges),
                                  g.w[edges] * 0 + oracle.sens[edges])


def test_query_validation_errors():
    g, _ = known_mst_instance("random", 12, extra_m=10, rng=1)
    oracle = build_oracle(g)
    tree_e = int(np.flatnonzero(g.tree_mask)[0])
    nontree_e = int(np.flatnonzero(~g.tree_mask)[0])
    with pytest.raises(ValidationError):
        oracle.replacement_edge(nontree_e)
    with pytest.raises(ValidationError):
        oracle.entry_threshold(tree_e)
    with pytest.raises(IndexError):
        oracle.survives(g.m, 1.0)
    with pytest.raises(IndexError):
        oracle.survives_bulk([0, -1], [1.0, 1.0])
    with pytest.raises(ValidationError):
        oracle.survives_bulk([0, 1], [1.0])


def test_oracle_rejects_foreign_result():
    g1, _ = known_mst_instance("random", 20, extra_m=30, rng=1)
    g2, _ = known_mst_instance("random", 20, extra_m=30, rng=2)
    r1 = mst_sensitivity(g1)
    with pytest.raises(ValidationError):
        SensitivityOracle.from_result(g2, r1)


def test_save_load_roundtrip(tmp_path):
    g, _ = known_mst_instance("caterpillar", 40, extra_m=80, rng=3)
    oracle = build_oracle(g)
    path = tmp_path / "oracle.npz"
    oracle.save(path)
    back = SensitivityOracle.load(path)
    assert back.precompute_rounds == oracle.precompute_rounds
    rng = np.random.default_rng(0)
    edges = rng.integers(0, g.m, 200)
    weights = rng.uniform(0, 2, 200)
    np.testing.assert_array_equal(oracle.survives_bulk(edges, weights),
                                  back.survives_bulk(edges, weights))
    np.testing.assert_array_equal(oracle.cover_edge, back.cover_edge)


def test_oracle_from_rehydrated_result(tmp_path):
    """SensitivityResult.save → load → oracle must answer identically."""
    g, _ = known_mst_instance("random", 30, extra_m=45, rng=9)
    r = mst_sensitivity(g)
    path = tmp_path / "sens.npz"
    r.save(path)
    r2 = SensitivityResult.load(path)
    o1 = SensitivityOracle.from_result(g, r)
    o2 = SensitivityOracle.from_result(g, r2)
    np.testing.assert_array_equal(o1.threshold, o2.threshold)
    np.testing.assert_array_equal(o1.cover_edge, o2.cover_edge)
    assert r2.rounds == r.rounds
    assert r2.report.rounds_total == r.report.rounds_total
    assert r2.report.rounds_by_phase == r.report.rounds_by_phase


def test_mmap_load_matches_built_oracle(tmp_path):
    """Uncompressed save + mmap load: zero-copy views, identical answers."""
    g, _ = known_mst_instance("random", 60, extra_m=120, rng=6)
    oracle = build_oracle(g)
    path = tmp_path / "oracle-mmap.npz"
    oracle.save(path, compressed=False)
    mapped = SensitivityOracle.load(path, mmap_mode="r")
    # arrays are genuinely memory-mapped, not copies
    assert isinstance(mapped.threshold, np.memmap) \
        or isinstance(mapped.threshold.base, np.memmap)
    assert not mapped.w.flags.writeable
    # loaded-vs-built answer identity across every query type
    rng = np.random.default_rng(4)
    edges = rng.integers(0, g.m, 500)
    weights = rng.uniform(0, 2, 500)
    np.testing.assert_array_equal(oracle.survives_bulk(edges, weights),
                                  mapped.survives_bulk(edges, weights))
    np.testing.assert_array_equal(oracle.sensitivity_bulk(edges),
                                  mapped.sensitivity_bulk(edges))
    tree_idx = np.flatnonzero(g.tree_mask)
    nt_idx = np.flatnonzero(~g.tree_mask)
    np.testing.assert_array_equal(oracle.replacement_edge_bulk(tree_idx),
                                  mapped.replacement_edge_bulk(tree_idx))
    np.testing.assert_array_equal(oracle.entry_threshold_bulk(nt_idx),
                                  mapped.entry_threshold_bulk(nt_idx))
    for e in [int(tree_idx[0]), int(nt_idx[0])]:
        assert mapped.sensitivity(e) == oracle.sensitivity(e)
    # N consumers map the same file (the shard-worker sharing story)
    other = SensitivityOracle.load(path, mmap_mode="r")
    np.testing.assert_array_equal(mapped.threshold, other.threshold)


def test_mmap_load_of_compressed_snapshot_falls_back(tmp_path):
    g, _ = known_mst_instance("binary", 40, extra_m=60, rng=7)
    oracle = build_oracle(g)
    path = tmp_path / "oracle-z.npz"
    oracle.save(path)  # compressed (the default)
    back = SensitivityOracle.load(path, mmap_mode="r")  # eager fallback
    np.testing.assert_array_equal(back.threshold, oracle.threshold)
    np.testing.assert_array_equal(back.cover_edge, oracle.cover_edge)


def test_reprice_patches_weight_and_slack():
    g, _ = known_mst_instance("random", 50, extra_m=100, rng=8)
    oracle = build_oracle(g)
    nt = int(np.flatnonzero(~g.tree_mask)[0])
    thr = oracle.entry_threshold(nt)
    oracle.reprice(nt, thr + 0.5)
    assert oracle.w[nt] == thr + 0.5
    assert oracle.sensitivity(nt) == 0.5
    tree = int(np.flatnonzero(g.tree_mask)[0])
    mc = float(oracle.threshold[tree])
    oracle.reprice(tree, mc - 0.25)
    assert abs(oracle.sensitivity(tree) - 0.25) < 1e-12


def test_reprice_thaws_readonly_arrays(tmp_path):
    g, _ = known_mst_instance("random", 40, extra_m=80, rng=9)
    oracle = build_oracle(g)
    path = tmp_path / "oracle-ro.npz"
    oracle.save(path, compressed=False)
    mapped = SensitivityOracle.load(path, mmap_mode="r")
    nt = int(np.flatnonzero(~g.tree_mask)[0])
    thr = mapped.entry_threshold(nt)
    mapped.reprice(nt, thr + 1.0)  # copy-on-write, not a crash
    assert mapped.sensitivity(nt) == 1.0
    assert mapped.w.flags.writeable
    # thresholds stay mapped (only w/sens thawed)
    assert not mapped.threshold.flags.writeable
