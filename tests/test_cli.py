"""CLI smoke and behaviour tests (python -m repro ...)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestVerifyCommand:
    def test_accepts_true_mst(self):
        code, text = run_cli(["verify", "--shape", "binary", "--n", "127",
                              "--extra-m", "200"])
        assert code == 0
        assert "is MST:   True" in text

    def test_break_mst_reports_witness(self):
        code, text = run_cli(["verify", "--shape", "random", "--n", "100",
                              "--break-mst"])
        assert code == 0
        assert "is MST:   False" in text
        assert "witness edges" in text

    def test_oracle_labels_flag(self):
        _, full = run_cli(["verify", "--n", "100"])
        _, orc = run_cli(["verify", "--n", "100", "--oracle-labels"])
        assert "substrate 0" not in full
        rounds_full = int(full.split("rounds:   ")[1].split(" ")[0])
        rounds_orc = int(orc.split("rounds:   ")[1].split(" ")[0])
        assert rounds_orc < rounds_full

    def test_distributed_engine(self):
        code, text = run_cli(["verify", "--shape", "star", "--n", "40",
                              "--extra-m", "60", "--engine", "distributed",
                              "--delta", "0.6"])
        assert code == 0 and "is MST:   True" in text


class TestSensitivityCommand:
    def test_lists_fragile_edges(self):
        code, text = run_cli(["sensitivity", "--shape", "caterpillar",
                              "--n", "120", "--top", "4"])
        assert code == 0
        assert "most fragile tree edges" in text
        assert "slack" in text

    def test_bridge_count_reported(self):
        code, text = run_cli(["sensitivity", "--n", "80", "--extra-m", "3"])
        assert code == 0 and "bridges" in text


class TestExplainCommand:
    def test_sensitivity_plan_elides_sorts(self):
        """Acceptance: the sensitivity pipeline's printed plan must show
        at least one elided sort (the optimizer firing end-to-end)."""
        code, text = run_cli(["explain", "--kind", "sensitivity",
                              "--n", "300"])
        assert code == 0
        assert "logical -> physical plan by phase" in text
        assert "sort(s) elided" in text
        assert "join(s) fused with reduce" in text
        totals = text.split("totals:")[1]
        elided = int(totals.split(" sorts elided")[0].split(",")[-1].strip())
        assert elided >= 1
        assert "direct addressing" in totals

    def test_full_listing_shows_nodes(self):
        code, text = run_cli(["explain", "--kind", "verify", "--n", "100",
                              "--full"])
        assert code == 0
        assert "plan nodes:" in text
        assert "core/clustering" in text

    def test_distributed_record_mode(self):
        code, text = run_cli(["explain", "--kind", "verify", "--shape",
                              "star", "--n", "40", "--extra-m", "60",
                              "--engine", "distributed", "--delta", "0.6"])
        assert code == 0
        assert "sample-sort" in text
        assert "0 joins answered by direct addressing" in text


class TestProfileCommand:
    def test_local_profile_lists_primitives(self):
        code, text = run_cli(["profile", "--kind", "sensitivity",
                              "--n", "120"])
        assert code == 0
        assert "per-primitive wall attribution" in text
        for prim in ("sort", "lookup", "scalar"):
            assert prim in text
        assert "(outside primitives)" in text

    def test_distributed_profile_reports_transport(self):
        code, text = run_cli(["profile", "--kind", "verify", "--shape",
                              "star", "--n", "40", "--extra-m", "60",
                              "--engine", "distributed", "--delta", "0.6"])
        assert code == 0
        assert "transport rounds" in text
        assert "is_mst=True" in text

    def test_break_mst_profiles_failing_verify(self):
        code, text = run_cli(["profile", "--kind", "verify", "--n", "100",
                              "--break-mst"])
        assert code == 0
        assert "is_mst=False" in text


class TestPipelineCommand:
    def test_plan_only_lists_stages(self):
        code, text = run_cli(["pipeline", "--kind", "sensitivity",
                              "--n", "80", "--plan-only"])
        assert code == 0
        for stage in ("validate", "clustering", "sens-finalize"):
            assert stage in text
        assert "sensitivity done" not in text

    def test_run_reports_execution(self):
        code, text = run_cli(["pipeline", "--kind", "verify", "--n", "80"])
        assert code == 0
        assert "verification done: is_mst=True" in text
        assert "stages executed: 10" in text

    def test_cache_dir_warm_start(self, tmp_path):
        cache = str(tmp_path / "cache")
        code1, cold = run_cli(["pipeline", "--kind", "verify", "--n", "80",
                               "--cache-dir", cache])
        code2, warm = run_cli(["pipeline", "--kind", "verify", "--n", "80",
                               "--cache-dir", cache])
        assert code1 == code2 == 0
        assert "replayed from cache: 0" in cold and "miss" in cold
        assert "replayed from cache: 10" in warm and "hit" in warm

        def rounds_of(text):
            return text.split("rounds=")[1].split(" ")[0]

        assert rounds_of(cold) == rounds_of(warm)


class TestBatchCommand:
    def test_cache_dir_shares_stages(self, tmp_path):
        code, text = run_cli([
            "batch", "--jobs", "2", "--n", "60", "--processes", "1",
            "--broken", "0", "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 0

    def test_mixed_workload_end_to_end(self):
        code, text = run_cli(["batch", "--jobs", "6", "--processes", "1",
                              "--n", "60"])
        assert code == 0
        assert "aggregated cost table" in text
        assert "sensitivity" in text and "verify" in text
        assert "6 total, 6 ok, 0 failed" in text

    def test_json_format_stdout_is_pure_json(self, capsys):
        import json

        code, text = run_cli(["batch", "--jobs", "4", "--processes", "1",
                              "--n", "50", "--format", "json"])
        assert code == 0
        payload = json.loads(text)  # no trailing human summary on stdout
        assert len(payload["jobs"]) == 4
        assert all(rec["ok"] for rec in payload["jobs"])
        assert "aggregated cost table" in capsys.readouterr().err

    def test_csv_to_file(self, tmp_path):
        out_file = tmp_path / "report.csv"
        code, text = run_cli(["batch", "--jobs", "4", "--processes", "1",
                              "--n", "50", "--format", "csv",
                              "--out", str(out_file)])
        assert code == 0
        lines = out_file.read_text().strip().split("\n")
        assert lines[0].startswith("job_id,kind,shape")
        assert len(lines) == 5
        assert str(out_file) in text

    def test_bad_workload_args_exit_cleanly(self, capsys):
        assert run_cli(["batch", "--jobs", "0"])[0] == 2
        assert run_cli(["batch", "--kinds", ","])[0] == 2
        assert run_cli(["batch", "--shapes", ""])[0] == 2
        assert run_cli(["batch", "--kinds", "bogus"])[0] == 2
        assert "error:" in capsys.readouterr().err

    def test_persist_oracles(self, tmp_path):
        from repro.oracle import SensitivityOracle

        code, text = run_cli(["batch", "--jobs", "4", "--processes", "1",
                              "--n", "50", "--kinds", "sensitivity",
                              "--persist-oracles", str(tmp_path)])
        assert code == 0
        saved = sorted(tmp_path.glob("oracle_*.npz"))
        assert len(saved) == 4
        oracle = SensitivityOracle.load(saved[0])
        assert oracle.m > 0
        assert "persisted 4 oracles" in text


class TestSweepCommands:
    def test_sweep_prints_fit(self):
        code, text = run_cli(["sweep", "--n", "512",
                              "--diameters", "8,64,256"])
        assert code == 0
        assert "R2=" in text and "core rounds" in text

    def test_lower_bound_both_sides(self):
        code, text = run_cli(["lower-bound", "--sizes", "32,64"])
        assert code == 0
        assert "True" in text and "False" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--shape", "hypercube"])


class TestServeCommand:
    def test_parser_accepts_service_knobs(self):
        args = build_parser().parse_args(
            ["serve", "--shapes", "random,grid", "--n", "300",
             "--shards", "4", "--port", "0", "--window-ms", "1.5",
             "--max-batch", "128", "--queue-depth", "64"]
        )
        assert args.command == "serve"
        assert args.shapes == "random,grid" and args.shards == 4
        assert args.window_ms == 1.5 and args.port == 0

    def test_unknown_shape_exits_cleanly(self, capsys):
        code = main(["serve", "--shapes", "dodecahedron"])
        assert code == 2
        assert "unknown tree shape" in capsys.readouterr().err
