"""CLI smoke and behaviour tests (python -m repro ...)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestVerifyCommand:
    def test_accepts_true_mst(self):
        code, text = run_cli(["verify", "--shape", "binary", "--n", "127",
                              "--extra-m", "200"])
        assert code == 0
        assert "is MST:   True" in text

    def test_break_mst_reports_witness(self):
        code, text = run_cli(["verify", "--shape", "random", "--n", "100",
                              "--break-mst"])
        assert code == 0
        assert "is MST:   False" in text
        assert "witness edges" in text

    def test_oracle_labels_flag(self):
        _, full = run_cli(["verify", "--n", "100"])
        _, orc = run_cli(["verify", "--n", "100", "--oracle-labels"])
        assert "substrate 0" not in full
        rounds_full = int(full.split("rounds:   ")[1].split(" ")[0])
        rounds_orc = int(orc.split("rounds:   ")[1].split(" ")[0])
        assert rounds_orc < rounds_full

    def test_distributed_engine(self):
        code, text = run_cli(["verify", "--shape", "star", "--n", "40",
                              "--extra-m", "60", "--engine", "distributed",
                              "--delta", "0.6"])
        assert code == 0 and "is MST:   True" in text


class TestSensitivityCommand:
    def test_lists_fragile_edges(self):
        code, text = run_cli(["sensitivity", "--shape", "caterpillar",
                              "--n", "120", "--top", "4"])
        assert code == 0
        assert "most fragile tree edges" in text
        assert "slack" in text

    def test_bridge_count_reported(self):
        code, text = run_cli(["sensitivity", "--n", "80", "--extra-m", "3"])
        assert code == 0 and "bridges" in text


class TestSweepCommands:
    def test_sweep_prints_fit(self):
        code, text = run_cli(["sweep", "--n", "512",
                              "--diameters", "8,64,256"])
        assert code == 0
        assert "R2=" in text and "core rounds" in text

    def test_lower_bound_both_sides(self):
        code, text = run_cli(["lower-bound", "--sizes", "32,64"])
        assert code == 0
        assert "True" in text and "False" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--shape", "hypercube"])
