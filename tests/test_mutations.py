"""Exact MST maintenance under batched structural ops.

:func:`repro.graph.mutations.apply_ops` claims to repair the candidate
MST *exactly* for every op kind — the load-bearing property of the
streaming write path (the scoped splice is only sound because the
batch classifier knows, not guesses, whether the tree moved). Every
scenario here pins the repaired tree against Kruskal on the mutated
edge set.
"""

import numpy as np
import pytest

from repro.baselines import kruskal_mst
from repro.graph import WeightedGraph, apply_ops, coalesce_ops
from repro.graph.generators import known_mst_instance


def make_graph(n=80, extra=160, seed=3):
    g, _ = known_mst_instance("random", n, extra_m=extra, rng=seed)
    return g


def assert_exact_mst(g: WeightedGraph):
    """The flagged tree must be *the* minimum spanning tree."""
    idx, weight = kruskal_mst(g)
    assert np.isclose(float(g.w[g.tree_mask].sum()), weight)
    # distinct random weights: the MST is unique, index sets must agree
    if len(np.unique(g.w)) == g.m:
        assert np.array_equal(np.flatnonzero(g.tree_mask), idx)


class TestCoalesce:
    def test_last_op_wins_per_edge(self):
        ops = [
            {"kind": "reprice", "edge": 3, "weight": 1.0},
            {"kind": "reprice", "edge": 3, "weight": 2.0},
            {"kind": "reprice", "edge": 5, "weight": 9.0},
        ]
        out = coalesce_ops(ops)
        assert len(out) == 2
        assert out[0] == {"kind": "reprice", "edge": 3, "weight": 2.0}
        assert out[1]["edge"] == 5

    def test_remove_is_terminal(self):
        ops = [
            {"kind": "remove", "edge": 7},
            {"kind": "reprice", "edge": 7, "weight": 0.5},
        ]
        out = coalesce_ops(ops)
        assert out == [{"kind": "remove", "edge": 7}]

    def test_adds_never_coalesce_and_keep_order(self):
        ops = [
            {"kind": "add", "u": 0, "v": 1, "weight": 5.0},
            {"kind": "remove", "edge": 2},
            {"kind": "add", "u": 1, "v": 2, "weight": 6.0},
        ]
        out = coalesce_ops(ops)
        # edge ops first (first-seen order), then adds in arrival order
        assert [o["kind"] for o in out] == ["remove", "add", "add"]
        assert out[1]["weight"] == 5.0 and out[2]["weight"] == 6.0


class TestApplyOps:
    def test_heavy_adds_stay_nontree(self):
        g = make_graph()
        hi = float(g.w.max())
        ops = [{"kind": "add", "u": i, "v": i + 17, "weight": hi + 1 + i}
               for i in range(6)]
        g2, eff = apply_ops(g, ops)
        assert eff.applied == 6 and not eff.tree_affected
        assert g2.m == g.m + 6
        assert not g2.tree_mask[g.m:].any()
        assert list(eff.added_ids) == list(range(g.m, g.m + 6))
        assert_exact_mst(g2)

    def test_cheap_add_swaps_in(self):
        g = make_graph()
        # an edge strictly cheaper than everything must enter the tree
        g2, eff = apply_ops(g, [{"kind": "add", "u": 0, "v": g.n // 2,
                                 "weight": float(g.w.min()) / 2}])
        assert eff.applied == 1 and eff.tree_affected
        assert g2.tree_mask[g.m]
        assert g2.m_tree == g.m_tree  # one in, one demoted
        assert_exact_mst(g2)

    def test_remove_nontree_keeps_tree(self):
        g = make_graph()
        e = int(np.flatnonzero(~g.tree_mask)[4])
        g2, eff = apply_ops(g, [{"kind": "remove", "edge": e}])
        assert eff.applied == 1 and not eff.tree_affected
        assert g2.m == g.m - 1 and g2.m_tree == g.m_tree
        assert eff.old_to_new[e] == -1
        assert_exact_mst(g2)

    def test_remove_tree_promotes_replacement(self):
        g = make_graph()
        # a covered tree edge: its removal must promote the cheapest
        # crossing non-tree edge, keeping a spanning tree
        from repro.oracle import build_oracle
        orc = build_oracle(g, oracle_labels=True)
        covered = np.flatnonzero(g.tree_mask & np.isfinite(orc.threshold))
        e = int(covered[0])
        g2, eff = apply_ops(g, [{"kind": "remove", "edge": e}])
        assert eff.applied == 1 and eff.tree_affected
        assert g2.m == g.m - 1 and g2.m_tree == g.m_tree
        assert_exact_mst(g2)

    def test_remove_bridge_rejected(self):
        g, _ = known_mst_instance("random", 30, extra_m=2, rng=1)
        from repro.oracle import build_oracle
        orc = build_oracle(g, oracle_labels=True)
        bridges = np.flatnonzero(g.tree_mask & np.isinf(orc.threshold))
        assert len(bridges), "fixture needs a bridge"
        g2, eff = apply_ops(g, [{"kind": "remove", "edge": int(bridges[0])}])
        assert eff.applied == 0
        assert eff.rejected and "bridge" in eff.rejected[0][1]
        assert g2.m == g.m  # untouched

    def test_reprice_swaps_in_and_out(self):
        g = make_graph()
        nt = int(np.flatnonzero(~g.tree_mask)[0])
        g2, eff = apply_ops(
            g, [{"kind": "reprice", "edge": nt,
                 "weight": float(g.w.min()) / 2}])
        assert eff.tree_affected and g2.tree_mask[nt]
        assert_exact_mst(g2)
        # and back out: price it above everything
        g3, eff3 = apply_ops(
            g2, [{"kind": "reprice", "edge": nt,
                  "weight": float(g2.w.max()) + 5}])
        assert eff3.tree_affected and not g3.tree_mask[nt]
        assert_exact_mst(g3)

    def test_mixed_batch_with_rejections(self):
        g = make_graph()
        hi = float(g.w.max())
        nt = np.flatnonzero(~g.tree_mask)
        ops = [
            {"kind": "add", "u": 1, "v": 40, "weight": hi + 2},
            {"kind": "remove", "edge": int(nt[1])},
            {"kind": "reprice", "edge": int(nt[2]), "weight": hi + 3},
            {"kind": "remove", "edge": g.m + 999},          # out of range
            {"kind": "add", "u": 5, "v": 5, "weight": 1.0},  # self-loop
            {"kind": "frobnicate", "edge": 0},               # unknown kind
        ]
        g2, eff = apply_ops(g, coalesce_ops(ops))
        assert eff.applied == 3 and not eff.tree_affected
        assert len(eff.rejected) == 3
        assert g2.m == g.m  # +1 add, -1 remove
        assert_exact_mst(g2)

    def test_old_to_new_is_a_faithful_position_map(self):
        g = make_graph()
        nt = np.flatnonzero(~g.tree_mask)[:3]
        g2, eff = apply_ops(
            g, [{"kind": "remove", "edge": int(e)} for e in nt])
        survivors = np.flatnonzero(eff.old_to_new >= 0)
        mapped = eff.old_to_new[survivors]
        assert np.array_equal(g2.u[mapped], g.u[survivors])
        assert np.array_equal(g2.v[mapped], g.v[survivors])
        assert np.array_equal(g2.w[mapped], g.w[survivors])
        assert np.array_equal(g2.tree_mask[mapped], g.tree_mask[survivors])

    def test_random_churn_stays_exact(self):
        rng = np.random.default_rng(7)
        g = make_graph(n=60, extra=120, seed=9)
        for step in range(8):
            ops = []
            for _ in range(5):
                roll = rng.integers(0, 3)
                if roll == 0:
                    u, v = rng.integers(0, g.n, size=2)
                    if u == v:
                        v = (v + 1) % g.n
                    ops.append({"kind": "add", "u": int(u), "v": int(v),
                                "weight": float(rng.uniform(0, 2))})
                elif roll == 1 and g.m > g.n:
                    ops.append({"kind": "remove",
                                "edge": int(rng.integers(0, g.m))})
                else:
                    ops.append({"kind": "reprice",
                                "edge": int(rng.integers(0, g.m)),
                                "weight": float(rng.uniform(0, 2))})
            g, _eff = apply_ops(g, coalesce_ops(ops))
            assert_exact_mst(g)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
