"""The two engines must agree bit-for-bit — outputs and charged rounds.

This is the license for running experiments on the fast vectorised
engine while claiming message-level fidelity (DESIGN.md substitution 1).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import DistributedRuntime, LocalRuntime, MPCConfig, Table

HINT = 60_000


def engines():
    return (
        LocalRuntime(MPCConfig(seed=5)),
        DistributedRuntime(MPCConfig(delta=0.6, seed=5), total_words_hint=HINT),
    )


def random_table(rng, n, kmax):
    return Table(
        k=rng.integers(0, kmax, n),
        k2=rng.integers(0, 5, n),
        v=rng.uniform(-10, 10, n),
        g=np.arange(n),
    )


@pytest.mark.parametrize("n,kmax", [(0, 1), (1, 1), (13, 3), (257, 40),
                                    (600, 2), (600, 10_000)])
def test_sort_equivalent(n, kmax):
    rng = np.random.default_rng(n + kmax)
    t = random_table(rng, n, kmax)
    lr, dr = engines()
    a = lr.sort(t, ("k", "g"))
    b = dr.sort(t, ("k", "g"))
    assert a.equals(b)
    assert lr.rounds == dr.rounds


@pytest.mark.parametrize("op", ["sum", "max", "min"])
@pytest.mark.parametrize("exclusive", [False, True])
def test_scan_equivalent(op, exclusive):
    rng = np.random.default_rng(42)
    t = random_table(rng, 400, 12)
    lr, dr = engines()
    ts_l = lr.sort(t, ("k", "g"))
    ts_d = dr.sort(t, ("k", "g"))
    vcol = "g" if op == "sum" else "v"
    a = lr.scan(ts_l, vcol, op, by=("k",), exclusive=exclusive)
    b = dr.scan(ts_d, vcol, op, by=("k",), exclusive=exclusive)
    np.testing.assert_array_equal(a, b)
    assert lr.rounds == dr.rounds


@pytest.mark.parametrize("nq,nd", [(0, 5), (5, 0), (50, 50), (300, 30)])
def test_lookup_equivalent(nq, nd):
    rng = np.random.default_rng(nq * 7 + nd)
    q = Table(k=rng.integers(0, 40, nq))
    d = Table(k=rng.permutation(200)[:nd].astype(np.int64),
              v=rng.uniform(0, 1, nd))
    lr, dr = engines()
    a = lr.lookup(q, ("k",), d, ("k",), {"v": "v"}, default={"v": -1.0})
    b = dr.lookup(q, ("k",), d, ("k",), {"v": "v"}, default={"v": -1.0})
    assert a.equals(b)
    assert lr.rounds == dr.rounds


def test_predecessor_equivalent():
    rng = np.random.default_rng(0)
    q = Table(k=rng.integers(-100, 100, 200))
    d = Table(k=np.sort(rng.integers(-80, 80, 60)), v=np.arange(60) * 1.0)
    lr, dr = engines()
    a = lr.predecessor(q, "k", d, "k", {"v": "v"}, {"v": -1.0})
    b = dr.predecessor(q, "k", d, "k", {"v": "v"}, {"v": -1.0})
    assert a.equals(b)


def test_reduce_equivalent():
    rng = np.random.default_rng(1)
    t = random_table(rng, 500, 17)
    lr, dr = engines()
    aggs = {"mx": ("v", "max"), "sm": ("g", "sum"), "mn": ("v", "min")}
    a = lr.reduce_by_key(t, ("k",), aggs)
    b = dr.reduce_by_key(t, ("k",), aggs)
    assert a.equals(b)
    assert lr.rounds == dr.rounds


def test_expand_join_equivalent():
    rng = np.random.default_rng(2)
    q = Table(k=rng.integers(0, 15, 60), qid=np.arange(60))
    d = Table(k=rng.integers(0, 15, 90), val=rng.uniform(0, 1, 90))
    lr, dr = engines()
    a = lr.expand_join(q, ("k",), d, ("k",), {"v": "val"}, carry=("qid",))
    b = dr.expand_join(q, ("k",), d, ("k",), {"v": "val"}, carry=("qid",))
    assert a.equals(b)
    assert lr.rounds == dr.rounds


def test_filter_scalar_equivalent():
    rng = np.random.default_rng(3)
    t = random_table(rng, 333, 9)
    lr, dr = engines()
    assert lr.filter(t, t.col("v") > 0).equals(dr.filter(t, t.col("v") > 0))
    assert lr.scalar(t, "v", "max") == dr.scalar(t, "v", "max")
    assert lr.scalar(t, "g", "sum") == dr.scalar(t, "g", "sum")
    assert lr.rounds == dr.rounds


@given(
    keys=st.lists(st.integers(0, 8), min_size=0, max_size=60),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_property_sort_reduce_equivalent(keys, seed):
    rng = np.random.default_rng(seed)
    n = len(keys)
    t = Table(k=np.array(keys, dtype=np.int64),
              v=rng.uniform(0, 1, n), g=np.arange(n))
    lr, dr = engines()
    assert lr.sort(t, ("k", "g")).equals(dr.sort(t, ("k", "g")))
    if n:
        a = lr.reduce_by_key(t, ("k",), {"m": ("v", "min")})
        b = dr.reduce_by_key(t, ("k",), {"m": ("v", "min")})
        assert a.equals(b)


def test_full_pipeline_equivalence_verification():
    from repro.core.verification import verify_mst
    from repro.graph.generators import known_mst_instance

    g, _ = known_mst_instance("random", 35, extra_m=50, rng=8)
    rl = verify_mst(g, engine="local")
    rd = verify_mst(g, engine="distributed", config=MPCConfig(delta=0.6))
    assert rl.is_mst == rd.is_mst
    np.testing.assert_allclose(rl.pathmax, rd.pathmax)
    assert rl.rounds == rd.rounds


def test_full_pipeline_equivalence_sensitivity():
    from repro.core.sensitivity import mst_sensitivity
    from repro.graph.generators import known_mst_instance

    g, _ = known_mst_instance("caterpillar", 30, extra_m=45, rng=9)
    sl = mst_sensitivity(g, engine="local")
    sd = mst_sensitivity(g, engine="distributed", config=MPCConfig(delta=0.6))
    np.testing.assert_allclose(sl.sensitivity, sd.sensitivity)
    assert sl.rounds == sd.rounds
