"""Router tier: snapshot adoption, live swaps, shed, structured errors.

The heavy scenario (real worker processes behind a
:class:`~repro.service.router.RouterTier`) runs once and checks the
whole contract in one boot: gen-0 answers bit-identical to a locally
built oracle, a rebuild-forcing update mid-storm that ships a digest-
addressed swap with **zero** failed queries, per-generation
bit-identity across the swap, and counters that prove the path taken
(forwarded, swaps_shipped, replica fan-out). Everything that does not
need a subprocess — adoption, swap-under-reads, digest verification,
client disconnect errors — runs in-process.
"""

import asyncio
import os
import tempfile

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle
from repro.service import (
    InstanceUpdater,
    RouterConfig,
    RouterTier,
    ServiceClient,
    ServiceConfig,
    SensitivityService,
    WorkerService,
    merged_latency,
)
from repro.service.loadgen import make_plan, run_tcp
from repro.service.metrics import LatencyReservoir


def run(coro):
    return asyncio.run(coro)


def make_graph(n=140, seed=11):
    g, _ = known_mst_instance("random", n, extra_m=2 * n, rng=seed)
    return g


def publish(graph, tmpdir, name="default"):
    """Build + publish one digest-addressed snapshot; return updater."""
    upd = InstanceUpdater(name, graph, build_oracle(graph),
                         mmap_dir=tmpdir)
    upd.publish_snapshot()
    return upd


class TestWorkerAdoptSwap:
    def test_adopt_is_bit_identical_to_the_source_oracle(self):
        async def scenario():
            g = make_graph()
            with tempfile.TemporaryDirectory() as td:
                upd = publish(g, td)
                svc = WorkerService(ServiceConfig(shards=2))
                svc.adopt_instance("default", upd.snapshot_path,
                                   upd.snapshot_digest, generation=3)
                await svc.start()
                try:
                    for e in range(0, g.m, 7):
                        r = await svc.handle_request(
                            {"op": "sensitivity", "edge": e})
                        assert r["ok"] and r["generation"] == 3
                        assert r["result"] == float(upd.oracle.sens[e])
                finally:
                    await svc.stop()

        run(scenario())

    def test_adopt_rejects_digest_mismatch(self):
        async def scenario():
            g = make_graph(n=60)
            with tempfile.TemporaryDirectory() as td:
                upd = publish(g, td)
                svc = WorkerService(ServiceConfig(shards=2))
                resp = await svc.handle_request(
                    {"op": "adopt", "instance": "default",
                     "path": upd.snapshot_path, "digest": "0" * 64})
                assert not resp["ok"]
                assert "digest mismatch" in resp["error"]
                assert "default" not in svc.instances

        run(scenario())

    def test_swap_under_concurrent_reads_is_generation_exact(self):
        async def scenario():
            g = make_graph()
            with tempfile.TemporaryDirectory() as td:
                gen0 = publish(g, td, name="a")
                g2 = g.copy()
                g2.w[0] = 1e-6  # tree edge re-priced: thresholds move
                gen1 = InstanceUpdater("b", g2, build_oracle(g2),
                                       mmap_dir=td)
                gen1.generation = 1
                gen1.publish_snapshot()
                expected = {0: gen0.oracle.sens, 1: gen1.oracle.sens}

                svc = WorkerService(ServiceConfig(shards=2,
                                                  batch_window_s=0.001))
                svc.adopt_instance("default", gen0.snapshot_path,
                                   gen0.snapshot_digest, generation=0)
                await svc.start()
                edges = np.arange(0, g.m, 3)

                async def storm():
                    seen = set()
                    for _ in range(40):
                        for e in edges[:25]:
                            r = await svc.handle_request(
                                {"op": "sensitivity", "edge": int(e)})
                            assert r["ok"]
                            gen = r["generation"]
                            seen.add(gen)
                            assert r["result"] == float(
                                expected[gen][int(e)])
                        await asyncio.sleep(0)
                    return seen

                async def swap():
                    await asyncio.sleep(0.02)
                    return await svc.handle_request(
                        {"op": "swap", "instance": "default",
                         "path": gen1.snapshot_path,
                         "digest": gen1.snapshot_digest, "generation": 1})

                try:
                    seen, swapped = await asyncio.gather(storm(), swap())
                finally:
                    await svc.stop()
                assert swapped["ok"]
                assert 1 in seen  # the swap landed while reads flowed

        run(scenario())


class TestRouterTier:
    def test_scaleout_serves_swaps_and_counts(self):
        async def scenario():
            g = make_graph()
            # local ground truth, per generation: the update the storm
            # will fire is chosen *first*, so gen-1 answers are known
            ref0 = build_oracle(g)
            upd_edge = next(
                e for e in range(g.m_tree)
                if InstanceUpdater("probe", g, ref0).classify(e, 1e-6)
                == "rebuilt")
            g2 = g.copy()
            g2.w[upd_edge] = 1e-6
            ref1 = build_oracle(g2)
            expected = {0: ref0.sens, 1: ref1.sens}

            rt = RouterTier(RouterConfig(workers=2, replication=2,
                                         shards=2,
                                         batch_window_s=0.001))
            await rt.start(serve_tcp=True)
            try:
                info = await rt.add_instance("default", g)
                assert len(info["replicas"]) == 2
                desc = (await rt.handle_request(
                    {"op": "instances"}))["result"]
                assert desc["default"]["m"] == g.m
                assert desc["default"]["m_tree"] == g.m_tree

                # gen-0 bit-identity through the fleet
                for e in range(0, g.m, 11):
                    r = await rt.handle_request(
                        {"op": "sensitivity", "edge": e})
                    assert r["ok"] and r["generation"] == 0
                    assert r["result"] == float(ref0.sens[e])

                # storm + rebuild-forcing update, concurrently
                edges = list(range(0, g.m, 5))
                failures = []

                async def storm():
                    seen = set()
                    for _ in range(30):
                        for e in edges:
                            r = await rt.handle_request(
                                {"op": "sensitivity", "edge": e})
                            if not r.get("ok"):
                                failures.append(r)
                                continue
                            gen = r["generation"]
                            seen.add(gen)
                            if r["result"] != float(expected[gen][e]):
                                failures.append(("mismatch", gen, e, r))
                    return seen

                async def update():
                    await asyncio.sleep(0.05)
                    return await rt.handle_request(
                        {"op": "update", "edge": upd_edge,
                         "weight": 1e-6})

                seen, upd = await asyncio.gather(storm(), update())
                assert failures == []  # zero failed queries across the swap
                assert upd["action"] == "rebuilt"
                assert upd["generation"] == 1
                assert [s["ok"] for s in upd["shipped_to"]] == [True]
                assert 1 in seen

                # post-swap: both replicas answer generation 1
                for e in edges[:10]:
                    r = await rt.handle_request(
                        {"op": "sensitivity", "edge": e})
                    assert r["generation"] == 1
                    assert r["result"] == float(ref1.sens[e])

                m = (await rt.handle_request({"op": "metrics"}))["result"]
                assert m["router"]["forwarded"] > len(edges)
                assert m["router"]["swaps_shipped"] == 1
                assert m["router"]["replica_hits"] > 0  # reads fanned out
                assert m["queries"] == m["router"]["forwarded"]
                spool = rt._spool
            finally:
                await rt.stop()
            assert not os.path.exists(spool)  # private spool cleaned up

        run(scenario())

    def test_router_sheds_when_every_replica_is_saturated(self):
        async def scenario():
            g = make_graph(n=80)
            rt = RouterTier(RouterConfig(workers=2, replication=2,
                                         shards=2))
            await rt.start()
            try:
                await rt.add_instance("default", g)
                for w in rt.workers.values():  # forge saturation reports
                    w.depth = {"default": {"queued": 4096, "bound": 4096,
                                           "fraction": 1.0}}
                r = await rt.handle_request(
                    {"op": "sensitivity", "edge": 1, "id": 9})
                assert not r["ok"] and r["shed"] and r["where"] == "router"
                assert r["id"] == 9
                assert rt.metrics.shed_router == 1
                # one replica drains -> traffic flows again
                next(iter(rt.workers.values())).depth = {}
                r = await rt.handle_request(
                    {"op": "sensitivity", "edge": 1})
                assert r["ok"]
            finally:
                await rt.stop()

        run(scenario())

    def test_unknown_instance_is_an_error_not_a_crash(self):
        async def scenario():
            rt = RouterTier(RouterConfig(workers=1, replication=1))
            await rt.start()
            try:
                r = await rt.handle_request(
                    {"op": "sensitivity", "edge": 1, "instance": "nope"})
                assert not r["ok"] and "unknown instance" in r["error"]
            finally:
                await rt.stop()

        run(scenario())

    def test_front_door_tcp_end_to_end(self):
        async def scenario():
            g = make_graph(n=80)
            rt = RouterTier(RouterConfig(workers=2, replication=2,
                                         port=0))
            await rt.start(serve_tcp=True)
            try:
                await rt.add_instance("default", g)
                host, port = rt.tcp_address
                plan = make_plan({"default": g.m}, 300, seed=5)
                stats = await run_tcp(host, port, plan, clients=3,
                                      pipeline=16)
                assert stats.errors == 0
                assert stats.answered + stats.type_errors >= 300 - stats.shed
            finally:
                await rt.stop()

        run(scenario())


class TestServiceClientDisconnect:
    def test_midcall_disconnect_raises_structured_error(self):
        async def scenario():
            async def slam(reader, writer):
                await reader.readline()  # swallow one request, hang up
                writer.close()

            server = await asyncio.start_server(slam, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect("127.0.0.1", port)
            with pytest.raises(ServiceError) as err:
                await client.call("sensitivity", edge=1)
            assert err.value.kind == "disconnected"
            await client.close()
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_connect_refused_raises_structured_error(self):
        async def scenario():
            with pytest.raises(ServiceError) as err:
                await ServiceClient.connect("127.0.0.1", 1,
                                            connect_timeout_s=0.5)
            assert err.value.kind == "disconnected"

        run(scenario())

    def test_garbage_response_raises_protocol_error(self):
        async def scenario():
            async def babble(reader, writer):
                await reader.readline()
                writer.write(b"not json\n")
                await writer.drain()

            server = await asyncio.start_server(babble, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect("127.0.0.1", port)
            with pytest.raises(ServiceError) as err:
                await client.call("ping")
            assert err.value.kind == "protocol"
            await client.close()
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_tcp_client_against_real_service_still_works(self):
        async def scenario():
            g = make_graph(n=60)
            svc = SensitivityService(ServiceConfig(shards=2, port=0))
            svc.add_instance("default", g)
            await svc.start(serve_tcp=True)
            host, port = svc.tcp_address
            client = await ServiceClient.connect(host, port)
            try:
                r = await client.call("sensitivity", edge=2)
                assert r["ok"]
                pong = await client.call("ping")
                assert pong["ok"] and pong["result"] == "pong"
            finally:
                await client.close()
                await svc.stop()

        run(scenario())


class TestServiceLevelMetrics:
    def test_service_snapshot_pools_shard_reservoirs(self):
        async def scenario():
            g = make_graph(n=80)
            svc = SensitivityService(ServiceConfig(shards=3,
                                                   batch_window_s=0.001))
            svc.add_instance("default", g)
            await svc.start()
            try:
                for e in range(0, g.m, 4):
                    await svc.handle_request(
                        {"op": "sensitivity", "edge": e})
            finally:
                await svc.stop()
            m = svc.metrics()
            assert m["latency"]["samples"] > 0
            assert m["latency"]["p50_ms"] <= m["latency"]["p99_ms"]

        run(scenario())

    def test_merged_latency_is_percentile_of_pool(self):
        a, b = LatencyReservoir(64), LatencyReservoir(64)
        a.extend(np.full(50, 0.001))
        b.extend(np.full(50, 0.003))
        m = merged_latency([a, b])
        assert m["samples"] == 100
        assert m["p50_ms"] == pytest.approx(2.0, abs=1.1)
        assert m["p99_ms"] == pytest.approx(3.0, abs=0.1)
        assert merged_latency([])["samples"] == 0

    def test_depth_op_reports_queue_fractions(self):
        async def scenario():
            g = make_graph(n=60)
            svc = SensitivityService(ServiceConfig(shards=2,
                                                   queue_depth=100))
            svc.add_instance("default", g)
            await svc.start()
            try:
                r = await svc.handle_request({"op": "depth"})
            finally:
                await svc.stop()
            d = r["result"]["default"]
            assert d["queued"] == 0 and d["bound"] == 200
            assert d["fraction"] == 0.0

        run(scenario())
