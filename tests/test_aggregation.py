"""Subtree aggregation substrate tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.graph.generators import tree_instance
from repro.graph.tree import RootedTree
from repro.mpc import LocalRuntime
from repro.trees import subtree_extremum, subtree_sum

SHAPES = ["path", "star", "binary", "caterpillar", "random"]


def oracle_subtree(tree, values, op):
    n = tree.n
    out = np.array(values, dtype=np.float64)
    order = np.argsort(tree.depths())[::-1]  # deepest first
    for v in order:
        p = int(tree.parent[v])
        if p != v:
            if op == "sum":
                out[p] += out[v]
            elif op == "max":
                out[p] = max(out[p], out[v])
            else:
                out[p] = min(out[p], out[v])
    return out


class TestSubtreeSum:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_oracle(self, shape, rt, rng):
        t = tree_instance(shape, 120, 4)
        vals = rng.integers(0, 100, 120).astype(np.int64)
        _, low, high = t.euler_intervals()
        got = subtree_sum(rt, vals, low, high)
        want = oracle_subtree(t, vals, "sum")
        assert np.array_equal(got, want.astype(np.int64))

    def test_root_gets_total(self, rt):
        t = tree_instance("random", 50, 1)
        vals = np.ones(50, dtype=np.int64)
        _, low, high = t.euler_intervals()
        got = subtree_sum(rt, vals, low, high)
        assert got[t.root] == 50

    def test_leaves_get_own_value(self, rt):
        t = tree_instance("star", 20, 0)
        vals = np.arange(20, dtype=np.int64)
        _, low, high = t.euler_intervals()
        got = subtree_sum(rt, vals, low, high)
        assert np.array_equal(got[1:], vals[1:])


class TestSubtreeExtremum:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("op", ["max", "min"])
    def test_matches_oracle(self, shape, op, rt, rng):
        t = tree_instance(shape, 90, 2)
        vals = rng.uniform(-5, 5, 90)
        _, low, high = t.euler_intervals()
        got = subtree_extremum(rt, vals, low, high, op=op)
        np.testing.assert_allclose(got, oracle_subtree(t, vals, op))

    def test_invalid_op(self, rt):
        t = tree_instance("path", 5, 0)
        _, low, high = t.euler_intervals()
        with pytest.raises(ProtocolError):
            subtree_extremum(rt, np.ones(5), low, high, op="sum")

    def test_single_vertex(self, rt):
        got = subtree_extremum(rt, np.array([3.5]), np.array([0]),
                               np.array([0]))
        assert got[0] == 3.5

    @given(n=st.integers(2, 64), seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_property_max(self, n, seed):
        rng = np.random.default_rng(seed)
        parent = np.zeros(n, dtype=np.int64)
        for i in range(1, n):
            parent[i] = rng.integers(0, i)
        t = RootedTree(parent=parent, root=0)
        vals = rng.uniform(0, 1, n)
        _, low, high = t.euler_intervals()
        rt = LocalRuntime()
        got = subtree_extremum(rt, vals, low, high, op="max")
        np.testing.assert_allclose(got, oracle_subtree(t, vals, "max"))

    def test_memory_charged_superlinear(self):
        rt = LocalRuntime()
        t = tree_instance("path", 256, 0)
        _, low, high = t.euler_intervals()
        subtree_extremum(rt, np.ones(256), low, high)
        # sparse table is Θ(n log n) words — documented trade-off
        assert rt.tracker.peak_global_words >= 256 * 8
