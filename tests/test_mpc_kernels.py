"""Shared NumPy kernels: segmented scans and forward fill.

Property-based (hypothesis) checks against straightforward Python
reference implementations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.kernels import (
    forward_fill,
    op_combine,
    op_identity,
    segment_starts,
    segmented_scan,
)


def ref_segmented_scan(values, op, starts, exclusive):
    out = []
    acc = None
    f = {"sum": lambda a, b: a + b, "max": max, "min": min}[op]
    ident = op_identity(op, np.asarray(values).dtype)
    for v, s in zip(values, starts):
        if s:
            acc = None
        out.append(acc if acc is not None else ident)
        acc = v if acc is None else f(acc, v)
    if exclusive:
        return np.array(out, dtype=np.float64)
    res, acc = [], None
    for v, s in zip(values, starts):
        if s:
            acc = None
        acc = v if acc is None else f(acc, v)
        res.append(acc)
    return np.array(res, dtype=np.float64)


segments = st.lists(
    st.tuples(st.integers(1, 6),
              st.lists(st.floats(-100, 100), min_size=1, max_size=8)),
    min_size=0, max_size=6,
)


class TestSegmentStarts:
    def test_empty(self):
        assert len(segment_starts(None, 0)) == 0

    def test_no_keys_single_segment(self):
        s = segment_starts(None, 4)
        assert s.tolist() == [True, False, False, False]

    def test_keyed(self):
        s = segment_starts(np.array([1, 1, 2, 2, 2, 3]), 6)
        assert s.tolist() == [True, False, True, False, False, True]


class TestSegmentedScan:
    @pytest.mark.parametrize("op", ["sum", "max", "min"])
    @pytest.mark.parametrize("exclusive", [False, True])
    def test_known_case(self, op, exclusive):
        keys = np.array([0, 0, 0, 1, 1, 2])
        vals = np.array([3.0, 1.0, 2.0, 5.0, 4.0, 7.0])
        starts = segment_starts(keys, 6)
        got = segmented_scan(vals, op, starts, exclusive=exclusive)
        want = ref_segmented_scan(vals, op, starts, exclusive)
        np.testing.assert_allclose(got, want)

    @given(segs=segments, op=st.sampled_from(["max", "min"]),
           exclusive=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_minmax_matches_reference(self, segs, op, exclusive):
        keys, vals = [], []
        for i, (_, vs) in enumerate(segs):
            keys += [i] * len(vs)
            vals += vs
        keys = np.array(keys, dtype=np.int64)
        vals = np.array(vals, dtype=np.float64)
        starts = segment_starts(keys if len(keys) else None, len(vals))
        got = segmented_scan(vals, op, starts, exclusive=exclusive)
        want = ref_segmented_scan(vals, op, starts, exclusive)
        np.testing.assert_allclose(got, want)

    @given(segs=st.lists(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=8),
        min_size=0, max_size=6), exclusive=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_int_sum_matches_reference_exactly(self, segs, exclusive):
        # the library only segmented-sums integer columns (ranks, counts),
        # where the cumsum-offset realisation is exact
        keys, vals = [], []
        for i, vs in enumerate(segs):
            keys += [i] * len(vs)
            vals += vs
        keys = np.array(keys, dtype=np.int64)
        vals = np.array(vals, dtype=np.int64)
        starts = segment_starts(keys if len(keys) else None, len(vals))
        got = segmented_scan(vals, "sum", starts, exclusive=exclusive)
        want = ref_segmented_scan(vals, "sum", starts, exclusive)
        np.testing.assert_array_equal(got, want.astype(np.int64))

    def test_integer_sum_stays_int(self):
        starts = segment_starts(None, 3)
        out = segmented_scan(np.array([1, 2, 3]), "sum", starts)
        assert out.dtype.kind == "i"
        assert out.tolist() == [1, 3, 6]

    def test_unsupported_op(self):
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            segmented_scan(np.array([1.0]), "mean",
                           segment_starts(None, 1))


class TestForwardFill:
    def test_basic(self):
        v = np.array([10.0, 0.0, 0.0, 20.0, 0.0])
        ok = np.array([True, False, False, True, False])
        filled, valid = forward_fill(v, ok)
        assert filled.tolist() == [10.0, 10.0, 10.0, 20.0, 20.0]
        assert valid.all()

    def test_leading_invalid(self):
        v = np.array([1.0, 2.0])
        ok = np.array([False, True])
        filled, valid = forward_fill(v, ok)
        assert not valid[0] and valid[1]
        assert filled[1] == 2.0

    def test_empty(self):
        filled, valid = forward_fill(np.empty(0), np.empty(0, dtype=bool))
        assert len(filled) == 0

    @given(st.lists(st.tuples(st.floats(-10, 10), st.booleans()),
                    max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, rows):
        v = np.array([r[0] for r in rows], dtype=np.float64)
        ok = np.array([r[1] for r in rows], dtype=bool)
        filled, valid = forward_fill(v, ok)
        last = None
        for i in range(len(rows)):
            if ok[i]:
                last = v[i]
            if last is None:
                assert not valid[i]
            else:
                assert valid[i] and filled[i] == last


class TestCombine:
    @pytest.mark.parametrize("op,a,b,want",
                             [("sum", 2, 3, 5), ("max", 2, 3, 3),
                              ("min", 2, 3, 2)])
    def test_ops(self, op, a, b, want):
        assert op_combine(op, a, b) == want

    def test_identities(self):
        assert op_identity("sum", np.float64) == 0.0
        assert op_identity("max", np.float64) == -np.inf
        assert op_identity("min", np.int64) == np.iinfo(np.int64).max
