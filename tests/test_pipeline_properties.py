"""Cross-cutting pipeline properties: determinism, cost modes, scale,
invariance under relabelling."""

import numpy as np
import pytest

from repro.baselines import sequential_sensitivity
from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    known_mst_instance,
)
from repro.graph.graph import WeightedGraph
from repro.mpc import MPCConfig


class TestDeterminism:
    def test_same_config_same_everything(self):
        g, _ = known_mst_instance("random", 150, extra_m=300, rng=1)
        a = verify_mst(g, config=MPCConfig(seed=99))
        b = verify_mst(g, config=MPCConfig(seed=99))
        assert a.rounds == b.rounds
        assert a.cluster_counts == b.cluster_counts
        np.testing.assert_array_equal(a.pathmax, b.pathmax)

    def test_different_seed_same_answers(self):
        g, _ = known_mst_instance("random", 150, extra_m=300, rng=2)
        a = verify_mst(g, config=MPCConfig(seed=1))
        b = verify_mst(g, config=MPCConfig(seed=2))
        # contraction coins differ => rounds may differ, answers must not
        assert a.is_mst == b.is_mst
        np.testing.assert_allclose(a.pathmax, b.pathmax)

    def test_sensitivity_seed_invariant(self):
        g, _ = known_mst_instance("caterpillar", 120, extra_m=240, rng=3)
        a = mst_sensitivity(g, config=MPCConfig(seed=10))
        b = mst_sensitivity(g, config=MPCConfig(seed=20))
        np.testing.assert_allclose(a.sensitivity, b.sensitivity)


class TestRelabelInvariance:
    def test_vertex_permutation_preserves_verdict_and_values(self):
        g, _ = known_mst_instance("random", 100, extra_m=200, rng=4)
        rng = np.random.default_rng(0)
        perm = rng.permutation(g.n).astype(np.int64)
        g2 = WeightedGraph(n=g.n, u=perm[g.u], v=perm[g.v], w=g.w.copy(),
                           tree_mask=g.tree_mask.copy())
        r1 = mst_sensitivity(g, root=0)
        r2 = mst_sensitivity(g2, root=int(perm[0]))
        np.testing.assert_allclose(r1.sensitivity, r2.sensitivity)

    def test_edge_order_shuffle_preserves_results(self):
        g, _ = known_mst_instance("binary", 127, extra_m=250, rng=5)
        rng = np.random.default_rng(1)
        perm = rng.permutation(g.m)
        g2 = WeightedGraph(n=g.n, u=g.u[perm], v=g.v[perm], w=g.w[perm],
                           tree_mask=g.tree_mask[perm])
        r1 = mst_sensitivity(g)
        r2 = mst_sensitivity(g2)
        np.testing.assert_allclose(r1.sensitivity[perm], r2.sensitivity)


class TestCostModes:
    def test_theory_mode_scales_rounds_not_verdict(self):
        g, _ = known_mst_instance("random", 100, extra_m=200, rng=6)
        unit = verify_mst(g, config=MPCConfig(cost_mode="unit", seed=3))
        theory = verify_mst(g, config=MPCConfig(cost_mode="theory",
                                                delta=0.25, seed=3))
        assert unit.is_mst == theory.is_mst
        # same primitive sequence (same seed), each charged >= 1x
        assert theory.rounds > 2 * unit.rounds

    def test_delta_sharpens_theory_constants(self):
        g, _ = known_mst_instance("random", 100, extra_m=200, rng=7)
        fat = verify_mst(g, config=MPCConfig(cost_mode="theory",
                                             delta=0.5, seed=3))
        thin = verify_mst(g, config=MPCConfig(cost_mode="theory",
                                              delta=0.125, seed=3))
        assert thin.rounds > fat.rounds


class TestWeightEdgeCases:
    def test_all_equal_weights(self):
        # any spanning tree of a uniform-weight graph is an MST
        g, _ = known_mst_instance("random", 80, extra_m=160, rng=8)
        g2 = g.with_weights(np.ones(g.m))
        r = verify_mst(g2)
        assert r.is_mst
        s = mst_sensitivity(g2)
        o = sequential_sensitivity(g2)
        np.testing.assert_allclose(s.sensitivity, o.sensitivity)

    def test_negative_weights(self):
        g, _ = known_mst_instance("random", 60, extra_m=120, rng=9)
        g2 = g.with_weights(g.w - 10.0)
        s = mst_sensitivity(g2)
        o = sequential_sensitivity(g2)
        np.testing.assert_allclose(s.sensitivity, o.sensitivity)

    def test_integer_weights_with_many_ties(self):
        rng = np.random.default_rng(10)
        tree = backbone_tree(100, 30, rng=3)
        g = attach_nontree_edges(tree, 200, rng=4, mode="mst")
        g2 = g.with_weights(np.ceil(g.w * 3))  # few distinct values
        from repro.baselines import verify_by_recompute

        assert verify_mst(g2).is_mst == verify_by_recompute(g2)
        if verify_mst(g2).is_mst:
            s = mst_sensitivity(g2)
            o = sequential_sensitivity(g2)
            np.testing.assert_allclose(s.sensitivity, o.sensitivity)


@pytest.mark.slow
class TestScale:
    def test_hundred_thousand_vertices(self):
        tree = backbone_tree(100_000, 300, rng=0)
        g = attach_nontree_edges(tree, 200_000, rng=1, mode="mst")
        r = verify_mst(g, oracle_labels=True)
        assert r.is_mst
        assert r.report.peak_global_words <= 40 * g.total_words()
        s = mst_sensitivity(g, oracle_labels=True)
        o = sequential_sensitivity(g)
        np.testing.assert_allclose(s.sensitivity, o.sensitivity)
