"""Staged pipeline: artifact cache correctness (warm == cold, bit-exact).

The load-bearing claims tested here:

* warm-started runs produce bit-identical results *and* bit-identical
  charged-round reports (`CostReport`) on both engines;
* cache keys invalidate on engine / root / coin_bias /
  reduction_exponent changes — and only from the affected stage onward
  (Merkle chaining);
* a persisted store round-trips through the npz protocol and can be
  rehydrated by a fresh process;
* the early-exit verification result carries the full field shape plus
  ``failed_stage``, and ``mst_sensitivity`` keys off that status;
* the deprecated ``_internals`` kwarg still works, with a warning.
"""

import numpy as np
import pytest

from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.errors import ValidationError
from repro.graph.generators import known_mst_instance
from repro.graph.graph import WeightedGraph
from repro.mpc import MPCConfig
from repro.pipeline import (
    Artifact,
    ArtifactStore,
    PipelineParams,
    graph_fingerprint,
    run_sensitivity,
    run_verification,
    sensitivity_pipeline,
    verification_pipeline,
)

DIST_CFG = MPCConfig(min_machine_words=2048)


def _graph(seed=3, n=80):
    g, _ = known_mst_instance("random", n, extra_m=2 * n, rng=seed)
    return g


def _assert_verification_identical(a, b):
    assert a.is_mst == b.is_mst and a.reason == b.reason
    assert a.rounds == b.rounds
    assert a.diameter_estimate == b.diameter_estimate
    assert a.cluster_counts == b.cluster_counts
    np.testing.assert_array_equal(a.pathmax, b.pathmax)
    np.testing.assert_array_equal(a.violating_edges, b.violating_edges)
    assert a.report.to_dict() == b.report.to_dict()


def _assert_sensitivity_identical(a, b):
    assert a.rounds == b.rounds
    assert a.notes_peak == b.notes_peak
    assert a.root == b.root
    np.testing.assert_array_equal(a.sensitivity, b.sensitivity)
    np.testing.assert_array_equal(a.mc, b.mc)
    np.testing.assert_array_equal(a.pathmax, b.pathmax)
    np.testing.assert_array_equal(a.parent, b.parent)
    assert a.report.to_dict() == b.report.to_dict()


class TestWarmColdBitIdentity:
    def test_warm_start_across_planner_modes(self):
        """Planner on/off is a pure physical choice: artifacts and cost
        deltas cached by an eager run warm-start a planned run (and vice
        versa) with bit-identical results and reports."""
        g = _graph()
        store = ArtifactStore()
        eager_cold = mst_sensitivity(
            g, config=MPCConfig(planner=False), store=store)
        planned_warm = mst_sensitivity(
            g, config=MPCConfig(planner=True), store=store)
        _assert_sensitivity_identical(eager_cold, planned_warm)
        assert store.hits == 14  # every stage replayed from the eager run
        planned_cold = mst_sensitivity(g, config=MPCConfig(planner=True))
        _assert_sensitivity_identical(eager_cold, planned_cold)

    @pytest.mark.parametrize("engine,config", [
        ("local", None), ("distributed", DIST_CFG),
    ])
    def test_verify_warm_equals_cold(self, engine, config):
        g = _graph()
        cold = verify_mst(g, engine=engine, config=config)
        store = ArtifactStore()
        verify_mst(g, engine=engine, config=config, store=store)  # populate
        warm = verify_mst(g, engine=engine, config=config, store=store)
        _assert_verification_identical(cold, warm)
        # the warm run replayed every stage
        assert store.misses == 10 and store.hits == 10

    @pytest.mark.parametrize("engine,config", [
        ("local", None), ("distributed", DIST_CFG),
    ])
    def test_sensitivity_warm_after_verify(self, engine, config):
        g = _graph(seed=7)
        cold = mst_sensitivity(g, engine=engine, config=config)
        store = ArtifactStore()
        verify_mst(g, engine=engine, config=config, store=store)
        hits_before = store.hits
        warm = mst_sensitivity(g, engine=engine, config=config, store=store)
        _assert_sensitivity_identical(cold, warm)
        # all ten verification stages were replayed, only sens-* executed
        assert store.hits - hits_before == 10

    def test_transport_rounds_replayed(self):
        g = _graph(seed=11)
        cold = verify_mst(g, engine="distributed", config=DIST_CFG)
        store = ArtifactStore()
        verify_mst(g, engine="distributed", config=DIST_CFG, store=store)
        warm = verify_mst(g, engine="distributed", config=DIST_CFG,
                          store=store)
        assert warm.report.transport_rounds == cold.report.transport_rounds
        assert warm.report.peak_machine_words == cold.report.peak_machine_words


class TestInvalidation:
    def test_coin_bias_reruns_clustering_onward(self):
        g = _graph()
        store = ArtifactStore()
        base = verify_mst(g, store=store)
        h0 = store.hits
        swept = verify_mst(g, store=store, coin_bias=0.7)
        # substrate prefix (validate/rooting/dfs/diameter) replayed,
        # clustering..decide recomputed
        assert store.hits - h0 == 4
        assert swept.is_mst == base.is_mst
        assert swept.substrate_rounds == base.substrate_rounds

    def test_reduction_exponent_reruns_clustering_onward(self):
        g = _graph()
        store = ArtifactStore()
        verify_mst(g, store=store)
        h0 = store.hits
        r = verify_mst(g, store=store, reduction_exponent=1.5)
        assert store.hits - h0 == 4
        assert r.is_mst

    def test_root_change_invalidates_rooting_onward(self):
        g = _graph()
        store = ArtifactStore()
        verify_mst(g, store=store)
        h0 = store.hits
        r = verify_mst(g, store=store, root=17)
        assert store.hits - h0 == 1  # only validate is root-independent
        assert r.is_mst

    def test_engine_change_shares_nothing(self):
        g = _graph()
        store = ArtifactStore()
        verify_mst(g, store=store)
        h0 = store.hits
        verify_mst(g, engine="distributed", config=DIST_CFG, store=store)
        assert store.hits == h0

    def test_graph_change_shares_nothing(self):
        a, b = _graph(seed=1), _graph(seed=2)
        assert graph_fingerprint(a) != graph_fingerprint(b)
        store = ArtifactStore()
        verify_mst(a, store=store)
        h0 = store.hits
        verify_mst(b, store=store)
        assert store.hits == h0

    def test_oracle_labels_invalidates_rooting_onward(self):
        g = _graph()
        store = ArtifactStore()
        full = verify_mst(g, store=store)
        h0 = store.hits
        orc = verify_mst(g, store=store, oracle_labels=True)
        assert store.hits - h0 == 1
        assert orc.is_mst == full.is_mst
        assert orc.rounds < full.rounds


class TestPersistence:
    def test_store_npz_roundtrip(self, tmp_path):
        g = _graph(seed=5)
        cache = str(tmp_path / "cache")
        cold = mst_sensitivity(g)
        s1 = ArtifactStore(cache_dir=cache)
        mst_sensitivity(g, store=s1)
        # a *fresh* store (empty memory) must rehydrate from disk alone
        s2 = ArtifactStore(cache_dir=cache)
        warm = mst_sensitivity(g, store=s2)
        assert s2.disk_hits == 14 and s2.misses == 0
        _assert_sensitivity_identical(cold, warm)

    def test_single_artifact_roundtrip(self, tmp_path):
        g = _graph(seed=9)
        store = ArtifactStore()
        _, run = run_sensitivity(g, store=store)
        for name, art in run.artifacts.items():
            path = str(tmp_path / f"{name}.npz")
            art.save(path)
            back = Artifact.load(path)
            assert type(back) is type(art)
            assert back.cost.to_dict() == art.cost.to_dict()
            arrays_a, meta_a = art.payload()
            arrays_b, meta_b = back.payload()
            assert meta_a == meta_b
            assert set(arrays_a) == set(arrays_b)
            for k in arrays_a:
                np.testing.assert_array_equal(
                    np.asarray(arrays_a[k]), np.asarray(arrays_b[k])
                )


class TestPlanAndStatus:
    def test_plan_shape(self):
        plan = sensitivity_pipeline().plan()
        names = [e.name for e in plan]
        assert len(names) == 14
        assert names[:4] == ["validate", "rooting", "dfs", "diameter"]
        assert names[-1] == "sens-finalize"
        seen = set()
        for e in plan:
            assert all(d in seen for d in e.deps)
            seen.add(e.name)

    def test_plan_keys_and_cache_state(self):
        g = _graph()
        store = ArtifactStore()
        verify_mst(g, store=store)
        plan = sensitivity_pipeline().plan(g, PipelineParams(), store)
        cached = {e.name: e.cached for e in plan}
        for name in verification_pipeline().stage_names():
            assert cached[name] is True
        for name in ("sens-contract", "sens-cluster", "sens-unwind",
                     "sens-finalize"):
            assert cached[name] is False

    def test_failed_validate_has_full_shape(self):
        g = WeightedGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)],
            tree_edges=[(0, 1), (1, 2), (0, 2)],  # cycle, misses vertex 3
        )
        r = verify_mst(g)
        assert not r.is_mst
        assert r.reason == "not-spanning-tree"
        assert r.failed_stage == "validate"
        assert r.cluster_counts == []
        assert r.n_violations == 0 and len(r.violating_edges) == 0
        with pytest.raises(ValidationError, match="not a spanning tree"):
            mst_sensitivity(g)

    def test_failed_stage_serializes(self, tmp_path):
        from repro.core.results import VerificationResult

        g = WeightedGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0)], tree_edges=[(0, 1)]
        )
        r = verify_mst(g)
        assert r.failed_stage == "validate"
        path = tmp_path / "fail.npz"
        r.save(path)
        back = VerificationResult.load(path)
        assert back.failed_stage == "validate"
        ok = verify_mst(_graph())
        assert ok.failed_stage is None

    def test_internals_shim_warns_and_fills(self):
        g = _graph()
        internals = {}
        with pytest.warns(DeprecationWarning, match="_internals"):
            verify_mst(g, _internals=internals)
        for key in ("rt", "parent", "wpar", "low", "high", "d_hat",
                    "hierarchy", "halves", "labeled", "pm_half", "pathmax",
                    "nontree_index", "root"):
            assert key in internals


class TestConsumers:
    def test_batch_warm_start_inline(self, tmp_path):
        from repro.batch import BatchRunner, JobSpec

        jobs = [
            JobSpec(kind="verify", shape="binary", n=63, seed=4),
            JobSpec(kind="sensitivity", shape="binary", n=63, seed=4),
            JobSpec(kind="verify", shape="binary", n=63, seed=4),
        ]
        cold = BatchRunner(processes=1).run(jobs)
        warm = BatchRunner(processes=1,
                           cache_dir=str(tmp_path / "c")).run(jobs)
        for c, w in zip(cold, warm):
            assert c.ok and w.ok
            assert w.rounds == c.rounds
            assert w.core_rounds == c.core_rounds
            assert w.peak_words == c.peak_words
        assert warm[0].cache_hits == 0          # cold miss
        assert warm[1].cache_hits == 10         # verify prefix replayed
        assert warm[2].cache_hits == 10         # identical job: full replay

    def test_oracle_from_store(self):
        from repro.oracle import SensitivityOracle

        g = _graph(seed=6)
        store = ArtifactStore()
        verify_mst(g, store=store)
        oracle = SensitivityOracle.from_store(g, store)
        ref = SensitivityOracle.from_result(g, mst_sensitivity(g))
        np.testing.assert_array_equal(oracle.sens, ref.sens)
        np.testing.assert_array_equal(oracle.threshold, ref.threshold)
        np.testing.assert_array_equal(oracle.cover_edge, ref.cover_edge)

    def test_run_verification_returns_artifacts(self):
        g = _graph()
        result, run = run_verification(g)
        assert result.is_mst
        assert set(run.artifacts) == set(verification_pipeline().stage_names())
        assert run.artifacts["decide"].n_bad == 0
        # every executed stage recorded a replayable cost delta
        total = sum(a.cost.rounds_total for a in run.artifacts.values())
        assert total == result.rounds
