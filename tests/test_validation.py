"""Union-find and sequential structural validation tests."""

import numpy as np

from repro.graph.validation import (
    UnionFind,
    connected_components,
    count_components,
    is_forest,
    is_spanning_tree,
)


class TestUnionFind:
    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.n_components == 3

    def test_redundant_union_detected(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 2)
        assert not uf.union(0, 2)

    def test_find_is_canonical(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        roots = {uf.find(i) for i in (0, 1, 2, 3)}
        assert len(roots) == 1
        assert uf.find(4) not in roots


class TestForestChecks:
    def test_forest_true(self):
        assert is_forest(5, np.array([0, 1, 3]), np.array([1, 2, 4]))

    def test_forest_cycle_false(self):
        assert not is_forest(3, np.array([0, 1, 2]), np.array([1, 2, 0]))

    def test_forest_selfloop_false(self):
        assert not is_forest(2, np.array([1]), np.array([1]))

    def test_spanning_tree_true(self):
        assert is_spanning_tree(4, np.array([0, 1, 2]), np.array([1, 2, 3]))

    def test_spanning_tree_wrong_count(self):
        assert not is_spanning_tree(4, np.array([0, 1]), np.array([1, 2]))

    def test_spanning_tree_disconnected(self):
        assert not is_spanning_tree(
            4, np.array([0, 2, 0]), np.array([1, 3, 1])
        )


class TestComponents:
    def test_labels_are_min_member(self):
        lab = connected_components(6, np.array([4, 2]), np.array([5, 3]))
        assert lab.tolist() == [0, 1, 2, 2, 4, 4]

    def test_count(self):
        assert count_components(6, np.array([0, 1]), np.array([1, 2])) == 4

    def test_empty_edges(self):
        assert count_components(3, np.array([], dtype=np.int64),
                                np.array([], dtype=np.int64)) == 3
