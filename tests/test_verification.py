"""End-to-end MST verification (Theorem 3.1) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import nontree_pathmax, verify_by_recompute
from repro.core.verification import verify_mst
from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    known_mst_instance,
    one_vs_two_cycles_instance,
    perturb_break_mst,
    random_connected_graph,
    tree_instance,
)
from repro.graph.graph import WeightedGraph

SHAPES = ["path", "star", "binary", "ternary", "caterpillar", "random"]


class TestAccepts:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_true_mst_accepted(self, shape):
        g, _ = known_mst_instance(shape, 150, extra_m=300, rng=7)
        r = verify_mst(g)
        assert r.is_mst and r.reason == "ok" and r.n_violations == 0

    @pytest.mark.parametrize("shape", ["path", "random"])
    def test_ties_still_accepted(self, shape):
        g, _ = known_mst_instance(shape, 120, extra_m=240, rng=3,
                                  mode="tight")
        assert verify_mst(g).is_mst

    def test_tree_only_graph(self):
        g, _ = known_mst_instance("binary", 63, extra_m=0, rng=0)
        assert verify_mst(g).is_mst

    def test_two_vertices(self):
        g = WeightedGraph.from_edges(2, [(0, 1, 1.0), (0, 1, 2.0)],
                                     tree_edges=[(0, 1)])
        assert verify_mst(g).is_mst

    def test_parallel_edge_cheaper_rejected(self):
        g = WeightedGraph.from_edges(2, [(0, 1, 3.0), (0, 1, 2.0)],
                                     tree_edges=[(0, 1)])
        r = verify_mst(g)
        assert not r.is_mst and r.n_violations == 1


class TestRejects:
    @pytest.mark.parametrize("shape", ["path", "binary", "caterpillar",
                                       "random"])
    def test_perturbed_rejected_with_witness(self, shape):
        g, _ = known_mst_instance(shape, 100, extra_m=200, rng=11)
        bad = perturb_break_mst(g, rng=13)
        r = verify_mst(bad)
        assert not r.is_mst
        assert r.reason == "cheaper-nontree-edge"
        assert len(r.violating_edges) == r.n_violations >= 1
        # the witness really is cheaper than its tree path
        pm = nontree_pathmax(bad)
        nt_pos = {e: i for i, e in enumerate(r.nontree_index)}
        for e in r.violating_edges:
            assert bad.w[e] < pm[nt_pos[e]]

    def test_non_spanning_tree_rejected(self):
        g = WeightedGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)],
            tree_edges=[(0, 1), (1, 2), (0, 2)],  # cycle, misses vertex 3
        )
        r = verify_mst(g)
        assert not r.is_mst and r.reason == "not-spanning-tree"

    def test_wrong_edge_count_rejected(self):
        g = WeightedGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0)], tree_edges=[(0, 1)]
        )
        assert verify_mst(g).reason == "not-spanning-tree"


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match_recompute(self, seed):
        g = random_connected_graph(90, 260, rng=seed)
        assert verify_mst(g).is_mst == verify_by_recompute(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_pathmax_exact(self, seed):
        g = random_connected_graph(80, 220, rng=100 + seed)
        r = verify_mst(g)
        assert np.allclose(r.pathmax, nontree_pathmax(g))

    @given(seed=st.integers(0, 2000), n=st.integers(5, 60))
    @settings(max_examples=20, deadline=None)
    def test_property_verdict_matches_oracle(self, seed, n):
        g = random_connected_graph(n, min(3 * n, n * (n - 1) // 2), rng=seed)
        assert verify_mst(g).is_mst == verify_by_recompute(g)


class TestModes:
    def test_oracle_labels_same_verdict_fewer_rounds(self):
        g, _ = known_mst_instance("caterpillar", 120, extra_m=240, rng=5)
        full = verify_mst(g)
        orc = verify_mst(g, oracle_labels=True)
        assert full.is_mst == orc.is_mst
        assert np.allclose(full.pathmax, orc.pathmax)
        assert orc.rounds < full.rounds

    def test_nonzero_root(self):
        g, _ = known_mst_instance("random", 70, extra_m=140, rng=6)
        assert verify_mst(g, root=33).is_mst

    def test_reduction_exponent_affects_cluster_count(self):
        g, _ = known_mst_instance("path", 200, extra_m=100, rng=1)
        shallow = verify_mst(g, reduction_exponent=0.5)
        deep = verify_mst(g, reduction_exponent=1.5)
        assert shallow.is_mst and deep.is_mst
        assert shallow.cluster_counts[-1] >= deep.cluster_counts[-1]

    def test_artifacts_exposed_for_sensitivity(self):
        # the sensitivity stages consume these verification artifacts
        # (Observation 4.2); they are typed stage outputs now, not a
        # smuggled _internals dict
        from repro.pipeline import run_verification

        g, _ = known_mst_instance("binary", 63, extra_m=100, rng=2)
        result, run = run_verification(g)
        for stage in ("clustering", "adgraph", "labels", "pathmax", "decide"):
            assert stage in run.artifacts
        assert run.artifacts["clustering"].hierarchy.n == g.n
        assert len(run.artifacts["decide"].pathmax) == len(result.nontree_index)
        assert run.rt.rounds == result.rounds


class TestLowerBoundFamily:
    @pytest.mark.parametrize("n", [20, 60, 120])
    def test_one_cycle_accepted(self, n):
        g, _ = one_vs_two_cycles_instance(n, two_cycles=False, rng=n)
        assert verify_mst(g).is_mst

    @pytest.mark.parametrize("n", [20, 60, 120])
    def test_two_cycles_rejected(self, n):
        g, _ = one_vs_two_cycles_instance(n, two_cycles=True, rng=n)
        r = verify_mst(g)
        assert not r.is_mst and r.reason == "not-spanning-tree"


class TestReporting:
    def test_phase_breakdown_present(self):
        g, _ = known_mst_instance("random", 80, extra_m=160, rng=8)
        r = verify_mst(g)
        phases = set(r.report.rounds_by_phase)
        assert any(p.startswith("core/clustering") for p in phases)
        assert any(p.startswith("core/lca") for p in phases)
        assert any(p.startswith("core/labels") for p in phases)
        assert r.core_rounds + r.substrate_rounds <= r.rounds
        assert r.core_rounds > 0 and r.substrate_rounds > 0

    def test_memory_linear(self):
        g, _ = known_mst_instance("caterpillar", 300, extra_m=600, rng=9)
        r = verify_mst(g)
        assert r.report.peak_global_words <= 40 * (g.total_words())

    def test_diameter_estimate_valid(self):
        t = backbone_tree(150, 60, rng=0)
        g = attach_nontree_edges(t, 100, rng=1)
        r = verify_mst(g)
        assert 60 <= r.diameter_estimate <= 120
