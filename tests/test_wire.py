"""Binary columnar wire protocol (S25): codecs, negotiation, malformed
input, and cross-protocol bit-identity.

The contract under test is dict *equality*, not value equality: a
binary client must observe byte-for-byte the same response dicts as a
JSON-lines client for every query — successes, type errors, range
errors, sheds — both against a single-process service and through the
router tier, across a mid-storm generation swap. The router section
also asserts the zero-parse relay property via the ``WireMetrics``
counters: the storm's frames flow through the binary door while
``json_decodes`` only ever counts the constant escape handshakes.
"""

import asyncio
import struct

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle
from repro.service import (
    InstanceUpdater,
    RouterConfig,
    RouterTier,
    SensitivityService,
    ServiceClient,
    ServiceConfig,
)
from repro.service import wire
from repro.service.loadgen import make_plan, run_tcp

OPS = ("sensitivity", "survives", "replacement_edge", "entry_threshold")


def run(coro):
    return asyncio.run(coro)


def make_graph(n=120, seed=11):
    g, _ = known_mst_instance("random", n, extra_m=2 * n, rng=seed)
    return g


async def started_tcp(graph, name="default", **cfg_kw):
    cfg_kw.setdefault("shards", 2)
    cfg_kw.setdefault("batch_window_s", 0.001)
    cfg_kw.setdefault("port", 0)
    svc = SensitivityService(ServiceConfig(**cfg_kw))
    svc.add_instance(name, graph)
    await svc.start(serve_tcp=True)
    return svc


async def read_frame(reader):
    head = await reader.readexactly(wire.HEADER_LEN)
    need = wire.frame_length(head)
    return head + await reader.readexactly(need - wire.HEADER_LEN)


def point_frame(op, iid, edge, weight=0.0):
    return struct.pack("<BBHId", wire.MAGIC, wire.OP_CODE[op], iid,
                       edge, weight)


class TestFraming:
    def test_every_frame_length_is_derivable_from_the_header(self):
        cases = [
            point_frame("sensitivity", 0, 7),
            point_frame("survives", 1, 9, 2.5),
            wire.encode_escape({"op": "ping"}),
            wire.encode_bulk_request("sensitivity", 0,
                                     np.arange(5, dtype="<u4")),
            wire.encode_bulk_request("survives", 2,
                                     np.arange(9, dtype="<u4"),
                                     np.ones(9)),
            wire.encode_bulk_response(
                wire.OP_CODE["sensitivity"], 1, 3,
                np.zeros(4, dtype="u1"), np.ones(4)),
        ]
        for frame in cases:
            assert wire.frame_length(frame[:wire.HEADER_LEN]) == len(frame)
        # response frames are 16B flat too
        resp = np.zeros(1, dtype=wire.RESP_DTYPE)
        resp["magic"] = wire.MAGIC
        resp["type"] = wire.RESP_BASE
        assert wire.frame_length(resp.tobytes()) == wire.POINT_LEN

    def test_incomplete_header_is_none_not_an_error(self):
        assert wire.frame_length(b"") is None
        assert wire.frame_length(bytes([wire.MAGIC, 0x01])) is None

    def test_bad_magic_raises_with_json_client_hint(self):
        with pytest.raises(wire.WireError, match="JSON client"):
            wire.frame_length(b'{"op": "ping"}\n')

    def test_unknown_type_byte_raises(self):
        bad = struct.pack("<BBHI", wire.MAGIC, 0x3F, 0, 0)
        with pytest.raises(wire.WireError, match="unknown frame type"):
            wire.frame_length(bad)

    def test_oversized_lengths_raise_instead_of_allocating(self):
        huge = struct.pack("<BBHI", wire.MAGIC, wire.ESCAPE, 0,
                           wire.MAX_FRAME_LEN)
        with pytest.raises(wire.WireError, match="cap"):
            wire.frame_length(huge)
        bulk = struct.pack("<BBHI", wire.MAGIC, 0x12, 0, 2 ** 31)
        with pytest.raises(wire.WireError, match="cap"):
            wire.frame_length(bulk)

    def test_point_run_length_scans_uniform_runs(self):
        frames = (point_frame("sensitivity", 0, 1)
                  + point_frame("survives", 0, 2, 1.0)
                  + wire.encode_escape({"op": "ping"}))
        assert wire.point_run_length(frames) == 2
        assert wire.point_run_length(frames[:20]) == 1
        assert wire.point_run_length(b"") == 0
        assert wire.point_run_length(
            wire.encode_escape({"op": "ping"})) == 0


class TestCodecs:
    def test_escape_roundtrip(self):
        req = {"op": "metrics", "nested": {"a": [1, 2.5, None]}}
        assert wire.decode_escape(wire.encode_escape(req)) == req

    def test_escape_payload_must_be_an_object(self):
        with pytest.raises(wire.WireError, match="escape payload"):
            wire.decode_escape(struct.pack(
                "<BBHI", wire.MAGIC, wire.ESCAPE, 0, 5) + b"[1,2]")

    def test_bulk_request_roundtrip(self):
        edges = np.array([3, 1, 999], dtype="<u4")
        op, iid, e2, w2 = wire.decode_bulk_request(
            wire.encode_bulk_request("replacement_edge", 7, edges))
        assert (op, iid) == ("replacement_edge", 7)
        assert np.array_equal(e2, edges) and w2 is None
        weights = np.array([0.5, 1.5, 2.5])
        op, iid, e2, w2 = wire.decode_bulk_request(
            wire.encode_bulk_request("survives", 1, edges, weights))
        assert op == "survives"
        assert np.array_equal(w2, weights)

    def test_bulk_survives_without_weights_is_an_error(self):
        with pytest.raises(wire.WireError, match="weights"):
            wire.encode_bulk_request("survives", 0,
                                     np.arange(3, dtype="<u4"))

    def test_bulk_response_roundtrip(self):
        st = np.array([0, 1, 5], dtype="u1")
        vals = np.array([1.25, -1.0, 4096.0])
        shard, gen, st2, v2 = wire.decode_bulk_response(
            wire.encode_bulk_response(wire.OP_CODE["survives"], 3, 17,
                                      st, vals))
        assert (shard, gen) == (3, 17)
        assert np.array_equal(st2, st) and np.array_equal(v2, vals)

    def test_compact_json_helpers(self):
        obj = {"ok": True, "result": [1, 2]}
        assert b" " not in wire.dumps_line(obj)
        assert wire.dumps_line(obj).endswith(b"\n")
        assert wire.join_lines([obj, obj]) == wire.dumps_line(obj) * 2

    def test_vectorised_point_encode_matches_struct_pack(self):
        ops = np.array([wire.OP_CODE["sensitivity"],
                        wire.OP_CODE["survives"]], dtype="u1")
        buf = wire.encode_point_requests(
            ops, np.array([0, 3], dtype="<u2"),
            np.array([5, 6], dtype="<u4"), np.array([0.0, 1.5]))
        assert buf == (point_frame("sensitivity", 0, 5)
                       + point_frame("survives", 3, 6, 1.5))


class TestEnvelopeReconstruction:
    """The frame carries enough to rebuild the JSON path's exact dicts."""

    @staticmethod
    def rec(status, shard=0, generation=0, value=0.0):
        r = np.zeros(1, dtype=wire.RESP_DTYPE)
        r["magic"] = wire.MAGIC
        r["type"] = wire.RESP_BASE | status
        r["shard"] = shard
        r["generation"] = generation
        r["value"] = value
        return r[0]

    def test_ok_values_map_back_to_op_result_types(self):
        d = wire.point_response_to_dict(
            "survives", 3, self.rec(wire.ST_OK, 1, 4, 1.0))
        assert d == {"ok": True, "generation": 4, "shard": 1,
                     "result": True}
        d = wire.point_response_to_dict(
            "replacement_edge", 3, self.rec(wire.ST_OK, 0, 0, -1.0))
        assert d["result"] is None
        d = wire.point_response_to_dict(
            "replacement_edge", 3, self.rec(wire.ST_OK, 0, 0, 41.0))
        assert d["result"] == 41

    def test_type_error_strings_match_the_service(self):
        d = wire.point_response_to_dict(
            "sensitivity", 9, self.rec(wire.ST_TYPE, 1, 2))
        assert d["error"] == "edge 9 is not a non-tree edge"
        d = wire.point_response_to_dict(
            "replacement_edge", 9, self.rec(wire.ST_TYPE))
        assert d["error"] == "edge 9 is not a tree edge"

    def test_range_error_reconstructs_the_route_envelope(self):
        d = wire.point_response_to_dict(
            "sensitivity", 900, self.rec(wire.ST_RANGE, value=360.0))
        assert d == {"ok": False,
                     "error": "edge index 900 out of range [0, 360)"}

    def test_shed_envelopes(self):
        d = wire.point_response_to_dict(
            "sensitivity", 1, self.rec(wire.ST_SHED, shard=2, value=64.0))
        assert d == {"ok": False, "shed": True,
                     "error": "shard 2 queue full (64)"}
        d = wire.point_response_to_dict(
            "sensitivity", 1, self.rec(wire.ST_SHED_ROUTER, value=2.0),
            instance="g0")
        assert d == {"ok": False, "shed": True, "where": "router",
                     "error": "all 2 replica(s) of 'g0' are past the "
                              "shed watermark"}

    def test_disconnected_messages_disambiguate_by_value(self):
        d0 = wire.point_response_to_dict(
            "sensitivity", 1, self.rec(wire.ST_DISCONNECTED, value=0.0),
            instance="g0")
        d1 = wire.point_response_to_dict(
            "sensitivity", 1, self.rec(wire.ST_DISCONNECTED, value=1.0),
            instance="g0")
        assert "no live replica of 'g0'" in d0["error"]
        assert "kept disconnecting" in d1["error"]
        assert d0["error_kind"] == d1["error_kind"] == "worker-disconnected"

    def test_status_roundtrip_through_json_classification(self):
        for status, kind in wire.STATUS_TO_KIND.items():
            if status == wire.ST_OK:
                assert wire.response_to_status({"ok": True}) == wire.ST_OK
            else:
                assert wire.response_to_status(
                    {"ok": False, "error_kind": kind}) == status
        assert wire.response_to_status(
            {"ok": False, "shed": True}) == wire.ST_SHED
        assert wire.response_to_status(
            {"ok": False, "shed": True,
             "where": "router"}) == wire.ST_SHED_ROUTER


class TestSymbols:
    def test_dense_append_only_ids(self):
        syms = wire.WireSymbols()
        assert syms.intern("b") == 0
        assert syms.intern("a") == 1
        assert syms.intern("b") == 0          # stable on re-intern
        assert syms.names() == ["b", "a"]
        assert syms.name_of(1) == "a"
        assert syms.name_of(7) is None
        assert syms.version == 2
        assert syms.table() == {"b": 0, "a": 1}

    def test_intern_all_respects_given_order(self):
        syms = wire.WireSymbols()
        got = syms.intern_all(["z", "m", "a"])
        assert got == {"z": 0, "m": 1, "a": 2}


class TestMalformedInputOverTcp:
    """Garbage on the binary door: structured error or clean close,
    never a hang, and never collateral damage to other connections."""

    def test_truncated_frame_then_eof_closes_cleanly(self):
        async def scenario():
            svc = await started_tcp(make_graph(n=60))
            try:
                host, port = svc.tcp_address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(bytes([wire.MAGIC, 0x01, 0x00]))  # 3 of 16B
                await writer.drain()
                writer.write_eof()
                got = await asyncio.wait_for(reader.read(), 10.0)
                assert got == b""           # no answer, no hang
                writer.close()
                # the listener survived: a fresh JSON client still works
                c = await ServiceClient.connect(host, port)
                assert (await c.call("ping"))["ok"]
                await c.close()
            finally:
                await svc.stop()

        run(scenario())

    async def _expect_protocol_error(self, svc, payload, match):
        host, port = svc.tcp_address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(payload)
        await writer.drain()
        frame = await asyncio.wait_for(read_frame(reader), 10.0)
        err = wire.decode_escape(frame)
        assert not err["ok"] and err["error_kind"] == "protocol"
        assert match in err["error"], err
        got = await asyncio.wait_for(reader.read(), 10.0)
        assert got == b""                   # server closed after the error
        writer.close()

    def test_unknown_opcode_answers_structured_error_then_closes(self):
        async def scenario():
            svc = await started_tcp(make_graph(n=60))
            try:
                bad = struct.pack("<BBHI", wire.MAGIC, 0x3F, 0, 0) * 2
                await self._expect_protocol_error(
                    svc, bad, "unknown frame type")
            finally:
                await svc.stop()

        run(scenario())

    def test_oversized_length_prefix_is_refused_not_allocated(self):
        async def scenario():
            svc = await started_tcp(make_graph(n=60))
            try:
                huge = struct.pack("<BBHI", wire.MAGIC, wire.ESCAPE, 0,
                                   wire.MAX_FRAME_LEN)
                await self._expect_protocol_error(svc, huge, "cap")
            finally:
                await svc.stop()

        run(scenario())

    def test_json_line_on_a_binary_connection_gets_the_hint(self):
        async def scenario():
            svc = await started_tcp(make_graph(n=60))
            try:
                host, port = svc.tcp_address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(wire.encode_escape({"op": "hello"}))
                await writer.drain()
                await asyncio.wait_for(read_frame(reader), 10.0)  # hello ok
                # now the client "forgets" it negotiated binary
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                frame = await asyncio.wait_for(read_frame(reader), 10.0)
                err = wire.decode_escape(frame)
                assert not err["ok"]
                assert "JSON client" in err["error"]
                writer.close()
            finally:
                await svc.stop()

        run(scenario())

    def test_response_frame_as_a_request_is_refused(self):
        async def scenario():
            svc = await started_tcp(make_graph(n=60))
            try:
                resp = np.zeros(1, dtype=wire.RESP_DTYPE)
                resp["magic"] = wire.MAGIC
                resp["type"] = wire.RESP_BASE
                await self._expect_protocol_error(
                    svc, resp.tobytes(), "not a request")
            finally:
                await svc.stop()

        run(scenario())


class TestHelloNegotiation:
    def test_hello_interns_and_repeats_are_supersets(self):
        async def scenario():
            g = make_graph(n=60)
            svc = SensitivityService(ServiceConfig(
                shards=2, batch_window_s=0.0, port=0))
            svc.add_instance("beta", g)
            svc.add_instance("alpha", g)
            await svc.start(serve_tcp=True)
            try:
                host, port = svc.tcp_address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(wire.encode_escape(
                    {"op": "hello", "wire": 1}))
                await writer.drain()
                first = wire.decode_escape(
                    await asyncio.wait_for(read_frame(reader), 10.0))
                # omitted list → sorted registration order
                assert first["result"]["symbols"] == {"alpha": 0,
                                                      "beta": 1}
                assert first["result"]["wire"] == wire.WIRE_VERSION
                # explicit re-hello only ever extends the table
                writer.write(wire.encode_escape(
                    {"op": "hello", "instances": ["beta", "gamma"]}))
                await writer.drain()
                second = wire.decode_escape(
                    await asyncio.wait_for(read_frame(reader), 10.0))
                assert second["result"]["symbols"] == {"beta": 1,
                                                       "gamma": 2}
                writer.close()
            finally:
                await svc.stop()

        run(scenario())


class TestCrossProtocolDirect:
    """One service, two clients: every response dict must be equal."""

    def test_differential_every_op_and_error_kind(self):
        async def scenario():
            g = make_graph(n=120)
            svc = await started_tcp(g, name="g0")
            try:
                host, port = svc.tcp_address
                cj = await ServiceClient.connect(host, port)
                cb = await ServiceClient.connect(host, port,
                                                 wire_mode="binary")
                probes = []
                for e in list(range(0, g.m, 7)) + [g.m, g.m + 13]:
                    for op in OPS:
                        kw = {"op": op, "edge": e, "instance": "g0"}
                        if op == "survives":
                            kw["weight"] = 1.25
                        probes.append(kw)
                # degenerate shapes only the escape fallback can carry
                probes += [
                    {"op": "sensitivity", "edge": -3, "instance": "g0"},
                    {"op": "survives", "edge": 2, "instance": "g0"},
                    {"op": "sensitivity", "edge": 1, "instance": "nope"},
                    {"op": "sensitivity", "edge": 1, "instance": "g0",
                     "id": "tagged"},
                ]
                checked = 0
                for req in probes:
                    kw = {k: v for k, v in req.items() if k != "op"}
                    rj = await cj.call(req["op"], **kw)
                    rb = await cb.call(req["op"], **kw)
                    assert rj == rb, (req, rj, rb)
                    checked += 1
                assert checked == len(probes)
                await cj.close()
                await cb.close()
            finally:
                await svc.stop()

        run(scenario())

    def test_bulk_columns_match_scalar_point_queries(self):
        async def scenario():
            g = make_graph(n=120)
            svc = await started_tcp(g, name="g0")
            try:
                host, port = svc.tcp_address
                cb = await ServiceClient.connect(host, port,
                                                 wire_mode="binary")
                edges = np.arange(0, g.m + 6, 5, dtype=np.int64)
                for op in OPS:
                    weights = (1.25 * np.ones(len(edges))
                               if op == "survives" else None)
                    shard, gen, statuses, values = await cb.bulk(
                        op, edges, weights, instance="g0")
                    assert len(statuses) == len(edges)
                    for i, e in enumerate(edges):
                        kw = {"edge": int(e), "instance": "g0"}
                        if op == "survives":
                            kw["weight"] = 1.25
                        ref = await cb.call(op, **kw)
                        st = int(statuses[i])
                        if ref.get("ok"):
                            assert st == wire.ST_OK
                            assert (wire._wrap_value(op, float(values[i]))
                                    == ref["result"])
                        elif int(e) >= g.m:
                            assert st == wire.ST_RANGE
                            assert int(values[i]) == g.m
                        else:
                            assert st == wire.ST_TYPE
                await cb.close()
            finally:
                await svc.stop()

        run(scenario())

    def test_control_ops_ride_the_escape_frame(self):
        async def scenario():
            g = make_graph(n=120)
            svc = await started_tcp(g, name="g0")
            try:
                host, port = svc.tcp_address
                cj = await ServiceClient.connect(host, port)
                cb = await ServiceClient.connect(host, port,
                                                 wire_mode="binary")
                met = await cb.call("metrics")
                assert met["ok"]
                wm = met["result"]["wire"]
                assert wm["binary"]["connections"] >= 1
                assert wm["binary"]["frames_in"] >= 1
                # a structural update over the binary connection swaps
                # the generation for BOTH protocols identically
                upd = await cb.call("update", edge=0, weight=0.5,
                                    instance="g0")
                assert upd["ok"]
                r1 = await cb.call("sensitivity", edge=0, instance="g0")
                r2 = await cj.call("sensitivity", edge=0, instance="g0")
                assert r1 == r2 and r1["generation"] == upd["generation"]
                await cj.close()
                await cb.close()
            finally:
                await svc.stop()

        run(scenario())

    def test_bulk_needs_a_binary_connection(self):
        async def scenario():
            g = make_graph(n=60)
            svc = await started_tcp(g)
            try:
                host, port = svc.tcp_address
                cj = await ServiceClient.connect(host, port)
                with pytest.raises(ServiceError, match="binary"):
                    await cj.bulk("sensitivity", np.arange(4))
                await cj.close()
            finally:
                await svc.stop()

        run(scenario())


class TestLoadgenBinaryDriver:
    def test_binary_storm_is_clean_and_reports_encode_separately(self):
        async def scenario():
            g = make_graph(n=120)
            svc = await started_tcp(g, name="g0")
            try:
                host, port = svc.tcp_address
                plan = make_plan({"g0": g.m}, 600, seed=3)
                sb = await run_tcp(host, port, plan, clients=2,
                                   pipeline=16, wire_mode="binary")
                sj = await run_tcp(host, port, plan, clients=2,
                                   pipeline=16, wire_mode="json")
                for s in (sb, sj):
                    assert s.sent == 600
                    assert s.errors == 0
                    assert s.answered + s.shed == 600
                    assert s.encode_s > 0.0          # measured, not zero
                    assert "encode_s" in s.summary()
                # identical tallies: the protocols saw the same plan
                assert sb.answered == sj.answered
                assert sb.type_errors == sj.type_errors
            finally:
                await svc.stop()

        run(scenario())

    def test_unknown_wire_mode_is_rejected(self):
        async def scenario():
            with pytest.raises(ValueError, match="wire_mode"):
                await run_tcp("127.0.0.1", 1, make_plan({"x": 4}, 1),
                              wire_mode="msgpack")

        run(scenario())


class TestRouterZeroParseRelay:
    """The heavy scenario: real worker processes, one boot.

    Checks (a) cross-protocol dict equality through the front door,
    (b) a mid-storm generation swap that stays bit-identical across
    protocols, and (c) the zero-parse relay property: the storm's
    binary frames are forwarded while the router's binary-door
    ``json_decodes`` counter only moves for the constant handshakes.
    """

    def test_router_differential_with_mid_storm_swap(self):
        async def scenario():
            g = make_graph(n=120, seed=7)
            rt = RouterTier(RouterConfig(
                workers=2, replication=2, shards=2, port=0,
                batch_window_s=0.001, queue_depth=1 << 15))
            await rt.start(serve_tcp=True)
            try:
                await rt.add_instance("g0", g)
                host, port = rt.tcp_address
                cj = await ServiceClient.connect(host, port)
                cb = await ServiceClient.connect(host, port,
                                                 wire_mode="binary")

                async def compare(expect_generation=None):
                    for e in list(range(0, g.m, 9)) + [g.m + 2]:
                        for op in OPS:
                            kw = {"edge": e, "instance": "g0"}
                            if op == "survives":
                                kw["weight"] = 1.25
                            rj = await cj.call(op, **kw)
                            rb = await cb.call(op, **kw)
                            assert rj == rb, (op, e, rj, rb)
                            if expect_generation is not None and rj.get("ok"):
                                assert rj["generation"] == expect_generation

                await compare(expect_generation=0)

                bm = rt.wire["binary"]
                frames_before = bm.frames_in
                decodes_before = bm.json_decodes

                # pick a rebuild-forcing edge, then swap mid-storm
                ref0 = build_oracle(g)
                upd_edge = next(
                    e for e in range(g.m_tree)
                    if InstanceUpdater("probe", g, ref0).classify(e, 1e-6)
                    == "rebuilt")
                plan = make_plan({"g0": g.m}, 1500, seed=5)

                async def storm():
                    return await run_tcp(host, port, plan, clients=2,
                                         pipeline=32, wire_mode="binary")

                async def swap():
                    await asyncio.sleep(0.05)
                    return await cj.call("update", edge=upd_edge,
                                         weight=1e-6, instance="g0")

                stats, upd = await asyncio.gather(storm(), swap())
                assert stats.errors == 0, (
                    f"{stats.errors} binary queries failed across the "
                    f"generation swap")
                assert stats.answered + stats.shed == 1500
                assert upd["ok"] and upd["action"] == "rebuilt"
                assert upd["generation"] == 1

                # zero-parse: the storm's frames were relayed, yet the
                # binary door never fed a data frame to json.loads —
                # only the storm conns' hello escapes moved the counter
                assert bm.frames_in - frames_before >= 1500
                assert bm.json_decodes - decodes_before <= 4, (
                    f"router parsed JSON on the binary relay path: "
                    f"{bm.snapshot()}")

                # the swap is observed identically over both protocols
                await compare(expect_generation=1)

                await cj.close()
                await cb.close()
            finally:
                await rt.stop()

        run(scenario())
