"""Randomized differential suite: MPC pipelines vs sequential baselines.

Roughly forty seeded instances across all ``TREE_SHAPES`` × {MST,
broken-MST} × engines. Three invariants:

1. ``verify_mst`` agrees with *both* sequential verification oracles
   (recompute and path-max) on every instance;
2. ``mst_sensitivity`` is bit-identical to the sequential Tarjan-style
   oracle — same formulas over the same exact weights, so plain
   ``==`` on the float arrays, no tolerances;
3. the local and distributed engines stay bit-identical (outputs *and*
   charged rounds) across randomized ``MPCConfig`` deltas.
"""

import numpy as np
import pytest

from repro.baselines.seq_sensitivity import sequential_sensitivity
from repro.baselines.seq_verify import (
    nontree_pathmax,
    verify_by_pathmax,
    verify_by_recompute,
)
from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.graph.generators import (
    TREE_SHAPES,
    known_mst_instance,
    perturb_break_mst,
)
from repro.mpc import MPCConfig

N = 60
EXTRA_M = 90


def make_instance(shape: str, seed: int, broken: bool):
    g, _ = known_mst_instance(shape, N, extra_m=EXTRA_M, rng=seed)
    if broken:
        g = perturb_break_mst(g, rng=seed + 1)
    return g


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("broken", (False, True))
def test_verify_matches_sequential_oracles(shape, seed, broken):
    g = make_instance(shape, seed, broken)
    r = verify_mst(g)
    assert r.is_mst == verify_by_recompute(g)
    assert r.is_mst == verify_by_pathmax(g)
    assert r.is_mst == (not broken)
    # the per-edge path maxima must match the binary-lifting oracle too
    np.testing.assert_array_equal(r.pathmax, nontree_pathmax(g))
    if broken:
        assert r.n_violations >= 1
        # every reported witness really is a cheaper non-tree edge
        tree = sequential_sensitivity(g).tree
        pm = tree.path_max(g.u[r.violating_edges], g.v[r.violating_edges])
        assert np.all(g.w[r.violating_edges] < pm)


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("seed", (0, 1))
def test_sensitivity_matches_sequential_oracle(shape, seed):
    g = make_instance(shape, seed, broken=False)
    r = mst_sensitivity(g)
    s = sequential_sensitivity(g)
    np.testing.assert_array_equal(r.sensitivity, s.sensitivity)
    np.testing.assert_array_equal(r.mc, s.mc)


@pytest.mark.parametrize("shape", ("star", "caterpillar"))
@pytest.mark.parametrize("seed", (3, 4))
def test_sensitivity_on_non_mst_tree_matches_sequential(shape, seed):
    """require_mst=False analyses covering weights of arbitrary spanning
    trees — the sequential oracle never assumed minimality, so the two
    must still agree exactly on broken instances."""
    g = make_instance(shape, seed, broken=True)
    r = mst_sensitivity(g, require_mst=False)
    s = sequential_sensitivity(g)
    np.testing.assert_array_equal(r.sensitivity, s.sensitivity)
    np.testing.assert_array_equal(r.mc, s.mc)


# -- engine differential -------------------------------------------------------

#: Small inputs need a raised per-machine floor so every delta admits a
#: legal deployment (m <= s plus protocol headroom).
ENGINE_N = 40
ENGINE_EXTRA_M = 60


def _dist_config(delta: float) -> MPCConfig:
    return MPCConfig(delta=delta, min_machine_words=2048)


@pytest.mark.parametrize("delta", (0.25, 0.35, 0.5))
@pytest.mark.parametrize("broken", (False, True))
def test_engines_bit_identical_verification(delta, broken):
    g, _ = known_mst_instance("random", ENGINE_N, extra_m=ENGINE_EXTRA_M,
                              rng=int(delta * 100))
    if broken:
        g = perturb_break_mst(g, rng=7)
    rl = verify_mst(g, engine="local")
    rd = verify_mst(g, engine="distributed", config=_dist_config(delta))
    assert rl.is_mst == rd.is_mst
    assert rl.n_violations == rd.n_violations
    np.testing.assert_array_equal(rl.violating_edges, rd.violating_edges)
    np.testing.assert_array_equal(rl.pathmax, rd.pathmax)
    assert rl.rounds == rd.rounds


@pytest.mark.parametrize("delta", (0.25, 0.35, 0.5))
def test_engines_bit_identical_sensitivity(delta):
    g, _ = known_mst_instance("binary", ENGINE_N, extra_m=ENGINE_EXTRA_M,
                              rng=int(delta * 1000))
    sl = mst_sensitivity(g, engine="local")
    sd = mst_sensitivity(g, engine="distributed", config=_dist_config(delta))
    np.testing.assert_array_equal(sl.sensitivity, sd.sensitivity)
    np.testing.assert_array_equal(sl.mc, sd.mc)
    np.testing.assert_array_equal(sl.pathmax, sd.pathmax)
    assert sl.rounds == sd.rounds
