"""Randomized differential suite: MPC pipelines vs sequential baselines.

Roughly forty seeded instances across all ``TREE_SHAPES`` × {MST,
broken-MST} × engines. Three invariants:

1. ``verify_mst`` agrees with *both* sequential verification oracles
   (recompute and path-max) on every instance;
2. ``mst_sensitivity`` is bit-identical to the sequential Tarjan-style
   oracle — same formulas over the same exact weights, so plain
   ``==`` on the float arrays, no tolerances;
3. the local and distributed engines stay bit-identical (outputs *and*
   charged rounds) across randomized ``MPCConfig`` deltas.
"""

import numpy as np
import pytest

from repro.baselines.seq_sensitivity import sequential_sensitivity
from repro.baselines.seq_verify import (
    nontree_pathmax,
    verify_by_pathmax,
    verify_by_recompute,
)
from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.graph.generators import (
    TREE_SHAPES,
    known_mst_instance,
    perturb_break_mst,
)
from repro.mpc import MPCConfig

N = 60
EXTRA_M = 90


def make_instance(shape: str, seed: int, broken: bool):
    g, _ = known_mst_instance(shape, N, extra_m=EXTRA_M, rng=seed)
    if broken:
        g = perturb_break_mst(g, rng=seed + 1)
    return g


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("broken", (False, True))
def test_verify_matches_sequential_oracles(shape, seed, broken):
    g = make_instance(shape, seed, broken)
    r = verify_mst(g)
    assert r.is_mst == verify_by_recompute(g)
    assert r.is_mst == verify_by_pathmax(g)
    assert r.is_mst == (not broken)
    # the per-edge path maxima must match the binary-lifting oracle too
    np.testing.assert_array_equal(r.pathmax, nontree_pathmax(g))
    if broken:
        assert r.n_violations >= 1
        # every reported witness really is a cheaper non-tree edge
        tree = sequential_sensitivity(g).tree
        pm = tree.path_max(g.u[r.violating_edges], g.v[r.violating_edges])
        assert np.all(g.w[r.violating_edges] < pm)


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("seed", (0, 1))
def test_sensitivity_matches_sequential_oracle(shape, seed):
    g = make_instance(shape, seed, broken=False)
    r = mst_sensitivity(g)
    s = sequential_sensitivity(g)
    np.testing.assert_array_equal(r.sensitivity, s.sensitivity)
    np.testing.assert_array_equal(r.mc, s.mc)


@pytest.mark.parametrize("shape", ("star", "caterpillar"))
@pytest.mark.parametrize("seed", (3, 4))
def test_sensitivity_on_non_mst_tree_matches_sequential(shape, seed):
    """require_mst=False analyses covering weights of arbitrary spanning
    trees — the sequential oracle never assumed minimality, so the two
    must still agree exactly on broken instances."""
    g = make_instance(shape, seed, broken=True)
    r = mst_sensitivity(g, require_mst=False)
    s = sequential_sensitivity(g)
    np.testing.assert_array_equal(r.sensitivity, s.sensitivity)
    np.testing.assert_array_equal(r.mc, s.mc)


# -- engine differential -------------------------------------------------------

#: Small inputs need a raised per-machine floor so every delta admits a
#: legal deployment (m <= s plus protocol headroom).
ENGINE_N = 40
ENGINE_EXTRA_M = 60


def _dist_config(delta: float) -> MPCConfig:
    return MPCConfig(delta=delta, min_machine_words=2048)


@pytest.mark.parametrize("delta", (0.25, 0.35, 0.5))
@pytest.mark.parametrize("broken", (False, True))
def test_engines_bit_identical_verification(delta, broken):
    g, _ = known_mst_instance("random", ENGINE_N, extra_m=ENGINE_EXTRA_M,
                              rng=int(delta * 100))
    if broken:
        g = perturb_break_mst(g, rng=7)
    rl = verify_mst(g, engine="local")
    rd = verify_mst(g, engine="distributed", config=_dist_config(delta))
    assert rl.is_mst == rd.is_mst
    assert rl.n_violations == rd.n_violations
    np.testing.assert_array_equal(rl.violating_edges, rd.violating_edges)
    np.testing.assert_array_equal(rl.pathmax, rd.pathmax)
    assert rl.rounds == rd.rounds


@pytest.mark.parametrize("delta", (0.25, 0.35, 0.5))
def test_engines_bit_identical_sensitivity(delta):
    g, _ = known_mst_instance("binary", ENGINE_N, extra_m=ENGINE_EXTRA_M,
                              rng=int(delta * 1000))
    sl = mst_sensitivity(g, engine="local")
    sd = mst_sensitivity(g, engine="distributed", config=_dist_config(delta))
    np.testing.assert_array_equal(sl.sensitivity, sd.sensitivity)
    np.testing.assert_array_equal(sl.mc, sd.mc)
    np.testing.assert_array_equal(sl.pathmax, sd.pathmax)
    assert sl.rounds == sd.rounds


# -- engine differential at 10x scale (columnar fabric) ------------------------

#: The columnar message-level engine is fast enough to differential-test
#: at sizes where the capacity-capped protocols actually bite; delta must
#: leave the single-level collectives legal (m <= s with summary headroom).
SCALE_CONFIG = MPCConfig(delta=0.6)


@pytest.mark.parametrize("n", (512, 1024))
@pytest.mark.parametrize("broken", (False, True))
def test_engines_bit_identical_verification_at_scale(n, broken):
    g, _ = known_mst_instance("random", n, extra_m=2 * n, rng=n)
    if broken:
        g = perturb_break_mst(g, rng=n + 1)
    rl = verify_mst(g, engine="local")
    rd = verify_mst(g, engine="distributed", config=SCALE_CONFIG)
    assert rl.is_mst == rd.is_mst
    assert rl.n_violations == rd.n_violations
    np.testing.assert_array_equal(rl.violating_edges, rd.violating_edges)
    np.testing.assert_array_equal(rl.pathmax, rd.pathmax)
    assert rl.rounds == rd.rounds
    assert rd.report.transport_rounds > rd.rounds  # real exchanges happened


@pytest.mark.parametrize("n", (512, 1024))
def test_engines_bit_identical_sensitivity_at_scale(n):
    g, _ = known_mst_instance("caterpillar", n, extra_m=2 * n, rng=n)
    sl = mst_sensitivity(g, engine="local")
    sd = mst_sensitivity(g, engine="distributed", config=SCALE_CONFIG)
    np.testing.assert_array_equal(sl.sensitivity, sd.sensitivity)
    np.testing.assert_array_equal(sl.mc, sd.mc)
    np.testing.assert_array_equal(sl.pathmax, sd.pathmax)
    assert sl.rounds == sd.rounds


@pytest.mark.parametrize("shape", ("grid", "power_law"))
@pytest.mark.parametrize("broken", (False, True))
def test_engines_bit_identical_new_families(shape, broken):
    """The PR-3 serving families (Θ(√n) and hub-heavy diameters) routed
    through the message-level fabric, not just the vectorised engine."""
    g, _ = known_mst_instance(shape, 512, extra_m=1024, rng=13)
    if broken:
        g = perturb_break_mst(g, rng=17)
    rl = verify_mst(g, engine="local")
    rd = verify_mst(g, engine="distributed", config=SCALE_CONFIG)
    assert rl.is_mst == rd.is_mst
    np.testing.assert_array_equal(rl.pathmax, rd.pathmax)
    np.testing.assert_array_equal(rl.violating_edges, rd.violating_edges)
    assert rl.rounds == rd.rounds
    if not broken:
        sl = mst_sensitivity(g, engine="local")
        sd = mst_sensitivity(g, engine="distributed", config=SCALE_CONFIG)
        np.testing.assert_array_equal(sl.sensitivity, sd.sensitivity)
        np.testing.assert_array_equal(sl.mc, sd.mc)
        assert sl.rounds == sd.rounds


# -- planned vs eager execution (planner/executor split) -----------------------

#: The planner must be a pure physical optimisation: outputs AND the
#: full CostReport (rounds, per-phase paths, primitive counts, peaks,
#: transport rounds) bit-identical to the eager engines.


def _planned_eager_pair(engine: str, n: int):
    if engine == "distributed":
        return (MPCConfig(delta=0.6, planner=True),
                MPCConfig(delta=0.6, planner=False))
    return MPCConfig(planner=True), MPCConfig(planner=False)


@pytest.mark.parametrize("engine", ("local", "distributed"))
@pytest.mark.parametrize("n", (512, 1024))
@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_planned_eager_bit_identical_sensitivity(engine, n, shape):
    g, _ = known_mst_instance(shape, n, extra_m=2 * n, rng=n + len(shape))
    planned_cfg, eager_cfg = _planned_eager_pair(engine, n)
    sp = mst_sensitivity(g, engine=engine, config=planned_cfg)
    se = mst_sensitivity(g, engine=engine, config=eager_cfg)
    np.testing.assert_array_equal(sp.sensitivity, se.sensitivity)
    np.testing.assert_array_equal(sp.mc, se.mc)
    np.testing.assert_array_equal(sp.pathmax, se.pathmax)
    assert sp.report.to_dict() == se.report.to_dict()


@pytest.mark.parametrize("engine", ("local", "distributed"))
@pytest.mark.parametrize("n", (512, 1024))
@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_planned_eager_bit_identical_verification(engine, n, shape):
    g, _ = known_mst_instance(shape, n, extra_m=2 * n, rng=3 * n)
    g = perturb_break_mst(g, rng=n + 1)
    planned_cfg, eager_cfg = _planned_eager_pair(engine, n)
    rp = verify_mst(g, engine=engine, config=planned_cfg)
    re = verify_mst(g, engine=engine, config=eager_cfg)
    assert rp.is_mst == re.is_mst
    np.testing.assert_array_equal(rp.violating_edges, re.violating_edges)
    np.testing.assert_array_equal(rp.pathmax, re.pathmax)
    assert rp.report.to_dict() == re.report.to_dict()


def test_transport_rounds_deterministic_across_runs():
    """Transport-round counts are part of the engine's contract: two runs
    of the same instance/config must execute the identical exchange
    schedule (this is what pins E9's 'transport rounds' column)."""
    g, _ = known_mst_instance("random", 512, extra_m=1024, rng=29)
    ra = verify_mst(g, engine="distributed", config=SCALE_CONFIG)
    rb = verify_mst(g, engine="distributed", config=SCALE_CONFIG)
    assert ra.report.transport_rounds == rb.report.transport_rounds
    assert ra.rounds == rb.rounds
    np.testing.assert_array_equal(ra.pathmax, rb.pathmax)
