"""End-to-end MST sensitivity (Theorem 4.1) tests against the oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import sequential_sensitivity
from repro.core.sensitivity import mst_sensitivity
from repro.errors import ValidationError
from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    known_mst_instance,
    perturb_break_mst,
    tree_instance,
)
from repro.graph.graph import WeightedGraph

SHAPES = ["path", "star", "binary", "ternary", "caterpillar", "random"]


def check(g, **kw):
    r = mst_sensitivity(g, **kw)
    o = sequential_sensitivity(g)
    np.testing.assert_allclose(r.sensitivity, o.sensitivity)
    return r, o


class TestAgainstOracle:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_all_shapes(self, shape, seed):
        g, _ = known_mst_instance(shape, 110, extra_m=250, rng=seed * 17)
        check(g)

    @pytest.mark.parametrize("shape", ["path", "random"])
    def test_with_ties(self, shape):
        g, _ = known_mst_instance(shape, 90, extra_m=200, rng=5,
                                  mode="tight")
        check(g)

    @pytest.mark.parametrize("d", [2, 8, 40, 149])
    def test_diameter_sweep(self, d):
        t = backbone_tree(150, d, rng=d)
        g = attach_nontree_edges(t, 300, rng=d + 1, mode="mst")
        check(g)

    def test_dense_cover(self):
        g, _ = known_mst_instance("random", 60, extra_m=800, rng=3)
        check(g)

    def test_sparse_cover_bridges(self):
        g, _ = known_mst_instance("random", 120, extra_m=4, rng=4)
        r, o = check(g)
        # most tree edges are bridges: infinite sensitivity
        tree_sens = r.sensitivity[r.tree_index]
        assert np.isinf(tree_sens).sum() > 60

    @given(seed=st.integers(0, 1000), n=st.integers(6, 70))
    @settings(max_examples=15, deadline=None)
    def test_property_random_instances(self, seed, n):
        g, _ = known_mst_instance("random", n, extra_m=2 * n, rng=seed)
        check(g)


class TestSemantics:
    def test_tree_sensitivities_nonnegative(self):
        g, _ = known_mst_instance("binary", 127, extra_m=250, rng=6)
        r = mst_sensitivity(g)
        assert np.all(r.sensitivity[r.tree_index] >= 0)
        assert np.all(r.sensitivity[r.nontree_index] >= 0)

    def test_mc_bounds_are_achieved_by_real_edges(self):
        g, _ = known_mst_instance("random", 60, extra_m=150, rng=7)
        r = mst_sensitivity(g)
        nw = set(np.round(g.w[r.nontree_index], 12).tolist())
        finite = np.isfinite(r.mc)
        for v in np.flatnonzero(finite):
            assert round(float(r.mc[v]), 12) in nw

    def test_increasing_tree_edge_below_sens_keeps_mst(self):
        g, _ = known_mst_instance("random", 50, extra_m=120, rng=8)
        r = mst_sensitivity(g)
        from repro.baselines import verify_by_recompute

        t_idx = r.tree_index
        fin = t_idx[np.isfinite(r.sensitivity[t_idx])]
        if len(fin) == 0:
            pytest.skip("no finite tree sensitivities")
        e = int(fin[0])
        eps = r.sensitivity[e] * 0.5
        w2 = g.w.copy()
        w2[e] += eps
        assert verify_by_recompute(g.with_weights(w2))
        # pushing well beyond the sensitivity breaks the MST (margin
        # must exceed the recompute oracle's isclose tolerance)
        w3 = g.w.copy()
        w3[e] += r.sensitivity[e] + 0.5
        assert not verify_by_recompute(g.with_weights(w3))

    def test_decreasing_nontree_edge_beyond_sens_breaks_mst(self):
        g, _ = known_mst_instance("random", 50, extra_m=120, rng=9)
        r = mst_sensitivity(g)
        from repro.baselines import verify_by_recompute

        e = int(r.nontree_index[0])
        w2 = g.w.copy()
        w2[e] -= r.sensitivity[e] + 0.5
        assert not verify_by_recompute(g.with_weights(w2))

    def test_non_mst_input_rejected(self):
        g, _ = known_mst_instance("random", 60, extra_m=120, rng=10)
        bad = perturb_break_mst(g, rng=11)
        with pytest.raises(ValidationError):
            mst_sensitivity(bad)

    def test_non_spanning_input_rejected(self):
        g = WeightedGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0)], tree_edges=[(0, 1)]
        )
        with pytest.raises(ValidationError):
            mst_sensitivity(g)

    def test_require_mst_false_allows_spanning_non_mst(self):
        g, _ = known_mst_instance("random", 40, extra_m=80, rng=12)
        bad = perturb_break_mst(g, rng=13)
        r = mst_sensitivity(bad, require_mst=False)
        # covering weights still match the oracle's mc computation
        o = sequential_sensitivity(bad)
        np.testing.assert_allclose(r.mc, o.mc)


class TestModesAndReporting:
    def test_oracle_labels_same_result(self):
        g, _ = known_mst_instance("caterpillar", 80, extra_m=160, rng=14)
        a = mst_sensitivity(g)
        b = mst_sensitivity(g, oracle_labels=True)
        np.testing.assert_allclose(a.sensitivity, b.sensitivity)
        assert b.rounds < a.rounds

    def test_notes_peak_linear(self):
        g, _ = known_mst_instance("path", 400, extra_m=800, rng=15)
        r = mst_sensitivity(g)
        assert 0 < r.notes_peak <= 6 * g.n  # Claim 4.13: O(n)

    def test_sens_phases_reported(self):
        g, _ = known_mst_instance("random", 70, extra_m=140, rng=16)
        r = mst_sensitivity(g)
        phases = set(r.report.rounds_by_phase)
        assert any("sens-contract" in p for p in phases)
        assert any("sens-cluster" in p for p in phases)
        assert any("sens-unwind" in p for p in phases)

    def test_nonzero_root(self):
        g, _ = known_mst_instance("random", 60, extra_m=130, rng=17)
        r = mst_sensitivity(g, root=25)
        o = sequential_sensitivity(g, root=25)
        np.testing.assert_allclose(r.sensitivity, o.sensitivity)

    def test_star_no_notes_needed(self):
        g, _ = known_mst_instance("star", 100, extra_m=200, rng=18)
        r, _ = check(g)
        # depth-1 tree: every tree edge is handled at the cluster level
        assert r.notes_peak <= g.n
