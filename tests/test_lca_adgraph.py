"""All-edges LCA (Theorem 2.15) and the ancestor–descendant transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adgraph import split_at_lca
from repro.core.hierarchy import build_hierarchy
from repro.core.lca import all_edges_lca, compact_cluster_tree
from repro.graph.generators import backbone_tree, tree_instance
from repro.graph.tree import RootedTree
from repro.mpc import LocalRuntime

SHAPES = ["path", "star", "binary", "caterpillar", "random"]


def lca_setup(tree, seed=0):
    rt = LocalRuntime()
    n = tree.n
    _, low, high = tree.euler_intervals()
    d = max(1, tree.diameter())
    h = build_hierarchy(rt, tree.parent, np.zeros(n), tree.root, low, high, d)
    return rt, h, low, high, d


class TestAllEdgesLCA:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_oracle(self, shape):
        t = tree_instance(shape, 120, 3)
        rt, h, low, high, d = lca_setup(t)
        rng = np.random.default_rng(5)
        eu = rng.integers(0, t.n, 300)
        ev = rng.integers(0, t.n - 1, 300)
        ev = np.where(ev >= eu, ev + 1, ev)
        got = all_edges_lca(rt, h, low, high, eu, ev, d)
        want = t.lca(eu, ev)
        assert np.array_equal(got, want)

    def test_ancestor_descendant_pairs(self):
        t = tree_instance("path", 50, 0)
        rt, h, low, high, d = lca_setup(t)
        eu = np.array([40, 10, 49])
        ev = np.array([10, 40, 0])
        got = all_edges_lca(rt, h, low, high, eu, ev, d)
        assert got.tolist() == [10, 10, 0]

    def test_siblings(self):
        t = tree_instance("star", 30, 0)
        rt, h, low, high, d = lca_setup(t)
        got = all_edges_lca(rt, h, low, high, np.array([5]), np.array([9]), d)
        assert got[0] == 0

    def test_empty_queries(self):
        t = tree_instance("binary", 15, 0)
        rt, h, low, high, d = lca_setup(t)
        out = all_edges_lca(rt, h, low, high, np.empty(0, np.int64),
                            np.empty(0, np.int64), d)
        assert len(out) == 0

    def test_depth_skewed_regression(self):
        # DESIGN.md substitution 4: the paper's literal line-6 test
        # (climbing both sides) stalls when one endpoint is much deeper;
        # this instance pins the corrected behaviour.
        t = backbone_tree(200, 150, rng=1)
        rt, h, low, high, d = lca_setup(t)
        deep = int(np.argmax(t.depths()))
        shallow_kids = np.flatnonzero(t.depths() == 1)
        eu = np.array([deep])
        ev = np.array([int(shallow_kids[-1])])
        got = all_edges_lca(rt, h, low, high, eu, ev, d)
        assert got[0] == t.lca(eu, ev)[0]

    @given(seed=st.integers(0, 300), n=st.integers(4, 80))
    @settings(max_examples=25, deadline=None)
    def test_property_random_trees(self, seed, n):
        rng = np.random.default_rng(seed)
        parent = np.zeros(n, dtype=np.int64)
        for i in range(1, n):
            parent[i] = rng.integers(0, i)
        t = RootedTree(parent=parent, root=0)
        rt, h, low, high, d = lca_setup(t)
        k = min(40, n * 2)
        eu = rng.integers(0, n, k)
        ev = rng.integers(0, n - 1, k)
        ev = np.where(ev >= eu, ev + 1, ev)
        assert np.array_equal(
            all_edges_lca(rt, h, low, high, eu, ev, d), t.lca(eu, ev)
        )


class TestCompactClusterTree:
    def test_bijection_and_parents(self):
        t = tree_instance("random", 100, 1)
        rt, h, low, high, d = lca_setup(t)
        cl, cid, root_cid = compact_cluster_tree(rt, h)
        assert len(np.unique(cl.col("cid"))) == len(cl)
        assert cl.col("leader")[root_cid] == t.root
        # parent cluster ids point at real rows
        assert np.all(cl.col("pcid") >= 0)
        assert np.all(cl.col("pcid") < len(cl))


class TestSplitAtLCA:
    def test_split_produces_ancestor_descendant(self):
        t = tree_instance("random", 90, 2)
        rt = LocalRuntime()
        rng = np.random.default_rng(0)
        eu = rng.integers(0, 90, 100)
        ev = rng.integers(0, 89, 100)
        ev = np.where(ev >= eu, ev + 1, ev)
        ew = rng.uniform(0, 1, 100)
        lca = t.lca(eu, ev)
        halves = split_at_lca(rt, eu, ev, ew, lca)
        assert np.all(t.is_ancestor(halves.hi, halves.lo))
        assert np.all(halves.lo != halves.hi)

    def test_weights_and_eids_preserved(self):
        t = tree_instance("path", 20, 0)
        rt = LocalRuntime()
        eu = np.array([5, 10])
        ev = np.array([15, 3])
        ew = np.array([1.5, 2.5])
        halves = split_at_lca(rt, eu, ev, ew, t.lca(eu, ev))
        for e in (0, 1):
            ws = halves.w[halves.eid == e]
            assert np.all(ws == ew[e])

    def test_endpoint_equal_to_lca_dropped(self):
        # path: lca(3, 10) = 3, so the (3,3) half disappears
        t = tree_instance("path", 12, 0)
        rt = LocalRuntime()
        halves = split_at_lca(rt, np.array([3]), np.array([10]),
                              np.array([1.0]), t.lca(np.array([3]),
                                                     np.array([10])))
        assert len(halves) == 1
        assert halves.lo[0] == 10 and halves.hi[0] == 3

    def test_observation_220_pathmax_decomposition(self):
        # max over the two halves == pathmax of the original edge
        rng = np.random.default_rng(4)
        t = tree_instance("random", 60, 4)
        w = rng.uniform(0, 1, 60)
        w[t.root] = 0.0
        wt = RootedTree(parent=t.parent, root=t.root, weight=w)
        rt = LocalRuntime()
        eu = rng.integers(0, 60, 50)
        ev = rng.integers(0, 59, 50)
        ev = np.where(ev >= eu, ev + 1, ev)
        lca = wt.lca(eu, ev)
        halves = split_at_lca(rt, eu, ev, np.ones(50), lca)
        half_pm = wt.path_max_to_ancestor(halves.lo, halves.hi)
        full = np.full(50, -np.inf)
        np.maximum.at(full, halves.eid, half_pm)
        assert np.allclose(full, wt.path_max(eu, ev))
