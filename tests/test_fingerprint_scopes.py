"""Subgraph-scoped graph fingerprints (the streaming replay lever).

``graph_fingerprint(g, scope)`` hashes edge *subsequences*, so a
structural batch that only touches non-tree edges must leave every
tree-scoped digest bit-identical — that invariance is exactly what lets
the streaming subsystem replay the validate→clustering substrate from
cache after a non-tree add/remove. These tests pin the invariance
directly, then pin the cache-hit counts it buys on a real store.
"""

import numpy as np
import pytest

from repro.core.verification import verify_mst
from repro.graph import apply_ops
from repro.graph.generators import known_mst_instance
from repro.pipeline import ArtifactStore, graph_fingerprint
from repro.pipeline.artifacts import FINGERPRINT_SCOPES


def make_graph(n=80, extra=160, seed=3):
    g, _ = known_mst_instance("random", n, extra_m=extra, rng=seed)
    return g


def fps(g):
    return {s: graph_fingerprint(g, s) for s in FINGERPRINT_SCOPES}


def heavy_add(g, k=3):
    hi = float(g.w.max())
    ops = [{"kind": "add", "u": i, "v": i + 7, "weight": hi + 1 + i}
           for i in range(k)]
    g2, eff = apply_ops(g, ops)
    assert not eff.tree_affected and eff.applied == k
    return g2


class TestScopeAlgebra:
    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError, match="unknown fingerprint scope"):
            graph_fingerprint(make_graph(), "everything")

    def test_none_scope_sees_only_n(self):
        a, b = make_graph(seed=1), make_graph(seed=2)
        assert graph_fingerprint(a, "none") == graph_fingerprint(b, "none")
        c = make_graph(n=81, seed=1)
        assert graph_fingerprint(a, "none") != graph_fingerprint(c, "none")

    def test_scopes_are_domain_separated(self):
        # same graph, different scopes → different digests (the scope
        # name is hashed in, so an empty non-tree side can't collide
        # with an empty tree side)
        d = fps(make_graph())
        assert len(set(d.values())) == len(FINGERPRINT_SCOPES)

    def test_tree_scopes_invariant_under_nontree_add(self):
        g = make_graph()
        before = fps(g)
        after = fps(heavy_add(g))
        for s in ("none", "tree-structure", "tree"):
            assert after[s] == before[s], s
        for s in ("nontree-structure", "nontree", "topology", "full"):
            assert after[s] != before[s], s

    def test_tree_scopes_invariant_under_nontree_remove(self):
        g = make_graph()
        before = fps(g)
        e = int(np.flatnonzero(~g.tree_mask)[0])
        g2, eff = apply_ops(g, [{"kind": "remove", "edge": e}])
        assert not eff.tree_affected
        after = fps(g2)
        for s in ("none", "tree-structure", "tree"):
            assert after[s] == before[s], s
        for s in ("nontree-structure", "nontree", "topology", "full"):
            assert after[s] != before[s], s

    def test_nontree_reprice_touches_only_weight_scopes(self):
        g = make_graph()
        before = fps(g)
        e = int(np.flatnonzero(~g.tree_mask)[0])
        g2, eff = apply_ops(
            g, [{"kind": "reprice", "edge": e,
                 "weight": float(g.w.max()) + 9}])
        assert not eff.tree_affected
        after = fps(g2)
        # endpoints and membership unchanged: every structure scope holds
        for s in ("none", "tree-structure", "tree",
                  "nontree-structure", "topology"):
            assert after[s] == before[s], s
        for s in ("nontree", "full"):
            assert after[s] != before[s], s

    def test_tree_reprice_touches_only_tree_weight_scopes(self):
        g = make_graph()
        before = fps(g)
        # raise a tree edge a hair — small enough to stay in the tree
        e = int(np.flatnonzero(g.tree_mask)[0])
        g2, eff = apply_ops(
            g, [{"kind": "reprice", "edge": e,
                 "weight": float(g.w[e]) + 1e-9}])
        assert eff.tree_affected and bool(g2.tree_mask[e])
        after = fps(g2)
        for s in ("none", "tree-structure", "nontree-structure",
                  "nontree", "topology"):
            assert after[s] == before[s], s
        for s in ("tree", "full"):
            assert after[s] != before[s], s


class TestReplayCounts:
    """What the invariance buys: cached prefixes on a real store."""

    def test_nontree_structural_change_replays_substrate(self):
        g = make_graph()
        store = ArtifactStore()
        base = verify_mst(g, store=store)
        h0 = store.hits
        after = verify_mst(heavy_add(g), store=store)
        # validate (tree-structure), rooting (tree) and the three
        # scope-"none" substrate stages replay; lca's
        # nontree-structure scope broke, so lca..decide recompute
        assert store.hits - h0 == 5
        assert after.is_mst and base.is_mst

    def test_nontree_reprice_replays_through_lca(self):
        g = make_graph()
        store = ArtifactStore()
        verify_mst(g, store=store)
        h0 = store.hits
        e = int(np.flatnonzero(~g.tree_mask)[0])
        g2, _ = apply_ops(
            g, [{"kind": "reprice", "edge": e,
                 "weight": float(g.w.max()) + 2}])
        after = verify_mst(g2, store=store)
        # non-tree *weights* moved but no structure did: lca
        # (nontree-structure) replays too — 6 cached, adgraph onward new
        assert store.hits - h0 == 6
        assert after.is_mst

    def test_tree_structural_change_shares_only_scopeless_roots(self):
        g = make_graph()
        store = ArtifactStore()
        verify_mst(g, store=store)
        h0 = store.hits
        # a cheap add swaps the tree: every tree-scoped key breaks, and
        # the demoted edge lands in the non-tree side too
        g2, eff = apply_ops(g, [{"kind": "add", "u": 0, "v": g.n // 2,
                                 "weight": float(g.w.min()) / 2}])
        assert eff.tree_affected
        after = verify_mst(g2, store=store)
        assert store.hits == h0  # nothing replays: no scope-"none" roots
        assert after.is_mst


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
