"""Distributed tree toolkit vs sequential oracles (depths, Euler, rooting,
root paths, ancestor tables, connectivity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotATreeError
from repro.graph.generators import backbone_tree, tree_instance
from repro.graph.tree import RootedTree
from repro.mpc import LocalRuntime, Table
from repro.trees import (
    ancestor_tables,
    collect_root_paths,
    diameter_estimate,
    euler_intervals,
    list_rank,
    mpc_connected_components,
    mpc_count_components,
    mpc_depths,
    mpc_is_spanning_tree,
    root_tree,
)

SHAPES = ["path", "star", "binary", "ternary", "caterpillar", "random"]


class TestDepths:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_oracle(self, shape, rt):
        t = tree_instance(shape, 90, 2)
        assert np.array_equal(mpc_depths(rt, t.parent, t.root), t.depths())

    def test_single_vertex(self, rt):
        assert mpc_depths(rt, np.array([0]), 0).tolist() == [0]

    def test_rounds_logarithmic_in_depth(self):
        shallow, deep = LocalRuntime(), LocalRuntime()
        t1 = backbone_tree(200, 4, rng=0)
        t2 = backbone_tree(200, 150, rng=0)
        mpc_depths(shallow, t1.parent, 0)
        mpc_depths(deep, t2.parent, 0)
        assert shallow.rounds < deep.rounds <= 4 * int(np.log2(150) + 2)


class TestDiameterEstimate:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_two_approximation(self, shape, rt):
        t = tree_instance(shape, 120, 4)
        d_hat, _ = diameter_estimate(rt, t.parent, t.root)
        d = t.diameter()
        assert d <= d_hat <= 2 * max(d, 1)


class TestListRank:
    def test_single_chain(self, rt):
        succ = np.array([1, 2, 3, -1])
        assert list_rank(rt, succ).tolist() == [3, 2, 1, 0]

    def test_multiple_chains(self, rt):
        succ = np.array([-1, 0, 1, -1, 3])
        assert list_rank(rt, succ).tolist() == [0, 1, 2, 0, 1]

    def test_cycle_detected(self, rt):
        with pytest.raises(NotATreeError):
            list_rank(rt, np.array([1, 0]))


class TestEulerIntervals:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("n", [2, 9, 64, 150])
    def test_matches_sequential(self, shape, n, rt):
        t = tree_instance(shape, n, 5)
        dfs, low, high = euler_intervals(rt, t.parent, t.root)
        odfs, olow, ohigh = t.euler_intervals()
        assert np.array_equal(dfs, odfs)
        assert np.array_equal(low, olow)
        assert np.array_equal(high, ohigh)

    def test_single_vertex(self, rt):
        dfs, low, high = euler_intervals(rt, np.array([0]), 0)
        assert dfs[0] == low[0] == high[0] == 0

    @given(seed=st.integers(0, 500), n=st.integers(2, 60))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_sequential(self, seed, n):
        rng = np.random.default_rng(seed)
        parent = np.zeros(n, dtype=np.int64)
        for i in range(1, n):
            parent[i] = rng.integers(0, i)
        t = RootedTree(parent=parent, root=0)
        rt = LocalRuntime()
        dfs, low, high = euler_intervals(rt, parent, 0)
        odfs, _, ohigh = t.euler_intervals()
        assert np.array_equal(dfs, odfs)
        assert np.array_equal(high, ohigh)


class TestRooting:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_roundtrip_with_shuffle(self, shape, rt, rng):
        t = tree_instance(shape, 80, 3)
        w = rng.uniform(1, 2, 80)
        w[t.root] = 0.0
        wt = RootedTree(parent=t.parent, root=t.root, weight=w)
        child, par, ew = wt.edge_arrays()
        perm = rng.permutation(len(child))
        uu, vv, ww = child[perm].copy(), par[perm].copy(), ew[perm].copy()
        flip = rng.random(len(uu)) < 0.5
        uu[flip], vv[flip] = vv[flip].copy(), uu[flip].copy()
        parent, weight = root_tree(rt, 80, uu, vv, ww, root=t.root)
        assert np.array_equal(parent, t.parent)
        assert np.allclose(weight, w)

    def test_nonzero_root(self, rt):
        t = tree_instance("random", 40, 9)
        child, par, _ = t.edge_arrays()
        parent, _ = root_tree(rt, 40, child, par, root=17)
        assert parent[17] == 17
        oracle = RootedTree.from_edges(40, child, par, root=17)
        assert np.array_equal(parent, oracle.parent)

    def test_single_vertex(self, rt):
        parent, w = root_tree(rt, 1, np.array([], dtype=np.int64),
                              np.array([], dtype=np.int64))
        assert parent.tolist() == [0]

    def test_wrong_edge_count(self, rt):
        with pytest.raises(NotATreeError):
            root_tree(rt, 3, np.array([0]), np.array([1]))


class TestAncestorTables:
    def test_entries_match_oracle(self, rt):
        t = tree_instance("random", 60, 8)
        depth = t.depths()
        tab = ancestor_tables(rt, t.parent, t.root, int(depth.max()))
        for rec in tab.to_records():
            v, i, anc = rec["v"], rec["i"], rec["anc"]
            x = v
            for _ in range(2**i):
                x = int(t.parent[x])
            assert anc == x

    def test_levels_cover_max_dist(self, rt):
        t = tree_instance("path", 40, 0)
        tab = ancestor_tables(rt, t.parent, t.root, 39)
        assert int(tab.col("i").max()) == 5  # 2^5 = 32 <= 39 < 64


class TestRootPaths:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_complete_and_correct(self, shape, rt):
        t = tree_instance(shape, 50, 6)
        paths = collect_root_paths(rt, t.parent, t.root)
        depth = t.depths()
        assert len(paths) == 50 + depth.sum()
        # spot-check the deepest vertex's full path
        v = int(np.argmax(depth))
        rows = sorted(
            (r["d"], r["anc"]) for r in paths.to_records() if r["v"] == v
        )
        x, want = v, []
        d = 0
        while True:
            want.append((d, x))
            if x == t.root:
                break
            x = int(t.parent[x])
            d += 1
        assert rows == want

    def test_memory_charged_for_paths(self):
        rt = LocalRuntime()
        t = tree_instance("path", 60, 0)
        collect_root_paths(rt, t.parent, t.root)
        # the paths table is Θ(n²) words for a path; must show in the peak
        assert rt.tracker.peak_global_words >= 60 * 59 / 2


class TestConnectivity:
    def test_components_match_oracle(self, rt, rng):
        from repro.graph.validation import connected_components

        u = rng.integers(0, 80, 80)
        v = rng.integers(0, 80, 80)
        keep = u != v
        u, v = u[keep], v[keep]
        got = mpc_connected_components(rt, 80, u, v)
        want = connected_components(80, u, v)
        assert np.array_equal(got, want)

    def test_count(self, rt):
        # components: {0,1,2}, {3,4}, {5}
        assert mpc_count_components(
            rt, 6, np.array([0, 1, 3]), np.array([1, 2, 4])
        ) == 3

    def test_spanning_tree_check(self, rt):
        assert mpc_is_spanning_tree(rt, 4, np.array([0, 1, 2]),
                                    np.array([1, 2, 3]))

    def test_spanning_tree_rejects_cycle_plus_isolated(self, rt):
        # n-1 edges but contains a cycle (the Theorem 5.2 trap)
        assert not mpc_is_spanning_tree(rt, 4, np.array([0, 1, 2]),
                                        np.array([1, 2, 0]))

    def test_isolated_vertices(self, rt):
        assert mpc_count_components(
            rt, 5, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        ) == 5
