"""Placement properties: balance and minimal movement.

Rendezvous hashing gives both properties by construction — each key
lives on its highest-scoring worker, so adding a worker steals exactly
the keys it now top-scores, and removing one remaps exactly the keys
it owned — but these are the properties the router tier *relies on*
(a swap storm after every topology change would erase the point of
snapshot shipping), so they are pinned as tests, not trusted.
"""

import pytest

from repro.errors import ValidationError
from repro.service import Placement


def spread(placement, keys):
    out = {w: [] for w in placement.workers}
    for k in keys:
        out[placement.place(k)].append(k)
    return out


KEYS = [f"instance-{i}" for i in range(100)]


class TestBalance:
    def test_within_2x_ideal_at_100x8(self):
        p = Placement(range(8))
        loads = {w: len(ks) for w, ks in spread(p, KEYS).items()}
        ideal = len(KEYS) / 8
        assert max(loads.values()) <= 2 * ideal
        assert min(loads.values()) >= 1  # nobody starves outright

    def test_every_worker_used_at_scale(self):
        p = Placement(range(8))
        many = [f"k{i}" for i in range(2000)]
        loads = {w: len(ks) for w, ks in spread(p, many).items()}
        ideal = len(many) / 8
        assert max(loads.values()) <= 1.5 * ideal
        assert min(loads.values()) >= 0.5 * ideal


class TestMinimalMovement:
    def test_join_steals_only_for_the_new_worker(self):
        p = Placement(range(8))
        before = {k: p.place(k) for k in KEYS}
        p.add_worker(8)
        after = {k: p.place(k) for k in KEYS}
        moved = [k for k in KEYS if after[k] != before[k]]
        owned = [k for k in KEYS if after[k] == 8]
        # strictly minimal: the moved set IS the new worker's owned set
        # (no key shuffles between surviving workers), and its size
        # tracks the ideal 1/workers share (binomial around 100/9)
        assert sorted(moved) == sorted(owned)
        assert len(moved) <= 2 * len(KEYS) / 9

    def test_leave_remaps_exactly_the_departed_keys(self):
        p = Placement(range(8))
        before = {k: p.place(k) for k in KEYS}
        departed = [k for k in KEYS if before[k] == 3]
        p.remove_worker(3)
        after = {k: p.place(k) for k in KEYS}
        moved = [k for k in KEYS if after[k] != before[k]]
        assert sorted(moved) == sorted(departed)
        for k in KEYS:
            if k not in departed:
                assert after[k] == before[k]

    def test_rejoin_restores_the_original_placement(self):
        p = Placement(range(8))
        before = {k: p.place(k) for k in KEYS}
        p.remove_worker(5)
        p.add_worker(5)
        assert {k: p.place(k) for k in KEYS} == before


class TestReplicas:
    def test_primary_first_and_distinct(self):
        p = Placement(range(6))
        for k in KEYS[:25]:
            reps = p.replicas(k, 3)
            assert reps[0] == p.place(k)
            assert len(reps) == len(set(reps)) == 3

    def test_count_saturates_at_fleet_size(self):
        p = Placement(range(3))
        assert sorted(p.replicas("x", 10)) == sorted(p.workers)

    def test_replica_sets_nest(self):
        # the top-2 set is a prefix of the top-3 set: losing a replica
        # never reshuffles the survivors' ranking
        p = Placement(range(6))
        for k in KEYS[:25]:
            assert p.replicas(k, 3)[:2] == p.replicas(k, 2)


class TestValidation:
    def test_duplicate_worker_rejected(self):
        p = Placement([1, 2])
        with pytest.raises(ValidationError):
            p.add_worker(1)

    def test_remove_unknown_rejected(self):
        p = Placement([1, 2])
        with pytest.raises(ValidationError):
            p.remove_worker(9)

    def test_place_needs_workers(self):
        with pytest.raises(ValidationError):
            Placement().place("x")
