"""WeightedGraph representation tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph import WeightedGraph


def small():
    return WeightedGraph.from_edges(
        4,
        [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 9.0)],
        tree_edges=[(0, 1), (1, 2), (2, 3)],
    )


class TestConstruction:
    def test_from_edges_marks_tree(self):
        g = small()
        assert g.m == 4 and g.m_tree == 3
        assert not g.tree_mask[3]

    def test_tree_edge_order_insensitive(self):
        g = WeightedGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0)], tree_edges=[(1, 0), (2, 1)]
        )
        assert g.m_tree == 2

    def test_missing_tree_edge_rejected(self):
        with pytest.raises(ValidationError):
            WeightedGraph.from_edges(3, [(0, 1, 1.0)], tree_edges=[(1, 2)])

    def test_multi_edges_allowed(self):
        g = WeightedGraph.from_edges(
            2, [(0, 1, 1.0), (0, 1, 2.0)], tree_edges=[(0, 1)]
        )
        assert g.m == 2 and g.m_tree == 1  # only one copy marked

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            WeightedGraph(n=2, u=[0], v=[0], w=[1.0])

    def test_out_of_range_endpoint(self):
        with pytest.raises(ValidationError):
            WeightedGraph(n=2, u=[0], v=[5], w=[1.0])

    def test_nonfinite_weight_rejected(self):
        with pytest.raises(ValidationError):
            WeightedGraph(n=2, u=[0], v=[1], w=[np.inf])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            WeightedGraph(n=2, u=[0], v=[1], w=[1.0, 2.0])


class TestViews:
    def test_tree_and_nontree_split(self):
        g = small()
        tu, tv, tw = g.tree_edges()
        nu, nv, nw = g.nontree_edges()
        assert len(tu) == 3 and len(nu) == 1
        assert nw[0] == 9.0

    def test_total_words(self):
        g = small()
        assert g.total_words() == 4 * 4 + 4

    def test_copy_independent(self):
        g = small()
        c = g.copy()
        c.w[0] = 99.0
        assert g.w[0] == 1.0

    def test_with_weights(self):
        g = small()
        g2 = g.with_weights(g.w * 2)
        assert g2.w[0] == 2.0 and g.w[0] == 1.0
        assert np.array_equal(g2.tree_mask, g.tree_mask)
