"""LocalRuntime primitive semantics against direct NumPy references."""

import numpy as np
import pytest

from repro.errors import KeyPackingError, ProtocolError, ValidationError
from repro.mpc import LocalRuntime, Table
from repro.mpc.runtime import pack_columns, pack_pair


class TestSort:
    def test_single_key(self, rt):
        t = Table(a=[3, 1, 2], b=[0.3, 0.1, 0.2])
        s = rt.sort(t, ("a",))
        assert s.col("a").tolist() == [1, 2, 3]
        assert s.col("b").tolist() == [0.1, 0.2, 0.3]

    def test_multi_key_lexicographic(self, rt):
        t = Table(a=[1, 0, 1, 0], b=[0, 1, 1, 0])
        s = rt.sort(t, ("a", "b"))
        assert list(zip(s.col("a"), s.col("b"))) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_stability(self, rt):
        t = Table(k=[1, 1, 1], tag=[10, 20, 30])
        s = rt.sort(t, ("k",))
        assert s.col("tag").tolist() == [10, 20, 30]

    def test_negative_keys(self, rt):
        t = Table(a=[-5, 3, -10])
        assert rt.sort(t, ("a",)).col("a").tolist() == [-10, -5, 3]

    def test_empty(self, rt):
        t = Table(a=np.empty(0, dtype=np.int64))
        assert len(rt.sort(t, ("a",))) == 0

    def test_charges_one_round(self, rt):
        rt.sort(Table(a=[1]), ("a",))
        assert rt.rounds == 1

    def test_float_key_rejected(self, rt):
        with pytest.raises(KeyPackingError):
            rt.sort(Table(a=[1.5]), ("a",))


class TestPacking:
    def test_order_preserved(self):
        t = Table(a=[2, 1, 1, 2], b=[1, 9, 2, 0])
        packed = pack_columns(t, ("a", "b"))
        order = np.argsort(packed, kind="stable")
        rows = list(zip(t.col("a")[order], t.col("b")[order]))
        assert rows == sorted(rows)

    def test_overflow_detected(self):
        big = np.array([0, 2**40], dtype=np.int64)
        t = Table(a=big, b=big, c=big)
        with pytest.raises(KeyPackingError):
            pack_columns(t, ("a", "b", "c"))

    def test_pair_packing_consistent_across_tables(self):
        left = Table(a=[5, 6], b=[1, 2])
        right = Table(x=[6, 0], y=[2, 0])  # wider range on purpose
        lk, rk = pack_pair(left, ("a", "b"), right, ("x", "y"))
        assert lk[1] == rk[0]  # (6,2) packs identically in both tables

    def test_pair_arity_mismatch(self):
        with pytest.raises(ValidationError):
            pack_pair(Table(a=[1]), ("a",), Table(x=[1], y=[1]), ("x", "y"))


class TestScan:
    def test_plain_cumsum(self, rt):
        out = rt.scan(Table(v=[1.0, 2.0, 3.0]), "v", "sum")
        assert out.tolist() == [1.0, 3.0, 6.0]

    def test_segmented_max(self, rt):
        t = Table(k=[0, 0, 1, 1], v=[2.0, 1.0, 5.0, 9.0])
        out = rt.scan(t, "v", "max", by=("k",))
        assert out.tolist() == [2.0, 2.0, 5.0, 9.0]

    def test_exclusive_sum_identity_at_starts(self, rt):
        t = Table(k=[0, 0, 1], v=[4, 5, 6])
        out = rt.scan(t, "v", "sum", by=("k",), exclusive=True)
        assert out.tolist() == [0, 4, 0]

    def test_invalid_op(self, rt):
        with pytest.raises(ProtocolError):
            rt.scan(Table(v=[1.0]), "v", "avg")


class TestLookup:
    def test_hit_and_miss(self, rt):
        q = Table(k=[5, 7, 5])
        d = Table(k=[5, 6], val=[50.0, 60.0])
        out = rt.lookup(q, ("k",), d, ("k",), {"v": "val"}, default={"v": -1.0})
        assert out.col("v").tolist() == [50.0, -1.0, 50.0]

    def test_preserves_query_order_and_columns(self, rt):
        q = Table(k=[2, 1], tag=[7, 8])
        d = Table(k=[1, 2], val=[10, 20])
        out = rt.lookup(q, ("k",), d, ("k",), {"v": "val"})
        assert out.col("tag").tolist() == [7, 8]
        assert out.col("v").tolist() == [20, 10]

    def test_duplicate_data_keys_rejected(self, rt):
        with pytest.raises(ProtocolError):
            rt.lookup(Table(k=[1]), ("k",), Table(k=[1, 1], v=[1, 2]),
                      ("k",), {"v": "v"})

    def test_miss_without_default_raises(self, rt):
        with pytest.raises(ProtocolError):
            rt.lookup(Table(k=[9]), ("k",), Table(k=[1], v=[1]), ("k",),
                      {"v": "v"})

    def test_multi_column_key(self, rt):
        q = Table(a=[1, 2], b=[1, 2])
        d = Table(a=[1, 2], b=[1, 2], v=[11.0, 22.0])
        out = rt.lookup(q, ("a", "b"), d, ("a", "b"), {"v": "v"})
        assert out.col("v").tolist() == [11.0, 22.0]

    def test_empty_data_all_defaults(self, rt):
        q = Table(k=[1, 2])
        d = Table(k=np.empty(0, np.int64), v=np.empty(0, np.float64))
        out = rt.lookup(q, ("k",), d, ("k",), {"v": "v"}, default={"v": 0.0})
        assert out.col("v").tolist() == [0.0, 0.0]

    def test_int_payload_with_inf_default_becomes_float(self, rt):
        q = Table(k=[9])
        d = Table(k=[1], v=[5])
        out = rt.lookup(q, ("k",), d, ("k",), {"v": "v"},
                        default={"v": np.inf})
        assert out.col("v")[0] == np.inf


class TestPredecessor:
    def test_basic(self, rt):
        q = Table(k=[0, 5, 10, 35])
        d = Table(k=[3, 7, 30], v=[1.0, 2.0, 3.0])
        out = rt.predecessor(q, "k", d, "k", {"v": "v"}, {"v": -9.0})
        assert out.col("v").tolist() == [-9.0, 1.0, 2.0, 3.0]

    def test_ties_take_last_input_row(self, rt):
        q = Table(k=[5])
        d = Table(k=[5, 5], v=[1.0, 2.0])
        out = rt.predecessor(q, "k", d, "k", {"v": "v"}, {"v": 0.0})
        assert out.col("v")[0] == 2.0

    def test_float_key_rejected(self, rt):
        with pytest.raises(ValidationError):
            rt.predecessor(Table(k=[1.0]), "k", Table(k=[1], v=[1]),
                           "k", {"v": "v"}, {"v": 0})


class TestReduce:
    def test_grouped_aggregates(self, rt):
        t = Table(k=[2, 1, 2, 1], v=[1.0, 5.0, 3.0, 2.0])
        out = rt.reduce_by_key(t, ("k",), {"mx": ("v", "max"),
                                           "mn": ("v", "min"),
                                           "sm": ("v", "sum")})
        assert out.col("k").tolist() == [1, 2]
        assert out.col("mx").tolist() == [5.0, 3.0]
        assert out.col("mn").tolist() == [2.0, 1.0]
        assert out.col("sm").tolist() == [7.0, 4.0]

    def test_multi_key(self, rt):
        t = Table(a=[0, 0, 1], b=[0, 0, 1], v=[1, 2, 3])
        out = rt.reduce_by_key(t, ("a", "b"), {"s": ("v", "sum")})
        assert len(out) == 2

    def test_empty(self, rt):
        t = Table(k=np.empty(0, np.int64), v=np.empty(0, np.float64))
        out = rt.reduce_by_key(t, ("k",), {"s": ("v", "sum")})
        assert len(out) == 0

    def test_unique_keys_helper(self, rt):
        t = Table(k=[3, 1, 3, 1, 1])
        u = rt.unique_keys(t, ("k",))
        assert u.col("k").tolist() == [1, 3]


class TestScalarFilterCount:
    def test_scalar_ops(self, rt):
        t = Table(v=[1.0, 5.0, 3.0])
        assert rt.scalar(t, "v", "max") == 5.0
        assert rt.scalar(t, "v", "min") == 1.0
        assert rt.scalar(t, "v", "sum") == 9.0

    def test_scalar_empty_identities(self, rt):
        t = Table(v=np.empty(0, np.float64))
        assert rt.scalar(t, "v", "sum") == 0.0
        assert rt.scalar(t, "v", "max") == -np.inf

    def test_scalar_int_returns_int(self, rt):
        assert rt.scalar(Table(v=[1, 2]), "v", "sum") == 3

    def test_filter(self, rt):
        t = Table(v=[1, 2, 3, 4])
        out = rt.filter(t, t.col("v") % 2 == 0)
        assert out.col("v").tolist() == [2, 4]

    def test_count(self, rt):
        assert rt.count(Table(v=[1, 2, 3])) == 3
        assert rt.count(Table(v=np.empty(0, np.int64))) == 0


class TestExpandJoin:
    def test_one_to_many(self, rt):
        q = Table(k=[1, 2, 3], qid=[0, 1, 2])
        d = Table(k=[1, 1, 2], val=[10.0, 11.0, 20.0])
        out = rt.expand_join(q, ("k",), d, ("k",), {"v": "val"},
                             carry=("qid",))
        rows = sorted(zip(out.col("qid"), out.col("v")))
        assert rows == [(0, 10.0), (0, 11.0), (1, 20.0)]

    def test_no_matches_empty(self, rt):
        q = Table(k=[9])
        d = Table(k=[1], val=[1.0])
        out = rt.expand_join(q, ("k",), d, ("k",), {"v": "val"}, carry=())
        assert len(out) == 0

    def test_empty_inputs(self, rt):
        q = Table(k=np.empty(0, np.int64))
        d = Table(k=[1], val=[1.0])
        assert len(rt.expand_join(q, ("k",), d, ("k",), {"v": "val"})) == 0
