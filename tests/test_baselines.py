"""Baseline algorithms: Kruskal, Borůvka-in-MPC, naive verifier, oracles."""

import numpy as np
import pytest

from repro.baselines import (
    kruskal_mst,
    mpc_boruvka,
    mst_weight,
    naive_verify_mst,
    nontree_pathmax,
    sequential_sensitivity,
    verify_by_pathmax,
    verify_by_recompute,
    verify_by_recompute_mpc,
)
from repro.errors import DisconnectedGraphError
from repro.graph.generators import (
    known_mst_instance,
    perturb_break_mst,
    random_connected_graph,
)
from repro.graph.graph import WeightedGraph
from repro.mpc import LocalRuntime


class TestKruskal:
    def test_simple(self):
        g = WeightedGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)]
        )
        idx, w = kruskal_mst(g)
        assert idx.tolist() == [0, 1] and w == 3.0

    def test_disconnected_raises(self):
        g = WeightedGraph(n=4, u=[0, 2], v=[1, 3], w=[1.0, 1.0])
        with pytest.raises(DisconnectedGraphError):
            kruskal_mst(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = random_connected_graph(50, 150, rng=seed)
        nxg = nx.Graph()
        for i in range(g.m):
            cur = nxg.get_edge_data(int(g.u[i]), int(g.v[i]))
            w = float(g.w[i])
            if cur is None or cur["weight"] > w:
                nxg.add_edge(int(g.u[i]), int(g.v[i]), weight=w)
        want = nx.minimum_spanning_tree(nxg).size(weight="weight")
        assert np.isclose(mst_weight(g), want)


class TestBoruvka:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_kruskal(self, seed):
        g = random_connected_graph(70, 220, rng=seed)
        rt = LocalRuntime()
        res = mpc_boruvka(rt, g)
        assert np.isclose(res.total_weight, mst_weight(g))
        assert len(res.mst_edge_index) == g.n - 1

    def test_phase_count_logarithmic(self):
        g = random_connected_graph(256, 700, rng=1)
        rt = LocalRuntime()
        res = mpc_boruvka(rt, g)
        assert res.phases <= int(np.log2(256)) + 2

    def test_phases_logarithmic_on_path_mst(self):
        # paths force pairwise component merges: Θ(log n) phases — the
        # shape behind the "recompute needs log n rounds" baseline
        from repro.graph.generators import attach_nontree_edges, path_tree

        phases = []
        for n in (64, 1024):
            g = attach_nontree_edges(path_tree(n), 2 * n, rng=1, mode="mst")
            rt = LocalRuntime()
            phases.append(mpc_boruvka(rt, g).phases)
        assert phases[1] > phases[0]
        assert phases[1] >= int(np.log2(1024)) // 2  # logarithmic, base > 2

    def test_star_collapses_in_constant_phases(self):
        # hub-shaped MSTs merge everything into the hub immediately;
        # documents why E1/E2 report the baseline per instance shape
        from repro.graph.generators import attach_nontree_edges, star_tree

        g = attach_nontree_edges(star_tree(512), 1024, rng=1, mode="mst")
        assert mpc_boruvka(LocalRuntime(), g).phases <= 3

    def test_recompute_verifier(self):
        g, _ = known_mst_instance("random", 60, extra_m=150, rng=2)
        assert verify_by_recompute_mpc(LocalRuntime(), g)
        bad = perturb_break_mst(g, rng=3)
        assert not verify_by_recompute_mpc(LocalRuntime(), bad)

    def test_recompute_verifier_rejects_nontree(self):
        g = WeightedGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
            tree_edges=[(0, 1), (0, 2)],
        )
        w = g.w.copy()
        g2 = WeightedGraph(n=3, u=g.u, v=g.v, w=w,
                           tree_mask=np.array([True, True, False]))
        assert verify_by_recompute_mpc(LocalRuntime(), g2)


class TestNaiveVerifier:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_verdict_as_pipeline(self, seed):
        g = random_connected_graph(60, 180, rng=seed + 50)
        from repro.core.verification import verify_mst

        rt = LocalRuntime()
        nv = naive_verify_mst(rt, g)
        assert nv.is_mst == verify_mst(g).is_mst
        assert np.allclose(nv.pathmax, nontree_pathmax(g))


class TestSequentialOracles:
    def test_two_verifiers_agree(self):
        for seed in range(6):
            g = random_connected_graph(40, 100, rng=seed)
            assert verify_by_recompute(g) == verify_by_pathmax(g)

    def test_sensitivity_bruteforce_small(self):
        g, _ = known_mst_instance("random", 25, extra_m=50, rng=1)
        o = sequential_sensitivity(g)
        # brute force per tree edge
        from repro.graph.tree import RootedTree

        tm = g.tree_mask
        t = RootedTree.from_edges(g.n, g.u[tm], g.v[tm], g.w[tm], root=0)
        nt = np.flatnonzero(~tm)
        mc = np.full(g.n, np.inf)
        for i in nt:
            u, v, w = int(g.u[i]), int(g.v[i]), float(g.w[i])
            l = int(t.lca(np.array([u]), np.array([v]))[0])
            for end in (u, v):
                x = end
                while x != l:
                    mc[x] = min(mc[x], w)
                    x = int(t.parent[x])
        np.testing.assert_allclose(o.mc, mc)

    def test_sensitivity_root_edge_untouched(self):
        g, _ = known_mst_instance("binary", 31, extra_m=60, rng=2)
        o = sequential_sensitivity(g)
        assert np.isinf(o.mc[0])  # the root has no parent edge
