"""Unit tests for the columnar Table record container."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mpc import Table


class TestConstruction:
    def test_from_kwargs(self):
        t = Table(a=[1, 2, 3], b=[1.0, 2.0, 3.0])
        assert len(t) == 3
        assert set(t.columns) == {"a", "b"}

    def test_from_mapping(self):
        t = Table({"x": np.arange(4)})
        assert len(t) == 4

    def test_empty_no_columns(self):
        t = Table()
        assert len(t) == 0
        assert t.words == 0

    def test_empty_with_schema(self):
        t = Table.empty({"a": np.int64, "w": np.float64})
        assert len(t) == 0
        assert t.col("a").dtype == np.int64
        assert t.col("w").dtype == np.float64

    def test_int_columns_normalised_to_int64(self):
        t = Table(a=np.array([1, 2], dtype=np.int32))
        assert t.col("a").dtype == np.int64

    def test_float_columns_normalised_to_float64(self):
        t = Table(a=np.array([1, 2], dtype=np.float32))
        assert t.col("a").dtype == np.float64

    def test_bool_column_allowed(self):
        t = Table(a=np.array([True, False]))
        assert t.col("a").dtype == np.bool_

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Table(a=[1, 2], b=[1])

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            Table(a=np.zeros((2, 2)))

    def test_object_dtype_rejected(self):
        with pytest.raises(ValidationError):
            Table(a=np.array(["x", "y"]))


class TestAlgebra:
    def setup_method(self):
        self.t = Table(a=[3, 1, 2], b=[30.0, 10.0, 20.0])

    def test_select(self):
        s = self.t.select(["a"])
        assert s.columns == ("a",)

    def test_select_missing_raises(self):
        with pytest.raises(ValidationError):
            self.t.select(["zz"])

    def test_drop(self):
        assert self.t.drop("b").columns == ("a",)

    def test_rename(self):
        r = self.t.rename({"a": "x"})
        assert "x" in r and "a" not in r

    def test_with_cols_adds(self):
        t2 = self.t.with_cols(c=[1, 2, 3])
        assert np.array_equal(t2.col("c"), [1, 2, 3])

    def test_with_cols_replaces(self):
        t2 = self.t.with_cols(a=[9, 9, 9])
        assert np.array_equal(t2.col("a"), [9, 9, 9])

    def test_with_cols_length_mismatch(self):
        with pytest.raises(ValidationError):
            self.t.with_cols(c=[1])

    def test_take(self):
        t2 = self.t.take(np.array([2, 0]))
        assert np.array_equal(t2.col("a"), [2, 3])

    def test_mask(self):
        t2 = self.t.mask(self.t.col("a") >= 2)
        assert np.array_equal(sorted(t2.col("a")), [2, 3])

    def test_mask_length_mismatch(self):
        with pytest.raises(ValidationError):
            self.t.mask(np.array([True]))

    def test_head(self):
        assert len(self.t.head(2)) == 2

    def test_concat(self):
        c = Table.concat([self.t, self.t])
        assert len(c) == 6

    def test_concat_schema_mismatch(self):
        with pytest.raises(ValidationError):
            Table.concat([self.t, Table(a=[1])])

    def test_concat_empty_list(self):
        with pytest.raises(ValidationError):
            Table.concat([])

    def test_words(self):
        assert self.t.words == 3 * 2

    def test_equals(self):
        assert self.t.equals(Table(a=[3, 1, 2], b=[30.0, 10.0, 20.0]))
        assert not self.t.equals(Table(a=[3, 1, 2], b=[30.0, 10.0, 21.0]))

    def test_to_records(self):
        recs = self.t.to_records()
        assert recs[0] == {"a": 3, "b": 30.0}

    def test_iteration_yields_column_names(self):
        assert sorted(self.t) == ["a", "b"]

    def test_contains(self):
        assert "a" in self.t and "zz" not in self.t

    def test_original_arrays_not_aliased_on_take(self):
        t2 = self.t.take(np.array([0, 1, 2]))
        t2.col("a")[0] = 99
        assert self.t.col("a")[0] == 3
