"""Workload generator tests: shapes, diameters, MST properties."""

import numpy as np
import pytest

from repro.baselines import verify_by_recompute
from repro.errors import ValidationError
from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    balanced_tree,
    caterpillar_tree,
    grid_tree,
    known_mst_instance,
    one_vs_two_cycles_instance,
    path_tree,
    perturb_break_mst,
    power_law_tree,
    random_connected_graph,
    random_recursive_tree,
    star_tree,
    tree_instance,
    TREE_SHAPES,
)
from repro.graph.validation import count_components, is_spanning_tree


class TestTreeShapes:
    def test_path_diameter(self):
        assert path_tree(10).diameter() == 9

    def test_star_diameter(self):
        assert star_tree(10).diameter() == 2

    def test_balanced_depth_logarithmic(self):
        t = balanced_tree(127, 2)
        assert t.height() == 6

    def test_balanced_branching_validated(self):
        with pytest.raises(ValidationError):
            balanced_tree(10, 1)

    def test_caterpillar_structure(self):
        t = caterpillar_tree(20, spine=5)
        assert t.n == 20
        assert (t.depths() <= 5).all()

    def test_caterpillar_spine_validated(self):
        with pytest.raises(ValidationError):
            caterpillar_tree(5, spine=9)

    def test_random_recursive_reproducible(self):
        a = random_recursive_tree(50, 7)
        b = random_recursive_tree(50, 7)
        assert np.array_equal(a.parent, b.parent)

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_dispatcher_covers_all_shapes(self, shape):
        t = tree_instance(shape, 30, 1)
        assert t.n == 30

    def test_dispatcher_unknown(self):
        with pytest.raises(ValidationError):
            tree_instance("sierpinski", 10, 0)


class TestBackbone:
    @pytest.mark.parametrize("d", [2, 5, 17, 63, 99])
    def test_exact_diameter(self, d):
        t = backbone_tree(100, d, rng=d)
        assert t.diameter() == d

    def test_pure_path_when_n_matches(self):
        t = backbone_tree(10, 9, rng=0)
        assert t.diameter() == 9

    def test_diameter_out_of_range(self):
        with pytest.raises(ValidationError):
            backbone_tree(10, 10, rng=0)

    def test_diameter_one_with_leaves_rejected(self):
        with pytest.raises(ValidationError):
            backbone_tree(10, 1, rng=0)


class TestInstances:
    @pytest.mark.parametrize("mode", ["mst", "tight"])
    def test_tree_is_mst(self, mode):
        g, t = known_mst_instance("random", 80, extra_m=160, rng=4, mode=mode)
        assert verify_by_recompute(g)

    def test_random_mode_usually_not_mst(self):
        hits = 0
        for seed in range(8):
            g = random_connected_graph(60, 200, rng=seed)
            hits += verify_by_recompute(g)
        assert hits <= 2  # random weights almost never make T the MST

    def test_nontree_weight_exceeds_pathmax(self):
        g, t = known_mst_instance("binary", 64, extra_m=100, rng=0)
        nu, nv, nw = g.nontree_edges()
        assert np.all(nw >= t.path_max(nu, nv))

    def test_perturbation_breaks_mst(self):
        g, _ = known_mst_instance("random", 70, extra_m=140, rng=1)
        bad = perturb_break_mst(g, rng=2)
        assert verify_by_recompute(g)
        assert not verify_by_recompute(bad)

    def test_perturbation_requires_nontree_edges(self):
        g, _ = known_mst_instance("path", 10, extra_m=0, rng=0)
        with pytest.raises(ValidationError):
            perturb_break_mst(g, rng=0)

    def test_reproducible(self):
        g1, _ = known_mst_instance("random", 30, extra_m=50, rng=42)
        g2, _ = known_mst_instance("random", 30, extra_m=50, rng=42)
        assert np.array_equal(g1.w, g2.w)

    def test_random_connected_graph_connected(self):
        g = random_connected_graph(40, 60, rng=5)
        assert count_components(g.n, g.u, g.v) == 1

    def test_random_connected_needs_enough_edges(self):
        with pytest.raises(ValidationError):
            random_connected_graph(10, 5, rng=0)


class TestLowerBoundFamily:
    def test_one_cycle_candidate_is_spanning_mst(self):
        g, apex = one_vs_two_cycles_instance(40, two_cycles=False, rng=1)
        tu, tv, _ = g.tree_edges()
        assert is_spanning_tree(g.n, tu, tv)
        assert verify_by_recompute(g)

    def test_two_cycles_candidate_not_a_tree(self):
        g, apex = one_vs_two_cycles_instance(40, two_cycles=True, rng=1)
        tu, tv, _ = g.tree_edges()
        assert not is_spanning_tree(g.n, tu, tv)

    def test_graph_diameter_is_two(self):
        import networkx as nx

        g, apex = one_vs_two_cycles_instance(20, two_cycles=False, rng=0)
        nxg = nx.Graph()
        nxg.add_edges_from(zip(g.u.tolist(), g.v.tolist()))
        assert nx.diameter(nxg) == 2

    def test_candidate_tree_diameter_is_linear(self):
        from repro.graph.tree import RootedTree

        g, apex = one_vs_two_cycles_instance(40, two_cycles=False, rng=3)
        tu, tv, tw = g.tree_edges()
        t = RootedTree.from_edges(g.n, tu, tv, tw, root=apex)
        assert t.diameter() >= g.n // 2

    def test_odd_or_small_n_rejected(self):
        with pytest.raises(ValidationError):
            one_vs_two_cycles_instance(7, False, rng=0)
        with pytest.raises(ValidationError):
            one_vs_two_cycles_instance(4, False, rng=0)

    def test_ids_shuffled(self):
        g, _ = one_vs_two_cycles_instance(30, False, rng=9)
        cyc_u = g.u[: 30]
        assert not np.array_equal(np.sort(cyc_u), cyc_u)


class TestWorkloadDiversityShapes:
    """The S19 service-benchmark families: grid and power_law."""

    def test_grid_diameter_is_sqrt_n(self):
        for n in (100, 400, 1600):
            d = grid_tree(n).diameter()
            root_n = int(np.sqrt(n))
            assert root_n <= d <= 3 * root_n, (n, d)

    def test_grid_structure_is_comb(self):
        t = grid_tree(16)  # 4x4
        assert np.array_equal(t.parent[:4], [0, 0, 1, 2])  # spine row
        assert np.array_equal(t.parent[4:8], [0, 1, 2, 3])  # next row

    def test_grid_small_sizes(self):
        for n in (1, 2, 3, 5):
            t = grid_tree(n)
            assert t.n == n

    def test_power_law_has_heavy_hubs(self):
        t = power_law_tree(2000, rng=3)
        deg = np.bincount(t.parent, minlength=2000)
        deg[t.root] -= 1  # self-parent convention
        # preferential attachment: the biggest hub dwarfs the uniform-
        # attachment expectation (max degree ~log n for random shape)
        assert deg.max() > 50
        # ...while the diameter stays logarithmic
        assert t.diameter() < 40

    def test_power_law_reproducible(self):
        a = power_law_tree(300, rng=11)
        b = power_law_tree(300, rng=11)
        assert np.array_equal(a.parent, b.parent)

    @pytest.mark.parametrize("shape", ["grid", "power_law"])
    def test_known_mst_instance_is_mst(self, shape):
        g, t = known_mst_instance(shape, 150, extra_m=300, rng=4)
        tu, tv, _ = g.tree_edges()
        assert is_spanning_tree(g.n, tu, tv)
        assert verify_by_recompute(g)
