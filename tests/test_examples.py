"""The shipped examples must run to completion (subprocess smoke tests)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "datacenter_topology_audit.py",
        "backbone_sensitivity_planning.py",
        "regional_grid_forest.py",
        "lower_bound_demo.py",
        "scaling_study.py",
        "weight_update_service.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "is MST?          True" in out
    assert "most fragile MST edges" in out
    assert "is_mst=False" in out  # the perturbed copy


def test_lower_bound_demo():
    out = run_example("lower_bound_demo.py")
    assert "rejected" in out
    assert "R²" in out


def test_regional_grid_forest():
    out = run_example("regional_grid_forest.py")
    assert "forest verified minimal: True" in out
    assert "north" in out and "coast" in out


def test_backbone_planning():
    out = run_example("backbone_sensitivity_planning.py")
    assert "priced out" in out
    assert "required discount" in out


def test_weight_update_service():
    out = run_example("weight_update_service.py")
    assert "served 200,000 weight-update queries" in out
    assert "shed 0" in out
    assert "patched — 0 pipeline stages" in out
    assert "rebuilt — replayed 6 cached stages" in out
    assert "standby replacements" in out
    assert "keeps the backbone optimal" in out


@pytest.mark.slow
def test_datacenter_audit():
    out = run_example("datacenter_topology_audit.py", timeout=480)
    assert "rounds stay flat" in out


@pytest.mark.slow
def test_scaling_study():
    out = run_example("scaling_study.py", timeout=480)
    assert "message-level engine agrees" in out
