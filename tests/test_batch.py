"""Batch runner: determinism, pool-vs-inline equivalence, persistence."""

import json

import numpy as np
import pytest

from repro.batch import (
    BatchRunner,
    JobSpec,
    RECORD_FIELDS,
    aggregate,
    make_workload,
)
from repro.errors import ValidationError
from repro.oracle import SensitivityOracle, build_oracle


def strip_wall(results):
    recs = [r.as_record() for r in results]
    for rec in recs:
        rec.pop("wall_s")
        rec.pop("oracle_path")
    return recs


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(kind="sensitivity", shape="binary", n=50, seed=3)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_build_is_deterministic(self):
        spec = JobSpec(kind="verify", shape="random", n=40, seed=5,
                       break_mst=True)
        g1, g2 = spec.build(), spec.build()
        np.testing.assert_array_equal(g1.w, g2.w)
        np.testing.assert_array_equal(g1.tree_mask, g2.tree_mask)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValidationError):
            JobSpec(kind="mst")
        with pytest.raises(ValidationError):
            JobSpec(shape="hypercube")
        with pytest.raises(ValidationError):
            JobSpec(kind="sensitivity", break_mst=True)


class TestWorkload:
    def test_deterministic_and_mixed(self):
        a = make_workload(count=12, n=60, base_seed=1)
        b = make_workload(count=12, n=60, base_seed=1)
        assert a == b
        kinds = {j.kind for j in a}
        assert kinds == {"verify", "sensitivity"}
        assert len({j.seed for j in a}) == 12  # per-job seeds

    def test_broken_fraction_only_affects_verify(self):
        jobs = make_workload(count=20, n=60, base_seed=2,
                             broken_fraction=1.0)
        for j in jobs:
            assert j.break_mst == (j.kind == "verify")

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            make_workload(count=0)
        with pytest.raises(ValidationError):
            make_workload(count=4, kinds=())
        with pytest.raises(ValidationError):
            make_workload(count=4, shapes=())


class TestBatchRunner:
    def test_pool_matches_inline(self):
        jobs = make_workload(count=6, n=50, base_seed=3)
        inline = BatchRunner(processes=1).run(jobs)
        pooled = BatchRunner(processes=2).run(jobs)
        assert strip_wall(inline) == strip_wall(pooled)

    def test_results_follow_submission_order(self):
        jobs = make_workload(count=5, n=40, base_seed=4)
        results = BatchRunner(processes=2).run(jobs)
        assert [r.job_id for r in results] == list(range(5))
        for spec, res in zip(jobs, results):
            assert (res.kind, res.shape, res.seed) == \
                (spec.kind, spec.shape, spec.seed)

    def test_broken_verify_jobs_report_not_mst(self):
        jobs = [JobSpec(kind="verify", shape="random", n=40, seed=9,
                        break_mst=True)]
        (res,) = BatchRunner(processes=1).run(jobs)
        assert res.ok and res.is_mst is False and res.n_violations >= 1

    def test_job_error_is_captured_not_raised(self):
        # n=2 with extra edges is fine, but extra_m<0 breaks the generator
        jobs = [JobSpec(kind="verify", n=40, seed=0),
                JobSpec(kind="verify", n=40, extra_m=-5, seed=0)]
        results = BatchRunner(processes=1).run(jobs)
        assert results[0].ok
        assert not results[1].ok and results[1].error

    def test_error_jobs_carry_status_and_traceback(self):
        """Failed jobs are structured: status + the worker traceback,
        not just a one-line message."""
        jobs = [JobSpec(kind="verify", n=40, extra_m=-5, seed=0)]
        (res,) = BatchRunner(processes=1).run(jobs)
        assert res.status == "error"
        assert res.traceback and "Traceback" in res.traceback
        assert res.error in res.traceback.splitlines()[-1]
        # the ok path reports status="ok" with no traceback
        (good,) = BatchRunner(processes=1).run(
            [JobSpec(kind="verify", n=40, seed=0)])
        assert good.status == "ok" and good.traceback is None

    def test_one_bad_job_never_discards_siblings(self):
        """Fault isolation across the pool: a raising job comes back as
        a structured error result, every sibling's result is intact."""
        jobs = [JobSpec(kind="verify", n=40, seed=0),
                JobSpec(kind="verify", n=40, extra_m=-5, seed=1),
                JobSpec(kind="sensitivity", n=40, seed=2)]
        results = BatchRunner(processes=2).run(jobs)
        assert [r.job_id for r in results] == [0, 1, 2]
        assert results[0].ok and results[2].ok
        bad = results[1]
        assert not bad.ok and bad.status == "error"
        assert bad.traceback and "Traceback" in bad.traceback
        inline = BatchRunner(processes=1).run(jobs)
        assert strip_wall(results) == strip_wall(inline)

    def test_worker_crash_synthesizes_crashed_result(self, monkeypatch):
        """A worker process dying mid-job (not a Python exception — the
        job never reports back) yields a status="crashed" JobResult in
        the right slot; siblings are delivered normally."""
        from repro.mpc.parallel import Outcome, WorkerPool

        orig = WorkerPool.map

        def lossy(self, kind, payloads, max_inflight=None):
            outs = orig(self, kind, payloads, max_inflight)
            outs[1] = Outcome(ok=False, crashed=True,
                              error="worker 0 died (exitcode 9) "
                                    "while executing task 1")
            return outs

        monkeypatch.setattr(WorkerPool, "map", lossy)
        jobs = make_workload(count=3, n=40, base_seed=6)
        results = BatchRunner(processes=2).run(jobs)
        assert results[0].ok and results[2].ok
        crashed = results[1]
        assert not crashed.ok and crashed.status == "crashed"
        assert "died" in crashed.error
        # the synthesized result still carries the job identity
        assert (crashed.job_id, crashed.kind, crashed.shape,
                crashed.seed) == (1, jobs[1].kind, jobs[1].shape,
                                  jobs[1].seed)

    def test_persisted_oracles_rehydrate(self, tmp_path):
        jobs = [JobSpec(kind="sensitivity", shape="binary", n=63,
                        extra_m=120, seed=13)]
        (res,) = BatchRunner(processes=1,
                             persist_dir=str(tmp_path)).run(jobs)
        assert res.ok and res.oracle_path
        back = SensitivityOracle.load(res.oracle_path)
        fresh = build_oracle(jobs[0].build())
        np.testing.assert_array_equal(back.threshold, fresh.threshold)
        np.testing.assert_array_equal(back.cover_edge, fresh.cover_edge)
        rng = np.random.default_rng(1)
        e = rng.integers(0, back.m, 100)
        x = rng.uniform(0, 2, 100)
        np.testing.assert_array_equal(back.survives_bulk(e, x),
                                      fresh.survives_bulk(e, x))


class TestAggregation:
    def test_aggregate_groups_and_counts(self):
        jobs = make_workload(count=8, n=50, base_seed=6)
        results = BatchRunner(processes=1).run(jobs)
        headers, rows = aggregate(results)
        assert headers[:2] == ["kind", "shape"]
        assert sum(r[headers.index("jobs")] for r in rows) == 8
        assert sum(r[headers.index("ok")] for r in rows) == 8

    def test_records_are_json_safe(self):
        jobs = make_workload(count=4, n=40, base_seed=8)
        results = BatchRunner(processes=1).run(jobs)
        payload = json.dumps([r.as_record() for r in results])
        back = json.loads(payload)
        assert len(back) == 4
        assert set(RECORD_FIELDS) == set(back[0])
