"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpc import DistributedRuntime, LocalRuntime, MPCConfig


@pytest.fixture
def rt() -> LocalRuntime:
    """A fresh local runtime."""
    return LocalRuntime(MPCConfig(seed=1234))


@pytest.fixture
def dist_rt() -> DistributedRuntime:
    """A message-level runtime sized for small test tables."""
    return DistributedRuntime(MPCConfig(delta=0.6, seed=1234),
                              total_words_hint=20_000)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(98765)


def make_local(seed: int = 1234) -> LocalRuntime:
    return LocalRuntime(MPCConfig(seed=seed))


def make_dist(hint: int = 20_000, seed: int = 1234) -> DistributedRuntime:
    return DistributedRuntime(MPCConfig(delta=0.6, seed=seed),
                              total_words_hint=hint)
