"""Result-object API and public package surface tests."""

import numpy as np
import pytest

import repro
from repro.core.results import SensitivityResult, VerificationResult
from repro.graph.generators import known_mst_instance


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_top_level_verify_roundtrip(self):
        g, _ = known_mst_instance("random", 60, extra_m=100, rng=1)
        assert repro.verify_mst(g).is_mst
        s = repro.mst_sensitivity(g)
        assert len(s.sensitivity) == g.m

    def test_make_runtime_names(self):
        from repro import make_runtime
        from repro.mpc import DistributedRuntime, LocalRuntime

        assert isinstance(make_runtime("local"), LocalRuntime)
        assert isinstance(make_runtime("distributed"), DistributedRuntime)
        with pytest.raises(ValueError):
            make_runtime("quantum")


class TestVerificationResult:
    def setup_method(self):
        g, _ = known_mst_instance("binary", 63, extra_m=120, rng=2)
        self.g = g
        self.r = repro.verify_mst(g)

    def test_truthiness(self):
        assert bool(self.r) is True

    def test_round_split_consistent(self):
        assert self.r.core_rounds > 0
        assert self.r.substrate_rounds > 0
        assert self.r.core_rounds + self.r.substrate_rounds <= self.r.rounds

    def test_pathmax_aligned_with_nontree_index(self):
        assert len(self.r.pathmax) == len(self.r.nontree_index)
        assert np.all(~self.g.tree_mask[self.r.nontree_index])

    def test_report_phase_listing(self):
        assert "core/clustering" in self.r.report.phases()
        rows = self.r.report.as_rows()
        assert rows == sorted(rows)

    def test_primitives_counted(self):
        prims = self.r.report.primitives_by_phase
        total_sorts = sum(c.get("sort", 0) for c in prims.values())
        assert total_sorts > 0


class TestSensitivityResult:
    def setup_method(self):
        g, _ = known_mst_instance("caterpillar", 90, extra_m=180, rng=3)
        self.g = g
        self.r = repro.mst_sensitivity(g)

    def test_index_partition(self):
        both = np.sort(np.concatenate([self.r.tree_index,
                                       self.r.nontree_index]))
        assert np.array_equal(both, np.arange(self.g.m))

    def test_mc_per_vertex(self):
        assert len(self.r.mc) == self.g.n
        assert np.isinf(self.r.mc[0])  # root parent edge has no cover

    def test_core_rounds_property(self):
        assert 0 < self.r.core_rounds <= self.r.rounds

    def test_pipeline_artifacts_exposed(self):
        # the oracle layer relies on these artefacts being present on
        # the result, and they must agree with the typed stage artifacts
        # the pipeline API returns
        from repro.pipeline import run_sensitivity

        assert self.r.parent is not None and len(self.r.parent) == self.g.n
        assert self.r.parent[self.r.root] == self.r.root
        assert self.r.pathmax is not None
        assert len(self.r.pathmax) == len(self.r.nontree_index)
        result, run = run_sensitivity(self.g)
        np.testing.assert_array_equal(
            run.artifacts["rooting"].parent, self.r.parent
        )
        np.testing.assert_array_equal(
            run.artifacts["sens-finalize"].mc, self.r.mc
        )
        np.testing.assert_array_equal(result.sensitivity, self.r.sensitivity)


class TestResultSerialization:
    def test_sensitivity_roundtrip(self, tmp_path):
        g, _ = known_mst_instance("random", 70, extra_m=140, rng=4)
        r = repro.mst_sensitivity(g)
        path = tmp_path / "sens.npz"
        r.save(path)
        back = SensitivityResult.load(path)
        np.testing.assert_array_equal(back.sensitivity, r.sensitivity)
        np.testing.assert_array_equal(back.mc, r.mc)
        np.testing.assert_array_equal(back.parent, r.parent)
        np.testing.assert_array_equal(back.pathmax, r.pathmax)
        assert back.root == r.root
        assert back.notes_peak == r.notes_peak
        assert back.report.rounds_by_phase == r.report.rounds_by_phase
        assert back.report.peak_global_words == r.report.peak_global_words
        assert back.core_rounds == r.core_rounds

    def test_verification_roundtrip(self, tmp_path):
        from repro.graph.generators import perturb_break_mst

        g, _ = known_mst_instance("random", 70, extra_m=140, rng=5)
        r = repro.verify_mst(perturb_break_mst(g, rng=6))
        path = tmp_path / "verify.npz"
        r.save(path)
        back = VerificationResult.load(path)
        assert back.is_mst is False and back.reason == r.reason
        assert back.n_violations == r.n_violations
        np.testing.assert_array_equal(back.violating_edges, r.violating_edges)
        np.testing.assert_array_equal(back.pathmax, r.pathmax)
        assert back.cluster_counts == r.cluster_counts
        assert back.report.primitives_by_phase == r.report.primitives_by_phase
        assert back.substrate_rounds == r.substrate_rounds

    def test_kind_mismatch_rejected(self, tmp_path):
        g, _ = known_mst_instance("random", 40, extra_m=60, rng=7)
        r = repro.mst_sensitivity(g)
        path = tmp_path / "sens.npz"
        r.save(path)
        with pytest.raises(ValueError):
            VerificationResult.load(path)
