"""Result-object API and public package surface tests."""

import numpy as np
import pytest

import repro
from repro.core.results import SensitivityResult, VerificationResult
from repro.graph.generators import known_mst_instance


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_top_level_verify_roundtrip(self):
        g, _ = known_mst_instance("random", 60, extra_m=100, rng=1)
        assert repro.verify_mst(g).is_mst
        s = repro.mst_sensitivity(g)
        assert len(s.sensitivity) == g.m

    def test_make_runtime_names(self):
        from repro import make_runtime
        from repro.mpc import DistributedRuntime, LocalRuntime

        assert isinstance(make_runtime("local"), LocalRuntime)
        assert isinstance(make_runtime("distributed"), DistributedRuntime)
        with pytest.raises(ValueError):
            make_runtime("quantum")


class TestVerificationResult:
    def setup_method(self):
        g, _ = known_mst_instance("binary", 63, extra_m=120, rng=2)
        self.g = g
        self.r = repro.verify_mst(g)

    def test_truthiness(self):
        assert bool(self.r) is True

    def test_round_split_consistent(self):
        assert self.r.core_rounds > 0
        assert self.r.substrate_rounds > 0
        assert self.r.core_rounds + self.r.substrate_rounds <= self.r.rounds

    def test_pathmax_aligned_with_nontree_index(self):
        assert len(self.r.pathmax) == len(self.r.nontree_index)
        assert np.all(~self.g.tree_mask[self.r.nontree_index])

    def test_report_phase_listing(self):
        assert "core/clustering" in self.r.report.phases()
        rows = self.r.report.as_rows()
        assert rows == sorted(rows)

    def test_primitives_counted(self):
        prims = self.r.report.primitives_by_phase
        total_sorts = sum(c.get("sort", 0) for c in prims.values())
        assert total_sorts > 0


class TestSensitivityResult:
    def setup_method(self):
        g, _ = known_mst_instance("caterpillar", 90, extra_m=180, rng=3)
        self.g = g
        self.r = repro.mst_sensitivity(g)

    def test_index_partition(self):
        both = np.sort(np.concatenate([self.r.tree_index,
                                       self.r.nontree_index]))
        assert np.array_equal(both, np.arange(self.g.m))

    def test_mc_per_vertex(self):
        assert len(self.r.mc) == self.g.n
        assert np.isinf(self.r.mc[0])  # root parent edge has no cover

    def test_core_rounds_property(self):
        assert 0 < self.r.core_rounds <= self.r.rounds
