"""Self-healing router tier: supervision, failover, chaos, resync.

The load-bearing claims of DESIGN.md §6.4, pinned at both layers:

* **units** — the :class:`GenerationLedger` records publishes + patch
  logs with a monotonic-generation guard; the :class:`RestartPolicy`
  doubles its backoff and evicts after ``max_restarts`` inside the
  sliding window; :class:`ChaosPlan` parses every grammar form
  deterministically (same seed, same plan) and rejects bad tokens;
* **integration** (real worker processes) — SIGKILL a replica
  mid-storm and *zero* reads fail (retried transparently on the live
  replica), the worker respawns, catches up from the ledger, and
  answers bit-identical to the untouched fleet; a structural
  ``update_batch`` whose primary just died fails over to the promoted
  replica and applies exactly once, never a torn generation; a worker
  whose query links are all dead leaves the read rotation immediately
  (the stale-depth routing bug); a replica whose control link was
  severed is marked stale before a patch lands anywhere and resyncs
  from the ledger via link healing, no respawn.
"""

import asyncio
import time

import pytest

from repro.errors import ValidationError
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle
from repro.service import (
    ChaosPlan,
    GenerationLedger,
    InstanceUpdater,
    RestartPolicy,
    RouterConfig,
    RouterTier,
)


def run(coro):
    return asyncio.run(coro)


def make_graph(n=100, seed=11):
    g, _ = known_mst_instance("random", n, extra_m=2 * n, rng=seed)
    return g


async def eventually(cond, timeout_s=90.0, interval_s=0.05):
    """Poll ``cond`` until true or the deadline passes."""
    deadline = time.perf_counter() + timeout_s
    while True:
        if cond():
            return True
        if time.perf_counter() >= deadline:
            return False
        await asyncio.sleep(interval_s)


class TestGenerationLedger:
    def test_publish_then_patches_then_latest(self):
        led = GenerationLedger()
        led.record_publish("a", "/spool/a-0.npz", "d0" * 32, 0)
        led.record_patch("a", 7, 1.5)
        led.record_patch("a", 9, 2.5)
        e = led.latest("a")
        assert e.generation == 0 and e.path == "/spool/a-0.npz"
        assert e.patches == [(7, 1.5), (9, 2.5)]
        assert led.instances() == ["a"]
        assert led.snapshot()["a"]["patches"] == 2

    def test_publish_resets_the_patch_log(self):
        led = GenerationLedger()
        led.record_publish("a", "p0", "d0" * 32, 0)
        led.record_patch("a", 1, 1.0)
        led.record_publish("a", "p1", "d1" * 32, 1)
        e = led.latest("a")
        assert e.generation == 1 and e.patches == []

    def test_generation_regression_raises(self):
        led = GenerationLedger()
        led.record_publish("a", "p3", "d3" * 32, 3)
        with pytest.raises(ValidationError):
            led.record_publish("a", "p2", "d2" * 32, 2)

    def test_unknown_instance_raises(self):
        led = GenerationLedger()
        with pytest.raises(ValidationError):
            led.latest("nope")
        with pytest.raises(ValidationError):
            led.record_patch("nope", 0, 1.0)


class TestRestartPolicy:
    def test_backoff_doubles_until_the_cap(self):
        pol = RestartPolicy(max_restarts=10, window_s=60.0,
                            backoff_s=0.1, backoff_cap_s=1.0)
        delays = [pol.next_delay(3, now=float(i)) for i in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_window_exhaustion_evicts(self):
        pol = RestartPolicy(max_restarts=3, window_s=60.0, backoff_s=0.01)
        assert all(pol.next_delay(5, now=float(i)) is not None
                   for i in range(3))
        assert pol.next_delay(5, now=3.0) is None  # budget burned
        assert pol.attempts_in_window(5, now=3.0) == 3
        # an unrelated worker still has its full budget
        assert pol.next_delay(6, now=3.0) == 0.01

    def test_window_slides(self):
        pol = RestartPolicy(max_restarts=2, window_s=10.0, backoff_s=0.01)
        assert pol.next_delay(1, now=0.0) is not None
        assert pol.next_delay(1, now=1.0) is not None
        assert pol.next_delay(1, now=2.0) is None
        # both attempts age out of the window: budget (and backoff) reset
        assert pol.next_delay(1, now=20.0) == 0.01


class TestChaosPlan:
    def test_parse_every_form_and_sorts_by_time(self):
        plan = ChaosPlan.parse("sever:0@2.0, kill:1@0.5, delay:2@1.0:0.05")
        assert [(e.action, e.worker, e.at_s) for e in plan.events] == [
            ("kill", 1, 0.5), ("delay", 2, 1.0), ("sever", 0, 2.0)]
        assert plan.events[1].delay_s == 0.05
        assert plan.events[1].duration_s == 1.0  # default window
        long = ChaosPlan.parse("delay:0@0.1:0.02:3.5")
        assert long.events[0].duration_s == 3.5

    def test_rand_form_is_seed_deterministic(self):
        a = ChaosPlan.parse("rand:7@3.0:3")
        b = ChaosPlan.parse("rand:7@3.0:3")
        c = ChaosPlan.parse("rand:8@3.0:3")
        assert len(a) == 3
        assert [(e.worker, e.at_s) for e in a.events] == \
               [(e.worker, e.at_s) for e in b.events]
        assert [(e.worker, e.at_s) for e in a.events] != \
               [(e.worker, e.at_s) for e in c.events]
        assert all(e.action == "kill" and 0 < e.at_s <= 3.0
                   for e in a.events)

    @pytest.mark.parametrize("bad", [
        "", "nonsense", "explode:1@0.5", "kill:1", "kill:@0.5",
        "delay:1@0.5", "kill:x@0.5", "rand:7",
    ])
    def test_bad_tokens_raise_with_the_grammar(self, bad):
        with pytest.raises(ValidationError):
            ChaosPlan.parse(bad)


class TestSelfHealing:
    """Real worker processes: crash, recover, stay bit-identical."""

    def test_kill_mid_storm_zero_failed_reads_then_rejoin(self):
        async def scenario():
            g = make_graph()
            ref = build_oracle(g)
            rt = RouterTier(RouterConfig(
                workers=2, replication=2, shards=2,
                batch_window_s=0.001, heartbeat_s=0.05,
                restart_backoff_s=0.01, read_retry_deadline_s=30.0))
            await rt.start()
            try:
                await rt.add_instance("default", g)
                placed = rt.instances["default"]
                victim = rt.workers[placed.replicas[0]]
                edges = list(range(0, g.m, 3))
                failures = []

                async def storm():
                    for _ in range(40):
                        for e in edges:
                            r = await rt.handle_request(
                                {"op": "sensitivity", "edge": e})
                            if not r.get("ok"):
                                failures.append(r)
                            elif r["result"] != float(ref.sens[e]):
                                failures.append(("mismatch", e, r))

                async def crash():
                    await asyncio.sleep(0.05)
                    victim.proc.kill()  # SIGKILL: no shutdown handler

                await asyncio.gather(storm(), crash())
                assert failures == []  # every read survived the crash

                sup = rt.supervisor
                assert await eventually(
                    lambda: sup.metrics.restarts >= 1 and victim.up
                    and not victim.stale and not sup._recovering)
                assert sup.metrics.deaths_detected >= 1

                # the rejoined worker adopted the ledger's latest
                # generation and answers bit-identical to the replica
                # that never died
                entry = sup.ledger.latest("default")
                assert entry.generation == 0 and entry.patches == []
                for w in rt.workers.values():
                    for e in edges[::4]:
                        r = await w.control.request(
                            {"op": "sensitivity", "instance": "default",
                             "edge": e})
                        assert r["ok"]
                        assert r["generation"] == entry.generation
                        assert r["result"] == float(ref.sens[e])
                m = await rt.router_metrics()
                assert m["supervisor"]["restarts"] >= 1
                assert m["supervisor"]["recovery_p99_s"] is not None
            finally:
                await rt.stop()

        run(scenario())

    def test_structural_batch_fails_over_never_torn(self):
        async def scenario():
            g = make_graph(n=80)
            hi = float(g.w.max())
            ops = [{"kind": "add", "u": j, "v": j + 7, "weight": hi + 1 + j}
                   for j in range(4)]
            ref_up = InstanceUpdater.build("ref", g.copy())
            ref_up.apply_batch(ops)

            rt = RouterTier(RouterConfig(
                workers=2, replication=2, shards=2,
                batch_window_s=0.001, heartbeat_s=0.05,
                restart_backoff_s=0.01, read_retry_deadline_s=30.0))
            await rt.start()
            try:
                await rt.add_instance("default", g)
                placed = rt.instances["default"]
                primary = rt.workers[placed.replicas[0]]
                primary.proc.kill()
                assert await eventually(
                    lambda: not primary.proc.is_alive(), timeout_s=10.0)

                # the write fails over to the promoted replica and
                # applies exactly once: a full generation, never torn
                resp = await rt.handle_request(
                    {"op": "update_batch", "ops": ops})
                assert resp["ok"] and resp["action"] == "rebuilt"
                assert resp["generation"] == 1
                assert resp["m"] == g.m + 4
                assert rt.supervisor.metrics.failovers >= 1
                assert placed.m == g.m + 4  # new edge ids route

                for e in range(0, g.m + 4, 7):
                    r = await rt.handle_request(
                        {"op": "sensitivity", "edge": e})
                    assert r["ok"] and r["generation"] == 1
                    assert r["result"] == float(ref_up.oracle.sens[e])

                # the dead canonical primary respawns and re-adopts the
                # promoted replica's generation from the ledger
                sup = rt.supervisor
                assert await eventually(
                    lambda: sup.metrics.restarts >= 1 and primary.up
                    and not primary.stale and not sup._recovering)
                assert sup.ledger.latest("default").generation == 1
                for w in rt.workers.values():
                    for e in range(0, g.m + 4, 7):
                        r = await w.control.request(
                            {"op": "sensitivity", "instance": "default",
                             "edge": e})
                        assert r["ok"] and r["generation"] == 1
                        assert r["result"] == float(ref_up.oracle.sens[e])
            finally:
                await rt.stop()

        run(scenario())


class TestReadRotation:
    def test_dead_query_links_leave_the_rotation_immediately(self):
        """The stale-depth bug: a fresh-looking depth report must not
        keep a worker with dead links in the replica rotation."""
        async def scenario():
            g = make_graph(n=60)
            rt = RouterTier(RouterConfig(workers=2, replication=2,
                                         supervise=False))
            await rt.start()
            try:
                await rt.add_instance("default", g)
                placed = rt.instances["default"]
                dying = rt.workers[placed.replicas[0]]
                alive = rt.workers[placed.replicas[1]]
                # forge the exact state of the old bug: a healthy-looking
                # last depth report on a worker whose links just died
                dying.depth = {"default": {"queued": 0, "bound": 4096,
                                           "fraction": 0.0}}
                for link in dying.links:
                    await link.close()
                for _ in range(2 * len(placed.replicas)):
                    assert rt._pick_worker(placed) is alive
                r = await rt.handle_request({"op": "sensitivity",
                                             "edge": 1})
                assert r["ok"]
            finally:
                await rt.stop()

        run(scenario())


class TestReplicaResync:
    def test_severed_control_marks_stale_and_resyncs_via_heal(self):
        """Satellite: a replica that cannot receive a patch is frozen
        out of reads *before* the patch lands anywhere, then re-aligned
        from the ledger by link healing — no respawn."""
        async def scenario():
            g = make_graph(n=80)
            ref = build_oracle(g)
            probe = InstanceUpdater("probe", g, ref)
            edge = next(
                e for e in range(g.m) if not ref.tree_mask[e]
                and probe.classify(e, float(ref.w[e]) + 5.0) == "patched")
            new_w = float(ref.w[edge]) + 5.0
            expected = build_oracle(g)     # fresh copy to patch locally
            expected.reprice(edge, new_w)

            rt = RouterTier(RouterConfig(
                workers=2, replication=2, shards=2,
                batch_window_s=0.001, heartbeat_s=60.0,
                restart_backoff_s=0.01))
            await rt.start()
            try:
                await rt.add_instance("default", g)
                placed = rt.instances["default"]
                replica = rt.workers[placed.replicas[1]]
                await replica.control.close()  # sever the write path only

                resp = await rt.handle_request(
                    {"op": "update", "edge": edge, "weight": new_w})
                assert resp["ok"] and resp["action"] == "patched"
                assert rt.supervisor.ledger.latest("default").patches == \
                    [(edge, new_w)]

                sup = rt.supervisor
                assert await eventually(
                    lambda: not replica.stale and replica.up
                    and sup.metrics.resyncs >= 1 and not sup._recovering)
                # healed in place: the process never restarted
                assert sup.metrics.restarts == 0
                assert sup.metrics.links_healed >= 1
                for w in rt.workers.values():
                    r = await w.control.request(
                        {"op": "sensitivity", "instance": "default",
                         "edge": edge})
                    assert r["ok"]
                    assert r["result"] == float(expected.sens[edge])
            finally:
                await rt.stop()

        run(scenario())
