"""Sequential RootedTree oracle tests — cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotATreeError, ValidationError
from repro.graph.generators import tree_instance
from repro.graph.tree import RootedTree, build_adjacency


def random_parents(n, seed):
    rng = np.random.default_rng(seed)
    parent = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        parent[i] = rng.integers(0, i)
    return parent


def to_nx(tree: RootedTree) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(tree.n))
    for v in range(tree.n):
        if v != tree.root:
            g.add_edge(v, int(tree.parent[v]))
    return g


class TestConstruction:
    def test_root_must_self_parent(self):
        with pytest.raises(NotATreeError):
            RootedTree(parent=np.array([1, 1]), root=0)

    def test_cycle_detected(self):
        with pytest.raises(NotATreeError):
            RootedTree(parent=np.array([0, 2, 1]), root=0)

    def test_from_edges_roundtrip(self):
        parent = random_parents(40, 3)
        t = RootedTree(parent=parent, root=0)
        child, par, w = t.edge_arrays()
        rng = np.random.default_rng(1)
        perm = rng.permutation(len(child))
        t2 = RootedTree.from_edges(40, child[perm], par[perm], root=0)
        assert np.array_equal(t2.parent, parent)

    def test_from_edges_wrong_count(self):
        with pytest.raises(NotATreeError):
            RootedTree.from_edges(3, np.array([0]), np.array([1]))

    def test_from_edges_disconnected(self):
        with pytest.raises(NotATreeError):
            RootedTree.from_edges(4, np.array([0, 2, 0]),
                                  np.array([1, 3, 1]))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValidationError):
            RootedTree(parent=np.array([0, 0]), root=0,
                       weight=np.array([1.0]))


class TestQuantities:
    @pytest.mark.parametrize("seed", range(4))
    def test_depths_match_networkx(self, seed):
        t = RootedTree(parent=random_parents(60, seed), root=0)
        lengths = nx.single_source_shortest_path_length(to_nx(t), 0)
        want = np.array([lengths[v] for v in range(t.n)])
        assert np.array_equal(t.depths(), want)

    @pytest.mark.parametrize("seed", range(4))
    def test_diameter_matches_networkx(self, seed):
        t = RootedTree(parent=random_parents(50, seed), root=0)
        assert t.diameter() == nx.diameter(to_nx(t))

    def test_single_vertex(self):
        t = RootedTree(parent=np.array([0]), root=0)
        assert t.diameter() == 0 and t.height() == 0

    def test_children_count(self):
        t = RootedTree(parent=np.array([0, 0, 0, 1]), root=0)
        assert t.children_count().tolist() == [2, 1, 0, 0]


class TestEulerIntervals:
    @pytest.mark.parametrize("seed", range(3))
    def test_intervals_are_laminar_and_sized(self, seed):
        t = RootedTree(parent=random_parents(80, seed), root=0)
        dfs, low, high = t.euler_intervals()
        assert sorted(dfs.tolist()) == list(range(t.n))
        sizes = high - low + 1
        # subtree size identity: node's interval size = 1 + children's sum
        for v in range(t.n):
            kids = np.flatnonzero((t.parent == v) & (np.arange(t.n) != t.root))
            assert sizes[v] == 1 + sizes[kids].sum()

    @pytest.mark.parametrize("seed", range(3))
    def test_is_ancestor_matches_paths(self, seed):
        t = RootedTree(parent=random_parents(40, seed), root=0)
        g = to_nx(t)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 40, 60)
        b = rng.integers(0, 40, 60)
        got = t.is_ancestor(a, b)
        for x, y, r in zip(a, b, got):
            path = nx.shortest_path(g, 0, int(y))
            assert r == (int(x) in path)


class TestLCAandPathMax:
    @pytest.mark.parametrize("shape", ["path", "star", "binary",
                                       "caterpillar", "random"])
    def test_lca_matches_networkx(self, shape):
        t = tree_instance(shape, 70, 5)
        g = to_nx(t)
        rng = np.random.default_rng(11)
        a = rng.integers(0, 70, 50)
        b = rng.integers(0, 70, 50)
        got = t.lca(a, b)
        want = [
            nx.lowest_common_ancestor(nx.bfs_tree(g, 0), int(x), int(y))
            for x, y in zip(a, b)
        ]
        assert got.tolist() == want

    @pytest.mark.parametrize("seed", range(3))
    def test_path_max_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        parent = random_parents(45, seed)
        w = rng.uniform(0, 1, 45)
        w[0] = 0.0
        t = RootedTree(parent=parent, root=0, weight=w)
        g = to_nx(t)
        a = rng.integers(0, 45, 40)
        b = rng.integers(0, 45, 40)
        got = t.path_max(a, b)
        for x, y, r in zip(a, b, got):
            path = nx.shortest_path(g, int(x), int(y))
            if len(path) == 1:
                assert r == -np.inf
            else:
                want = max(
                    w[c] if t.parent[c] == p else w[p]
                    for c, p in zip(path, path[1:])
                )
                assert np.isclose(r, want)

    def test_lca_of_vertex_with_itself(self):
        t = tree_instance("binary", 15, 0)
        assert t.lca(np.array([7]), np.array([7]))[0] == 7

    def test_lca_ancestor_pair(self):
        t = tree_instance("path", 10, 0)
        assert t.lca(np.array([9]), np.array([3]))[0] == 3

    def test_path_max_to_ancestor_empty_path(self):
        t = tree_instance("path", 5, 0)
        out = t.path_max_to_ancestor(np.array([2]), np.array([2]))
        assert out[0] == -np.inf


class TestAdjacency:
    def test_csr_consistent(self):
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 3])
        off, nbr, eid = build_adjacency(4, u, v)
        assert off.tolist() == [0, 1, 3, 5, 6]
        assert sorted(nbr[off[1]:off[2]].tolist()) == [0, 2]


@given(st.integers(2, 120), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_property_depths_consistent_with_parents(n, seed):
    t = RootedTree(parent=random_parents(n, seed), root=0)
    d = t.depths()
    nonroot = np.arange(n) != 0
    assert np.array_equal(d[nonroot], d[t.parent[nonroot]] + 1)
    assert d[0] == 0
