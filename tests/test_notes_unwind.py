"""Root-to-leaf notes (Definition 4.4) and the sensitivity contraction
invariant (§4.1)."""

import numpy as np
import pytest

from repro.core.adgraph import split_at_lca
from repro.core.contraction_sens import run_sensitivity_contraction
from repro.core.hierarchy import build_hierarchy
from repro.core.notes import NoteSet, empty_notes
from repro.graph.generators import known_mst_instance, tree_instance
from repro.graph.tree import RootedTree
from repro.mpc import LocalRuntime, Table


class TestNoteSet:
    def test_zero_length_notes_dropped(self, rt):
        ns = NoteSet()
        ns.add(rt, Table(r=[5, 6], bottom=[5, 7], lvl=[1, 1],
                         w=[1.0, 2.0]))
        assert len(ns) == 1

    def test_dedupe_keeps_min_weight(self, rt):
        ns = NoteSet()
        ns.add(rt, Table(r=[1, 1, 1], bottom=[2, 2, 3], lvl=[4, 4, 4],
                         w=[9.0, 3.0, 5.0]))
        recs = {(x["r"], x["bottom"], x["lvl"]): x["w"]
                for x in ns.table.to_records()}
        assert recs[(1, 2, 4)] == 3.0
        assert recs[(1, 3, 4)] == 5.0

    def test_take_level_partitions(self, rt):
        ns = NoteSet()
        ns.add(rt, Table(r=[1, 2], bottom=[3, 4], lvl=[1, 2],
                         w=[1.0, 1.0]))
        lv1 = ns.take_level(rt, 1)
        assert len(lv1) == 1 and len(ns) == 1
        assert lv1.col("lvl")[0] == 1

    def test_peak_tracked(self, rt):
        ns = NoteSet()
        ns.add(rt, Table(r=[1, 1], bottom=[2, 2], lvl=[1, 1],
                         w=[2.0, 1.0]))
        assert ns.peak >= 2  # before dedupe

    def test_empty_schema(self):
        t = empty_notes()
        assert set(t.columns) == {"r", "bottom", "lvl", "w"}


def run_contraction(shape, n, extra, seed):
    g, tree = known_mst_instance(shape, n, extra_m=extra, rng=seed)
    rt = LocalRuntime()
    _, low, high = tree.euler_intervals()
    d = max(1, tree.diameter())
    h = build_hierarchy(rt, tree.parent, tree.weight, tree.root, low, high, d)
    nu, nv, nw = g.nontree_edges()
    lca = tree.lca(nu, nv) if len(nu) else np.empty(0, np.int64)
    halves = split_at_lca(rt, nu, nv, nw, lca)
    state = run_sensitivity_contraction(rt, h, halves, low, high)
    return tree, h, state


class TestContractionInvariant:
    @pytest.mark.parametrize("shape", ["path", "binary", "caterpillar",
                                       "random"])
    def test_live_edges_maintain_invariant(self, shape):
        tree, h, state = run_contraction(shape, 90, 180, 3)
        leader = state.leader
        edges = state.edges
        _, low, high = tree.euler_intervals()
        for lo, hi in zip(edges.col("lo"), edges.col("hi")):
            # invariant: lo is the leader (root) of its final cluster
            assert leader[lo] == lo
            # hi is an ancestor of lo and in a different cluster
            assert low[hi] <= low[lo] <= high[hi]
            assert leader[hi] != leader[lo]

    @pytest.mark.parametrize("shape", ["path", "random"])
    def test_note_count_linear(self, shape):
        tree, h, state = run_contraction(shape, 300, 600, 5)
        assert state.notes.peak <= 6 * tree.n  # Lemma 4.6

    def test_notes_reference_real_versions(self):
        tree, h, state = run_contraction("random", 120, 240, 7)
        formed_levels = {}
        for lv in h.levels:
            for s in np.unique(lv.senior):
                formed_levels.setdefault(int(s), set()).add(lv.level)
        for rec in state.notes.table.to_records():
            # each note's (r, lvl) must name a level where r grew
            assert rec["lvl"] in formed_levels.get(rec["r"], set()), rec

    def test_note_paths_are_root_to_descendant(self):
        tree, h, state = run_contraction("caterpillar", 100, 200, 9)
        _, low, high = tree.euler_intervals()
        for rec in state.notes.table.to_records():
            r, bottom = rec["r"], rec["bottom"]
            assert low[r] <= low[bottom] <= high[r]
            assert r != bottom
