"""MPCConfig deployment-sizing tests."""

import pytest

from repro.errors import ValidationError
from repro.mpc import MPCConfig


class TestValidation:
    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.2, 1.5])
    def test_delta_range(self, delta):
        with pytest.raises(ValidationError):
            MPCConfig(delta=delta)

    def test_capacity_constant_positive(self):
        with pytest.raises(ValidationError):
            MPCConfig(capacity_constant=0)

    def test_min_machine_words_floor(self):
        with pytest.raises(ValidationError):
            MPCConfig(min_machine_words=4)

    def test_global_slack_at_least_one(self):
        with pytest.raises(ValidationError):
            MPCConfig(global_slack=0.5)


class TestSizing:
    def test_capacity_is_sublinear(self):
        c = MPCConfig(delta=0.5, min_machine_words=16 if False else 256)
        s1 = c.machine_capacity(10_000)
        s2 = c.machine_capacity(1_000_000)
        # 100x more data -> only 10x more local memory at delta=0.5
        assert s2 < 15 * s1

    def test_capacity_floor_applies(self):
        c = MPCConfig(min_machine_words=512)
        assert c.machine_capacity(10) == 512

    def test_machine_count_covers_global_slack(self):
        c = MPCConfig()
        n = 50_000
        assert c.machine_count(n) * c.machine_capacity(n) >= c.global_slack * n

    def test_global_budget_linear(self):
        c = MPCConfig()
        g1 = c.global_budget_words(10_000)
        g2 = c.global_budget_words(20_000)
        assert g2 <= 3 * g1  # linear up to rounding

    def test_with_override(self):
        c = MPCConfig().with_(delta=0.7)
        assert c.delta == 0.7

    def test_deterministic(self):
        assert MPCConfig().machine_capacity(1000) == MPCConfig().machine_capacity(1000)
