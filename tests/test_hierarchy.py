"""Cluster hierarchy invariants (Definitions 2.5–2.9, Observation 2.10)."""

import numpy as np
import pytest

from repro.core.hierarchy import build_hierarchy, contraction_target
from repro.graph.generators import backbone_tree, tree_instance
from repro.graph.tree import RootedTree
from repro.mpc import LocalRuntime

SHAPES = ["path", "star", "binary", "caterpillar", "random"]


def build(shape, n, seed=0, **kw):
    t = tree_instance(shape, n, seed)
    rt = LocalRuntime()
    _, low, high = t.euler_intervals()
    d = max(1, t.diameter())
    h = build_hierarchy(rt, t.parent, np.zeros(n), t.root, low, high, d, **kw)
    return t, h, rt


class TestTarget:
    def test_target_formula(self):
        assert contraction_target(1000, 10) == 100
        assert contraction_target(1000, 10, exponent=2.0) == 10
        assert contraction_target(10, 10_000) == 1

    def test_target_reached(self):
        for shape in SHAPES:
            t, h, _ = build(shape, 300, 2)
            assert h.hit_target
            assert h.final_count <= max(1, h.target)


class TestClusterInvariants:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_leaders_are_subtree_roots(self, shape):
        t, h, _ = build(shape, 200, 1)
        leader = h.final_leader
        # Definition 2.5: within a cluster, every non-leader vertex's
        # parent is in the same cluster (connected subtree, rooted at
        # the leader)
        for v in range(t.n):
            if v != leader[v]:
                assert leader[int(t.parent[v])] == leader[v]
        # the leader is an ancestor of every member
        dfs, low, high = t.euler_intervals()
        members = np.arange(t.n)
        assert np.all(low[leader[members]] <= low[members])
        assert np.all(high[members] <= high[leader[members]])

    @pytest.mark.parametrize("shape", SHAPES)
    def test_no_junior_senior_chains(self, shape):
        # Definition 2.7: within one step, no cluster is absorbed while
        # also absorbing others
        t, h, _ = build(shape, 250, 3)
        for lv in h.levels:
            juniors = set(lv.junior.tolist())
            seniors = set(lv.senior.tolist())
            assert not (juniors & seniors)
            # juniors are distinct
            assert len(juniors) == len(lv.junior)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_merge_records_consistent_with_tree(self, shape):
        t, h, _ = build(shape, 150, 4)
        for lv in h.levels:
            assert np.all(t.parent[lv.junior] == lv.parent_vertex)

    def test_root_cluster_never_contracts(self):
        t, h, _ = build("random", 200, 5)
        for lv in h.levels:
            assert t.root not in set(lv.junior.tolist())
        assert h.final_leader[t.root] == t.root

    def test_vertices_partitioned(self):
        t, h, _ = build("binary", 127, 6)
        fc = set(h.final_clusters.col("leader").tolist())
        assert set(np.unique(h.final_leader).tolist()) == fc

    def test_counts_monotone_nonincreasing(self):
        t, h, _ = build("caterpillar", 300, 7)
        assert all(a >= b for a, b in zip(h.counts, h.counts[1:]))
        assert h.counts[0] == 300
        assert h.counts[-1] == h.final_count


class TestObservation210:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_total_merge_records_linear(self, shape):
        # Observation 2.10: sum of per-level cluster records is O(n)
        t, h, _ = build(shape, 400, 8)
        assert h.total_cluster_records() <= 400

    def test_geometric_decay_on_average(self):
        t, h, _ = build("path", 512, 9)
        # over any 8 consecutive steps, expect at least some decay until
        # the target is reached
        c = h.counts
        for i in range(0, len(c) - 8, 8):
            if c[i] > h.target * 2:
                assert c[i + 8] < c[i]


class TestFormationLevels:
    def test_version_bookkeeping(self):
        t, h, _ = build("random", 200, 10)
        formed = {v: 0 for v in range(t.n)}
        for lv in h.levels:
            for j, s, jf, sp in zip(lv.junior, lv.senior,
                                    lv.junior_formed, lv.senior_prev_formed):
                assert formed[int(j)] == jf
                assert formed[int(s)] == sp
            for s in np.unique(lv.senior):
                formed[int(s)] = lv.level
        fc = h.final_clusters
        for leader, f in zip(fc.col("leader"), fc.col("formed")):
            assert formed[int(leader)] == f


class TestAblationKnobs:
    def test_reduction_exponent_changes_target(self):
        _, h1, _ = build("path", 300, 0, reduction_exponent=0.5)
        _, h2, _ = build("path", 300, 0, reduction_exponent=1.5)
        assert h1.target > h2.target

    def test_coin_bias_still_correct(self):
        for bias in (0.2, 0.8):
            t, h, _ = build("random", 150, 3, coin_bias=bias)
            leader = h.final_leader
            for v in range(t.n):
                if v != leader[v]:
                    assert leader[int(t.parent[v])] == leader[v]

    def test_max_steps_cap(self):
        t = tree_instance("path", 100, 0)
        rt = LocalRuntime()
        _, low, high = t.euler_intervals()
        h = build_hierarchy(rt, t.parent, np.zeros(100), t.root, low, high,
                            99, max_steps=2)
        assert len(h.counts) <= 3
