"""Distributed tree rooting (Remark 2.2 substrate).

Given the edge list of an (unrooted) tree and a designated root, orient
every edge child->parent. The paper cites [BLM+23] (``O(log D)``
deterministic); we substitute the classical Euler-circuit method:

1. replace each edge by two arcs;
2. the successor of arc ``(u -> v)`` is the arc ``(v -> w)`` where ``w``
   is the cyclically next neighbour of ``v`` after ``u`` (sorted ids) —
   this stitches all arcs into one Euler circuit of the tree;
3. cut the circuit at the root's first out-arc and list-rank it;
4. each vertex's parent is the source of its earliest incoming arc.

``O(log n)`` rounds, ``O(n)`` words (DESIGN.md substitution 3).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import NotATreeError
from ..mpc.runtime import Runtime
from ..mpc.table import Table
from .euler import list_rank

__all__ = ["root_tree"]


def root_tree(
    rt: Runtime,
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray | None = None,
    root: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Orient a tree edge list; returns ``(parent, weight_to_parent)``.

    The input must be a tree on ``0..n-1`` (validate with
    :func:`repro.trees.connectivity.mpc_is_spanning_tree` first — a
    non-tree input raises :class:`~repro.errors.NotATreeError` when the
    circuit fails to rank).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    m = len(u)
    if w is None:
        w = np.zeros(m, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if m != n - 1:
        raise NotATreeError(f"a tree on {n} vertices needs {n-1} edges, got {m}")
    if n == 1:
        return np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.float64)

    # arcs 0..2m-1: arc 2i = (u_i -> v_i), arc 2i+1 = (v_i -> u_i)
    aid = np.arange(2 * m, dtype=np.int64)
    frm = np.empty(2 * m, dtype=np.int64)
    to = np.empty(2 * m, dtype=np.int64)
    frm[0::2], to[0::2] = u, v
    frm[1::2], to[1::2] = v, u
    wt = np.repeat(w, 2)

    arcs = Table(a=aid, frm=frm, to=to)
    # out-rank of each arc among arcs leaving `frm`, neighbours ascending
    arcs_s = rt.sort(arcs, ("frm", "to"))
    ones = np.ones(len(arcs_s), dtype=np.int64)
    orank = rt.scan(arcs_s.with_cols(__one=ones), "__one", "sum",
                    by=("frm",), exclusive=True)
    arcs_s = arcs_s.with_cols(orank=orank)
    deg_tab = rt.reduce_by_key(
        arcs_s.with_cols(__one=ones), ("frm",), {"deg": ("__one", "sum")}
    )
    # successor of (u->v): out-arc of v with rank (rank(v->u) + 1) mod deg(v)
    rev = np.bitwise_xor(aid, 1)  # reversed arc id
    back = rt.lookup(
        Table(a=aid, ra=rev), ("ra",), arcs_s, ("a",), {"r": "orank"}
    )
    degs = rt.lookup(Table(a=aid, v=to), ("v",), deg_tab, ("frm",), {"deg": "deg"})
    nxt_rank = (back.col("r") + 1) % degs.col("deg")
    succ_tab = rt.lookup(
        Table(a=aid, v=to, nr=nxt_rank), ("v", "nr"),
        arcs_s, ("frm", "orank"), {"succ": "a"},
    )
    succ = succ_tab.col("succ")

    # cut the circuit at the root's rank-0 out-arc
    start_tab = rt.lookup(
        Table(v=np.array([root]), r=np.array([0])), ("v", "r"),
        arcs_s, ("frm", "orank"), {"a": "a"},
    )
    start = int(start_tab.col("a")[0])
    succ = np.where(succ == start, -1, succ)

    dist_end = list_rank(rt, succ)
    total = 2 * m
    pos = total - 1 - dist_end

    # parent(x) = frm of x's earliest incoming arc
    inc = Table(to=to, pos=pos)
    first_in = rt.reduce_by_key(inc, ("to",), {"fpos": ("pos", "min")})
    got = rt.lookup(
        first_in, ("to", "fpos"),
        Table(to=to, pos=pos, frm=frm, wt=wt), ("to", "pos"),
        {"par": "frm", "w": "wt"},
    )
    parent = np.full(n, -1, dtype=np.int64)
    weight = np.zeros(n, dtype=np.float64)
    parent[got.col("to")] = got.col("par")
    weight[got.col("to")] = got.col("w")
    parent[root] = root
    weight[root] = 0.0
    if np.any(parent < 0):
        raise NotATreeError("rooting failed: some vertex received no parent")
    return parent, weight
