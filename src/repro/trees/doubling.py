"""Pointer-doubling tree primitives: depths, ancestor tables, root paths.

These are the `O(log D_T)`-round workhorses of the paper:

* :func:`mpc_depths` — every vertex learns its depth in ``O(log D)``
  rounds and ``O(n)`` words (used for Remark 2.3's diameter estimate);
* :func:`ancestor_tables` — Lemma 2.16: edges from each vertex to its
  ``2^i``-th ancestors, ``O(log D)`` rounds and ``O(n log D)`` words
  (the paper applies it to the *cluster* tree where this is ``o(n)``);
* :func:`collect_root_paths` — Lemma 3.7: each vertex materialises its
  entire path to the root, ``O(log D)`` rounds and ``O(sum of depths)``
  words (applied to the cluster tree: ``O(|C| * D_T) = O(n)``).

All functions operate on a parent array over ids ``0..n-1`` (works for
vertex trees and cluster trees alike) and count rounds through the
runtime.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = [
    "mpc_depths",
    "diameter_estimate",
    "ancestor_tables",
    "collect_root_paths",
]


def mpc_depths(rt: Runtime, parent: np.ndarray, root: int) -> np.ndarray:
    """Depth of every vertex below ``root`` by pointer doubling.

    Invariant after k iterations: ``anc[v] = p^(min(2^k, depth(v)))(v)``
    and ``dist[v] = min(2^k, depth(v))``. Costs ``O(log D)`` rounds.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    ids = np.arange(n, dtype=np.int64)
    anc = parent.copy()
    dist = (ids != root).astype(np.int64)
    while rt.scalar(Table(x=(anc != root).astype(np.int64)), "x", "max") > 0:
        q = Table(v=ids, anc=anc)
        got = rt.lookup(
            q, ("anc",), Table(v=ids, a2=anc, d2=dist), ("v",),
            {"a2": "a2", "d2": "d2"},
        )
        step = np.where(anc != root, got.col("d2"), 0)
        dist = dist + step
        anc = got.col("a2")
    return dist


def diameter_estimate(rt: Runtime, parent: np.ndarray, root: int) -> Tuple[int, np.ndarray]:
    """Remark 2.3: a value ``D_hat`` with ``D_T <= D_hat <= 2*D_T``.

    The eccentricity ``h`` of the root satisfies ``h <= D <= 2h``, so
    ``D_hat = 2h`` is a 2-approximation (``D_hat=1`` for single vertices).
    Returns ``(D_hat, depths)`` so callers can reuse the depths.
    """
    depths = mpc_depths(rt, parent, root)
    h = int(rt.scalar(Table(d=depths), "d", "max"))
    return max(1, 2 * h), depths


def ancestor_tables(
    rt: Runtime, parent: np.ndarray, root: int, max_dist: int
) -> Table:
    """Lemma 2.16: rows ``(v, i, anc)`` with ``anc = p^(2^i)(v)``.

    Powers run while ``2^i <= max_dist``; climbs truncate at the root.
    ``O(log max_dist)`` rounds, ``O(n log max_dist)`` words.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    ids = np.arange(n, dtype=np.int64)
    levels = [Table(v=ids, i=np.zeros(n, dtype=np.int64), anc=parent)]
    cur = parent
    i = 0
    while (1 << (i + 1)) <= max(1, max_dist):
        got = rt.lookup(
            Table(v=ids, anc=cur), ("anc",),
            Table(v=ids, a2=cur), ("v",), {"a2": "a2"},
        )
        cur = got.col("a2")
        i += 1
        levels.append(Table(v=ids, i=np.full(n, i, dtype=np.int64), anc=cur))
    out = Table.concat(levels)
    rt.tracker.observe_global_words(out.words)
    return out


def collect_root_paths(
    rt: Runtime, parent: np.ndarray, root: int
) -> Table:
    """Lemma 3.7: rows ``(v, anc, d)`` for every ancestor of every vertex.

    ``d`` is the distance from ``v`` up to ``anc``; the row ``(v, v, 0)``
    is included. ``O(log D)`` rounds; output (and hence charged memory)
    is ``n + sum_v depth(v)`` rows — the caller is responsible for the
    global-memory budget, exactly as in the paper (which only ever calls
    this on the contracted cluster tree).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    ids = np.arange(n, dtype=np.int64)
    nonroot = ids != root
    paths = Table.concat(
        [
            Table(v=ids, anc=ids, d=np.zeros(n, dtype=np.int64)),
            Table(v=ids[nonroot], anc=parent[nonroot],
                  d=np.ones(int(nonroot.sum()), dtype=np.int64)),
        ]
    )
    jump = parent.copy()
    jdist = nonroot.astype(np.int64)
    while rt.scalar(Table(x=(jump != root).astype(np.int64)), "x", "max") > 0:
        # pull the jump target's collected path (distances >= 1) and shift
        data = rt.filter(paths, paths.col("d") >= 1)
        live = jump != root
        queries = Table(v=ids[live], j=jump[live], L=jdist[live])
        grown = rt.expand_join(
            queries, ("j",), data, ("v",),
            {"anc": "anc", "dd": "d"}, carry=("v", "L"),
        )
        new_rows = Table(
            v=grown.col("v"),
            anc=grown.col("anc"),
            d=grown.col("L") + grown.col("dd"),
        )
        paths = Table.concat([paths, new_rows])
        rt.tracker.observe_global_words(paths.words)
        # advance the jump pointers
        got = rt.lookup(
            Table(v=ids, anc=jump), ("anc",),
            Table(v=ids, a2=jump, d2=jdist), ("v",),
            {"a2": "a2", "d2": "d2"},
        )
        jdist = jdist + np.where(jump != root, got.col("d2"), 0)
        jump = got.col("a2")
    return paths
