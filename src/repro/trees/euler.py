"""Euler tour, list ranking, and DFS interval labelling (Lemma 2.14).

The paper obtains DFS interval labels in ``O(log D_T)`` rounds by
invoking [ASZ19] + [GLM+23] as black boxes. We substitute the classical
Euler-tour construction with pointer-doubling list ranking: identical
labels, ``O(log n)`` rounds, ``O(n)`` words (DESIGN.md substitution 3).
All rounds charged here are attributed to the caller's current phase —
pipelines wrap this in a ``substrate/...`` phase so experiments can
report the paper-contributed phases separately.

Vertex ``v``'s label is ``I(v) = [low(v), high(v)]`` over DFS numbers
(Definition 2.13): ``u`` is an ancestor of ``v`` iff ``I(v) ⊆ I(u)``;
unrelated vertices have disjoint intervals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import NotATreeError
from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = ["list_rank", "euler_intervals"]

NIL = np.int64(-1)


def list_rank(rt: Runtime, succ: np.ndarray) -> np.ndarray:
    """Distance from each list cell to the end (``succ == -1`` ends a list).

    Standard pointer doubling: ``O(log n)`` rounds over lookups. Works on
    any union of disjoint chains; cycles raise ``NotATreeError``.
    """
    succ = np.asarray(succ, dtype=np.int64)
    n = len(succ)
    ids = np.arange(n, dtype=np.int64)
    ptr = succ.copy()
    dist = (ptr != NIL).astype(np.int64)
    limit = int(np.ceil(np.log2(n + 2))) + 2
    it = 0
    while rt.scalar(Table(x=(ptr != NIL).astype(np.int64)), "x", "max") > 0:
        if it > limit:
            raise NotATreeError("list ranking did not converge (cycle in list)")
        live = ptr != NIL
        q = Table(v=ids, p=np.where(live, ptr, 0))
        got = rt.lookup(
            q, ("p",), Table(v=ids, p2=ptr, d2=dist), ("v",),
            {"p2": "p2", "d2": "d2"},
        )
        dist = dist + np.where(live, got.col("d2"), 0)
        ptr = np.where(live, got.col("p2"), ptr)
        it += 1
    return dist


def euler_intervals(
    rt: Runtime, parent: np.ndarray, root: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """DFS numbers and subtree intervals ``(dfs, low, high)`` per vertex.

    Children are visited in ascending id order (matching the sequential
    oracle :meth:`repro.graph.tree.RootedTree.euler_intervals`).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    if n == 1:
        z = np.zeros(1, dtype=np.int64)
        return z.copy(), z.copy(), z.copy()
    ids = np.arange(n, dtype=np.int64)
    nonroot = ids != root
    kids = Table(v=ids[nonroot], p=parent[nonroot])
    kids = rt.sort(kids, ("p", "v"))
    ones = np.ones(len(kids), dtype=np.int64)
    rank = rt.scan(kids.with_cols(__one=ones), "__one", "sum",
                   by=("p",), exclusive=True)
    kids = kids.with_cols(r=rank)

    # first child / next sibling pointers
    first = rt.filter(kids, kids.col("r") == 0)
    fc = rt.lookup(
        Table(v=ids), ("v",), first, ("p",), {"fc": "v"}, default={"fc": -1}
    ).col("fc")
    ns = rt.lookup(
        kids.with_cols(r1=kids.col("r") + 1), ("p", "r1"),
        kids, ("p", "r"), {"ns": "v"}, default={"ns": -1},
    ).col("ns")
    ns_of = np.full(n, -1, dtype=np.int64)
    ns_of[kids.col("v")] = ns

    # arcs: down(v) = 2v, up(v) = 2v+1 for v != root
    down, up = 2 * ids, 2 * ids + 1
    succ = np.full(2 * n, NIL, dtype=np.int64)
    # succ(down_v): descend to first child, else climb
    succ[down] = np.where(fc != -1, down[np.maximum(fc, 0)], up)
    # succ(up_v): next sibling's down, else parent's up (NIL at root's kids end)
    has_ns = ns_of != -1
    par_up = np.where(parent != root, up[parent], NIL)
    succ[up] = np.where(has_ns, down[np.maximum(ns_of, 0)], par_up)
    # root has no arcs of its own
    succ[down[root]] = NIL
    succ[up[root]] = NIL
    # the tour starts at down(first child of root); nothing points at it,
    # and the final arc up(last child of root) already ends at NIL.
    start = down[fc[root]]

    arc_ids = np.arange(2 * n, dtype=np.int64)
    is_real = np.zeros(2 * n, dtype=bool)
    is_real[down[nonroot]] = True
    is_real[up[nonroot]] = True

    dist_end = list_rank(rt, np.where(is_real, succ, NIL))
    total = 2 * (n - 1)
    pos = np.where(is_real, total - 1 - dist_end, -1)

    # DFS number = number of down-arcs at tour position <= pos(arc)
    arcs = Table(
        a=arc_ids[is_real],
        pos=pos[is_real],
        isdown=(arc_ids[is_real] % 2 == 0).astype(np.int64),
    )
    arcs = rt.sort(arcs, ("pos",))
    cum = rt.scan(arcs, "isdown", "sum")
    arcs = arcs.with_cols(cum=cum)

    verts = Table(v=ids[nonroot])
    got_d = rt.lookup(
        verts.with_cols(a=down[nonroot]), ("a",), arcs, ("a",), {"c": "cum"}
    )
    got_u = rt.lookup(
        verts.with_cols(a=up[nonroot]), ("a",), arcs, ("a",), {"c": "cum"}
    )
    dfs = np.zeros(n, dtype=np.int64)
    high = np.zeros(n, dtype=np.int64)
    dfs[ids[nonroot]] = got_d.col("c")
    high[ids[nonroot]] = got_u.col("c")
    dfs[root] = 0
    high[root] = n - 1
    low = dfs.copy()
    return dfs, low, high
