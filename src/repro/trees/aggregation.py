"""Subtree aggregation — the [GLM+23]-style utility substrate.

The paper invokes "dynamic programming in trees" to aggregate labels
over subtrees (e.g. Lemma 2.14's ``v_high``). Our pipelines obtain
those specific quantities by other linear-memory means (Euler-tour
counts, root-path emission), but the general utility is part of the
toolkit a downstream user expects:

* :func:`subtree_sum` — exact, O(1) rounds given DFS interval labels
  (a subtree is a DFS range; sums are prefix-decomposable);
* :func:`subtree_extremum` — min/max over every subtree via a
  doubling sparse table over DFS order: ``O(log n)`` rounds and — the
  documented trade-off versus [GLM+23] — ``O(n log n)`` words.
"""

from __future__ import annotations

import numpy as np

from ..errors import ProtocolError
from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = ["subtree_sum", "subtree_extremum"]


def subtree_sum(
    rt: Runtime,
    values: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
) -> np.ndarray:
    """Sum of ``values`` over each vertex's subtree.

    ``low``/``high`` are DFS interval labels (``low`` is a permutation);
    costs a sort + scan + two lookups.
    """
    n = len(values)
    by_dfs = rt.sort(
        Table(d=low, v=np.asarray(values)), ("d",)
    )
    pref = rt.scan(by_dfs, "v", "sum")  # inclusive prefix sums in DFS order
    pos = by_dfs.with_cols(p=pref)
    hi_sum = rt.lookup(Table(d=high), ("d",), pos, ("d",), {"s": "p"})
    lo_sum = rt.lookup(Table(d=low - 1), ("d",), pos, ("d",), {"s": "p"},
                       default={"s": 0})
    return hi_sum.col("s") - lo_sum.col("s")


def subtree_extremum(
    rt: Runtime,
    values: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    op: str = "max",
) -> np.ndarray:
    """Min/max of ``values`` over each vertex's subtree.

    Builds a doubling sparse table over DFS order (level k holds the
    aggregate of ``[i, i + 2^k)``), then answers each subtree range with
    the standard two-overlapping-blocks query. ``O(log n)`` rounds,
    ``O(n log n)`` words (see module docstring for why the pipelines
    themselves avoid this).
    """
    if op not in ("min", "max"):
        raise ProtocolError(f"subtree_extremum supports min/max, got {op!r}")
    n = len(values)
    if n == 0:
        return np.asarray(values, dtype=np.float64)
    by_dfs = rt.sort(Table(d=low, v=np.asarray(values)), ("d",))
    level = by_dfs.col("v").astype(np.float64)
    ident = -np.inf if op == "max" else np.inf
    combine = np.maximum if op == "max" else np.minimum
    tables = [level]
    k = 1
    while k < n:
        cur = tables[-1]
        shifted = np.full(n, ident)
        shifted[: n - k] = cur[k:]
        # in MPC this shift is one route round; charge it
        rt.tracker.charge("route", n)
        tables.append(combine(cur, shifted))
        k <<= 1
        rt.tracker.observe_global_words(n * len(tables))

    length = high - low + 1
    lvl = np.zeros(n, dtype=np.int64)
    nz = length > 1
    lvl[nz] = np.floor(np.log2(length[nz])).astype(np.int64)
    blk = (1 << lvl).astype(np.int64)
    # two overlapping blocks: [low, low+2^k) and [high-2^k+1, ...]
    stacked = np.stack(tables)  # conceptually distributed by (level, pos)
    a = stacked[lvl, low]
    b = stacked[lvl, high - blk + 1]
    rt.tracker.charge("lookup", 2 * n)
    return combine(a, b)
