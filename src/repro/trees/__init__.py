"""Distributed tree algorithm toolkit (substrate S4 in DESIGN.md)."""

from .aggregation import subtree_extremum, subtree_sum
from .connectivity import (
    mpc_connected_components,
    mpc_count_components,
    mpc_is_spanning_tree,
)
from .doubling import (
    ancestor_tables,
    collect_root_paths,
    diameter_estimate,
    mpc_depths,
)
from .euler import euler_intervals, list_rank
from .rooting import root_tree

__all__ = [
    "subtree_extremum",
    "subtree_sum",
    "mpc_connected_components",
    "mpc_count_components",
    "mpc_is_spanning_tree",
    "ancestor_tables",
    "collect_root_paths",
    "diameter_estimate",
    "mpc_depths",
    "euler_intervals",
    "list_rank",
    "root_tree",
]
