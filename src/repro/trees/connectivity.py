"""Distributed connectivity and spanning-tree validation.

Stands in for the [ASS+18a]/[BDE+19]/[CC23] connectivity black box the
paper uses in Remarks 2.2/2.4 and the verification preamble. The
implementation is the classical label-propagation + pointer-jumping
scheme ("hook and shortcut"): each round every vertex adopts the
minimum label in its neighbourhood, then labels are pointer-jumped
twice. Rounds are measured, not assumed; on the shapes used in the
benchmarks convergence is logarithmic.

Also provides :func:`mpc_count_tree_edges` and
:func:`mpc_is_spanning_tree` (Remark 2.2: count + connectivity).
"""

from __future__ import annotations

import numpy as np

from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = [
    "mpc_connected_components",
    "mpc_count_components",
    "mpc_is_spanning_tree",
]


def mpc_connected_components(
    rt: Runtime, n: int, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Minimum-id component label per vertex.

    Shiloach–Vishkin-style root hooking: per iteration every component
    *root* with a smaller-labelled neighbouring component hooks onto the
    minimum such label (strictly decreasing, hence acyclic), the hook
    forest is fully compressed by pointer jumping, and vertices relabel
    through their root. Component count drops by a constant factor per
    iteration, giving O(log n) hooking iterations of O(log n) jumps.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    labels = ids.copy()
    if len(u) == 0:
        return labels
    while True:
        lab_tab = Table(v=ids, l=labels)
        gu = rt.lookup(Table(x=u), ("x",), lab_tab, ("v",), {"l": "l"})
        gv = rt.lookup(Table(x=v), ("x",), lab_tab, ("v",), {"l": "l"})
        lu, lv = gu.col("l"), gv.col("l")
        ext = lu != lv
        if not bool(rt.scalar(Table(x=ext.astype(np.int64)), "x", "max")):
            return labels
        hi = np.maximum(lu[ext], lv[ext])
        lo = np.minimum(lu[ext], lv[ext])
        best = rt.reduce_by_key(Table(r=hi, t=lo), ("r",),
                                {"t": ("t", "min")})
        # compress the (strictly decreasing) hook forest over roots
        roots = best.col("r")
        par = best.col("t")
        while True:
            jt = rt.lookup(
                Table(r=roots, p=par), ("p",),
                Table(r=roots, p=par), ("r",), {"pp": "p"},
                default={"pp": -1},
            )
            nxt = np.where(jt.col("pp") >= 0, jt.col("pp"), par)
            if not bool(rt.scalar(
                Table(x=(nxt != par).astype(np.int64)), "x", "max"
            )):
                break
            par = nxt
        # relabel every vertex through its (possibly hooked) root
        relab = rt.lookup(
            Table(v=ids, l=labels), ("l",), Table(r=roots, p=par), ("r",),
            {"p": "p"}, default={"p": -1},
        )
        labels = np.where(relab.col("p") >= 0, relab.col("p"), labels)


def mpc_count_components(
    rt: Runtime, n: int, u: np.ndarray, v: np.ndarray
) -> int:
    labels = mpc_connected_components(rt, n, u, v)
    roots = rt.reduce_by_key(
        Table(l=labels, one=np.ones(n, dtype=np.int64)), ("l",),
        {"c": ("one", "sum")},
    )
    return int(rt.count(roots))


def mpc_is_spanning_tree(
    rt: Runtime, n: int, tree_u: np.ndarray, tree_v: np.ndarray
) -> bool:
    """Remark 2.2: |T| == n-1 and T connected  <=>  spanning tree."""
    m = int(rt.count(Table(u=np.asarray(tree_u, dtype=np.int64))))
    if m != n - 1:
        return False
    return mpc_count_components(rt, n, tree_u, tree_v) == 1
