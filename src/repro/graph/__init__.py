"""Graph and tree substrate: representations, generators, validation."""

from .graph import WeightedGraph
from .mutations import BatchEffect, apply_ops, coalesce_ops
from .tree import RootedTree, build_adjacency
from .validation import (
    UnionFind,
    connected_components,
    count_components,
    is_forest,
    is_spanning_tree,
)

__all__ = [
    "WeightedGraph",
    "BatchEffect",
    "apply_ops",
    "coalesce_ops",
    "RootedTree",
    "build_adjacency",
    "UnionFind",
    "connected_components",
    "count_components",
    "is_forest",
    "is_spanning_tree",
]
