"""Sequential structural validation used as oracles and input guards.

Union-find based checks for forests/spanning trees and connectivity. The
distributed algorithms have their own O(log D)-round checks; these are
the independent single-machine references.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError

__all__ = [
    "UnionFind",
    "is_forest",
    "is_spanning_tree",
    "connected_components",
    "count_components",
]


class UnionFind:
    """Array-based DSU with union by size and path halving."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return True


def is_forest(n: int, u: np.ndarray, v: np.ndarray) -> bool:
    """True iff the edge list is acyclic (a forest)."""
    uf = UnionFind(n)
    for a, b in zip(np.asarray(u), np.asarray(v)):
        if a == b or not uf.union(int(a), int(b)):
            return False
    return True


def is_spanning_tree(n: int, u: np.ndarray, v: np.ndarray) -> bool:
    """True iff the edge list is a spanning tree of vertices 0..n-1."""
    if len(u) != n - 1:
        return False
    uf = UnionFind(n)
    for a, b in zip(np.asarray(u), np.asarray(v)):
        if a == b or not uf.union(int(a), int(b)):
            return False
    return uf.n_components == 1


def connected_components(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Component label (minimum member id) per vertex."""
    uf = UnionFind(n)
    for a, b in zip(np.asarray(u), np.asarray(v)):
        uf.union(int(a), int(b))
    roots = np.array([uf.find(i) for i in range(n)], dtype=np.int64)
    # canonicalise: label by minimum vertex id in the component
    label = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(label, roots, np.arange(n, dtype=np.int64))
    return label[roots]


def count_components(n: int, u: np.ndarray, v: np.ndarray) -> int:
    uf = UnionFind(n)
    for a, b in zip(np.asarray(u), np.asarray(v)):
        uf.union(int(a), int(b))
    return uf.n_components


def require(cond: bool, message: str) -> None:
    if not cond:
        raise ValidationError(message)
