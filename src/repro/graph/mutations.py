"""Structural mutation ops over a served instance, with exact MST repair.

The streaming subsystem feeds batches of ops — ``add`` / ``remove`` /
``reprice`` — against a live :class:`~repro.graph.graph.WeightedGraph`
whose ``tree_mask`` flags a minimum spanning tree. :func:`apply_ops`
applies a batch and *repairs the flagged tree exactly* so the mutated
instance is again "a graph plus an MST" — the input contract of every
pipeline stage. The repair rules are the classical exchange arguments:

* adding an edge cheaper than the path maximum between its endpoints
  swaps it in and demotes the path's maximum edge (cycle rule);
* removing a tree edge promotes the minimum-weight non-tree edge
  crossing the cut it leaves behind (cut rule), and is rejected if the
  edge is a bridge (the graph would disconnect);
* re-pricing moves an edge across the same two thresholds.

Everything here is sequential bookkeeping on the serving host — the
distributed pipeline then *verifies* the repaired tree from scratch
(decide asserts zero bad edges), so a repair bug cannot silently ship.

Edge ids inside one batch refer to the **pre-batch** numbering; the
returned :class:`BatchEffect` carries the ``old_to_new`` id map that
shard routing and clients use to re-address surviving edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .graph import WeightedGraph
from .tree import RootedTree, build_adjacency

__all__ = ["BatchEffect", "coalesce_ops", "apply_ops"]

OP_KINDS = ("add", "remove", "reprice")


@dataclass
class BatchEffect:
    """What one applied batch did to the instance."""

    #: pre-batch edge id -> post-batch edge id (-1 for removed rows)
    old_to_new: np.ndarray
    #: post-batch ids of edges appended by ``add`` ops, in op order
    added_ids: List[int] = field(default_factory=list)
    #: True iff the candidate-tree subsequence (endpoints *or* weights)
    #: changed — the scoped-replay classifier's decision bit
    tree_affected: bool = False
    #: applied-op tally per kind
    counts: Dict[str, int] = field(default_factory=dict)
    #: ``(op index, reason)`` for ops that could not be applied
    rejected: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return sum(self.counts.values())


def coalesce_ops(ops: Sequence[Dict]) -> List[Dict]:
    """Collapse redundant ops targeting the same pre-batch edge id.

    Later ops win (``reprice`` then ``reprice`` keeps the last price;
    ``reprice`` then ``remove`` is just the removal), except that
    ``remove`` is terminal — once an id is removed, later ops on it are
    dropped. ``add`` ops are never coalesced (each appends a row).
    Output order is deterministic: edge-targeted ops in first-seen edge
    order, then adds in arrival order.
    """
    by_edge: Dict[int, Dict] = {}
    order: List[int] = []
    adds: List[Dict] = []
    for op in ops:
        kind = op.get("kind")
        if kind == "add":
            adds.append(op)
            continue
        edge = int(op.get("edge", -1))
        prev = by_edge.get(edge)
        if prev is not None and prev.get("kind") == "remove":
            continue  # terminal: the edge is gone for the rest of the batch
        if prev is None:
            order.append(edge)
        by_edge[edge] = op
    return [by_edge[e] for e in order] + adds


class _MutableInstance:
    """Working state while a batch applies: arrays + a lazily rebuilt tree."""

    def __init__(self, graph: WeightedGraph):
        self.n = graph.n
        self.u = graph.u.copy()
        self.v = graph.v.copy()
        self.w = graph.w.copy()
        self.mask = graph.tree_mask.copy()
        self.removed = np.zeros(graph.m, dtype=bool)
        self.add_u: List[int] = []
        self.add_v: List[int] = []
        self.add_w: List[float] = []
        self.add_tree: List[bool] = []
        self._tree: Optional[RootedTree] = None
        #: per-child ref into the *current* edge set: (is_add, index)
        self._edge_ref: Optional[List[Optional[Tuple[bool, int]]]] = None

    # -- current edge views -----------------------------------------------------

    def _tree_rows(self):
        orig = np.flatnonzero(self.mask & ~self.removed)
        au = [self.add_u[k] for k in range(len(self.add_u)) if self.add_tree[k]]
        av = [self.add_v[k] for k in range(len(self.add_v)) if self.add_tree[k]]
        aw = [self.add_w[k] for k in range(len(self.add_w)) if self.add_tree[k]]
        aref = [k for k in range(len(self.add_u)) if self.add_tree[k]]
        tu = np.concatenate([self.u[orig], np.asarray(au, dtype=np.int64)])
        tv = np.concatenate([self.v[orig], np.asarray(av, dtype=np.int64)])
        tw = np.concatenate([self.w[orig], np.asarray(aw, dtype=np.float64)])
        refs = [(False, int(i)) for i in orig] + [(True, k) for k in aref]
        return tu, tv, tw, refs

    def tree(self) -> RootedTree:
        """The current candidate tree, rebuilt after structural repairs."""
        if self._tree is None:
            tu, tv, tw, refs = self._tree_rows()
            if len(tu) != self.n - 1:
                raise ValidationError("candidate tree lost spanning size")
            # BFS rooting that remembers which edge row produced each
            # parent pointer, so repairs can demote the exact row
            offsets, nbr, eid = build_adjacency(self.n, tu, tv)
            parent = np.full(self.n, -1, dtype=np.int64)
            weight = np.zeros(self.n, dtype=np.float64)
            ref: List[Optional[Tuple[bool, int]]] = [None] * self.n
            parent[0] = 0
            frontier = [0]
            while frontier:
                nxt = []
                for x in frontier:
                    for j in range(offsets[x], offsets[x + 1]):
                        y = int(nbr[j])
                        if parent[y] == -1:
                            parent[y] = x
                            weight[y] = tw[eid[j]]
                            ref[y] = refs[eid[j]]
                            nxt.append(y)
                frontier = nxt
            self._tree = RootedTree(parent=parent, root=0, weight=weight)
            self._edge_ref = ref
        return self._tree

    def dirty(self):
        self._tree = None
        self._edge_ref = None

    # -- queries over the current tree -------------------------------------------

    def path_argmax(self, a: int, b: int) -> Tuple[float, Tuple[bool, int]]:
        """(max weight, edge ref) over the tree path a..b; deterministic.

        Ties resolve to the first maximum met walking a→lca then b→lca.
        """
        t = self.tree()
        lca = int(t.lca(np.asarray([a]), np.asarray([b]))[0])
        best = -np.inf
        best_ref: Optional[Tuple[bool, int]] = None
        for start in (a, b):
            x = start
            while x != lca:
                if float(t.weight[x]) > best:
                    best = float(t.weight[x])
                    best_ref = self._edge_ref[x]
                x = int(t.parent[x])
        if best_ref is None:
            raise ValidationError("empty tree path (parallel endpoints?)")
        return best, best_ref

    def min_crossing(self, child: int,
                     exclude: Optional[Tuple[bool, int]] = None):
        """Cheapest non-tree edge with exactly one endpoint in
        ``subtree(child)`` of the current tree, or ``None`` (bridge).

        Deterministic tie-break: original rows in id order first, then
        added rows in arrival order.
        """
        t = self.tree()
        _, low, high = t.euler_intervals()
        lo_c, hi_c = low[child], high[child]

        def inside(x):
            return (lo_c <= low[x]) & (low[x] <= hi_c)

        best = None  # (w, order, ref)
        orig = np.flatnonzero(~self.mask & ~self.removed)
        if len(orig):
            cross = inside(self.u[orig]) != inside(self.v[orig])
            cand = orig[cross]
            if exclude is not None and not exclude[0]:
                cand = cand[cand != exclude[1]]
            if len(cand):
                ws = self.w[cand]
                i = int(np.lexsort((cand, ws))[0])
                best = (float(ws[i]), int(cand[i]), (False, int(cand[i])))
        for k in range(len(self.add_u)):
            if self.add_tree[k] or (exclude is not None and exclude[0]
                                    and exclude[1] == k):
                continue
            if bool(inside(self.add_u[k])) == bool(inside(self.add_v[k])):
                continue
            key = (self.add_w[k], len(self.u) + k)
            if best is None or key < (best[0], best[1]):
                best = (self.add_w[k], len(self.u) + k, (True, k))
        return None if best is None else best[2]

    # -- repairs ------------------------------------------------------------------

    def set_tree_flag(self, ref: Tuple[bool, int], value: bool):
        is_add, idx = ref
        if is_add:
            self.add_tree[idx] = value
        else:
            self.mask[idx] = value
        self.dirty()

    def get_w(self, ref: Tuple[bool, int]) -> float:
        is_add, idx = ref
        return self.add_w[idx] if is_add else float(self.w[idx])


def apply_ops(graph: WeightedGraph, ops: Sequence[Dict]
              ) -> Tuple[WeightedGraph, BatchEffect]:
    """Apply a batch of structural ops; returns the mutated graph + effect.

    Ops that cannot be applied (bad ids, bridge removals, malformed
    records) are recorded in ``effect.rejected`` and skipped — a batch
    never partially fails mid-op. The input graph is not modified.
    """
    st = _MutableInstance(graph)
    eff = BatchEffect(old_to_new=np.empty(0, dtype=np.int64))
    counts: Dict[str, int] = {}

    def reject(i, reason):
        eff.rejected.append((i, reason))

    def resolve(i, op):
        """Validate an edge-targeted op's id against current state."""
        try:
            edge = int(op["edge"])
        except (KeyError, TypeError, ValueError):
            reject(i, "missing or non-integer edge id")
            return None
        if not 0 <= edge < graph.m:
            reject(i, f"edge id {edge} out of range [0, {graph.m})")
            return None
        if st.removed[edge]:
            reject(i, f"edge id {edge} removed earlier in batch")
            return None
        return edge

    for i, op in enumerate(ops):
        kind = op.get("kind")
        if kind == "add":
            try:
                a, b = int(op["u"]), int(op["v"])
                w = float(op["weight"])
            except (KeyError, TypeError, ValueError):
                reject(i, "add needs integer u, v and numeric weight")
                continue
            if not (0 <= a < st.n and 0 <= b < st.n):
                reject(i, f"endpoint out of range [0, {st.n})")
                continue
            if a == b:
                reject(i, "self-loops are not allowed")
                continue
            if not np.isfinite(w):
                reject(i, "weight must be finite")
                continue
            pm, pm_ref = st.path_argmax(a, b)
            enters = w < pm  # ties stay out: the tree is already minimal
            st.add_u.append(a)
            st.add_v.append(b)
            st.add_w.append(w)
            st.add_tree.append(bool(enters))
            if enters:
                st.set_tree_flag(pm_ref, False)  # demote the cycle max
                eff.tree_affected = True
        elif kind == "remove":
            edge = resolve(i, op)
            if edge is None:
                continue
            if st.mask[edge]:
                # cut rule: promote the cheapest crossing non-tree edge
                t = st.tree()
                child = edge_child(t, st, edge)
                repl = st.min_crossing(child, exclude=(False, edge))
                if repl is None:
                    reject(i, f"edge id {edge} is a bridge; removal would "
                              "disconnect the graph")
                    continue
                st.removed[edge] = True
                st.mask[edge] = False
                st.set_tree_flag(repl, True)
                eff.tree_affected = True
            else:
                # removing a non-tree edge never moves the MST
                st.removed[edge] = True
        elif kind == "reprice":
            edge = resolve(i, op)
            if edge is None:
                continue
            try:
                x = float(op["weight"])
            except (KeyError, TypeError, ValueError):
                reject(i, "reprice needs a numeric weight")
                continue
            if not np.isfinite(x):
                reject(i, "weight must be finite")
                continue
            old = float(st.w[edge])
            if x == old:
                counts[kind] = counts.get(kind, 0) + 1
                continue  # no-op
            if st.mask[edge]:
                if x > old:
                    t = st.tree()
                    child = edge_child(t, st, edge)
                    repl = st.min_crossing(child, exclude=(False, edge))
                    if repl is not None and st.get_w(repl) < x:
                        # the raise prices the edge out of the tree
                        st.w[edge] = x
                        st.mask[edge] = False
                        st.set_tree_flag(repl, True)
                        eff.tree_affected = True
                        counts[kind] = counts.get(kind, 0) + 1
                        continue
                st.w[edge] = x
                st.dirty()  # tree weights changed
                eff.tree_affected = True
            else:
                pm, pm_ref = st.path_argmax(int(st.u[edge]), int(st.v[edge]))
                st.w[edge] = x
                if x < pm:
                    # the cut prices the edge into the tree
                    st.mask[edge] = True
                    st.set_tree_flag(pm_ref, False)
                    eff.tree_affected = True
        else:
            reject(i, f"unknown op kind {kind!r}")
            continue
        counts[kind] = counts.get(kind, 0) + 1

    # ---- materialise the post-batch instance -----------------------------------
    keep = ~st.removed
    old_to_new = np.where(keep, np.cumsum(keep) - 1, -1).astype(np.int64)
    base = int(keep.sum())
    new_u = np.concatenate([st.u[keep], np.asarray(st.add_u, dtype=np.int64)])
    new_v = np.concatenate([st.v[keep], np.asarray(st.add_v, dtype=np.int64)])
    new_w = np.concatenate([st.w[keep], np.asarray(st.add_w, dtype=np.float64)])
    new_mask = np.concatenate([st.mask[keep],
                               np.asarray(st.add_tree, dtype=bool)])
    eff.old_to_new = old_to_new
    eff.added_ids = [base + k for k in range(len(st.add_u))]
    eff.counts = counts
    out = WeightedGraph(n=st.n, u=new_u, v=new_v, w=new_w, tree_mask=new_mask)
    return out, eff


def edge_child(t: RootedTree, st: _MutableInstance, edge: int) -> int:
    """The child-side vertex of original tree row ``edge`` in ``t``."""
    a, b = int(st.u[edge]), int(st.v[edge])
    if int(t.parent[a]) == b:
        return a
    if int(t.parent[b]) == a:
        return b
    raise ValidationError(f"edge {edge} is not a tree edge of the rooted tree")
