"""Edge-list weighted graphs.

The MPC input format of the paper: a multiset of weighted undirected
edges, each an ``O(1)``-word record, plus the vertex count. Candidate
trees are flagged per edge (``tree_mask``), matching the paper's input
convention "a graph G and a tree T ⊆ E".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["WeightedGraph"]


@dataclass
class WeightedGraph:
    """An undirected edge-weighted multigraph on vertices ``0..n-1``.

    Attributes
    ----------
    n:
        Number of vertices.
    u, v:
        int64 endpoint arrays (parallel).
    w:
        float64 weight array (parallel). Integral weights are fine; they
        are stored as floats for uniform sentinel handling (±inf).
    tree_mask:
        bool array marking the candidate-tree edges ``T ⊆ E``.
    """

    n: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    tree_mask: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        self.u = np.asarray(self.u, dtype=np.int64)
        self.v = np.asarray(self.v, dtype=np.int64)
        self.w = np.asarray(self.w, dtype=np.float64)
        if self.tree_mask is None:
            self.tree_mask = np.zeros(len(self.u), dtype=bool)
        self.tree_mask = np.asarray(self.tree_mask, dtype=bool)
        if not (len(self.u) == len(self.v) == len(self.w) == len(self.tree_mask)):
            raise ValidationError("edge arrays must have equal length")
        if self.n < 1:
            raise ValidationError("graph needs at least one vertex")
        if len(self.u) and (
            self.u.min() < 0 or self.v.min() < 0
            or self.u.max() >= self.n or self.v.max() >= self.n
        ):
            raise ValidationError("edge endpoint out of range")
        if np.any(self.u == self.v):
            raise ValidationError("self-loops are not allowed")
        if len(self.w) and not np.isfinite(self.w).all():
            raise ValidationError("edge weights must be finite")

    # -- construction ----------------------------------------------------------

    @staticmethod
    def from_edges(n: int, edges: Iterable[Tuple[int, int, float]],
                   tree_edges: Iterable[Tuple[int, int]] = ()) -> "WeightedGraph":
        """Build from ``(u, v, w)`` triples; ``tree_edges`` flags ``T``.

        Tree-edge pairs are matched irrespective of endpoint order; each
        pair marks one (the first unmarked) matching edge.
        """
        edges = list(edges)
        u = np.array([e[0] for e in edges], dtype=np.int64)
        v = np.array([e[1] for e in edges], dtype=np.int64)
        w = np.array([e[2] for e in edges], dtype=np.float64)
        mask = np.zeros(len(edges), dtype=bool)
        want = {}
        for a, b in tree_edges:
            key = (min(a, b), max(a, b))
            want[key] = want.get(key, 0) + 1
        for i in range(len(edges)):
            key = (min(u[i], v[i]), max(u[i], v[i]))
            if want.get(key, 0) > 0:
                mask[i] = True
                want[key] -= 1
        left = {k: c for k, c in want.items() if c > 0}
        if left:
            raise ValidationError(f"tree edges not present in edge list: {left}")
        return WeightedGraph(n=n, u=u, v=v, w=w, tree_mask=mask)

    # -- views -------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.u)

    @property
    def m_tree(self) -> int:
        return int(self.tree_mask.sum())

    def tree_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        t = self.tree_mask
        return self.u[t], self.v[t], self.w[t]

    def nontree_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        t = ~self.tree_mask
        return self.u[t], self.v[t], self.w[t]

    def total_words(self) -> int:
        """Input size in machine words (4 words/edge + n)."""
        return 4 * self.m + self.n

    def copy(self) -> "WeightedGraph":
        return WeightedGraph(self.n, self.u.copy(), self.v.copy(),
                             self.w.copy(), self.tree_mask.copy())

    def with_weights(self, w: np.ndarray) -> "WeightedGraph":
        return WeightedGraph(self.n, self.u.copy(), self.v.copy(),
                             np.asarray(w, dtype=np.float64), self.tree_mask.copy())

    def __repr__(self) -> str:  # pragma: no cover
        return f"WeightedGraph(n={self.n}, m={self.m}, tree={self.m_tree})"
