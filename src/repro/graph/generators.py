"""Workload generators for experiments, tests and examples.

Tree shapes with controlled diameter, graphs whose candidate tree is (or
deliberately is not) an MST, and the 1-vs-2-cycle lower-bound family of
Theorem 5.2 / Appendix A.

All generators take a :class:`numpy.random.Generator` (or a seed) and are
fully deterministic given it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError
from .graph import WeightedGraph
from .tree import RootedTree

__all__ = [
    "path_tree",
    "star_tree",
    "balanced_tree",
    "caterpillar_tree",
    "backbone_tree",
    "random_recursive_tree",
    "grid_tree",
    "power_law_tree",
    "tree_instance",
    "TREE_SHAPES",
    "attach_nontree_edges",
    "known_mst_instance",
    "perturb_break_mst",
    "one_vs_two_cycles_instance",
    "random_connected_graph",
]


def _rng(rng) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


# --------------------------------------------------------------------------- trees


def path_tree(n: int) -> RootedTree:
    """A path 0-1-...-(n-1) rooted at 0 (diameter n-1)."""
    parent = np.arange(-1, n - 1, dtype=np.int64)
    parent[0] = 0
    return RootedTree(parent=parent, root=0)


def star_tree(n: int) -> RootedTree:
    """A star rooted at the hub (diameter 2 for n >= 3)."""
    parent = np.zeros(n, dtype=np.int64)
    return RootedTree(parent=parent, root=0)


def balanced_tree(n: int, branching: int = 2) -> RootedTree:
    """Complete ``branching``-ary tree on n vertices (diameter ~2 log_b n)."""
    if branching < 2:
        raise ValidationError("branching must be >= 2")
    idx = np.arange(n, dtype=np.int64)
    parent = np.maximum((idx - 1) // branching, 0)
    parent[0] = 0
    return RootedTree(parent=parent, root=0)


def caterpillar_tree(n: int, spine: int) -> RootedTree:
    """A spine path of ``spine`` vertices with leaves attached round-robin."""
    if not (1 <= spine <= n):
        raise ValidationError("need 1 <= spine <= n")
    parent = np.zeros(n, dtype=np.int64)
    parent[1:spine] = np.arange(0, spine - 1)
    if n > spine:
        legs = np.arange(spine, n, dtype=np.int64)
        parent[legs] = (legs - spine) % spine
    return RootedTree(parent=parent, root=0)


def backbone_tree(n: int, diameter: int, rng=0) -> RootedTree:
    """A tree with *exact* unweighted diameter ``diameter``.

    A backbone path realises the diameter; the remaining vertices hang as
    depth-1 leaves off random interior backbone vertices, which cannot
    increase the diameter. Requires ``2 <= diameter <= n-1`` (and
    ``diameter >= 2`` whenever leaves are attached).
    """
    rng = _rng(rng)
    if n < 2:
        raise ValidationError("backbone_tree needs n >= 2")
    if not (1 <= diameter <= n - 1):
        raise ValidationError(f"diameter must be in [1, n-1], got {diameter}")
    L = diameter  # backbone has L+1 vertices 0..L
    parent = np.zeros(n, dtype=np.int64)
    parent[1: L + 1] = np.arange(0, L)
    extra = n - (L + 1)
    if extra > 0:
        if diameter < 2:
            raise ValidationError("diameter must be >= 2 when n > diameter+1")
        hosts = rng.integers(1, L, size=extra)  # interior vertices only
        parent[L + 1:] = hosts
    return RootedTree(parent=parent, root=0)


def random_recursive_tree(n: int, rng=0) -> RootedTree:
    """Each vertex attaches to a uniform earlier vertex (diameter Θ(log n))."""
    rng = _rng(rng)
    parent = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        parent[i] = rng.integers(0, i)
    return RootedTree(parent=parent, root=0)


def grid_tree(n: int) -> RootedTree:
    """A comb spanning tree of the ~√n × √n grid (diameter Θ(√n)).

    Vertex ``i`` sits at grid position ``(i // cols, i % cols)``; row 0
    is the spine and every column hangs off it. The Θ(√n) diameter
    class sits between ``binary`` (log n) and ``path`` (n) — mesh /
    datacenter-fabric shaped workloads.
    """
    if n < 1:
        raise ValidationError("grid_tree needs n >= 1")
    cols = max(1, int(np.ceil(np.sqrt(n))))
    idx = np.arange(n, dtype=np.int64)
    parent = np.where(idx < cols, np.maximum(idx - 1, 0), idx - cols)
    return RootedTree(parent=parent.astype(np.int64), root=0)


def power_law_tree(n: int, rng=0) -> RootedTree:
    """Preferential-attachment tree (Barabási–Albert, one edge/vertex).

    Vertex ``i`` attaches to an earlier vertex chosen proportionally to
    its current degree, giving the heavy-tailed degree distribution of
    internet/social topologies: a few massive hubs, diameter Θ(log n).
    Implemented with the classic edge-endpoint-sampling trick (each
    endpoint of each earlier edge is a degree-weighted ticket).
    """
    rng = _rng(rng)
    if n < 1:
        raise ValidationError("power_law_tree needs n >= 1")
    parent = np.zeros(n, dtype=np.int64)
    # tickets[2k] / tickets[2k+1] are the endpoints of edge k=(v, parent)
    tickets = np.zeros(2 * max(n - 1, 1), dtype=np.int64)
    for i in range(1, n):
        if i == 1:
            target = 0
        else:
            target = int(tickets[rng.integers(0, 2 * (i - 1))])
        parent[i] = target
        tickets[2 * (i - 1)] = i
        tickets[2 * (i - 1) + 1] = target
    return RootedTree(parent=parent, root=0)


TREE_SHAPES = (
    "path",
    "star",
    "binary",
    "ternary",
    "caterpillar",
    "random",
    "grid",
    "power_law",
)


def tree_instance(shape: str, n: int, rng=0) -> RootedTree:
    """Dispatch by shape name (see :data:`TREE_SHAPES`)."""
    rng = _rng(rng)
    if shape == "path":
        return path_tree(n)
    if shape == "star":
        return star_tree(n)
    if shape == "binary":
        return balanced_tree(n, 2)
    if shape == "ternary":
        return balanced_tree(n, 3)
    if shape == "caterpillar":
        return caterpillar_tree(n, max(1, n // 3))
    if shape == "random":
        return random_recursive_tree(n, rng)
    if shape == "grid":
        return grid_tree(n)
    if shape == "power_law":
        return power_law_tree(n, rng)
    raise ValidationError(f"unknown tree shape {shape!r}")


# --------------------------------------------------------------------------- graphs


def attach_nontree_edges(
    tree: RootedTree,
    extra_m: int,
    rng=0,
    mode: str = "mst",
    spread: float = 1.0,
    tree_weights: np.ndarray | None = None,
) -> WeightedGraph:
    """Add ``extra_m`` random non-tree edges to a rooted tree.

    Modes
    -----
    ``mst``
        tree weights uniform in (0,1); each non-tree edge weighs
        ``path_max + Uniform(0, spread) + eps`` so the tree is the
        *unique* MST and sensitivities are non-trivial.
    ``tight``
        like ``mst`` but a third of the extra edges tie exactly with
        their path maximum (T remains an MST; exercises tie handling).
    ``random``
        all weights uniform; T usually is *not* an MST.
    """
    rng = _rng(rng)
    n = tree.n
    if tree_weights is None:
        tw = rng.uniform(0.0, 1.0, size=n)
    else:
        tw = np.asarray(tree_weights, dtype=np.float64)
    tw = tw.copy()
    tw[tree.root] = 0.0
    wtree = RootedTree(parent=tree.parent.copy(), root=tree.root, weight=tw)

    if n >= 2:
        a = rng.integers(0, n, size=extra_m)
        b = rng.integers(0, n - 1, size=extra_m)
        b = np.where(b >= a, b + 1, b)  # distinct endpoints
    else:
        a = np.empty(0, dtype=np.int64)
        b = np.empty(0, dtype=np.int64)

    if mode == "random":
        wx = rng.uniform(0.0, 1.0, size=extra_m)
    else:
        pmax = wtree.path_max(a, b) if extra_m else np.empty(0)
        slack = rng.uniform(0.0, spread, size=extra_m) + 1e-9
        wx = pmax + slack
        if mode == "tight" and extra_m:
            ties = rng.random(extra_m) < (1.0 / 3.0)
            wx = np.where(ties, pmax, wx)
        elif mode != "mst":
            raise ValidationError(f"unknown mode {mode!r}")

    child, par, cw = wtree.edge_arrays()
    u = np.concatenate([child, a])
    v = np.concatenate([par, b])
    w = np.concatenate([cw, wx])
    mask = np.concatenate(
        [np.ones(n - 1, dtype=bool), np.zeros(extra_m, dtype=bool)]
    )
    return WeightedGraph(n=n, u=u, v=v, w=w, tree_mask=mask)


def known_mst_instance(
    shape: str, n: int, extra_m: int, rng=0, mode: str = "mst"
) -> Tuple[WeightedGraph, RootedTree]:
    """A (graph, rooted tree) pair where the tree is known to be the MST."""
    rng = _rng(rng)
    tree = tree_instance(shape, n, rng)
    g = attach_nontree_edges(tree, extra_m, rng, mode=mode)
    tm = g.tree_mask
    rooted = RootedTree.from_edges(n, g.u[tm], g.v[tm], g.w[tm], root=tree.root)
    return g, rooted


def perturb_break_mst(graph: WeightedGraph, rng=0) -> WeightedGraph:
    """Lower one random non-tree edge strictly below its tree-path maximum.

    The returned graph's candidate tree is provably not an MST (the cycle
    property is violated). Requires at least one non-tree edge whose tree
    path is non-empty.
    """
    rng = _rng(rng)
    tm = graph.tree_mask
    tree = RootedTree.from_edges(
        graph.n, graph.u[tm], graph.v[tm], graph.w[tm], root=0
    )
    nt_idx = np.flatnonzero(~tm)
    if len(nt_idx) == 0:
        raise ValidationError("graph has no non-tree edges to perturb")
    pmax = tree.path_max(graph.u[nt_idx], graph.v[nt_idx])
    usable = nt_idx[np.isfinite(pmax)]
    if len(usable) == 0:
        raise ValidationError("no perturbable non-tree edge")
    pick = usable[int(rng.integers(0, len(usable)))]
    w = graph.w.copy()
    target = tree.path_max(
        graph.u[pick: pick + 1], graph.v[pick: pick + 1]
    )[0]
    w[pick] = target - abs(target) * 1e-3 - 1e-3
    return graph.with_weights(w)


def one_vs_two_cycles_instance(
    n: int, two_cycles: bool, rng=0
) -> Tuple[WeightedGraph, int]:
    """The sparse Theorem 5.2 / Appendix A hard family.

    ``n`` cycle vertices (ids shuffled) forming one n-cycle or two
    n/2-cycles, plus an apex vertex adjacent to every cycle vertex with
    weight 2; cycle edges weigh 1. The candidate ``T`` is the cycle edge
    set minus one edge, plus one apex edge: a spanning MST in the
    one-cycle case, and not even a tree (cycle + disconnection) in the
    two-cycle case. The graph has diameter 2 while ``D_T = Θ(n)``.

    Returns ``(graph, apex_vertex)``.
    """
    rng = _rng(rng)
    if n < 6 or n % 2:
        raise ValidationError("n must be even and >= 6")
    perm = rng.permutation(n).astype(np.int64)
    apex = n
    edges_u, edges_v = [], []
    if two_cycles:
        halves = (perm[: n // 2], perm[n // 2:])
    else:
        halves = (perm,)
    for cyc in halves:
        edges_u.append(cyc)
        edges_v.append(np.roll(cyc, -1))
    cu = np.concatenate(edges_u)
    cv = np.concatenate(edges_v)
    # candidate T: all cycle edges except the very first one, plus apex->perm[0]
    drop = 0
    keep = np.ones(len(cu), dtype=bool)
    keep[drop] = False
    u = np.concatenate([cu, np.full(n, apex, dtype=np.int64)])
    v = np.concatenate([cv, np.arange(n, dtype=np.int64)])
    w = np.concatenate([np.ones(len(cu)), np.full(n, 2.0)])
    mask = np.zeros(len(u), dtype=bool)
    mask[: len(cu)] = keep
    mask[len(cu) + int(perm[0])] = True  # apex edge to perm[0]
    g = WeightedGraph(n=n + 1, u=u, v=v, w=w, tree_mask=mask)
    return g, apex


def random_connected_graph(n: int, m: int, rng=0) -> WeightedGraph:
    """Random connected graph: random recursive tree + uniform extras.

    Candidate tree flags are left on the constructed tree edges; weights
    are uniform (the tree generally is not an MST — useful for exercising
    "reject" paths).
    """
    rng = _rng(rng)
    if m < n - 1:
        raise ValidationError("need m >= n-1 for connectivity")
    tree = random_recursive_tree(n, rng)
    return attach_nontree_edges(tree, m - (n - 1), rng, mode="random")
