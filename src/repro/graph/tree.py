"""Rooted trees and *sequential* tree utilities.

:class:`RootedTree` is the parent-array representation used across the
library. The sequential routines here (BFS construction, depths, exact
diameter, Euler tours, binary-lifting LCA / path-maximum) serve three
masters: input validation, workload generation, and — most importantly —
as independent test oracles for the distributed algorithms.

Nothing in this module charges MPC rounds; the distributed counterparts
live in :mod:`repro.trees`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import NotATreeError, ValidationError

__all__ = ["RootedTree", "build_adjacency"]


def build_adjacency(n: int, u: np.ndarray, v: np.ndarray):
    """CSR adjacency ``(offsets, neighbors, edge_ids)`` for an edge list."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    m = len(u)
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    eid = np.concatenate([np.arange(m), np.arange(m)])
    order = np.argsort(src, kind="stable")
    nbr = dst[order]
    eid = eid[order]
    counts = np.bincount(src, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, nbr, eid


@dataclass
class RootedTree:
    """A rooted tree on vertices ``0..n-1`` as a parent array.

    ``parent[root] == root``; ``weight[i]`` is the weight of the edge
    ``{i, parent[i]}`` (0.0 and unused at the root).
    """

    parent: np.ndarray
    root: int
    weight: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        self.parent = np.asarray(self.parent, dtype=np.int64)
        n = len(self.parent)
        if self.weight is None:
            self.weight = np.zeros(n, dtype=np.float64)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if len(self.weight) != n:
            raise ValidationError("weight array length mismatch")
        if not (0 <= self.root < n):
            raise ValidationError("root out of range")
        if self.parent[self.root] != self.root:
            raise NotATreeError("parent[root] must equal root")
        self._depth: Optional[np.ndarray] = None
        self._lift: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._tour: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._validate_acyclic()

    # -- construction --------------------------------------------------------------

    @staticmethod
    def from_edges(
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | None = None,
        root: int = 0,
    ) -> "RootedTree":
        """Root an undirected tree edge list by BFS from ``root``."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if w is None:
            w = np.zeros(len(u), dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        if len(u) != n - 1:
            raise NotATreeError(
                f"a tree on {n} vertices needs {n - 1} edges, got {len(u)}"
            )
        offsets, nbr, eid = build_adjacency(n, u, v)
        parent = np.full(n, -1, dtype=np.int64)
        weight = np.zeros(n, dtype=np.float64)
        parent[root] = root
        frontier = np.array([root], dtype=np.int64)
        seen = 1
        while len(frontier):
            # vectorised BFS level expansion over the CSR arrays
            starts = offsets[frontier]
            ends = offsets[frontier + 1]
            total = int((ends - starts).sum())
            if total == 0:
                break
            idx = np.concatenate(
                [np.arange(s, e) for s, e in zip(starts, ends)]
            )
            ys = nbr[idx]
            es = eid[idx]
            fresh = parent[ys] == -1
            ys, es = ys[fresh], es[fresh]
            srcs = np.repeat(frontier, (ends - starts))[fresh]
            # first writer wins among duplicates (cannot happen in a tree,
            # but keep deterministic anyway)
            uniq, first = np.unique(ys, return_index=True)
            parent[uniq] = srcs[first]
            weight[uniq] = w[es[first]]
            seen += len(uniq)
            frontier = uniq
        if seen != n:
            raise NotATreeError("edge list is disconnected (not a spanning tree)")
        return RootedTree(parent=parent, root=root, weight=weight)

    def _validate_acyclic(self):
        n = self.n
        ptr = self.parent.copy()
        limit = 2 * int(np.ceil(np.log2(n + 1))) + 4
        for _ in range(limit):
            if np.all(ptr == self.root):
                return
            ptr = ptr[ptr]
        bad = np.flatnonzero(ptr != self.root)
        raise NotATreeError(
            f"parent array has a cycle or unreachable vertex (e.g. {int(bad[0])})"
        )

    # -- basic quantities -------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.parent)

    def depths(self) -> np.ndarray:
        """Depth of each vertex (root = 0); cached. Pointer-doubling."""
        if self._depth is None:
            n = self.n
            anc = self.parent.copy()
            dist = (np.arange(n) != self.root).astype(np.int64)
            while np.any(anc != self.root):
                dist = dist + dist[anc]
                anc = anc[anc]
            self._depth = dist
        return self._depth

    def children_count(self) -> np.ndarray:
        cnt = np.zeros(self.n, dtype=np.int64)
        mask = np.arange(self.n) != self.root
        np.add.at(cnt, self.parent[mask], 1)
        return cnt

    def height(self) -> int:
        return int(self.depths().max())

    def _children_csr(self):
        n = self.n
        mask = np.arange(n) != self.root
        kids_of = self.parent[mask]
        kid_ids = np.flatnonzero(mask)
        order = np.argsort(kids_of, kind="stable")
        kids = kid_ids[order]
        cnt = np.zeros(n, dtype=np.int64)
        np.add.at(cnt, kids_of, 1)
        off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(cnt, out=off[1:])
        return off, kids

    def diameter(self) -> int:
        """Exact unweighted diameter (in edges): two-sweep BFS."""
        if self.n == 1:
            return 0
        a, _ = self._bfs_farthest(self.root)
        _, d = self._bfs_farthest(a)
        return int(d)

    def _bfs_farthest(self, src: int) -> Tuple[int, int]:
        n = self.n
        off, kids = self._children_csr()
        dist = np.full(n, -1, dtype=np.int64)
        dist[src] = 0
        frontier = np.array([src], dtype=np.int64)
        far, fard = src, 0
        while len(frontier):
            nxt = []
            for x in frontier:
                neighbors = kids[off[x]: off[x + 1]].tolist()
                if x != self.root:
                    neighbors.append(int(self.parent[x]))
                for y in neighbors:
                    if dist[y] == -1:
                        dist[y] = dist[x] + 1
                        if dist[y] > fard:
                            far, fard = int(y), int(dist[y])
                        nxt.append(y)
            frontier = np.array(nxt, dtype=np.int64)
        return far, fard

    # -- Euler tour / DFS (sequential oracle) ---------------------------------------------

    def euler_intervals(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(dfs_number, low, high) per vertex, children visited in id order.

        ``low[v]..high[v]`` is the DFS-number interval of v's subtree,
        with ``low[v] == dfs_number[v]`` (Definition 2.13 of the paper).
        """
        if self._tour is not None:
            return self._tour
        n = self.n
        off, kids = self._children_csr()
        dfs = np.full(n, -1, dtype=np.int64)
        high = np.zeros(n, dtype=np.int64)
        counter = 0
        stack = [(self.root, 0)]
        while stack:
            v, ki = stack.pop()
            if ki == 0:
                dfs[v] = counter
                counter += 1
            cs = kids[off[v]: off[v + 1]]
            if ki < len(cs):
                stack.append((v, ki + 1))
                stack.append((int(cs[ki]), 0))
            else:
                high[v] = counter - 1
        low = dfs.copy()
        self._tour = (dfs, low, high)
        return self._tour

    def is_ancestor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised test: is ``a[i]`` an ancestor of (or equal to) ``b[i]``?"""
        _, low, high = self.euler_intervals()
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return (low[a] <= low[b]) & (high[b] <= high[a])

    # -- binary lifting: LCA and path maxima ---------------------------------------------

    def _lifting(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._lift is None:
            n = self.n
            depth = self.depths()
            levels = max(1, int(np.ceil(np.log2(max(2, int(depth.max()) + 1)))) + 1)
            up = np.empty((levels, n), dtype=np.int64)
            mx = np.empty((levels, n), dtype=np.float64)
            up[0] = self.parent
            mx[0] = np.where(np.arange(n) == self.root, -np.inf, self.weight)
            for k in range(1, levels):
                up[k] = up[k - 1][up[k - 1]]
                mx[k] = np.maximum(mx[k - 1], mx[k - 1][up[k - 1]])
            self._lift = (up, mx)
        return self._lift

    def lca(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised lowest common ancestors."""
        up, _ = self._lifting()
        depth = self.depths()
        a = np.asarray(a, dtype=np.int64).copy()
        b = np.asarray(b, dtype=np.int64).copy()
        da, db = depth[a], depth[b]
        swap = da < db
        a[swap], b[swap] = b[swap].copy(), a[swap].copy()
        diff = depth[a] - depth[b]
        for k in range(up.shape[0]):
            sel = ((diff >> k) & 1) == 1
            a[sel] = up[k][a[sel]]
        neq = a != b
        for k in range(up.shape[0] - 1, -1, -1):
            move = neq & (up[k][a] != up[k][b])
            a[move] = up[k][a[move]]
            b[move] = up[k][b[move]]
        a[neq] = up[0][a[neq]]
        return a

    def path_max_to_ancestor(self, v: np.ndarray, anc: np.ndarray) -> np.ndarray:
        """Max edge weight on the path from each ``v`` up to its ancestor.

        Returns -inf where ``v == anc`` (empty path). Callers must ensure
        the ancestor relation holds.
        """
        up, mx = self._lifting()
        depth = self.depths()
        v = np.asarray(v, dtype=np.int64).copy()
        anc = np.asarray(anc, dtype=np.int64)
        diff = depth[v] - depth[anc]
        out = np.full(len(v), -np.inf, dtype=np.float64)
        for k in range(up.shape[0]):
            sel = ((diff >> k) & 1) == 1
            out[sel] = np.maximum(out[sel], mx[k][v[sel]])
            v[sel] = up[k][v[sel]]
        return out

    def path_max(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Max edge weight on the tree path between ``a[i]`` and ``b[i]``."""
        l = self.lca(a, b)
        return np.maximum(
            self.path_max_to_ancestor(a, l), self.path_max_to_ancestor(b, l)
        )

    # -- conversions ----------------------------------------------------------------------

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tree edges as (child, parent, weight) arrays, excluding the root."""
        ids = np.flatnonzero(np.arange(self.n) != self.root)
        return ids, self.parent[ids], self.weight[ids]
