"""repro — MST verification and sensitivity in the MPC model.

Reproduction of *"Log Diameter Rounds MST Verification and Sensitivity
in MPC"* (Coy, Czumaj, Mishra, Mukherjee; SPAA 2024). See README.md for
a tour and DESIGN.md for the system inventory.

High-level API::

    from repro import verify_mst, mst_sensitivity, known_mst_instance

    graph, tree = known_mst_instance("binary", n=512, extra_m=1024, rng=1)
    result = verify_mst(graph)
    sens = mst_sensitivity(graph)
"""

from .batch import BatchRunner, JobSpec, make_workload
from .graph.generators import (
    known_mst_instance,
    one_vs_two_cycles_instance,
    perturb_break_mst,
)
from .graph.graph import WeightedGraph
from .graph.tree import RootedTree
from .mpc import LocalRuntime, MPCConfig, Table, make_runtime
from .oracle import SensitivityOracle, build_oracle
from .pipeline import ArtifactStore
from .service import SensitivityService, ServiceClient, ServiceConfig

__version__ = "1.2.0"

__all__ = [
    "WeightedGraph",
    "RootedTree",
    "MPCConfig",
    "LocalRuntime",
    "Table",
    "make_runtime",
    "known_mst_instance",
    "one_vs_two_cycles_instance",
    "perturb_break_mst",
    "SensitivityOracle",
    "build_oracle",
    "ArtifactStore",
    "BatchRunner",
    "JobSpec",
    "make_workload",
    "SensitivityService",
    "ServiceClient",
    "ServiceConfig",
    "verify_mst",
    "mst_sensitivity",
    "verify_msf",
    "msf_sensitivity",
    "__version__",
]


def verify_mst(graph, engine: str = "local", config=None, **kw):
    """Run the Theorem 3.1 MST verification pipeline (lazy import)."""
    from .core.verification import verify_mst as _impl

    return _impl(graph, engine=engine, config=config, **kw)


def mst_sensitivity(graph, engine: str = "local", config=None, **kw):
    """Run the Theorem 4.1 MST sensitivity pipeline (lazy import)."""
    from .core.sensitivity import mst_sensitivity as _impl

    return _impl(graph, engine=engine, config=config, **kw)


def verify_msf(graph, engine: str = "local", config=None, **kw):
    """Minimum spanning *forest* verification (Remark 2.4; lazy import)."""
    from .core.forest import verify_msf as _impl

    return _impl(graph, engine=engine, config=config, **kw)


def msf_sensitivity(graph, engine: str = "local", config=None, **kw):
    """Minimum spanning *forest* sensitivity (Remark 2.4; lazy import)."""
    from .core.forest import msf_sensitivity as _impl

    return _impl(graph, engine=engine, config=config, **kw)
