"""Sensitivity on the contracted cluster tree (§4.2, Algorithm 6).

After Algorithm 5 there are ``n / poly(D_T)`` clusters, so ``D_T`` words
of memory are available per cluster. For every live half-edge we:

1. split off its *topmost arc* — the inter-cluster tree edge
   ``(r_top, hi)`` right below the ancestor endpoint — and bound that
   edge's ``mc`` directly (lines 2–6);
2. record the remainder as an ``E''`` entry ``(c(lo), dep_top, w)``;
   such an entry covers exactly the inter-cluster edges of the clusters
   at depths ``dep_top+1 .. dep(c(lo))`` on ``lo``'s root path
   (Definition 4.8's ``A_c`` arrays, stored in compressed form);
3. aggregate ``minA(c) = min over subtree(c) of A_x[dep(c)]`` by
   emitting each ``E''`` entry to the ancestors it covers along the
   collected root paths (Lemma 3.7 memory budget) and reducing
   (lines 7–12);
4. bound each inter-cluster edge by ``minA`` (line 14) and leave a
   root-to-leaf note for the parent cluster's entry segment
   (line 13 / Lemma 4.9 (ii)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..mpc.runtime import Runtime
from ..mpc.table import Table
from ..trees.doubling import collect_root_paths, mpc_depths
from .contraction_sens import SensContractionState
from .hierarchy import ClusterHierarchy
from .notes import NoteSet

__all__ = ["run_cluster_sensitivity"]

POS = np.inf


def run_cluster_sensitivity(
    rt: Runtime,
    hierarchy: ClusterHierarchy,
    state: SensContractionState,
) -> List[Table]:
    """Algorithm 6. Appends notes to ``state.notes``; returns mc updates."""
    clusters = state.clusters
    k = len(clusters)
    mc_updates: List[Table] = []

    # compact ids + cluster tree
    cl = rt.sort(clusters, ("leader",))
    cid = np.arange(k, dtype=np.int64)
    cl = cl.with_cols(cid=cid)
    got = rt.lookup(cl, ("pcl",), cl, ("leader",), {"pcid": "cid"})
    cl = cl.with_cols(pcid=got.col("pcid"))
    root_cid = int(cl.col("cid")[cl.col("leader") == hierarchy.root][0])
    cparent = cl.col("pcid").copy()
    leaders_by_cid = cl.col("leader")

    cdepth = mpc_depths(rt, cparent, root_cid)
    paths = collect_root_paths(rt, cparent, root_cid)
    rt.retain("sens_cluster_paths", paths)

    edges = state.edges
    ne = len(edges)
    if ne:
        # clusters of the endpoints (lo is its cluster's leader)
        lead2cid = Table(leader=cl.col("leader"), cid=cl.col("cid"))
        c_lo = rt.lookup(
            Table(l=edges.col("lo")), ("l",), lead2cid, ("leader",),
            {"c": "cid"},
        ).col("c")
        c_hi = rt.lookup(
            Table(l=state.leader[edges.col("hi")]), ("l",), lead2cid,
            ("leader",), {"c": "cid"},
        ).col("c")
        a = cdepth[c_lo]
        b = cdepth[c_hi]
        # topmost cluster on the path: distance a-b-1 above c(lo)
        top = rt.lookup(
            Table(c=c_lo, j=a - b - 1), ("c", "j"), paths, ("v", "d"),
            {"anc": "anc"},
        ).col("anc")
        r_top = leaders_by_cid[top]
        mc_updates.append(Table(key=r_top, w=edges.col("w")))

        # E'' entries and the minA aggregation (Definition 4.8)
        e2 = Table(x=c_lo, dtop=b + 1, w=edges.col("w"))
        grown = rt.expand_join(
            e2, ("x",), paths, ("v",), {"anc": "anc", "d": "d"},
            carry=("dtop", "w"),
        )
        covered = rt.filter(grown, cdepth[grown.col("anc")] > grown.col("dtop"))
        if len(covered):
            mins = rt.reduce_by_key(covered, ("anc",), {"mn": ("w", "min")})
        else:
            mins = Table(anc=np.empty(0, np.int64), mn=np.empty(0, np.float64))
    else:
        mins = Table(anc=np.empty(0, np.int64), mn=np.empty(0, np.float64))

    # minA per cluster (inf when uncovered)
    got_min = rt.lookup(
        Table(c=cl.col("cid")), ("c",), mins, ("anc",), {"mn": "mn"},
        default={"mn": POS},
    )
    minA = got_min.col("mn")
    finite = np.isfinite(minA) & (cl.col("cid") != root_cid)
    if finite.any():
        # line 14: bound the inter-cluster edge below each covered cluster
        mc_updates.append(
            Table(key=cl.col("leader")[finite], w=minA[finite])
        )
        # line 13: note for the parent cluster's entry segment
        parent_leader = cl.col("pcl")[finite]
        parent_formed = rt.lookup(
            Table(l=parent_leader), ("l",), cl, ("leader",), {"f": "formed"},
        ).col("f")
        state.notes.add(rt, Table(
            r=parent_leader,
            bottom=cl.col("pv")[finite],
            lvl=parent_formed,
            w=minA[finite],
        ))
    rt.release("sens_cluster_paths")
    return mc_updates
