"""Unwinding the contraction and finishing ``mc`` (§4.3, Algorithm 7).

Processes the root-to-leaf notes level by level, from the last
contraction step back to the first. A note ``(r, bottom, i, w)`` covers
the path from cluster-version ``(r, i)``'s root down to ``bottom``;
expanding the version into its senior sub-cluster and juniors splits the
note into (at most) a senior note, a junior note, and an ``mc`` bound on
the contracted tree edge between them (lines 5–9). Deduplication
(line 12) keeps the live note count ``O(n)`` (Claim 4.13).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..mpc.runtime import Runtime, pack_pair
from ..mpc.table import Table
from .hierarchy import ClusterHierarchy
from .notes import NoteSet

__all__ = ["run_unwind"]


def run_unwind(
    rt: Runtime,
    hierarchy: ClusterHierarchy,
    notes: NoteSet,
    low: np.ndarray,
    high: np.ndarray,
) -> List[Table]:
    """Algorithm 7: decompose all notes; returns the mc-update tables."""
    mc_updates: List[Table] = []
    for lv in reversed(hierarchy.levels):
        cur = notes.take_level(rt, lv.level)
        if len(cur) == 0:
            continue
        # which junior of version (r, lv.level) contains `bottom`?
        recs = Table(
            senior=lv.senior, junior=lv.junior, jlow=lv.junior_low,
            jhigh=lv.junior_high, jformed=lv.junior_formed,
            sprev=lv.senior_prev_formed, pv=lv.parent_vertex,
        )
        data = rt.sort(recs, ("senior", "jlow"))
        bdfs = low[cur.col("bottom")]
        q = Table(s=cur.col("r"), d=bdfs)
        dk, qk = pack_pair(data, ("senior", "jlow"), q, ("s", "d"))
        got = rt.predecessor(
            q.with_cols(__pk=qk), "__pk", data.with_cols(__pk=dk), "__pk",
            {"jq": "junior", "jlo": "jlow", "jhi": "jhigh", "js": "senior",
             "jfo": "jformed", "jsp": "sprev", "jpv": "pv"},
            {"jq": -1, "jlo": 0, "jhi": -1, "js": -1, "jfo": -1, "jsp": -1,
             "jpv": -1},
        )
        hit = (
            (got.col("js") == cur.col("r"))
            & (got.col("jlo") <= bdfs)
            & (bdfs <= got.col("jhi"))
            & (got.col("jq") >= 0)
        )
        # every note at this level references a version that merged here,
        # so the senior's previous formation level exists for all rows
        sprev_map = rt.reduce_by_key(
            Table(s=lv.senior, f=lv.senior_prev_formed), ("s",),
            {"f": ("f", "min")},
        )
        sprev = rt.lookup(
            Table(s=cur.col("r")), ("s",), sprev_map, ("s",), {"f": "f"},
            default={"f": 0},
        ).col("f")

        w = cur.col("w")
        if hit.any():
            # line 6: bound the contracted edge (junior root, its parent)
            mc_updates.append(Table(key=got.col("jq")[hit], w=w[hit]))
        # line 8: senior part r -> p(junior root), at the senior's level
        senior_bottom = np.where(hit, got.col("jpv"), cur.col("bottom"))
        notes.add(rt, Table(
            r=cur.col("r"), bottom=senior_bottom, lvl=sprev, w=w,
        ))
        # line 9: junior part (junior root -> bottom), at the junior's level
        if hit.any():
            notes.add(rt, Table(
                r=got.col("jq")[hit],
                bottom=cur.col("bottom")[hit],
                lvl=got.col("jfo")[hit],
                w=w[hit],
            ))
    # all remaining notes are zero-length singletons and were dropped
    return mc_updates
