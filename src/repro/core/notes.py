"""Root-to-leaf notes (Definition 4.4).

A note ``(r, l, i, w)`` records that some non-tree edge of weight ``w``
covers the tree path from cluster root ``r`` down to cluster leaf ``l``,
inside the cluster *version* of leader ``r`` that was formed at
contraction step ``i``. Notes are created when the sensitivity
contraction process truncates edges (Definition 4.5 cases 4/5) and by
Algorithm 6 for intermediate clusters, and are consumed by the
Algorithm 7 unwind, which splits them level by level until every
covered tree edge has received the note's weight as an ``mc`` bound.

Only the cheapest note per ``(r, l, i)`` must be kept (the remark after
Definition 4.4); :meth:`NoteSet.dedupe` enforces that, which also keeps
the live note count ``O(n)`` (Lemma 4.6 / Claim 4.13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = ["NoteSet", "empty_notes"]

NOTE_SCHEMA = {"r": np.int64, "bottom": np.int64, "lvl": np.int64,
               "w": np.float64}


def empty_notes() -> Table:
    return Table.empty(NOTE_SCHEMA)


@dataclass
class NoteSet:
    """A deduplicated multiset of root-to-leaf notes + peak statistics."""

    table: Table = field(default_factory=empty_notes)
    peak: int = 0

    def __len__(self) -> int:
        return len(self.table)

    def add(self, rt: Runtime, new: Table) -> None:
        """Add notes (dropping zero-length ones) and deduplicate."""
        if len(new):
            nontrivial = rt.filter(new, new.col("r") != new.col("bottom"))
            self.table = Table.concat([self.table, nontrivial.select(
                ["r", "bottom", "lvl", "w"])])
        self.peak = max(self.peak, len(self.table))
        self.dedupe(rt)

    def dedupe(self, rt: Runtime) -> None:
        if len(self.table) == 0:
            return
        self.table = rt.reduce_by_key(
            self.table, ("r", "bottom", "lvl"), {"w": ("w", "min")}
        )
        self.peak = max(self.peak, len(self.table))

    def take_level(self, rt: Runtime, level: int) -> Table:
        """Remove and return the notes whose version formed at ``level``."""
        if len(self.table) == 0:
            return empty_notes()
        sel = self.table.col("lvl") == level
        cur = rt.filter(self.table, sel)
        self.table = rt.filter(self.table, ~sel)
        return cur
