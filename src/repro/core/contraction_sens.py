"""The sensitivity contraction process (§4.1, Definition 4.5, Algorithm 5).

Replays the cluster hierarchy while maintaining the invariant that no
live (truncated) non-tree half-edge covers a tree edge inside either
endpoint's cluster. Consequences of the invariant that the code relies
on (proofs in §4.1 / Lemma 4.9):

* the lower endpoint ``lo`` of a live half-edge is always the *leader*
  of its cluster;
* the upper endpoint ``hi`` is always the parent of the root of the
  next cluster down on the path (a cluster "leaf").

Per level, for each live half-edge (Definition 4.5):

* case 1 — the edge *is* a contracted tree edge: record its weight as
  an ``mc`` bound for that edge and drop it;
* case 4 — ``lo``'s cluster is a junior and the edge continues above:
  bound the contracted edge, leave a root-to-leaf note for the senior's
  traversed segment, and truncate ``lo`` up to the new leader;
* case 5 — ``hi``'s cluster absorbs the junior the path climbs out of:
  bound the contracted edge, leave a note for the junior's traversed
  segment, and truncate ``hi`` down to the junior's entry leaf;
* cases 2/3 — the invariant already holds; nothing to do.

O(1) primitive rounds per level (Lemma 4.7); the notes stay ``O(n)``
(Lemma 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..mpc.runtime import Runtime, pack_pair
from ..mpc.table import Table
from .adgraph import HalfEdges
from .hierarchy import ClusterHierarchy
from .notes import NoteSet

__all__ = ["SensContractionState", "run_sensitivity_contraction"]

NEG = -np.inf


@dataclass
class SensContractionState:
    """Output of Algorithm 5."""

    edges: Table            # live truncated half-edges: eid, lo, hi, w
    clusters: Table         # final clusters: leader, pv, pcl, cw, formed
    notes: NoteSet
    mc_updates: List[Table] # (key=child vertex of tree edge, w) tables
    leader: np.ndarray      # final per-vertex cluster leader


def _junior_by_parent_vertex(
    rt: Runtime, lv_tab: Table, query_pv: np.ndarray, query_dfs: np.ndarray
):
    """Find this level's contracted edge ``(x, hi)`` with ``x`` an ancestor
    of the query point: juniors keyed by (parent_vertex, interval).

    Juniors sharing a parent vertex are sibling clusters with disjoint
    subtree intervals, so predecessor + containment is exact.
    """
    data = rt.sort(lv_tab, ("pv", "jlow"))
    q = Table(p=query_pv, d=query_dfs)
    dk, qk = pack_pair(data, ("pv", "jlow"), q, ("p", "d"))
    got = rt.predecessor(
        q.with_cols(__pk=qk), "__pk", data.with_cols(__pk=dk), "__pk",
        {
            "jq": "junior", "jlo": "jlow", "jhi": "jhigh", "jpv": "pv",
            "jcw": "cw", "jfo": "jformed",
        },
        {"jq": -1, "jlo": 0, "jhi": -1, "jpv": -1, "jcw": NEG, "jfo": -1},
    )
    hit = (
        (got.col("jpv") == query_pv)
        & (got.col("jlo") <= query_dfs)
        & (query_dfs <= got.col("jhi"))
        & (got.col("jq") >= 0)
    )
    return got, hit


def run_sensitivity_contraction(
    rt: Runtime,
    hierarchy: ClusterHierarchy,
    half: HalfEdges,
    low: np.ndarray,
    high: np.ndarray,
) -> SensContractionState:
    """Algorithm 5: contract, truncating edges and collecting notes."""
    n = hierarchy.n
    root = hierarchy.root
    parent = hierarchy.parent
    ids = np.arange(n, dtype=np.int64)

    cl_leader = ids.copy()
    cl_pv = parent.copy()
    cl_pv[root] = root
    cl_pcl = parent.copy()
    cl_pcl[root] = root
    cl_cw = hierarchy.wpar.copy()
    cl_cw[root] = NEG
    cl_formed = np.zeros(n, dtype=np.int64)

    edges = half.as_table()
    notes = NoteSet()
    mc_updates: List[Table] = []
    leader = ids.copy()

    for lv in hierarchy.levels:
        lv_tab = Table(
            junior=lv.junior, senior=lv.senior, cw=lv.cross_w,
            jlow=lv.junior_low, jhigh=lv.junior_high,
            jformed=lv.junior_formed, sprev=lv.senior_prev_formed,
            pv=lv.parent_vertex,
        )
        jmap = Table(j=lv.junior, s=lv.senior, sprev=lv.senior_prev_formed,
                     pv=lv.parent_vertex)
        lo = edges.col("lo")
        hi = edges.col("hi")
        w = edges.col("w")
        ne = len(edges)
        if ne == 0:
            # still advance cluster/leader state below
            pass

        if ne:
            # ---- LO side (cases 1 and 4) --------------------------------
            got_lo = rt.lookup(
                Table(c=lo), ("c",), jmap, ("j",),
                {"s": "s", "sprev": "sprev", "pv": "pv"},
                default={"s": -1, "sprev": -1, "pv": -1},
            )
            lo_hit = got_lo.col("s") >= 0
            if lo_hit.any():
                mc_updates.append(Table(key=lo[lo_hit], w=w[lo_hit]))
            absorbed = lo_hit & (hi == got_lo.col("pv"))
            case4 = lo_hit & ~absorbed
            if case4.any():
                notes.add(rt, Table(
                    r=got_lo.col("s")[case4],
                    bottom=got_lo.col("pv")[case4],
                    lvl=got_lo.col("sprev")[case4],
                    w=w[case4],
                ))
            new_lo = np.where(case4, got_lo.col("s"), lo)

            # ---- HI side (case 5) ---------------------------------------
            dfs_lo = low[lo]
            got_hi, hi_hit = _junior_by_parent_vertex(rt, lv_tab, hi, dfs_lo)
            case5 = hi_hit & (got_hi.col("jq") != lo)
            if case5.any():
                mc_updates.append(
                    Table(key=got_hi.col("jq")[case5], w=w[case5])
                )
                # entry leaf l = parent vertex of the child cluster of jq
                # through which the path descends to lo
                clusters_now = Table(
                    leader=cl_leader, pcl=cl_pcl, pv=cl_pv,
                    lo_=low[cl_leader], hi_=high[cl_leader],
                )
                data = rt.sort(clusters_now, ("pcl", "lo_"))
                q = Table(p=np.where(case5, got_hi.col("jq"), -1), d=dfs_lo)
                dk, qk = pack_pair(data, ("pcl", "lo_"), q, ("p", "d"))
                got_q = rt.predecessor(
                    q.with_cols(__pk=qk), "__pk", data.with_cols(__pk=dk),
                    "__pk",
                    {"ql": "leader", "qlo": "lo_", "qhi": "hi_",
                     "qpcl": "pcl", "qpv": "pv"},
                    {"ql": -1, "qlo": 0, "qhi": -1, "qpcl": -1, "qpv": -1},
                )
                q_ok = (
                    case5
                    & (got_q.col("qpcl") == q.col("p"))
                    & (got_q.col("qlo") <= dfs_lo)
                    & (dfs_lo <= got_q.col("qhi"))
                )
                entry_leaf = got_q.col("qpv")
                notes.add(rt, Table(
                    r=got_hi.col("jq")[q_ok],
                    bottom=entry_leaf[q_ok],
                    lvl=got_hi.col("jfo")[q_ok],
                    w=w[q_ok],
                ))
                new_hi = np.where(q_ok, entry_leaf, hi)
            else:
                new_hi = hi

            edges = Table(eid=edges.col("eid"), lo=new_lo, hi=new_hi, w=w)
            edges = rt.filter(edges, ~absorbed)

        # ---- cluster and leader state updates ---------------------------
        relab = rt.lookup(
            Table(l=leader), ("l",), jmap, ("j",), {"s": "s"},
            default={"s": -1},
        )
        leader = np.where(relab.col("s") >= 0, relab.col("s"), leader)
        was_junior = rt.lookup(
            Table(c=cl_leader), ("c",), jmap, ("j",), {"s": "s"},
            default={"s": -1},
        ).col("s") >= 0
        rewire = rt.lookup(
            Table(c=cl_pcl), ("c",), jmap, ("j",), {"s": "s"},
            default={"s": -1},
        )
        cl_pcl = np.where(rewire.col("s") >= 0, rewire.col("s"), cl_pcl)
        keep = ~was_junior
        cl_leader = cl_leader[keep]
        cl_pv = cl_pv[keep]
        cl_pcl = cl_pcl[keep]
        cl_cw = cl_cw[keep]
        cl_formed = cl_formed[keep]
        seniors = np.unique(lv.senior)
        grew = rt.lookup(
            Table(c=cl_leader), ("c",),
            Table(s=seniors, one=np.ones(len(seniors), dtype=np.int64)),
            ("s",), {"one": "one"}, default={"one": 0},
        ).col("one") == 1
        cl_formed = np.where(grew, lv.level, cl_formed)

    clusters = Table(leader=cl_leader, pv=cl_pv, pcl=cl_pcl, cw=cl_cw,
                     formed=cl_formed)
    return SensContractionState(
        edges=edges, clusters=clusters, notes=notes,
        mc_updates=mc_updates, leader=leader,
    )
