"""Minimum spanning *forest* verification and sensitivity (Remark 2.4).

The paper notes both algorithms extend to disconnected ``G`` with a
candidate spanning forest ``T``: solve connectivity on ``T``, partition
by component, and run per component in parallel.

We realise "in parallel per component" without duplicating the
pipelines: after validating that ``T`` spans exactly ``G``'s components,
the components are *stitched* into a single instance by linking each
component's anchor (its minimum vertex id) to a global root with a
virtual tree edge heavier than every real edge. Because no non-tree
edge crosses components, the virtual links lie on no challenge path:
verification verdicts and per-edge sensitivities are exactly those of
the per-component runs, while ``D_{T'} <= D_T + 2`` keeps the round
bound intact. The virtual edges are stripped from all outputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError
from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig, make_runtime
from ..mpc.runtime import Runtime
from ..mpc.table import Table
from ..trees.connectivity import mpc_connected_components
from .results import SensitivityResult, VerificationResult
from .sensitivity import mst_sensitivity
from .verification import distributed_hint, verify_mst

__all__ = ["verify_msf", "msf_sensitivity", "stitch_components"]


def stitch_components(
    rt: Runtime, graph: WeightedGraph
) -> Tuple[Optional[WeightedGraph], np.ndarray, str]:
    """Validate the forest structure and stitch components.

    Returns ``(augmented_graph, anchors, reason)``; ``augmented_graph``
    is None (with a reason) when ``T`` is not a spanning forest of
    ``G``. The augmented graph's first ``graph.m`` edges are the
    original ones, followed by the virtual links.
    """
    n = graph.n
    tu, tv, _ = graph.tree_edges()
    with rt.phase("forest-validate"):
        lab_g = mpc_connected_components(rt, n, graph.u, graph.v)
        lab_t = mpc_connected_components(rt, n, tu, tv)
        if not np.array_equal(lab_g, lab_t):
            return None, np.empty(0, np.int64), "forest-components-mismatch"
        anchors = np.unique(lab_g)
        if len(tu) != n - len(anchors):
            return None, np.empty(0, np.int64), "forest-edge-count"
    if len(anchors) == 1:
        return graph, anchors, "ok"
    w_link = (graph.w.max() if graph.m else 0.0) + 1.0
    others = anchors[anchors != anchors[0]]
    u = np.concatenate([graph.u, others])
    v = np.concatenate([graph.v, np.full(len(others), anchors[0],
                                         dtype=np.int64)])
    w = np.concatenate([graph.w, np.full(len(others), w_link)])
    mask = np.concatenate([graph.tree_mask, np.ones(len(others), dtype=bool)])
    return WeightedGraph(n=n, u=u, v=v, w=w, tree_mask=mask), anchors, "ok"


def verify_msf(
    graph: WeightedGraph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    **kw,
) -> VerificationResult:
    """Decide whether the flagged forest is a minimum spanning forest."""
    rt = kw.pop("runtime", None) or make_runtime(
        engine, config, total_words_hint=distributed_hint(graph)
    )
    aug, anchors, reason = stitch_components(rt, graph)
    if aug is None:
        return VerificationResult(
            is_mst=False, reason=reason, n_violations=0,
            violating_edges=np.empty(0, dtype=np.int64),
            nontree_index=np.flatnonzero(~graph.tree_mask), pathmax=None,
            diameter_estimate=0, rounds=rt.rounds, report=rt.report(),
            cluster_counts=[], failed_stage="forest-validate",
        )
    root = int(anchors[0]) if len(anchors) else 0
    res = verify_mst(aug, runtime=rt, root=root, **kw)
    # outputs reference only original edge positions (links are tree edges
    # beyond graph.m and never challenged)
    res.violating_edges = res.violating_edges[res.violating_edges < graph.m]
    return res


def msf_sensitivity(
    graph: WeightedGraph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    **kw,
) -> SensitivityResult:
    """Per-edge sensitivity for a minimum spanning forest (Remark 2.4)."""
    rt = kw.pop("runtime", None) or make_runtime(
        engine, config, total_words_hint=distributed_hint(graph)
    )
    aug, anchors, reason = stitch_components(rt, graph)
    if aug is None:
        raise ValidationError(f"input is not a spanning forest ({reason})")
    root = int(anchors[0]) if len(anchors) else 0
    res = mst_sensitivity(aug, runtime=rt, root=root, **kw)
    keep = np.arange(graph.m)
    res.sensitivity = res.sensitivity[keep]
    res.tree_index = res.tree_index[res.tree_index < graph.m]
    res.nontree_index = res.nontree_index[res.nontree_index < graph.m]
    return res
