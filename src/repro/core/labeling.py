"""Weight-preserving labelling ``(θ, ω)`` and path-maximum evaluation (§3).

Definition 3.2: given a clustering ``C`` of an ancestor–descendant
instance,

* ``θ(c)`` (stored on the child cluster ``c``) is the largest weight on
  the tree path from the *parent* cluster's leader down to
  ``p(leader(c))`` — the segment of the parent cluster a path traverses
  when it climbs out of ``c``;
* ``ω_lo`` / ``ω_hi`` of a half-edge are the largest weights on the
  parts of its tree path that lie inside the descendant's / ancestor's
  cluster.

:func:`run_weight_labeling` replays the contraction levels of a
:class:`~repro.core.hierarchy.ClusterHierarchy`, maintaining the labels
per Lemma 3.4's case analysis in O(1) rounds per level (Lemma 3.5):

* *union* (case 1): the two endpoint clusters merge — the path is now
  internal; ``ω = max(ω_lo, cross, ω_hi)``;
* *climb-out* (case 5): the descendant's cluster is a junior and the
  path continues above the new cluster —
  ``ω_lo = max(ω_lo, cross, θ(junior))``;
* *descend-through* (case 3): the ancestor's cluster absorbs the junior
  the path enters through — ``ω_hi = max(ω_hi, cross(junior),
  θ(child-of-junior on the path))``;
* cases 2/4: nothing changes.

:func:`evaluate_pathmax` combines the final labels with cluster-tree
root paths (Lemma 3.7) and their prefix maxima to produce, for every
half-edge, the maximum weight on its tree path (Observation 3.3) —
which decides MST verification (Theorem 3.1) and gives the sensitivity
of non-tree edges (Observation 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpc.runtime import Runtime, pack_pair
from ..mpc.table import Table
from ..trees.doubling import collect_root_paths, mpc_depths
from .adgraph import HalfEdges
from .hierarchy import ClusterHierarchy

__all__ = ["LabeledHalfEdges", "run_weight_labeling", "evaluate_pathmax"]

NEG = -np.inf


@dataclass
class LabeledHalfEdges:
    """Half-edges with their final ``(ω, cluster)`` state after replay."""

    half: HalfEdges
    omega_lo: np.ndarray
    omega_hi: np.ndarray
    cl_lo: np.ndarray       # final cluster leader of lo's cluster
    cl_hi: np.ndarray
    internal: np.ndarray    # both endpoints ended in the same cluster
    clusters: Table         # final clusters: leader, pcl, cw, theta

    def __len__(self) -> int:
        return len(self.half)


def _junior_containing(
    rt: Runtime, lv_table: Table, query_cluster: np.ndarray, query_dfs: np.ndarray
):
    """Find, per query, this level's junior of ``query_cluster`` whose
    subtree interval contains ``query_dfs`` (or a miss).

    ``lv_table`` columns: senior, jlow, jhigh, junior, cw, jformed, pv.
    Sibling junior intervals are disjoint, so a predecessor search on
    (senior, jlow) followed by containment checks is exact.
    """
    data = rt.sort(lv_table, ("senior", "jlow"))
    q = Table(s=query_cluster, d=query_dfs)
    dk, qk = pack_pair(data, ("senior", "jlow"), q, ("s", "d"))
    got = rt.predecessor(
        q.with_cols(__pk=qk), "__pk", data.with_cols(__pk=dk), "__pk",
        {
            "jq": "junior", "jlo": "jlow", "jhi": "jhigh", "js": "senior",
            "jcw": "cw", "jfo": "jformed", "jpv": "pv",
        },
        {"jq": -1, "jlo": 0, "jhi": -1, "js": -1, "jcw": NEG, "jfo": -1,
         "jpv": -1},
    )
    hit = (
        (got.col("js") == query_cluster)
        & (got.col("jlo") <= query_dfs)
        & (query_dfs <= got.col("jhi"))
        & (got.col("jq") >= 0)
    )
    return got, hit


def _child_cluster_containing(
    rt: Runtime, clusters: Table, low: np.ndarray,
    query_parent_cluster: np.ndarray, query_dfs: np.ndarray
):
    """Find, per query, the live child cluster of ``query_parent_cluster``
    whose leader's subtree interval contains ``query_dfs``.

    Sibling child clusters have disjoint subtree intervals (see module
    notes), so a predecessor search on (pcl, leader_low) is exact.
    Returns the child's (leader, theta, pv) plus a hit mask.
    """
    data = clusters.with_cols(
        __lo=low[clusters.col("leader")],
    )
    data = rt.sort(data, ("pcl", "__lo"))
    q = Table(p=query_parent_cluster, d=query_dfs)
    dk, qk = pack_pair(data, ("pcl", "__lo"), q, ("p", "d"))
    got = rt.predecessor(
        q.with_cols(__pk=qk), "__pk", data.with_cols(__pk=dk), "__pk",
        {"ql": "leader", "qth": "theta", "qpcl": "pcl", "qlo": "__lo",
         "qhi": "hi_", "qpv": "pv"},
        {"ql": -1, "qth": NEG, "qpcl": -1, "qlo": 0, "qhi": -1, "qpv": -1},
    )
    hit = (
        (got.col("qpcl") == query_parent_cluster)
        & (got.col("qlo") <= query_dfs)
        & (query_dfs <= got.col("qhi"))
        & (got.col("ql") >= 0)
    )
    return got, hit


def run_weight_labeling(
    rt: Runtime,
    hierarchy: ClusterHierarchy,
    half: HalfEdges,
    low: np.ndarray,
    high: np.ndarray,
) -> LabeledHalfEdges:
    """Replay contraction maintaining ``(θ, ω)`` (Lemmas 3.4/3.5)."""
    n = hierarchy.n
    root = hierarchy.root
    parent = hierarchy.parent
    wpar = hierarchy.wpar
    ids = np.arange(n, dtype=np.int64)

    # live cluster state (one row per cluster, keyed by leader)
    cl_leader = ids.copy()
    cl_pcl = parent.copy()
    cl_pcl[root] = root
    cl_cw = wpar.copy()
    cl_cw[root] = NEG
    cl_pv = parent.copy()
    cl_pv[root] = root
    cl_theta = np.full(n, NEG, dtype=np.float64)

    ne = len(half)
    cl_lo = half.lo.copy()
    cl_hi = half.hi.copy()
    om_lo = np.full(ne, NEG, dtype=np.float64)
    om_hi = np.full(ne, NEG, dtype=np.float64)
    internal = np.zeros(ne, dtype=bool)
    dfs_lo = low[half.lo]

    for lv in hierarchy.levels:
        lv_tab = Table(
            junior=lv.junior, senior=lv.senior, cw=lv.cross_w,
            jlow=lv.junior_low, jhigh=lv.junior_high,
            jformed=lv.junior_formed, pv=lv.parent_vertex,
        )
        live = ~internal

        # LO side: is lo's cluster a junior this level? fetch (senior, cw, θ)
        jmap = Table(j=lv.junior, s=lv.senior, cw=lv.cross_w)
        got_lo = rt.lookup(
            Table(c=cl_lo), ("c",), jmap, ("j",), {"s": "s", "cw": "cw"},
            default={"s": -1, "cw": NEG},
        )
        lo_is_junior = (got_lo.col("s") >= 0) & live
        th_lo = rt.lookup(
            Table(c=cl_lo), ("c",),
            Table(leader=cl_leader, th=cl_theta), ("leader",), {"th": "th"},
            default={"th": NEG},
        ).col("th")

        # HI side: did hi's cluster absorb the junior the path enters by?
        got_hi, hi_hit = _junior_containing(rt, lv_tab, cl_hi, dfs_lo)
        hi_hit = hi_hit & live

        union = lo_is_junior & (got_lo.col("s") == cl_hi)
        climb = lo_is_junior & ~union
        descend = hi_hit & (got_hi.col("jq") != cl_lo)

        # case 1: union — the path becomes internal
        uval = np.maximum(np.maximum(om_lo, om_hi),
                          np.where(union, got_lo.col("cw"), NEG))
        om_lo = np.where(union, uval, om_lo)
        om_hi = np.where(union, uval, om_hi)
        internal = internal | union

        # case 5: ω_lo extends over the junior's θ segment + cross edge
        ext = np.maximum(np.where(climb, got_lo.col("cw"), NEG),
                         np.where(climb, th_lo, NEG))
        om_lo = np.where(climb, np.maximum(om_lo, ext), om_lo)

        # case 3: ω_hi extends through the absorbed junior jq down to the
        # child cluster q' on the path
        if descend.any():
            clusters_now = Table(
                leader=cl_leader, pcl=cl_pcl, theta=cl_theta, pv=cl_pv,
                hi_=high[cl_leader],
            )
            got_q, q_hit = _child_cluster_containing(
                rt, clusters_now, low,
                np.where(descend, got_hi.col("jq"), -1), dfs_lo,
            )
            ok = descend & q_hit
            ext_hi = np.maximum(
                np.where(ok, got_hi.col("jcw"), NEG),
                np.where(ok, got_q.col("qth"), NEG),
            )
            om_hi = np.where(ok, np.maximum(om_hi, ext_hi), om_hi)

        # cluster-state updates: θ/pcl rewiring for clusters whose parent
        # cluster was absorbed, then drop the juniors
        got_p = rt.lookup(
            Table(c=cl_pcl), ("c",), jmap, ("j",), {"s": "s", "cw": "cw"},
            default={"s": -1, "cw": NEG},
        )
        th_p = rt.lookup(
            Table(c=cl_pcl), ("c",),
            Table(leader=cl_leader, th=cl_theta), ("leader",), {"th": "th"},
            default={"th": NEG},
        ).col("th")
        pj = got_p.col("s") >= 0
        cl_theta = np.where(
            pj, np.maximum(np.maximum(cl_theta, got_p.col("cw")), th_p),
            cl_theta,
        )
        cl_pcl = np.where(pj, got_p.col("s"), cl_pcl)
        was_junior = rt.lookup(
            Table(c=cl_leader), ("c",), jmap, ("j",), {"s": "s"},
            default={"s": -1},
        ).col("s") >= 0
        keep = ~was_junior
        cl_leader = cl_leader[keep]
        cl_pcl = cl_pcl[keep]
        cl_cw = cl_cw[keep]
        cl_pv = cl_pv[keep]
        cl_theta = cl_theta[keep]

        # edge cluster pointers follow the merge
        for arr_name in ("cl_lo", "cl_hi"):
            arr = cl_lo if arr_name == "cl_lo" else cl_hi
            got = rt.lookup(
                Table(c=arr), ("c",), jmap, ("j",), {"s": "s"},
                default={"s": -1},
            )
            moved = np.where(got.col("s") >= 0, got.col("s"), arr)
            if arr_name == "cl_lo":
                cl_lo = moved
            else:
                cl_hi = moved

    clusters = Table(
        leader=cl_leader, pcl=cl_pcl, cw=cl_cw, theta=cl_theta, pv=cl_pv
    )
    return LabeledHalfEdges(
        half=half, omega_lo=om_lo, omega_hi=om_hi,
        cl_lo=cl_lo, cl_hi=cl_hi, internal=internal, clusters=clusters,
    )


def evaluate_pathmax(
    rt: Runtime,
    hierarchy: ClusterHierarchy,
    labeled: LabeledHalfEdges,
) -> np.ndarray:
    """Observation 3.3: the max tree-path weight of every half-edge.

    Uses Lemma 3.7 root paths on the final cluster tree plus prefix
    maxima of the ``θ`` and inter-cluster ("cross") weights along them.
    """
    clusters = labeled.clusters
    k = len(clusters)
    ne = len(labeled)
    if ne == 0:
        return np.empty(0, dtype=np.float64)

    # compact ids over final clusters
    cl = rt.sort(clusters, ("leader",))
    cid = np.arange(k, dtype=np.int64)
    cl = cl.with_cols(cid=cid)
    got = rt.lookup(cl, ("pcl",), cl, ("leader",), {"pcid": "cid"})
    cl = cl.with_cols(pcid=got.col("pcid"))
    root_cid = int(cl.col("cid")[cl.col("leader") == hierarchy.root][0])
    cparent = cl.col("pcid").copy()
    th_by = cl.col("theta")
    cx_by = cl.col("cw")

    cdepth = mpc_depths(rt, cparent, root_cid)
    paths = collect_root_paths(rt, cparent, root_cid)
    rt.retain("cluster_root_paths", paths)
    paths = paths.with_cols(
        th=th_by[paths.col("anc")], cx=cx_by[paths.col("anc")]
    )
    paths = rt.sort(paths, ("v", "d"))
    cum_th = rt.scan(paths, "th", "max", by=("v",))
    cum_cx = rt.scan(paths, "cx", "max", by=("v",))
    paths = paths.with_cols(cum_th=cum_th, cum_cx=cum_cx)

    # per-edge cluster ids and depths
    lead2cid = Table(leader=cl.col("leader"), cid=cl.col("cid"))
    e_lo = rt.lookup(Table(l=labeled.cl_lo), ("l",), lead2cid, ("leader",),
                     {"c": "cid"}).col("c")
    e_hi = rt.lookup(Table(l=labeled.cl_hi), ("l",), lead2cid, ("leader",),
                     {"c": "cid"}).col("c")
    a = cdepth[e_lo]
    b = cdepth[e_hi]

    j_th = a - b - 2
    j_cx = a - b - 1
    q_th = rt.lookup(
        Table(c=e_lo, j=np.maximum(j_th, 0)), ("c", "j"),
        paths, ("v", "d"), {"m": "cum_th"}, default={"m": NEG},
    ).col("m")
    q_cx = rt.lookup(
        Table(c=e_lo, j=np.maximum(j_cx, 0)), ("c", "j"),
        paths, ("v", "d"), {"m": "cum_cx"}, default={"m": NEG},
    ).col("m")
    th_part = np.where(j_th >= 0, q_th, NEG)
    cx_part = np.where(j_cx >= 0, q_cx, NEG)

    pathmax = np.maximum(labeled.omega_lo, labeled.omega_hi)
    outside = ~labeled.internal
    pathmax = np.where(
        outside,
        np.maximum(pathmax, np.maximum(th_part, cx_part)),
        pathmax,
    )
    rt.release("cluster_root_paths")
    return pathmax
