"""Hierarchical clustering of the candidate tree (§2.1 of the paper).

A *cluster* is a set of vertices inducing a connected subtree of ``T``;
its *leader* is the root of that subtree (Definition 2.5). A
*contraction step* (Definition 2.7, realised by Lemma 2.8) merges a set
of child clusters ("juniors") into their parents ("seniors") so that no
cluster is both junior and senior, shrinking the cluster count by a
constant factor in O(1) rounds.

We implement the randomised head/tail step of [BDE+19] (the paper's
Lemma 2.8 cites [CC23], which derandomises it — DESIGN.md
substitution 2): every cluster flips a coin; a non-root cluster
contracts into its parent iff it flipped Tail and the parent flipped
Head. Each non-root cluster contracts with probability 1/4 per step, so
``O(log D_T)`` steps reach the target of ``n / D_T`` clusters
(Corollary 3.6) w.h.p.

The build records, per level, exactly the merge data the paper's replay
passes need (weight labels of §3.1, the sensitivity contraction of
§4.1, and the LCA unwind of §2.2): junior leader and its DFS interval,
the contracted tree edge and weight, the senior leader, and the
formation levels of both cluster versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ValidationError
from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = ["MergeLevel", "ClusterHierarchy", "build_hierarchy"]

BIG = np.iinfo(np.int64).max


@dataclass
class MergeLevel:
    """All merges performed in one contraction step (Definition 2.7)."""

    level: int
    junior: np.ndarray            # junior cluster leader (subtree root vertex)
    parent_vertex: np.ndarray     # p_T(junior): a vertex of the senior cluster
    senior: np.ndarray            # senior cluster leader
    cross_w: np.ndarray           # w({junior, parent_vertex}) — the contracted edge
    junior_low: np.ndarray        # DFS interval of the junior leader
    junior_high: np.ndarray
    junior_formed: np.ndarray     # level at which the junior's version formed
    senior_prev_formed: np.ndarray  # senior version's formation level before this merge

    def __len__(self) -> int:
        return len(self.junior)

    def as_table(self) -> Table:
        return Table(
            junior=self.junior,
            pv=self.parent_vertex,
            senior=self.senior,
            cw=self.cross_w,
            jlow=self.junior_low,
            jhigh=self.junior_high,
            jformed=self.junior_formed,
            sprev=self.senior_prev_formed,
        )


@dataclass
class ClusterHierarchy:
    """The result of ``tau`` contraction steps on a rooted tree."""

    n: int
    root: int
    levels: List[MergeLevel]
    final_leader: np.ndarray      # per-vertex final cluster leader
    final_clusters: Table         # leader, pv, pcl, cw, formed (root row: pv=pcl=leader)
    counts: List[int]             # cluster count after each step (counts[0] == n)
    target: int
    hit_target: bool
    parent: np.ndarray = None     # the rooted tree the hierarchy was built on
    wpar: np.ndarray = None       # weight of each vertex's parent edge

    @property
    def tau(self) -> int:
        return len(self.levels)

    @property
    def final_count(self) -> int:
        return self.counts[-1]

    def total_cluster_records(self) -> int:
        """Observation 2.10 quantity: sum over levels of merge records."""
        return sum(len(lv) for lv in self.levels)


def contraction_target(n: int, diameter_hint: int, exponent: float = 1.0) -> int:
    """Number of clusters to contract down to: ``n / D^exponent``.

    Exponent 1 suffices for the ``O(|C| * D_T) = O(n)`` memory bound of
    Lemma 3.7 / Algorithm 6 (the ablation E10 varies it).
    """
    d = max(2, int(diameter_hint))
    return max(1, int(np.ceil(n / d**exponent)))


def build_hierarchy(
    rt: Runtime,
    parent: np.ndarray,
    wpar: np.ndarray,
    root: int,
    low: np.ndarray,
    high: np.ndarray,
    diameter_hint: int,
    target: int | None = None,
    coin_bias: float = 0.5,
    reduction_exponent: float = 1.0,
    max_steps: int | None = None,
) -> ClusterHierarchy:
    """Run contraction steps until at most ``target`` clusters remain.

    ``parent``/``wpar`` define the rooted tree, ``low``/``high`` its DFS
    interval labels. O(1) primitive rounds per step; O(log D_T) steps
    w.h.p. (Corollary 3.6).
    """
    parent = np.asarray(parent, dtype=np.int64)
    wpar = np.asarray(wpar, dtype=np.float64)
    n = len(parent)
    if target is None:
        target = contraction_target(n, diameter_hint, reduction_exponent)
    if max_steps is None:
        max_steps = 8 * int(np.ceil(np.log2(n + 2))) + 48
    if not (0.0 < coin_bias < 1.0):
        raise ValidationError("coin_bias must be in (0,1)")

    ids = np.arange(n, dtype=np.int64)
    leader = ids.copy()
    # cluster state: one row per live cluster, keyed by leader vertex
    cl_leader = ids.copy()
    cl_pv = parent.copy()                 # parent vertex of the leader in T
    cl_pcl = parent.copy()                # parent cluster's leader
    cl_cw = wpar.copy()
    cl_formed = np.zeros(n, dtype=np.int64)
    cl_pv[root] = root
    cl_pcl[root] = root

    levels: List[MergeLevel] = []
    counts = [n]
    step = 0
    hit = len(cl_leader) <= target
    while len(cl_leader) > max(1, target) and step < max_steps:
        step += 1
        k = len(cl_leader)
        heads = rt.rng.random(k) < coin_bias
        # junior candidates: tails whose parent cluster flipped heads
        coin_tab = Table(l=cl_leader, h=heads.astype(np.int64))
        got = rt.lookup(
            Table(l=cl_leader, p=cl_pcl), ("p",), coin_tab, ("l",), {"ph": "h"}
        )
        parent_heads = got.col("ph").astype(bool)
        is_junior = (~heads) & parent_heads & (cl_leader != root)
        if not is_junior.any():
            counts.append(len(cl_leader))
            continue

        jl = cl_leader[is_junior]
        jpv = cl_pv[is_junior]
        jsl = cl_pcl[is_junior]
        jcw = cl_cw[is_junior]
        jformed = cl_formed[is_junior]
        # senior version formation level before this merge
        sprev_tab = rt.lookup(
            Table(s=jsl), ("s",),
            Table(l=cl_leader, f=cl_formed), ("l",), {"f": "f"},
        )
        sprev = sprev_tab.col("f")
        levels.append(
            MergeLevel(
                level=step,
                junior=jl.copy(),
                parent_vertex=jpv.copy(),
                senior=jsl.copy(),
                cross_w=jcw.copy(),
                junior_low=low[jl].copy(),
                junior_high=high[jl].copy(),
                junior_formed=jformed.copy(),
                senior_prev_formed=sprev.copy(),
            )
        )

        # junior -> senior relabel map
        jmap = Table(j=jl, s=jsl)
        # vertices in junior clusters adopt the senior leader
        relab = rt.lookup(
            Table(v=ids, l=leader), ("l",), jmap, ("j",), {"s": "s"},
            default={"s": -1},
        )
        leader = np.where(relab.col("s") >= 0, relab.col("s"), leader)

        # surviving clusters: drop juniors, rewire parent-cluster pointers
        keep = ~is_junior
        cl_leader = cl_leader[keep]
        cl_pv = cl_pv[keep]
        cl_pcl = cl_pcl[keep]
        cl_cw = cl_cw[keep]
        cl_formed = cl_formed[keep]
        rewire = rt.lookup(
            Table(l=cl_leader, p=cl_pcl), ("p",), jmap, ("j",), {"s": "s"},
            default={"s": -1},
        )
        cl_pcl = np.where(rewire.col("s") >= 0, rewire.col("s"), cl_pcl)
        # seniors that absorbed juniors this step: formation level = step
        seniors = np.unique(jsl)
        grew = rt.lookup(
            Table(l=cl_leader), ("l",),
            Table(s=seniors, one=np.ones(len(seniors), dtype=np.int64)),
            ("s",), {"one": "one"}, default={"one": 0},
        )
        cl_formed = np.where(grew.col("one") == 1, step, cl_formed)
        counts.append(len(cl_leader))
        rt.tracker.observe_global_words(7 * len(cl_leader) + 8 * len(jl))

    final_clusters = Table(
        leader=cl_leader, pv=cl_pv, pcl=cl_pcl, cw=cl_cw, formed=cl_formed
    )
    return ClusterHierarchy(
        n=n,
        root=root,
        levels=levels,
        final_leader=leader,
        final_clusters=final_clusters,
        counts=counts,
        target=target,
        hit_target=len(cl_leader) <= max(1, target),
        parent=parent,
        wpar=wpar,
    )
