"""Result types returned by the verification and sensitivity pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..mpc.cost import CostReport

__all__ = ["VerificationResult", "SensitivityResult"]


@dataclass
class VerificationResult:
    """Outcome of Theorem 3.1 MST verification.

    ``pathmax`` is aligned with ``nontree_index`` (positions of non-tree
    edges in the input edge arrays); it doubles as the non-tree
    sensitivity input (Observation 4.2).
    """

    is_mst: bool
    reason: str
    n_violations: int
    violating_edges: np.ndarray          # indices into the input edge arrays
    nontree_index: np.ndarray
    pathmax: Optional[np.ndarray]
    diameter_estimate: int
    rounds: int
    report: CostReport
    cluster_counts: list = field(default_factory=list)

    @property
    def core_rounds(self) -> int:
        """Rounds charged to the paper-contributed phases only."""
        return self.report.rounds_in("core")

    @property
    def substrate_rounds(self) -> int:
        return self.report.rounds_in("substrate")

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_mst


@dataclass
class SensitivityResult:
    """Outcome of Theorem 4.1 MST sensitivity.

    ``sensitivity[i]`` corresponds to input edge ``i``:

    * tree edge: ``mc(e) - w(e)`` — how much the weight may *increase*
      before ``e`` leaves the MST (``inf`` for bridges);
    * non-tree edge: ``w(e) - pathmax(e)`` — how much the weight must
      *decrease* before ``e`` enters the MST.
    """

    sensitivity: np.ndarray              # per input edge, ordered as input
    mc: np.ndarray                       # min covering weight per tree edge (inf if none)
    tree_index: np.ndarray
    nontree_index: np.ndarray
    diameter_estimate: int
    rounds: int
    report: CostReport
    notes_peak: int = 0                  # max live root-to-leaf notes (Claim 4.13)

    @property
    def core_rounds(self) -> int:
        return self.report.rounds_in("core")

    @property
    def substrate_rounds(self) -> int:
        return self.report.rounds_in("substrate")
