"""Result types returned by the verification and sensitivity pipelines.

Both result classes serialize to a single ``.npz`` file (arrays stored
natively, scalars and the :class:`~repro.mpc.cost.CostReport` in an
embedded JSON header). This is what lets batch workers hand results
across process boundaries cheaply and lets a
:class:`~repro.oracle.SensitivityOracle` be rehydrated far from the
machine that ran the MPC pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..mpc.cost import CostReport
from ..serialize import load_npz, save_npz

__all__ = ["VerificationResult", "SensitivityResult"]


@dataclass
class VerificationResult:
    """Outcome of Theorem 3.1 MST verification.

    ``pathmax`` is aligned with ``nontree_index`` (positions of non-tree
    edges in the input edge arrays); it doubles as the non-tree
    sensitivity input (Observation 4.2).

    ``failed_stage`` is ``None`` on a completed pipeline (whatever the
    verdict) and names the aborting stage otherwise (e.g. ``"validate"``
    when the flagged tree is not spanning) — downstream consumers branch
    on this status instead of probing for missing fields.
    """

    is_mst: bool
    reason: str
    n_violations: int
    violating_edges: np.ndarray          # indices into the input edge arrays
    nontree_index: np.ndarray
    pathmax: Optional[np.ndarray]
    diameter_estimate: int
    rounds: int
    report: CostReport
    cluster_counts: list = field(default_factory=list)
    failed_stage: Optional[str] = None

    @property
    def core_rounds(self) -> int:
        """Rounds charged to the paper-contributed phases only."""
        return self.report.rounds_in("core")

    @property
    def substrate_rounds(self) -> int:
        return self.report.rounds_in("substrate")

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_mst

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Write a self-contained ``.npz`` snapshot (see :meth:`load`)."""
        save_npz(
            path,
            {
                "violating_edges": self.violating_edges,
                "nontree_index": self.nontree_index,
                "pathmax": self.pathmax,
                "cluster_counts": np.asarray(self.cluster_counts, dtype=np.int64),
            },
            {
                "kind": "verification",
                "is_mst": bool(self.is_mst),
                "reason": self.reason,
                "n_violations": int(self.n_violations),
                "diameter_estimate": int(self.diameter_estimate),
                "rounds": int(self.rounds),
                "report": self.report.to_dict(),
                "failed_stage": self.failed_stage,
            },
        )

    @classmethod
    def load(cls, path) -> "VerificationResult":
        arrays, meta = load_npz(path)
        if meta.get("kind") != "verification":
            raise ValueError(f"{path!r} does not hold a VerificationResult")
        return cls(
            is_mst=meta["is_mst"],
            reason=meta["reason"],
            n_violations=meta["n_violations"],
            violating_edges=arrays["violating_edges"],
            nontree_index=arrays["nontree_index"],
            pathmax=arrays.get("pathmax"),
            diameter_estimate=meta["diameter_estimate"],
            rounds=meta["rounds"],
            report=CostReport.from_dict(meta["report"]),
            cluster_counts=arrays["cluster_counts"].tolist(),
            failed_stage=meta.get("failed_stage"),
        )


@dataclass
class SensitivityResult:
    """Outcome of Theorem 4.1 MST sensitivity.

    ``sensitivity[i]`` corresponds to input edge ``i``:

    * tree edge: ``mc(e) - w(e)`` — how much the weight may *increase*
      before ``e`` leaves the MST (``inf`` for bridges);
    * non-tree edge: ``w(e) - pathmax(e)`` — how much the weight must
      *decrease* before ``e`` enters the MST.

    ``parent``/``root`` (the rooting the pipeline used) and ``pathmax``
    (aligned with ``nontree_index``) are exposed so that downstream
    consumers — most importantly :class:`~repro.oracle.SensitivityOracle`
    — can reuse the pipeline's exact artefacts instead of recomputing
    them with possibly different tie-breaking.
    """

    sensitivity: np.ndarray              # per input edge, ordered as input
    mc: np.ndarray                       # min covering weight per tree edge (inf if none)
    tree_index: np.ndarray
    nontree_index: np.ndarray
    diameter_estimate: int
    rounds: int
    report: CostReport
    notes_peak: int = 0                  # max live root-to-leaf notes (Claim 4.13)
    pathmax: Optional[np.ndarray] = None  # aligned with nontree_index
    parent: Optional[np.ndarray] = None   # rooted-tree parent array (per vertex)
    root: int = 0

    @property
    def core_rounds(self) -> int:
        return self.report.rounds_in("core")

    @property
    def substrate_rounds(self) -> int:
        return self.report.rounds_in("substrate")

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Write a self-contained ``.npz`` snapshot (see :meth:`load`)."""
        save_npz(
            path,
            {
                "sensitivity": self.sensitivity,
                "mc": self.mc,
                "tree_index": self.tree_index,
                "nontree_index": self.nontree_index,
                "pathmax": self.pathmax,
                "parent": self.parent,
            },
            {
                "kind": "sensitivity",
                "diameter_estimate": int(self.diameter_estimate),
                "rounds": int(self.rounds),
                "notes_peak": int(self.notes_peak),
                "root": int(self.root),
                "report": self.report.to_dict(),
            },
        )

    @classmethod
    def load(cls, path) -> "SensitivityResult":
        arrays, meta = load_npz(path)
        if meta.get("kind") != "sensitivity":
            raise ValueError(f"{path!r} does not hold a SensitivityResult")
        return cls(
            sensitivity=arrays["sensitivity"],
            mc=arrays["mc"],
            tree_index=arrays["tree_index"],
            nontree_index=arrays["nontree_index"],
            diameter_estimate=meta["diameter_estimate"],
            rounds=meta["rounds"],
            report=CostReport.from_dict(meta["report"]),
            notes_peak=meta["notes_peak"],
            pathmax=arrays.get("pathmax"),
            parent=arrays.get("parent"),
            root=meta["root"],
        )
