"""MST sensitivity in ``O(log D_T)`` rounds (Theorem 4.1, Algorithm 4).

For non-tree edges the sensitivity is ``w(e) - pathmax(e)`` — how far
the weight must drop for ``e`` to enter an MST — and the path maxima
come straight from the verification machinery (Observations 2.20 / 4.2
/ 4.3). For tree edges the task is ``mc(e)``: the minimum weight of a
non-tree edge *covering* ``e`` (Definition 2.1); then
``sens(e) = mc(e) - w(e)`` (``inf`` for bridges). ``mc`` is assembled
from three sources:

1. contracted edges bounded during the sensitivity contraction process
   (Algorithm 5, §4.1);
2. inter-cluster edges of the final cluster tree (Algorithm 6, §4.2);
3. intra-cluster edges reached by unwinding the root-to-leaf notes
   (Algorithm 7, §4.3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ValidationError
from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..mpc.runtime import Runtime
from ..mpc.table import Table
from .contraction_sens import run_sensitivity_contraction
from .cluster_sens import run_cluster_sensitivity
from .results import SensitivityResult
from .unwind import run_unwind
from .verification import verify_mst

__all__ = ["mst_sensitivity"]


def mst_sensitivity(
    graph: WeightedGraph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    root: int = 0,
    oracle_labels: bool = False,
    runtime: Optional[Runtime] = None,
    require_mst: bool = True,
    reduction_exponent: float = 1.0,
    coin_bias: float = 0.5,
) -> SensitivityResult:
    """Sensitivity of every edge w.r.t. the flagged MST of ``graph``.

    Raises :class:`~repro.errors.ValidationError` if the flagged tree is
    not an MST (the problem is defined for MSTs; pass
    ``require_mst=False`` to skip the check and analyse covering weights
    of an arbitrary spanning tree).
    """
    internals: dict = {}
    ver = verify_mst(
        graph, engine=engine, config=config, root=root,
        oracle_labels=oracle_labels, runtime=runtime,
        reduction_exponent=reduction_exponent, coin_bias=coin_bias,
        _internals=internals,
    )
    if not internals:
        raise ValidationError(f"input tree is not a spanning tree ({ver.reason})")
    if require_mst and not ver.is_mst:
        raise ValidationError(
            f"sensitivity is defined for MSTs; verification failed "
            f"({ver.n_violations} violating edges)"
        )
    rt: Runtime = internals["rt"]
    hierarchy = internals["hierarchy"]
    halves = internals["halves"]
    low, high = internals["low"], internals["high"]
    parent = internals["parent"]

    with rt.phase("core"):
        with rt.phase("sens-contract"):
            state = run_sensitivity_contraction(rt, hierarchy, halves, low, high)
        with rt.phase("sens-cluster"):
            mc2 = run_cluster_sensitivity(rt, hierarchy, state)
        with rt.phase("sens-unwind"):
            mc3 = run_unwind(rt, hierarchy, state.notes, low, high)
        with rt.phase("sens-finalize"):
            updates: List[Table] = state.mc_updates + mc2 + mc3
            updates = [t for t in updates if len(t)]
            n = graph.n
            if updates:
                allup = Table.concat([t.select(["key", "w"]) for t in updates])
                mins = rt.reduce_by_key(allup, ("key",), {"mc": ("w", "min")})
                got = rt.lookup(
                    Table(v=np.arange(n, dtype=np.int64)), ("v",),
                    mins, ("key",), {"mc": "mc"}, default={"mc": np.inf},
                )
                mc = got.col("mc")
            else:
                mc = np.full(n, np.inf, dtype=np.float64)

    # assemble per-input-edge sensitivities
    tree_index = np.flatnonzero(graph.tree_mask)
    nontree_index = ver.nontree_index
    tu = graph.u[tree_index]
    tv = graph.v[tree_index]
    tw = graph.w[tree_index]
    child = np.where(parent[tu] == tv, tu, tv)
    sens = np.empty(graph.m, dtype=np.float64)
    sens[tree_index] = mc[child] - tw
    sens[nontree_index] = graph.w[nontree_index] - ver.pathmax

    return SensitivityResult(
        sensitivity=sens,
        mc=mc,
        tree_index=tree_index,
        nontree_index=nontree_index,
        diameter_estimate=ver.diameter_estimate,
        rounds=rt.rounds,
        report=rt.report(),
        notes_peak=state.notes.peak,
        pathmax=ver.pathmax,
        parent=parent,
        root=internals["root"],
    )
