"""MST sensitivity in ``O(log D_T)`` rounds (Theorem 4.1, Algorithm 4).

For non-tree edges the sensitivity is ``w(e) - pathmax(e)`` — how far
the weight must drop for ``e`` to enter an MST — and the path maxima
come straight from the verification machinery (Observations 2.20 / 4.2
/ 4.3). For tree edges the task is ``mc(e)``: the minimum weight of a
non-tree edge *covering* ``e`` (Definition 2.1); then
``sens(e) = mc(e) - w(e)`` (``inf`` for bridges). ``mc`` is assembled
from three sources:

1. contracted edges bounded during the sensitivity contraction process
   (Algorithm 5, §4.1);
2. inter-cluster edges of the final cluster tree (Algorithm 6, §4.2);
3. intra-cluster edges reached by unwinding the root-to-leaf notes
   (Algorithm 7, §4.3).

:func:`mst_sensitivity` is a thin wrapper over
:func:`repro.pipeline.run_sensitivity`: the Theorem 3.1 stages run
first on the same runtime (Observation 4.2 — the machinery is shared),
then the four sensitivity stages. With a ``store=``, any stage cached
from an earlier verification (or ablation sibling) is replayed instead
of re-executed.
"""

from __future__ import annotations

from typing import Optional

from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..mpc.runtime import Runtime
from .results import SensitivityResult

__all__ = ["mst_sensitivity"]


def mst_sensitivity(
    graph: WeightedGraph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    root: int = 0,
    oracle_labels: bool = False,
    runtime: Optional[Runtime] = None,
    require_mst: bool = True,
    reduction_exponent: float = 1.0,
    coin_bias: float = 0.5,
    store=None,
) -> SensitivityResult:
    """Sensitivity of every edge w.r.t. the flagged MST of ``graph``.

    Raises :class:`~repro.errors.ValidationError` if the flagged tree is
    not a spanning tree (reported via the verification result's
    ``failed_stage`` status), or — with ``require_mst=True`` — if it is
    spanning but not minimal (pass ``require_mst=False`` to analyse
    covering weights of an arbitrary spanning tree). ``store`` is an
    optional :class:`~repro.pipeline.ArtifactStore` for warm-starting.
    """
    from ..pipeline import run_sensitivity

    result, _run = run_sensitivity(
        graph, engine=engine, config=config, root=root,
        oracle_labels=oracle_labels, runtime=runtime,
        require_mst=require_mst, reduction_exponent=reduction_exponent,
        coin_bias=coin_bias, store=store,
    )
    return result
