"""The paper's core algorithms (systems S5–S13 in DESIGN.md)."""

from .adgraph import HalfEdges, split_at_lca
from .forest import msf_sensitivity, stitch_components, verify_msf
from .hierarchy import ClusterHierarchy, MergeLevel, build_hierarchy
from .labeling import LabeledHalfEdges, evaluate_pathmax, run_weight_labeling
from .lca import all_edges_lca, compact_cluster_tree
from .results import SensitivityResult, VerificationResult
from .verification import verify_mst

__all__ = [
    "HalfEdges",
    "split_at_lca",
    "ClusterHierarchy",
    "MergeLevel",
    "build_hierarchy",
    "LabeledHalfEdges",
    "evaluate_pathmax",
    "run_weight_labeling",
    "all_edges_lca",
    "compact_cluster_tree",
    "SensitivityResult",
    "VerificationResult",
    "verify_mst",
    "verify_msf",
    "msf_sensitivity",
    "stitch_components",
]
