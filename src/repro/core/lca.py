"""All-edges LCA in ``O(log D_T)`` rounds (§2.2, Theorem 2.15).

For every non-tree edge ``{u, v}`` find ``LCA(u, v)`` in ``T``:

1. *FindLCAClusters* (Algorithm 1): on the contracted cluster tree,
   locate the cluster containing the LCA by binary-lifted climbing over
   the Lemma 2.16 ancestor tables, using DFS-interval disjointness as
   the "not yet an ancestor" predicate.

   Note (DESIGN.md substitution 4): the paper's line 6 tests
   ``I(p^i(χ)) ∩ I(p^i(c(v)))``; climbing only ``χ`` under that test
   stalls on depth-skewed inputs, so we use the test its correctness
   proof (Lemma 2.17) actually argues about:
   ``I(p^i(χ)) ∩ I(c(v)) = ∅``.

2. *UndoClustering* (Algorithm 2): replay the contraction steps in
   reverse; whenever the candidate cluster splits into senior + junior
   sub-clusters, descend into the junior whose subtree interval contains
   both endpoints, else stay in the senior. After all levels the
   candidate is a singleton — the LCA vertex.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..mpc.runtime import Runtime
from ..mpc.table import Table
from ..trees.doubling import ancestor_tables, mpc_depths
from .hierarchy import ClusterHierarchy

__all__ = ["compact_cluster_tree", "all_edges_lca"]


def compact_cluster_tree(
    rt: Runtime, hierarchy: ClusterHierarchy
) -> Tuple[Table, np.ndarray, int]:
    """Compact ids for the final clusters.

    Returns ``(clusters, cid_of_leader_lookup_table, root_cid)`` where
    ``clusters`` has columns (cid, leader, pv, pcl, cw, formed, pcid).
    """
    fc = rt.sort(hierarchy.final_clusters, ("leader",))
    k = len(fc)
    cid = np.arange(k, dtype=np.int64)
    fc = fc.with_cols(cid=cid)
    got = rt.lookup(fc, ("pcl",), fc, ("leader",), {"pcid": "cid"})
    fc = fc.with_cols(pcid=got.col("pcid"))
    root_pos = fc.col("leader") == hierarchy.root
    root_cid = int(fc.col("cid")[root_pos][0])
    return fc, cid, root_cid


def all_edges_lca(
    rt: Runtime,
    hierarchy: ClusterHierarchy,
    low: np.ndarray,
    high: np.ndarray,
    eu: np.ndarray,
    ev: np.ndarray,
    diameter_hint: int,
) -> np.ndarray:
    """LCA in ``T`` of the endpoints of each query edge, in parallel.

    ``low``/``high`` are the DFS interval labels of ``T``;
    ``hierarchy`` the clustering of ``T``. O(log D_T) rounds,
    O(m + n) words.
    """
    eu = np.asarray(eu, dtype=np.int64)
    ev = np.asarray(ev, dtype=np.int64)
    nq = len(eu)
    if nq == 0:
        return np.empty(0, dtype=np.int64)

    clusters, _, root_cid = compact_cluster_tree(rt, hierarchy)
    leaders = clusters.col("leader")
    k = len(clusters)

    # --- Algorithm 1: find the LCA *cluster* on the final cluster tree ----
    cparent = np.full(k, root_cid, dtype=np.int64)
    cparent[clusters.col("cid")] = clusters.col("pcid")
    clow = low[leaders]
    chigh = high[leaders]

    cdepth = mpc_depths(rt, cparent, root_cid)
    max_depth = int(rt.scalar(Table(d=cdepth), "d", "max"))
    anc_tab = ancestor_tables(rt, cparent, root_cid, max(1, max_depth))
    anc_tab = anc_tab.with_cols(
        alow=clow[anc_tab.col("anc")], ahigh=chigh[anc_tab.col("anc")]
    )
    n_pows = int(anc_tab.col("i").max()) + 1 if len(anc_tab) else 1

    # map endpoints to final clusters (compact ids)
    lead_tab = Table(leader=leaders, cid=clusters.col("cid"))
    got_u = rt.lookup(
        Table(l=hierarchy.final_leader[eu]), ("l",), lead_tab, ("leader",),
        {"c": "cid"},
    )
    got_v = rt.lookup(
        Table(l=hierarchy.final_leader[ev]), ("l",), lead_tab, ("leader",),
        {"c": "cid"},
    )
    cu = got_u.col("c")
    cv = got_v.col("c")

    u_contains_v = (clow[cu] <= clow[cv]) & (chigh[cv] <= chigh[cu])
    v_contains_u = (clow[cv] <= clow[cu]) & (chigh[cu] <= chigh[cv])
    nested = u_contains_v | v_contains_u

    chi = cu.copy()
    for i in range(n_pows - 1, -1, -1):
        q = Table(chi=chi, i=np.full(nq, i, dtype=np.int64))
        got = rt.lookup(
            q, ("chi", "i"), anc_tab, ("v", "i"),
            {"anc": "anc", "alow": "alow", "ahigh": "ahigh"},
        )
        disjoint = (got.col("ahigh") < clow[cv]) | (chigh[cv] < got.col("alow"))
        move = disjoint & ~nested
        chi = np.where(move, got.col("anc"), chi)
    climbed = cparent[chi]
    lcac_cid = np.where(u_contains_v, cu, np.where(v_contains_u, cv, climbed))
    lcac = leaders[lcac_cid]  # cluster identity = leader vertex

    # --- Algorithm 2: undo the clustering, refining the LCA cluster -------
    dmin = np.minimum(low[eu], low[ev])
    dmax = np.maximum(low[eu], low[ev])
    for lv in reversed(hierarchy.levels):
        recs = lv.as_table()
        juniors = rt.sort(recs.select(["senior", "jlow", "jhigh", "junior"]),
                          ("senior", "jlow"))
        q = Table(s=lcac, d=dmin)
        got = rt.predecessor(
            q.with_cols(__pk=_pack_sl(juniors, q)[1]), "__pk",
            juniors.with_cols(__pk=_pack_sl(juniors, q)[0]), "__pk",
            {"jl": "junior", "jlo": "jlow", "jhi": "jhigh", "js": "senior"},
            {"jl": -1, "jlo": 0, "jhi": -1, "js": -1},
        )
        hit = (
            (got.col("js") == lcac)
            & (got.col("jlo") <= dmin)
            & (dmax <= got.col("jhi"))
            & (got.col("jl") >= 0)
        )
        lcac = np.where(hit, got.col("jl"), lcac)
    return lcac


def _pack_sl(juniors: Table, queries: Table) -> Tuple[np.ndarray, np.ndarray]:
    """Shared packing of (senior, low) data keys and (cluster, dfs) queries."""
    from ..mpc.runtime import pack_pair

    dk, qk = pack_pair(juniors, ("senior", "jlow"), queries, ("s", "d"))
    return dk, qk
