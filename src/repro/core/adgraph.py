"""Ancestor–descendant transform (Corollary 2.19 / Observation 2.20).

Every non-tree edge ``{u, v}`` is replaced by the two *half-edges*
``{u, LCA(u,v)}`` and ``{v, LCA(u,v)}`` of the same weight. After the
transform every non-tree edge runs between a vertex and one of its
ancestors, which is what the verification and sensitivity pipelines
assume. Halves that collapse to a single vertex (endpoint == LCA) are
dropped; Observation 2.20 guarantees the transform changes neither the
verification verdict nor tree-edge sensitivities, and that a non-tree
edge's sensitivity is recovered as the minimum over its two halves
(equivalently via the max of the halves' path maxima).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpc.runtime import Runtime
from ..mpc.table import Table

__all__ = ["HalfEdges", "split_at_lca"]


@dataclass
class HalfEdges:
    """Ancestor–descendant half-edges: ``lo`` strictly below ``hi``."""

    eid: np.ndarray   # original non-tree edge index (shared by both halves)
    lo: np.ndarray    # descendant endpoint
    hi: np.ndarray    # ancestor endpoint (the LCA of the original edge)
    w: np.ndarray     # original edge weight

    def __len__(self) -> int:
        return len(self.eid)

    def as_table(self) -> Table:
        return Table(eid=self.eid, lo=self.lo, hi=self.hi, w=self.w)


def split_at_lca(
    rt: Runtime,
    eu: np.ndarray,
    ev: np.ndarray,
    ew: np.ndarray,
    lca: np.ndarray,
) -> HalfEdges:
    """Corollary 2.19: split each non-tree edge at its LCA."""
    eu = np.asarray(eu, dtype=np.int64)
    ev = np.asarray(ev, dtype=np.int64)
    ew = np.asarray(ew, dtype=np.float64)
    lca = np.asarray(lca, dtype=np.int64)
    m = len(eu)
    eid = np.arange(m, dtype=np.int64)
    halves = Table(
        eid=np.concatenate([eid, eid]),
        lo=np.concatenate([eu, ev]),
        hi=np.concatenate([lca, lca]),
        w=np.concatenate([ew, ew]),
    )
    live = rt.filter(halves, halves.col("lo") != halves.col("hi"))
    return HalfEdges(
        eid=live.col("eid"), lo=live.col("lo"), hi=live.col("hi"),
        w=live.col("w"),
    )
