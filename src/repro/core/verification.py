"""MST verification in ``O(log D_T)`` rounds (Theorem 3.1).

Pipeline (now an explicit stage DAG in :mod:`repro.pipeline`)::

    validate (Remark 2.2)  ──► rooting ──► DFS labels (Lemma 2.14)
        ──► diameter estimate (Remark 2.3)
        ──► hierarchical clustering (Lemma 2.8 / Corollary 3.6)
        ──► all-edges LCA (Theorem 2.15) + edge split (Corollary 2.19)
        ──► weight-preserving labelling replay (Lemma 3.5)
        ──► cluster-tree root paths + prefix maxima (Lemma 3.7)
        ──► per-edge path maximum (Observation 3.3) and verdict

``T`` is an MST iff no non-tree edge weighs strictly less than the
maximum weight on its tree path (cycle rule, ties allowed). The phases
charged under ``substrate/`` implement cited prior work (with the
substitutions listed in DESIGN.md); the ``core/`` phases are this
paper's contribution and are individually ``O(log D_T)`` rounds.

:func:`verify_mst` is a thin wrapper over
:func:`repro.pipeline.run_verification`; pass an
:class:`~repro.pipeline.ArtifactStore` via ``store=`` to warm-start
from (and contribute to) a stage cache.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..mpc.runtime import Runtime
from .results import VerificationResult

__all__ = ["verify_mst", "distributed_hint"]


def distributed_hint(graph: WeightedGraph) -> int:
    """Global-words hint for sizing a distributed deployment."""
    return 48 * graph.total_words() + 8192


def _legacy_internals(rt: Runtime, run, nontree_index, root: int) -> dict:
    """The dict the deprecated ``_internals`` kwarg used to smuggle out."""
    arts = run.artifacts
    halves = arts["adgraph"].half_edges()
    return dict(
        rt=rt,
        parent=arts["rooting"].parent,
        wpar=arts["rooting"].wpar,
        low=arts["dfs"].low,
        high=arts["dfs"].high,
        d_hat=arts["diameter"].d_hat,
        hierarchy=arts["clustering"].hierarchy,
        halves=halves,
        labeled=arts["labels"].labeled(halves),
        pm_half=arts["pathmax"].pm_half,
        pathmax=arts["decide"].pathmax,
        nontree_index=nontree_index,
        root=root,
    )


def verify_mst(
    graph: WeightedGraph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    root: int = 0,
    oracle_labels: bool = False,
    runtime: Optional[Runtime] = None,
    reduction_exponent: float = 1.0,
    coin_bias: float = 0.5,
    _internals: Optional[dict] = None,
    store=None,
) -> VerificationResult:
    """Decide whether the flagged tree of ``graph`` is an MST.

    Parameters
    ----------
    engine, config, runtime:
        Which MPC engine to run on (or a pre-built runtime).
    oracle_labels:
        Treat rooting + DFS labelling as the paper's cited black boxes
        (computed out-of-band, 0 rounds) instead of the Euler-tour
        substitute — used by benchmarks to show the scaling the paper
        would obtain end to end (DESIGN.md substitution 3).
    reduction_exponent, coin_bias:
        Clustering knobs for the E10 ablation.
    store:
        Optional :class:`~repro.pipeline.ArtifactStore`; cached stages
        are replayed (bit-identical results *and* charged rounds) and
        newly computed ones contributed back.
    _internals:
        Deprecated. Use the artifact API instead:
        :func:`repro.pipeline.run_verification` returns the
        :class:`~repro.pipeline.PipelineRun` whose typed artifacts
        supersede this dict. If a dict is passed it is still filled for
        backwards compatibility (on a completed pipeline).
    """
    from ..pipeline import run_verification

    if _internals is not None:
        warnings.warn(
            "verify_mst(_internals=...) is deprecated; use "
            "repro.pipeline.run_verification which returns typed stage "
            "artifacts (and shares them through an ArtifactStore)",
            DeprecationWarning, stacklevel=2,
        )
    result, run = run_verification(
        graph, engine=engine, config=config, root=root,
        oracle_labels=oracle_labels, runtime=runtime,
        reduction_exponent=reduction_exponent, coin_bias=coin_bias,
        store=store,
    )
    if _internals is not None and result.failed_stage is None:
        _internals.update(
            _legacy_internals(run.rt, run, result.nontree_index, root)
        )
    return result
