"""MST verification in ``O(log D_T)`` rounds (Theorem 3.1).

Pipeline::

    validate (Remark 2.2)  ──► rooting ──► DFS labels (Lemma 2.14)
        ──► diameter estimate (Remark 2.3)
        ──► hierarchical clustering (Lemma 2.8 / Corollary 3.6)
        ──► all-edges LCA (Theorem 2.15) + edge split (Corollary 2.19)
        ──► weight-preserving labelling replay (Lemma 3.5)
        ──► cluster-tree root paths + prefix maxima (Lemma 3.7)
        ──► per-edge path maximum (Observation 3.3) and verdict

``T`` is an MST iff no non-tree edge weighs strictly less than the
maximum weight on its tree path (cycle rule, ties allowed). The phases
charged under ``substrate/`` implement cited prior work (with the
substitutions listed in DESIGN.md); the ``core/`` phases are this
paper's contribution and are individually ``O(log D_T)`` rounds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.graph import WeightedGraph
from ..graph.tree import RootedTree
from ..mpc import MPCConfig, make_runtime
from ..mpc.runtime import Runtime
from ..mpc.table import Table
from ..trees.connectivity import mpc_is_spanning_tree
from ..trees.doubling import diameter_estimate
from ..trees.euler import euler_intervals
from ..trees.rooting import root_tree
from .adgraph import split_at_lca
from .hierarchy import build_hierarchy
from .labeling import evaluate_pathmax, run_weight_labeling
from .lca import all_edges_lca
from .results import VerificationResult

__all__ = ["verify_mst", "distributed_hint"]


def distributed_hint(graph: WeightedGraph) -> int:
    """Global-words hint for sizing a distributed deployment."""
    return 48 * graph.total_words() + 8192


def verify_mst(
    graph: WeightedGraph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    root: int = 0,
    oracle_labels: bool = False,
    runtime: Optional[Runtime] = None,
    reduction_exponent: float = 1.0,
    coin_bias: float = 0.5,
    _internals: Optional[dict] = None,
) -> VerificationResult:
    """Decide whether the flagged tree of ``graph`` is an MST.

    Parameters
    ----------
    engine, config, runtime:
        Which MPC engine to run on (or a pre-built runtime).
    oracle_labels:
        Treat rooting + DFS labelling as the paper's cited black boxes
        (computed out-of-band, 0 rounds) instead of the Euler-tour
        substitute — used by benchmarks to show the scaling the paper
        would obtain end to end (DESIGN.md substitution 3).
    reduction_exponent, coin_bias:
        Clustering knobs for the E10 ablation.
    _internals:
        If a dict is passed, intermediate artefacts (hierarchy, labels,
        half-edges, DFS labels) are stashed there for reuse — the
        sensitivity pipeline shares this machinery (Observation 4.2).
    """
    rt = runtime or make_runtime(
        engine, config, total_words_hint=distributed_hint(graph)
    )
    n = graph.n
    tu, tv, tw = graph.tree_edges()
    nontree_index = np.flatnonzero(~graph.tree_mask)
    nu = graph.u[nontree_index]
    nv = graph.v[nontree_index]
    nw = graph.w[nontree_index]

    def _fail(reason: str) -> VerificationResult:
        return VerificationResult(
            is_mst=False, reason=reason, n_violations=0,
            violating_edges=np.empty(0, dtype=np.int64),
            nontree_index=nontree_index, pathmax=None,
            diameter_estimate=0, rounds=rt.rounds, report=rt.report(),
        )

    with rt.phase("substrate"):
        with rt.phase("validate"):
            if not mpc_is_spanning_tree(rt, n, tu, tv):
                return _fail("not-spanning-tree")
        if oracle_labels:
            rooted = RootedTree.from_edges(n, tu, tv, tw, root=root)
            parent, wpar = rooted.parent, rooted.weight
            _, low, high = rooted.euler_intervals()
        else:
            with rt.phase("rooting"):
                parent, wpar = root_tree(rt, n, tu, tv, tw, root=root)
            with rt.phase("dfs"):
                _, low, high = euler_intervals(rt, parent, root)
        with rt.phase("diameter"):
            d_hat, _depths = diameter_estimate(rt, parent, root)

    with rt.phase("core"):
        with rt.phase("clustering"):
            hierarchy = build_hierarchy(
                rt, parent, wpar, root, low, high, d_hat,
                coin_bias=coin_bias, reduction_exponent=reduction_exponent,
            )
        with rt.phase("lca"):
            lca = all_edges_lca(rt, hierarchy, low, high, nu, nv, d_hat)
        with rt.phase("adgraph"):
            halves = split_at_lca(rt, nu, nv, nw, lca)
        with rt.phase("labels"):
            labeled = run_weight_labeling(rt, hierarchy, halves, low, high)
        with rt.phase("pathmax"):
            pm_half = evaluate_pathmax(rt, hierarchy, labeled)
        with rt.phase("decide"):
            if len(halves) > 0:
                per_edge = rt.reduce_by_key(
                    Table(eid=halves.eid, pm=pm_half), ("eid",),
                    {"pm": ("pm", "max")},
                )
                got = rt.lookup(
                    Table(eid=np.arange(len(nu), dtype=np.int64)), ("eid",),
                    per_edge, ("eid",), {"pm": "pm"},
                    default={"pm": -np.inf},
                )
                pathmax = got.col("pm")
            else:
                pathmax = np.full(len(nu), -np.inf, dtype=np.float64)
            bad = nw < pathmax
            n_bad = int(rt.scalar(Table(b=bad.astype(np.int64)), "b", "sum"))

    if _internals is not None:
        _internals.update(
            rt=rt, parent=parent, wpar=wpar, low=low, high=high,
            d_hat=d_hat, hierarchy=hierarchy, halves=halves,
            labeled=labeled, pm_half=pm_half, pathmax=pathmax,
            nontree_index=nontree_index, root=root,
        )
    return VerificationResult(
        is_mst=(n_bad == 0),
        reason="ok" if n_bad == 0 else "cheaper-nontree-edge",
        n_violations=n_bad,
        violating_edges=nontree_index[bad],
        nontree_index=nontree_index,
        pathmax=pathmax,
        diameter_estimate=d_hat,
        rounds=rt.rounds,
        report=rt.report(),
        cluster_counts=list(hierarchy.counts),
    )
