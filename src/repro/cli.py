"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``verify``       build (or perturb) an instance and run Theorem 3.1
``sensitivity``  run Theorem 4.1 and print the most fragile edges
``profile``      run a pipeline and print the per-primitive wall-time
                 and call-count table (where the next hot path is)
``explain``      run a pipeline and print the logical vs physical plan
                 per phase (elided sorts, fused joins, operator choices)
``pipeline``     print the stage DAG plan (and run it, warm-starting
                 from an artifact cache)
``batch``        fan a mixed verify/sensitivity workload over a process pool
``serve``        run the sharded micro-batching query service (S19);
                 ``--workers N`` scales out through the router tier
``route``        run the router tier: front door + consistent-hash
                 placement over N worker processes (S22)
``loadgen``      drive a query storm against a running serve/route
                 process; ``--churn RATE`` streams structural
                 update_batch ops alongside the reads (S23)
``sweep``        the headline experiment: rounds vs candidate-tree diameter
``lower-bound``  the Theorem 5.2 hard family

Examples::

    python -m repro verify --shape caterpillar --n 2000 --extra-m 4000
    python -m repro verify --shape random --n 500 --break-mst
    python -m repro sensitivity --shape binary --n 1023 --top 8
    python -m repro profile --kind sensitivity --n 2000 --engine distributed
    python -m repro pipeline --kind sensitivity --n 500 --cache-dir /tmp/cache
    python -m repro batch --jobs 8 --n 300 --cache-dir /tmp/cache
    python -m repro batch --jobs 12 --format json --out report.json
    python -m repro batch --jobs 6 --persist-oracles /tmp/oracles
    python -m repro serve --shapes random,grid,power_law --n 2000 --shards 4
    python -m repro serve --workers 4 --n 2000            # router scale-out
    python -m repro route --workers 4 --replication 2 --port 7465
    python -m repro route --workers 3 --chaos kill:1@2.0  # self-healing demo
    python -m repro loadgen --port 7465 --queries 5000 --churn 10 --shutdown
    python -m repro sweep --n 4096 --diameters 8,32,128,512
    python -m repro lower-bound --sizes 64,256,1024
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import fit_log, render_table
from .errors import ValidationError
from .graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    known_mst_instance,
    one_vs_two_cycles_instance,
    perturb_break_mst,
    TREE_SHAPES,
)
from .mpc import MPCConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MST verification & sensitivity in simulated MPC "
                    "(Coy–Czumaj–Mishra–Mukherjee, SPAA 2024)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def instance_args(sp):
        sp.add_argument("--shape", choices=TREE_SHAPES, default="random")
        sp.add_argument("--n", type=int, default=1000)
        sp.add_argument("--extra-m", type=int, default=None,
                        help="non-tree edges (default 2n)")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--engine", choices=["local", "distributed"],
                        default="local")
        sp.add_argument("--delta", type=float, default=0.35,
                        help="local-memory exponent s = O(n^delta)")
        sp.add_argument("--oracle-labels", action="store_true",
                        help="assume the cited rooting/DFS black boxes")

    sp = sub.add_parser("verify", help="MST verification (Theorem 3.1)")
    instance_args(sp)
    sp.add_argument("--break-mst", action="store_true",
                    help="perturb one non-tree edge below its path max")

    sp = sub.add_parser("sensitivity", help="MST sensitivity (Theorem 4.1)")
    instance_args(sp)
    sp.add_argument("--top", type=int, default=5,
                    help="how many fragile edges to list")

    sp = sub.add_parser(
        "profile",
        help="per-primitive wall-time/call profile of a pipeline run",
    )
    instance_args(sp)
    sp.add_argument("--kind", choices=["verify", "sensitivity"],
                    default="sensitivity")
    sp.add_argument("--break-mst", action="store_true",
                    help="perturb one non-tree edge below its path max")

    sp = sub.add_parser(
        "explain",
        help="print the logical vs physical plan of a pipeline run "
             "(elided/fused/reused nodes per phase)",
    )
    instance_args(sp)
    sp.add_argument("--kind", choices=["verify", "sensitivity"],
                    default="sensitivity")
    sp.add_argument("--break-mst", action="store_true",
                    help="perturb one non-tree edge below its path max")
    sp.add_argument("--full", action="store_true",
                    help="list every plan node, not just per-phase summaries")

    sp = sub.add_parser(
        "pipeline",
        help="print the stage DAG plan and run it against an artifact cache",
    )
    instance_args(sp)
    sp.add_argument("--kind", choices=["verify", "sensitivity"],
                    default="verify")
    sp.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                    help="persistent artifact store (warm-start across runs)")
    sp.add_argument("--coin-bias", type=float, default=0.5)
    sp.add_argument("--reduction-exponent", type=float, default=1.0)
    sp.add_argument("--plan-only", action="store_true",
                    help="print the stage plan without executing")

    sp = sub.add_parser(
        "batch", help="run many verify/sensitivity jobs across a process pool"
    )
    sp.add_argument("--jobs", type=int, default=8,
                    help="number of jobs in the workload")
    sp.add_argument("--processes", type=int, default=None,
                    help="pool size (default: min(jobs, cpu count))")
    sp.add_argument("--n", type=int, default=200)
    sp.add_argument("--extra-m", type=int, default=None,
                    help="non-tree edges per instance (default 2n)")
    sp.add_argument("--shapes", type=str, default="random,binary,caterpillar",
                    help="comma-separated tree shapes to cycle through")
    sp.add_argument("--kinds", type=str, default="verify,sensitivity",
                    help="comma-separated job kinds to mix")
    sp.add_argument("--broken", type=float, default=0.25,
                    help="fraction of verify jobs on a perturbed (non-MST) tree")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--engine", choices=["local", "distributed"],
                    default="local")
    sp.add_argument("--delta", type=float, default=0.35)
    sp.add_argument("--format", choices=["table", "json", "csv"],
                    default="table", help="per-job record format")
    sp.add_argument("--out", type=str, default=None,
                    help="write per-job records to this file (default stdout)")
    sp.add_argument("--persist-oracles", type=str, default=None, metavar="DIR",
                    help="save a rehydratable sensitivity oracle per job here")
    sp.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                    help="shared stage-artifact cache: jobs on one graph "
                         "run their common pipeline prefix once")

    sp = sub.add_parser(
        "serve",
        help="run the sharded micro-batching query service (TCP JSON-lines)",
    )
    sp.add_argument("--shapes", type=str, default="random",
                    help="comma-separated tree shapes; one named instance "
                         "per shape")
    sp.add_argument("--n", type=int, default=1000)
    sp.add_argument("--extra-m", type=int, default=None,
                    help="non-tree edges per instance (default 2n)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--engine", choices=["local", "distributed"],
                    default="local")
    sp.add_argument("--delta", type=float, default=0.35)
    sp.add_argument("--host", type=str, default="127.0.0.1")
    sp.add_argument("--port", type=int, default=7464,
                    help="TCP port (0 picks a free one)")
    sp.add_argument("--shards", type=int, default=2,
                    help="edge-range shards per instance")
    sp.add_argument("--max-batch", type=int, default=512)
    sp.add_argument("--window-ms", type=float, default=2.0,
                    help="micro-batch latency window")
    sp.add_argument("--queue-depth", type=int, default=4096,
                    help="per-shard queue bound before load-shedding")
    sp.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                    help="persistent artifact store for incremental rebuilds")
    sp.add_argument("--mmap-dir", type=str, default=None, metavar="DIR",
                    help="share oracle snapshots across shards via mmap")
    sp.add_argument("--workers", type=int, default=1,
                    help="worker processes; >1 runs the router tier "
                         "(equivalent to `repro route`)")
    sp.add_argument("--replication", type=int, default=2,
                    help="replicas per instance when --workers > 1")
    sp.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                    help="fault-injection plan when --workers > 1, e.g. "
                         "'kill:1@0.5' (see repro.service.chaos)")

    sp = sub.add_parser(
        "route",
        help="router tier: front door + placement over N worker processes",
    )
    sp.add_argument("--shapes", type=str, default="random",
                    help="comma-separated tree shapes; one named instance "
                         "per shape")
    sp.add_argument("--n", type=int, default=1000)
    sp.add_argument("--extra-m", type=int, default=None,
                    help="non-tree edges per instance (default 2n)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--engine", choices=["local", "distributed"],
                    default="local")
    sp.add_argument("--delta", type=float, default=0.35)
    sp.add_argument("--host", type=str, default="127.0.0.1")
    sp.add_argument("--port", type=int, default=7465,
                    help="front-door TCP port (0 picks a free one)")
    sp.add_argument("--workers", type=int, default=2,
                    help="worker processes behind the router")
    sp.add_argument("--replication", type=int, default=2,
                    help="replicas per instance (capped at --workers)")
    sp.add_argument("--shards", type=int, default=2,
                    help="edge-range shards per instance, per worker")
    sp.add_argument("--max-batch", type=int, default=512)
    sp.add_argument("--window-ms", type=float, default=2.0,
                    help="micro-batch latency window")
    sp.add_argument("--queue-depth", type=int, default=4096,
                    help="per-shard queue bound before load-shedding")
    sp.add_argument("--query-links", type=int, default=2,
                    help="pipelined query connections per worker")
    sp.add_argument("--shed-watermark", type=float, default=0.9,
                    help="queue-depth fraction that trips router-tier shed")
    sp.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                    help="per-worker artifact store root for rebuilds")
    sp.add_argument("--mmap-dir", type=str, default=None, metavar="DIR",
                    help="snapshot spool shared by router and workers "
                         "(default: a private tempdir)")
    sp.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                    help="deterministic fault-injection plan, e.g. "
                         "'kill:1@0.5,sever:0@2.0' or 'rand:7@3.0' "
                         "(see repro.service.chaos)")

    sp = sub.add_parser(
        "loadgen",
        help="drive a query storm (optionally with --churn structural "
             "batches) against a running serve/route process",
        add_help=False,
    )
    sp.add_argument("loadgen_args", nargs=argparse.REMAINDER,
                    help="arguments passed through to repro.service.loadgen")

    sp = sub.add_parser("sweep", help="rounds vs D_T experiment")
    sp.add_argument("--n", type=int, default=4096)
    sp.add_argument("--diameters", type=str, default="8,32,128,512")
    sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser("lower-bound", help="Theorem 5.2 hard family")
    sp.add_argument("--sizes", type=str, default="64,256,1024")
    return p


def _make_instance(args):
    extra = args.extra_m if args.extra_m is not None else 2 * args.n
    g, _ = known_mst_instance(args.shape, args.n, extra_m=extra,
                              rng=args.seed)
    return g


def _config(args):
    return MPCConfig(delta=args.delta) if args.engine == "distributed" else None


def cmd_verify(args, out) -> int:
    from .core.verification import verify_mst

    g = _make_instance(args)
    if args.break_mst:
        g = perturb_break_mst(g, rng=args.seed + 1)
    r = verify_mst(g, engine=args.engine, config=_config(args),
                   oracle_labels=args.oracle_labels)
    out.write(f"instance: shape={args.shape} n={g.n} m={g.m}\n")
    out.write(f"is MST:   {r.is_mst} ({r.reason})\n")
    out.write(f"rounds:   {r.rounds} (core {r.core_rounds}, "
              f"substrate {r.substrate_rounds})\n")
    out.write(f"memory:   {r.report.peak_global_words} words peak "
              f"(input {g.total_words()})\n")
    out.write(f"D_T est.: {r.diameter_estimate}\n")
    if not r.is_mst and len(r.violating_edges):
        out.write(f"witness edges: {r.violating_edges[:10].tolist()}\n")
    return 0 if r.is_mst or args.break_mst else 1


def cmd_sensitivity(args, out) -> int:
    from .core.sensitivity import mst_sensitivity

    g = _make_instance(args)
    r = mst_sensitivity(g, engine=args.engine, config=_config(args),
                        oracle_labels=args.oracle_labels)
    out.write(f"instance: shape={args.shape} n={g.n} m={g.m}\n")
    out.write(f"rounds:   {r.rounds} (core {r.core_rounds}); "
              f"notes peak {r.notes_peak}\n")
    ts = r.sensitivity[r.tree_index]
    finite = np.isfinite(ts)
    out.write(f"tree edges: {int(finite.sum())} swappable, "
              f"{int((~finite).sum())} bridges\n")
    order = np.argsort(ts)[: args.top]
    rows = []
    for k in order:
        e = int(r.tree_index[k])
        rows.append((int(g.u[e]), int(g.v[e]), round(float(g.w[e]), 4),
                     round(float(ts[k]), 4)))
    out.write("most fragile tree edges:\n")
    out.write(render_table(["u", "v", "weight", "slack"], rows))
    return 0


def cmd_profile(args, out) -> int:
    import time

    from .core.verification import distributed_hint, verify_mst
    from .mpc import make_runtime

    g = _make_instance(args)
    if args.break_mst:
        g = perturb_break_mst(g, rng=args.seed + 1)
    rt = make_runtime(args.engine, _config(args),
                      total_words_hint=distributed_hint(g))
    t0 = time.perf_counter()
    if args.kind == "sensitivity":
        from .core.sensitivity import mst_sensitivity

        r = mst_sensitivity(g, runtime=rt, oracle_labels=args.oracle_labels)
        verdict = f"rounds={r.rounds} (core {r.core_rounds})"
    else:
        r = verify_mst(g, runtime=rt, oracle_labels=args.oracle_labels)
        verdict = f"is_mst={r.is_mst} rounds={r.rounds}"
    total = time.perf_counter() - t0
    rep = rt.report()
    out.write(f"instance: shape={args.shape} n={g.n} m={g.m} "
              f"engine={args.engine}\n")
    out.write(f"{args.kind}: {verdict}, wall {total:.3f}s")
    if args.engine == "distributed":
        out.write(f", transport rounds {rep.transport_rounds}")
    out.write("\n\nper-primitive wall attribution (slowest first):\n")
    profile = rt.tracker.wall_profile()
    attributed = sum(w for _, _, w in profile)
    rows = []
    for prim, calls, wall in profile:
        rows.append((
            prim, calls, round(wall, 4),
            f"{100.0 * wall / total:.1f}%" if total else "-",
            round(1e3 * wall / calls, 3),
        ))
    rows.append(("(outside primitives)", "-",
                 round(max(total - attributed, 0.0), 4),
                 f"{100.0 * max(total - attributed, 0.0) / total:.1f}%"
                 if total else "-", "-"))
    out.write(render_table(
        ["primitive", "calls", "wall (s)", "of total", "ms/call"], rows
    ))
    return 0


#: Order in which physical-operator counters print in ``explain``.
_EXPLAIN_PHYS = (
    "identity", "cse", "argsort-permute", "dense-gather", "direct-address",
    "binary-search", "empty-data", "grouped-reduceat", "sort-reduceat",
    "segmented-scan", "mask-compact", "aggregation-tree", "sample-sort",
    "co-sort-copy-down", "carry-chain", "sort-scan-boundary",
    "compact-rebalance",
)


def cmd_explain(args, out) -> int:
    from .core.verification import distributed_hint, verify_mst
    from .mpc import make_runtime

    g = _make_instance(args)
    if args.break_mst:
        g = perturb_break_mst(g, rng=args.seed + 1)
    rt = make_runtime(args.engine, _config(args),
                      total_words_hint=distributed_hint(g))
    if rt.planner is None:
        print("error: explain needs the planner (config.planner=True)",
              file=sys.stderr)
        return 2
    if args.kind == "sensitivity":
        from .core.sensitivity import mst_sensitivity

        r = mst_sensitivity(g, runtime=rt, oracle_labels=args.oracle_labels)
        verdict = f"rounds={r.rounds}"
    else:
        r = verify_mst(g, runtime=rt, oracle_labels=args.oracle_labels)
        verdict = f"is_mst={r.is_mst} rounds={r.rounds}"
    log = rt.planner.log
    out.write(f"instance: shape={args.shape} n={g.n} m={g.m} "
              f"engine={args.engine}\n")
    out.write(f"{args.kind}: {verdict}, {len(log)} logical plan nodes\n\n")
    out.write("logical -> physical plan by phase "
              "(rounds are charged from the logical side):\n")
    summary = log.phase_summary()
    for phase, c in summary.items():
        ops = ", ".join(
            f"{v} {k[2:]}" for k, v in sorted(c.items()) if k.startswith("n_")
        )
        rewrites = []
        if c.get("elided_sort"):
            rewrites.append(f"{c['elided_sort']} sort(s) elided")
        if c.get("fused_join"):
            rewrites.append(f"{c['fused_join']} join(s) fused with reduce")
        if c.get("reused"):
            rewrites.append(f"{c['reused']} sub-plan(s) reused")
        phys = ", ".join(
            f"{c['phys_' + p]} {p}" for p in _EXPLAIN_PHYS
            if c.get("phys_" + p)
        )
        out.write(f"  {phase}\n")
        out.write(f"    logical : {ops}\n")
        out.write(f"    physical: {phys if phys else '(none executed)'}"
                  f"{('  [' + '; '.join(rewrites) + ']') if rewrites else ''}\n")
    tot = log.totals()
    out.write("\ntotals: "
              f"{tot.get('nodes', 0)} nodes, "
              f"{tot.get('elided_sort', 0)} sorts elided of "
              f"{tot.get('n_sort', 0)}, "
              f"{tot.get('fused_join', 0)} joins fused, "
              f"{tot.get('reused', 0)} sub-plans reused\n")
    joins = sum(tot.get(k, 0) for k in
                ("phys_dense-gather", "phys_direct-address"))
    out.write(f"        {joins} joins answered by direct addressing, "
              f"{tot.get('phys_binary-search', 0)} by binary search\n")
    if args.full:
        out.write("\nplan nodes:\n")
        for node in log.nodes:
            detail = f"({node.detail})" if node.detail else ""
            note = f"  # {node.note}" if node.note else ""
            out.write(f"  [{node.nid:4d}] {node.phase:28s} "
                      f"{node.op}{detail} n={node.n_in} -> "
                      f"{node.status}/{node.physical}{note}\n")
    return 0


def cmd_pipeline(args, out) -> int:
    from .pipeline import (
        ArtifactStore, PipelineParams, run_sensitivity, run_verification,
        sensitivity_pipeline, verification_pipeline,
    )

    from .mpc import MPCConfig

    g = _make_instance(args)
    pipe = (sensitivity_pipeline() if args.kind == "sensitivity"
            else verification_pipeline())
    store = (ArtifactStore(cache_dir=args.cache_dir)
             if args.cache_dir is not None else None)
    # mirror exactly what the run will capture from its runtime config
    # (for the local engine _config() is None, i.e. MPCConfig defaults),
    # so the printed plan keys match the executed keys
    cfg = _config(args) or MPCConfig()
    params = PipelineParams(
        engine=args.engine, oracle_labels=args.oracle_labels,
        coin_bias=args.coin_bias, reduction_exponent=args.reduction_exponent,
        cost_mode=cfg.cost_mode, delta=cfg.delta, seed=cfg.seed,
        capacity_constant=cfg.capacity_constant,
        min_machine_words=cfg.min_machine_words,
        global_slack=cfg.global_slack,
    )
    out.write(f"instance: shape={args.shape} n={g.n} m={g.m} "
              f"engine={args.engine}\n")
    out.write(f"stage plan ({args.kind}):\n")
    rows = []
    for e in pipe.plan(g, params, store):
        cached = "-" if e.cached is None else ("hit" if e.cached else "miss")
        rows.append((e.name, e.group, ",".join(e.deps) or "-",
                     ",".join(e.params) or "-", e.key, cached))
    out.write(render_table(
        ["stage", "phase", "depends on", "keyed by", "cache key", "cache"],
        rows,
    ))
    if args.plan_only:
        return 0
    kw = dict(
        engine=args.engine, config=_config(args),
        oracle_labels=args.oracle_labels, coin_bias=args.coin_bias,
        reduction_exponent=args.reduction_exponent, store=store,
    )
    if args.kind == "sensitivity":
        r, run = run_sensitivity(g, **kw)
        out.write(f"\nsensitivity done: rounds={r.rounds} "
                  f"(core {r.core_rounds}), notes peak {r.notes_peak}\n")
    else:
        r, run = run_verification(g, **kw)
        out.write(f"\nverification done: is_mst={r.is_mst} ({r.reason}), "
                  f"rounds={r.rounds} (core {r.core_rounds})\n")
    out.write(f"stages executed: {len(run.executed_stages)}, "
              f"replayed from cache: {len(run.cached_stages)}\n")
    if store is not None:
        st = store.stats()
        out.write(f"store: {st['entries']} artifacts, {st['hits']} hits, "
                  f"{st['misses']} misses ({st['disk_hits']} from disk)\n")
    return 0


def cmd_batch(args, out) -> int:
    import json

    from .analysis import to_csv
    from .batch import (
        BatchRunner, RECORD_FIELDS, aggregate, make_workload,
    )

    jobs = make_workload(
        count=args.jobs,
        kinds=tuple(k.strip() for k in args.kinds.split(",") if k.strip()),
        shapes=tuple(s.strip() for s in args.shapes.split(",") if s.strip()),
        n=args.n, extra_m=args.extra_m, base_seed=args.seed,
        broken_fraction=args.broken, engine=args.engine,
    )
    runner = BatchRunner(
        config=_config(args), processes=args.processes,
        persist_dir=args.persist_oracles, cache_dir=args.cache_dir,
    )
    results = runner.run(jobs)
    records = [r.as_record() for r in results]

    if args.format == "json":
        payload = json.dumps({"jobs": records}, indent=2)
    elif args.format == "csv":
        payload = to_csv(RECORD_FIELDS,
                         [[rec[f] if rec[f] is not None else ""
                           for f in RECORD_FIELDS] for rec in records])
    else:
        cols = ["job_id", "kind", "shape", "n", "m", "engine", "ok",
                "status", "is_mst", "rounds", "core_rounds", "peak_words",
                "wall_s"]
        payload = render_table(
            cols, [[rec[c] if rec[c] is not None else "-" for c in cols]
                   for rec in records],
        )
    # keep stdout machine-readable for json/csv: the human summary moves
    # to stderr unless the payload went to a file
    summary = out
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + ("\n" if not payload.endswith("\n") else ""))
        out.write(f"wrote {len(records)} job records to {args.out}\n")
    else:
        out.write(payload if payload.endswith("\n") else payload + "\n")
        if args.format != "table":
            summary = sys.stderr
    failed = [r for r in results if not r.ok]
    headers, rows = aggregate(results)
    summary.write("\naggregated cost table (by kind, shape):\n")
    summary.write(render_table(headers, rows))
    summary.write(f"\njobs: {len(results)} total, "
                  f"{len(results) - len(failed)} ok, {len(failed)} failed\n")
    for r in failed[:5]:
        summary.write(f"  job {r.job_id} [{r.kind}/{r.shape}] "
                      f"{r.status}: {r.error}\n")
    if args.persist_oracles:
        saved = sum(1 for r in results if r.oracle_path)
        summary.write(f"persisted {saved} oracles to {args.persist_oracles}\n")
    return 0 if not failed else 1


def _serve_shapes(args):
    shapes = [s.strip() for s in args.shapes.split(",") if s.strip()]
    for s in shapes:
        if s not in TREE_SHAPES:
            raise ValidationError(f"unknown tree shape {s!r}")
    if not shapes:
        raise ValidationError("serve needs at least one shape")
    return shapes


def cmd_route(args, out) -> int:
    import asyncio

    from .service import RouterConfig, RouterTier

    shapes = _serve_shapes(args)
    extra = args.extra_m if args.extra_m is not None else 2 * args.n
    cfg = RouterConfig(
        workers=args.workers, replication=args.replication,
        shards=args.shards, max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3, queue_depth=args.queue_depth,
        engine=args.engine, delta=args.delta,
        host=args.host, port=args.port,
        mmap_dir=args.mmap_dir, cache_dir=args.cache_dir,
        # `serve --workers N` delegates here without the router-only flags
        query_links=getattr(args, "query_links", 2),
        shed_watermark=getattr(args, "shed_watermark", 0.9),
        chaos=getattr(args, "chaos", None),
    )

    async def run() -> None:
        router = RouterTier(cfg)
        await router.start(serve_tcp=True)
        out.write(f"router up: {cfg.workers} worker processes, "
                  f"replication {min(cfg.replication, cfg.workers)}\n")
        for i, shape in enumerate(shapes):
            g, _ = known_mst_instance(shape, args.n, extra_m=extra,
                                      rng=args.seed + 101 * i)
            info = await router.add_instance(shape, g)
            out.write(f"instance {shape}: n={g.n} m={g.m} "
                      f"replicas={info['replicas']} "
                      f"snapshot={info['digest'][:16]}\n")
        host, port = router.tcp_address
        out.write(f"listening on {host}:{port} "
                  f"(JSON-lines + binary wire v1; ops: sensitivity survives "
                  f"replacement_edge entry_threshold update metrics "
                  f"instances ping hello shutdown)\n")
        if hasattr(out, "flush"):
            out.flush()
        try:
            await router.serve_forever()
        finally:
            m = await router.router_metrics()
            await router.stop()
            out.write(f"forwarded {m['router']['forwarded']} queries "
                      f"({m['qps']} worker qps over {m['uptime_s']}s), "
                      f"shed {m['router']['shed_router']} at router, "
                      f"shipped {m['router']['swaps_shipped']} swaps\n")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        out.write("interrupted\n")
    return 0


def cmd_serve(args, out) -> int:
    import asyncio

    from .service import SensitivityService, ServiceConfig

    if getattr(args, "workers", 1) > 1:
        return cmd_route(args, out)
    shapes = [s.strip() for s in args.shapes.split(",") if s.strip()]
    for s in shapes:
        if s not in TREE_SHAPES:
            raise ValidationError(f"unknown tree shape {s!r}")
    if not shapes:
        raise ValidationError("serve needs at least one shape")
    extra = args.extra_m if args.extra_m is not None else 2 * args.n
    cfg = ServiceConfig(
        shards=args.shards, max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3, queue_depth=args.queue_depth,
        engine=args.engine, config=_config(args),
        cache_dir=args.cache_dir, mmap_dir=args.mmap_dir,
        host=args.host, port=args.port,
    )

    async def run() -> None:
        service = SensitivityService(cfg)
        for i, shape in enumerate(shapes):
            g, _ = known_mst_instance(shape, args.n, extra_m=extra,
                                      rng=args.seed + 101 * i)
            service.add_instance(shape, g)
            out.write(f"instance {shape}: n={g.n} m={g.m} "
                      f"shards={len(service.instances[shape].shards)}\n")
        await service.start(serve_tcp=True)
        host, port = service.tcp_address
        out.write(f"listening on {host}:{port} "
                  f"(JSON-lines + binary wire v1; ops: sensitivity survives "
                  f"replacement_edge entry_threshold update metrics "
                  f"instances ping hello shutdown)\n")
        if hasattr(out, "flush"):
            out.flush()
        try:
            await service.serve_forever()
        finally:
            await service.stop()
            m = service.metrics()
            out.write(f"served {m['queries']} queries "
                      f"({m['qps']} qps over {m['uptime_s']}s), "
                      f"shed {m['shed']}\n")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        out.write("interrupted\n")
    return 0


def cmd_loadgen(args, out) -> int:
    from .service.loadgen import main as loadgen_main

    return loadgen_main(args.loadgen_args)


def cmd_sweep(args, out) -> int:
    from .core.verification import verify_mst

    diams = [int(x) for x in args.diameters.split(",")]
    rows = []
    for d in diams:
        tree = backbone_tree(args.n, d, rng=args.seed + d)
        g = attach_nontree_edges(tree, 2 * args.n, rng=args.seed + d + 1,
                                 mode="mst")
        r = verify_mst(g, oracle_labels=True)
        rows.append((d, r.core_rounds, r.report.peak_global_words))
    out.write(render_table(["D_T", "core rounds", "peak words"], rows))
    fit = fit_log(diams, [r[1] for r in rows])
    out.write(f"fit: rounds ~ {fit.slope:.1f}*log2(D) {fit.intercept:+.1f} "
              f"(R2={fit.r2:.3f})\n")
    return 0


def cmd_lower_bound(args, out) -> int:
    from .core.verification import verify_mst

    sizes = [int(x) for x in args.sizes.split(",")]
    rows = []
    for n in sizes:
        g1, _ = one_vs_two_cycles_instance(n, two_cycles=False, rng=n)
        g2, _ = one_vs_two_cycles_instance(n, two_cycles=True, rng=n)
        r1 = verify_mst(g1, oracle_labels=True)
        r2 = verify_mst(g2, oracle_labels=True)
        rows.append((n, r1.rounds, str(r1.is_mst), str(r2.is_mst)))
    out.write(render_table(
        ["n", "rounds", "1-cycle accepted", "2-cycle accepted"], rows
    ))
    return 0


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["loadgen"]:
        # pure passthrough: loadgen owns its whole flag set (argparse
        # REMAINDER would refuse leading --options it doesn't know)
        from .service.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return {
            "verify": cmd_verify,
            "sensitivity": cmd_sensitivity,
            "profile": cmd_profile,
            "explain": cmd_explain,
            "pipeline": cmd_pipeline,
            "batch": cmd_batch,
            "serve": cmd_serve,
            "route": cmd_route,
            "loadgen": cmd_loadgen,
            "sweep": cmd_sweep,
            "lower-bound": cmd_lower_bound,
        }[args.command](args, out)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
