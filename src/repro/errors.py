"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Model-violation errors (machine memory
overflow, malformed inputs) get dedicated subclasses because benchmarks
and tests assert on them specifically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError):
    """An input failed structural validation (shape, dtype, range)."""


class NotATreeError(ValidationError):
    """A candidate edge set is not a tree/forest of the expected form."""


class DisconnectedGraphError(ValidationError):
    """An operation required a connected input graph."""


class CapacityError(ReproError):
    """A simulated machine exceeded its local memory budget ``s``.

    Raised by the distributed engine when a protocol step would make a
    machine hold or transfer more than ``s`` words in one round, i.e. the
    algorithm violated the MPC model's local-space constraint.
    """

    def __init__(self, machine: int, words: int, capacity: int, what: str = "hold"):
        self.machine = machine
        self.words = words
        self.capacity = capacity
        super().__init__(
            f"machine {machine} asked to {what} {words} words "
            f"but local capacity is s={capacity}"
        )


class KeyPackingError(ReproError):
    """Composite sort keys could not be packed into a single 63-bit word."""


class ProtocolError(ReproError):
    """A runtime primitive was called with inconsistent arguments
    (e.g. a lookup against a table with duplicate keys)."""


class ExecutorError(ReproError):
    """The process-parallel physical executor could not serve a request
    (pool closed, worker handshake timeout, malformed dispatch)."""


class WorkerCrashed(ExecutorError):
    """A pool worker process died while executing a task.

    The pool converts this into a failed :class:`repro.mpc.parallel.
    Outcome` (and respawns the slot) rather than raising, so one crash
    never discards sibling tasks' results; callers that *want* the
    exception re-raise from the outcome.
    """


class ServiceError(ReproError):
    """A serving-layer request could not be completed.

    Structured replacement for transport exceptions leaking out of
    service clients: ``kind`` classifies the failure so callers (the
    router tier in particular) branch on it instead of matching error
    strings.

    Kinds: ``"disconnected"`` (the peer dropped the connection
    mid-call), ``"response"`` (the peer answered with an error
    response), ``"protocol"`` (unparseable response line),
    ``"bad_request"`` (the request itself was malformed — e.g. an
    out-of-range edge id arriving from the wire; the server answers
    ``{"ok": false, "error_kind": "bad_request"}`` instead of letting
    an ``IndexError`` escape into the connection handler).
    """

    def __init__(self, message: str, kind: str = "response"):
        self.kind = kind
        super().__init__(message)
