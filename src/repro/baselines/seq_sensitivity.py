"""Sequential MST sensitivity oracle (Tarjan-style, [Tar82]/[DRT92]).

* Non-tree edge: ``sens(e) = w(e) - pathmax_T(e)`` (binary lifting).
* Tree edge: ``mc(e)`` — the minimum weight of a covering non-tree edge
  — via the classic union-find ascent: process non-tree edges in
  increasing weight; walk both endpoints up to their LCA through a
  "next uncovered ancestor" DSU, stamping each still-uncovered tree edge
  with the current weight (its minimum cover, since weights ascend) and
  splicing covered vertices out. Near-linear total time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.graph import WeightedGraph
from ..graph.tree import RootedTree

__all__ = ["SequentialSensitivity", "sequential_sensitivity"]


@dataclass
class SequentialSensitivity:
    sensitivity: np.ndarray   # per input edge
    mc: np.ndarray            # per vertex: min cover of edge (v, parent(v))
    tree: RootedTree


def sequential_sensitivity(graph: WeightedGraph, root: int = 0) -> SequentialSensitivity:
    tu, tv, tw = graph.tree_edges()
    tree = RootedTree.from_edges(graph.n, tu, tv, tw, root=root)
    n = graph.n
    depth = tree.depths()
    parent = tree.parent

    nt_idx = np.flatnonzero(~graph.tree_mask)
    nu, nv, nw = graph.u[nt_idx], graph.v[nt_idx], graph.w[nt_idx]
    lca = tree.lca(nu, nv) if len(nt_idx) else np.empty(0, dtype=np.int64)

    mc = np.full(n, np.inf, dtype=np.float64)
    # DSU over "next vertex whose parent edge is still uncovered"
    jump = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        r = x
        while jump[r] != r:
            r = jump[r]
        while jump[x] != r:
            jump[x], x = r, jump[x]
        return r

    order = np.argsort(nw, kind="stable")
    for i in order:
        w = float(nw[i])
        top = int(lca[i])
        for end in (int(nu[i]), int(nv[i])):
            x = find(end)
            while depth[x] > depth[top]:
                mc[x] = w            # first (smallest) cover wins
                jump[x] = find(int(parent[x]))
                x = find(x)

    sens = np.empty(graph.m, dtype=np.float64)
    t_idx = np.flatnonzero(graph.tree_mask)
    child = np.where(parent[graph.u[t_idx]] == graph.v[t_idx],
                     graph.u[t_idx], graph.v[t_idx])
    sens[t_idx] = mc[child] - graph.w[t_idx]
    if len(nt_idx):
        pmax = tree.path_max(nu, nv)
        sens[nt_idx] = nw - pmax
    return SequentialSensitivity(sensitivity=sens, mc=mc, tree=tree)
