"""Baselines and oracles (system S14 in DESIGN.md)."""

from .mpc_boruvka import BoruvkaResult, mpc_boruvka, verify_by_recompute_mpc
from .naive_mpc_verify import NaiveVerifyResult, naive_verify_mst
from .seq_mst import kruskal_mst, mst_weight
from .seq_sensitivity import SequentialSensitivity, sequential_sensitivity
from .seq_verify import nontree_pathmax, verify_by_pathmax, verify_by_recompute

__all__ = [
    "BoruvkaResult",
    "mpc_boruvka",
    "verify_by_recompute_mpc",
    "NaiveVerifyResult",
    "naive_verify_mst",
    "kruskal_mst",
    "mst_weight",
    "SequentialSensitivity",
    "sequential_sensitivity",
    "nontree_pathmax",
    "verify_by_pathmax",
    "verify_by_recompute",
]
