"""Sequential MST verification oracles.

Two independent methods (tests cross-check them against each other and
against the MPC pipeline):

* *recompute*: ``T`` is an MST iff it is a spanning tree and its weight
  equals the MST weight (all MSTs share one weight);
* *path-max* (cycle rule): ``T`` is an MST iff no non-tree edge weighs
  strictly less than the maximum weight on its tree path (computed with
  the binary-lifting oracle of :class:`repro.graph.tree.RootedTree`).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import WeightedGraph
from ..graph.tree import RootedTree
from ..graph.validation import is_spanning_tree
from .seq_mst import mst_weight

__all__ = ["verify_by_recompute", "verify_by_pathmax", "nontree_pathmax"]


def verify_by_recompute(graph: WeightedGraph) -> bool:
    tu, tv, tw = graph.tree_edges()
    if not is_spanning_tree(graph.n, tu, tv):
        return False
    return bool(np.isclose(tw.sum(), mst_weight(graph)))


def nontree_pathmax(graph: WeightedGraph, root: int = 0) -> np.ndarray:
    """Tree-path maximum for every non-tree edge (input order)."""
    tu, tv, tw = graph.tree_edges()
    tree = RootedTree.from_edges(graph.n, tu, tv, tw, root=root)
    nu, nv, _ = graph.nontree_edges()
    return tree.path_max(nu, nv)


def verify_by_pathmax(graph: WeightedGraph, root: int = 0) -> bool:
    tu, tv, _ = graph.tree_edges()
    if not is_spanning_tree(graph.n, tu, tv):
        return False
    _, _, nw = graph.nontree_edges()
    if len(nw) == 0:
        return True
    return bool(np.all(nw >= nontree_pathmax(graph, root)))
