"""Sequential MST construction (Kruskal) — baseline and test oracle."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import DisconnectedGraphError
from ..graph.graph import WeightedGraph
from ..graph.validation import UnionFind

__all__ = ["kruskal_mst", "mst_weight"]


def kruskal_mst(graph: WeightedGraph) -> Tuple[np.ndarray, float]:
    """Minimum spanning tree edge indices + total weight (Kruskal).

    Ties are broken by input order (stable sort), so the result is
    deterministic. Raises on disconnected inputs.
    """
    order = np.argsort(graph.w, kind="stable")
    uf = UnionFind(graph.n)
    chosen = []
    total = 0.0
    for i in order:
        if uf.union(int(graph.u[i]), int(graph.v[i])):
            chosen.append(int(i))
            total += float(graph.w[i])
            if len(chosen) == graph.n - 1:
                break
    if len(chosen) != graph.n - 1:
        raise DisconnectedGraphError("graph is not connected")
    return np.array(sorted(chosen), dtype=np.int64), total


def mst_weight(graph: WeightedGraph) -> float:
    """Total weight of an MST (all MSTs share it)."""
    return kruskal_mst(graph)[1]
