"""Borůvka MST in MPC — the ``Θ(log n)``-round comparison baseline.

The paper (§1.3) notes that with optimal global memory the best known
MST algorithm is an ``O(log n)``-round PRAM simulation (e.g. [CKT96]).
This module provides that comparison point: classic Borůvka phases
(every component picks its lightest incident edge, components hook and
contract by pointer jumping). Rounds grow with ``log n`` and are
*independent of* ``D_T`` — exactly the gap Theorems 3.1/4.1 close for
the verification/sensitivity variants.

Also provides :func:`verify_by_recompute_mpc`: verification by
recomputing an MST and comparing weights — the "obvious" distributed
verifier our ``O(log D_T)`` pipeline is benchmarked against (E1/E2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DisconnectedGraphError
from ..graph.graph import WeightedGraph
from ..mpc.runtime import Runtime, float_sort_key
from ..mpc.table import Table

__all__ = ["BoruvkaResult", "mpc_boruvka", "verify_by_recompute_mpc"]


@dataclass
class BoruvkaResult:
    mst_edge_index: np.ndarray
    total_weight: float
    phases: int
    rounds: int


def mpc_boruvka(rt: Runtime, graph: WeightedGraph) -> BoruvkaResult:
    """Minimum spanning tree by Borůvka phases on the runtime ``rt``."""
    n, m = graph.n, graph.m
    labels = np.arange(n, dtype=np.int64)
    eid = np.arange(m, dtype=np.int64)
    wkey = float_sort_key(graph.w)
    chosen_mask = np.zeros(m, dtype=bool)
    phases = 0
    start_rounds = rt.rounds

    while True:
        phases += 1
        lab_tab = Table(v=np.arange(n, dtype=np.int64), l=labels)
        gu = rt.lookup(Table(x=graph.u), ("x",), lab_tab, ("v",), {"l": "l"})
        gv = rt.lookup(Table(x=graph.v), ("x",), lab_tab, ("v",), {"l": "l"})
        lu, lv = gu.col("l"), gv.col("l")
        ext = lu != lv
        if not bool(rt.scalar(Table(x=ext.astype(np.int64)), "x", "max")):
            break
        # each component's lightest incident external edge (ties: min eid)
        cand = Table(
            c=np.concatenate([lu[ext], lv[ext]]),
            wk=np.concatenate([wkey[ext], wkey[ext]]),
            e=np.concatenate([eid[ext], eid[ext]]),
        )
        best_w = rt.reduce_by_key(cand, ("c",), {"wk": ("wk", "min")})
        cand2 = rt.lookup(cand, ("c",), best_w, ("c",), {"bw": "wk"})
        tied = rt.filter(cand2, cand2.col("wk") == cand2.col("bw"))
        best = rt.reduce_by_key(tied, ("c",), {"e": ("e", "min")})
        # record the chosen edges
        chosen_mask[best.col("e")] = True
        # hooking: component -> other endpoint's component of its edge
        edge_tab = Table(e=eid, lu=lu, lv=lv)
        got = rt.lookup(best, ("e",), edge_tab, ("e",), {"lu": "lu", "lv": "lv"})
        c = best.col("c")
        target = np.where(got.col("lu") == c, got.col("lv"), got.col("lu"))
        # break mutual hooks toward the smaller id, then pointer-jump
        hook = rt.lookup(
            Table(c=c, t=target), ("t",), Table(c=c, t=target), ("c",),
            {"tt": "t"}, default={"tt": -1},
        )
        mutual = (hook.col("tt") == c) & (c < target)
        parent = np.where(mutual, c, target)
        comp_par = Table(c=c, p=parent)
        got_all = rt.lookup(
            Table(c=labels), ("c",), comp_par, ("c",), {"p": "p"},
            default={"p": -1},
        )
        new_labels = np.where(got_all.col("p") >= 0, got_all.col("p"), labels)
        while True:
            jt = rt.lookup(
                Table(v=np.arange(n, dtype=np.int64), l=new_labels), ("l",),
                Table(v=np.arange(n, dtype=np.int64), l2=new_labels), ("v",),
                {"l2": "l2"},
            )
            nxt = jt.col("l2")
            if not bool(rt.scalar(
                Table(x=(nxt != new_labels).astype(np.int64)), "x", "max"
            )):
                break
            new_labels = nxt
        labels = new_labels

    idx = np.flatnonzero(chosen_mask)
    if len(idx) != n - 1:
        raise DisconnectedGraphError(
            f"Borůvka selected {len(idx)} edges; graph disconnected?"
        )
    total = float(graph.w[idx].sum())
    return BoruvkaResult(
        mst_edge_index=idx, total_weight=total, phases=phases,
        rounds=rt.rounds - start_rounds,
    )


def verify_by_recompute_mpc(rt: Runtime, graph: WeightedGraph) -> bool:
    """Verification baseline: recompute the MST, compare total weights."""
    from ..trees.connectivity import mpc_is_spanning_tree

    tu, tv, tw = graph.tree_edges()
    with rt.phase("baseline-recompute"):
        if not mpc_is_spanning_tree(rt, graph.n, tu, tv):
            return False
        res = mpc_boruvka(rt, graph)
        t_weight = float(rt.scalar(Table(w=tw), "w", "sum"))
    return bool(np.isclose(t_weight, res.total_weight))
