"""The §3-intro strawman verifier: full path collection, no clustering.

Collects, for *every vertex*, its entire path to the root (Lemma 3.7 on
the uncontracted tree), takes prefix maxima along the paths, and reads
each half-edge's answer off its descendant's path. Also ``O(log D_T)``
rounds — but ``Θ(n · D_T)`` global memory instead of ``O(m + n)``,
which is exactly the problem the paper's hierarchical clustering exists
to solve. Benchmark E3 measures this blow-up against the real pipeline.

The LCA split is done with the sequential oracle (this baseline is
about the path-collection memory, not about LCA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.graph import WeightedGraph
from ..graph.tree import RootedTree
from ..mpc.runtime import Runtime
from ..mpc.table import Table
from ..trees.doubling import collect_root_paths

__all__ = ["NaiveVerifyResult", "naive_verify_mst"]


@dataclass
class NaiveVerifyResult:
    is_mst: bool
    pathmax: np.ndarray
    rounds: int
    peak_words: int


def naive_verify_mst(
    rt: Runtime, graph: WeightedGraph, root: int = 0
) -> NaiveVerifyResult:
    tu, tv, tw = graph.tree_edges()
    tree = RootedTree.from_edges(graph.n, tu, tv, tw, root=root)
    parent, wpar = tree.parent, tree.weight
    depth = tree.depths()
    nu, nv, nw = graph.nontree_edges()
    lca = tree.lca(nu, nv) if len(nu) else np.empty(0, dtype=np.int64)

    with rt.phase("naive-verify"):
        # Θ(sum of depths) = Θ(n * D_T) rows — the §3 memory blow-up
        paths = collect_root_paths(rt, parent, root)
        rt.retain("naive_full_paths", paths)
        paths = paths.with_cols(we=wpar[paths.col("anc")])
        paths = rt.sort(paths, ("v", "d"))
        cum = rt.scan(paths, "we", "max", by=("v",))
        paths = paths.with_cols(cum=cum)

        eid = np.arange(len(nu), dtype=np.int64)
        halves = Table(
            eid=np.concatenate([eid, eid]),
            lo=np.concatenate([nu, nv]),
            hi=np.concatenate([lca, lca]),
        )
        halves = rt.filter(halves, halves.col("lo") != halves.col("hi"))
        diff = depth[halves.col("lo")] - depth[halves.col("hi")]
        got = rt.lookup(
            Table(v=halves.col("lo"), d=diff - 1), ("v", "d"),
            paths, ("v", "d"), {"m": "cum"},
        )
        per_half = Table(eid=halves.col("eid"), pm=got.col("m"))
        if len(per_half):
            agg = rt.reduce_by_key(per_half, ("eid",), {"pm": ("pm", "max")})
            full = rt.lookup(
                Table(eid=eid), ("eid",), agg, ("eid",), {"pm": "pm"},
                default={"pm": -np.inf},
            ).col("pm")
        else:
            full = np.full(len(nu), -np.inf)
        bad = int(rt.scalar(
            Table(b=(nw < full).astype(np.int64)), "b", "sum"
        ))
        rt.release("naive_full_paths")
    return NaiveVerifyResult(
        is_mst=(bad == 0), pathmax=full, rounds=rt.rounds,
        peak_words=rt.tracker.peak_global_words,
    )
