"""The shared ``.npz``-plus-JSON-metadata persistence protocol.

Result objects and oracles all persist the same way: arrays stored
natively in one compressed ``.npz``, scalars/labels in a JSON header
embedded as a 0-d string array under ``META_KEY``. One implementation
here so the format cannot drift between consumers: plain ``open()``
(no implicit ``.npz`` suffixing by :func:`numpy.savez_compressed`),
``allow_pickle=False`` on read, ``None``-valued arrays skipped.

Two serving-layer extensions:

* ``save_npz(..., compressed=False)`` writes the members ZIP-stored
  (uncompressed). The bytes of each array then sit verbatim in the
  file, which enables
* ``load_npz(path, mmap_mode="r")`` — arrays come back as
  :class:`numpy.memmap` views straight into the file. ``np.load``
  silently ignores ``mmap_mode`` for ``.npz`` archives, so we locate
  each stored member ourselves (local header walk) and map its data
  region. N shard workers of one service process (or N processes on
  one box) then share a single page-cached copy of a saved oracle
  instead of each materialising all arrays. Compressed members cannot
  be mapped and fall back to an eager read per member.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["META_KEY", "save_npz", "load_npz", "file_digest"]

META_KEY = "__meta__"

#: Fixed part of a ZIP local file header (PK\x03\x04 ... extra-len).
_LOCAL_HEADER_FMT = "<4s5H3I2H"
_LOCAL_HEADER_SIZE = struct.calcsize(_LOCAL_HEADER_FMT)


def save_npz(path, arrays: Dict[str, Optional[np.ndarray]], meta: Dict,
             compressed: bool = True) -> None:
    payload = {k: np.asarray(v) for k, v in arrays.items() if v is not None}
    payload[META_KEY] = np.array(json.dumps(meta))
    save = np.savez_compressed if compressed else np.savez
    with open(path, "wb") as fh:
        save(fh, **payload)


def file_digest(path, algorithm: str = "sha256",
                chunk_size: int = 1 << 20) -> str:
    """Streaming content digest of ``path`` (hex).

    The address of a shipped snapshot: the router tier names oracle
    snapshot files by their digest and replicas verify the bytes they
    map against the digest the router advertised, so a half-written or
    superseded file can never be adopted as a generation.
    """
    h = hashlib.new(algorithm)
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def _member_data_offset(fh, info: zipfile.ZipInfo) -> int:
    """Absolute file offset of a member's raw bytes (after local header).

    The central directory's ``header_offset`` points at the *local*
    file header, whose name/extra lengths may differ from the central
    copy — so the local header is re-read, not trusted from ``info``.
    """
    fh.seek(info.header_offset)
    raw = fh.read(_LOCAL_HEADER_SIZE)
    fields = struct.unpack(_LOCAL_HEADER_FMT, raw)
    name_len, extra_len = fields[9], fields[10]
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _mmap_member(path, fh, info: zipfile.ZipInfo, mmap_mode: str):
    """Map one ZIP-stored ``.npy`` member as a :class:`numpy.memmap`."""
    base = _member_data_offset(fh, info)
    fh.seek(base)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    else:
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    data_offset = fh.tell()
    order = "F" if fortran else "C"
    if dtype.hasobject:  # pragma: no cover - we never write object arrays
        raise ValueError(f"cannot memory-map object array {info.filename!r}")
    return np.memmap(path, mode=mmap_mode, dtype=dtype, shape=shape,
                     order=order, offset=data_offset)


def load_npz(path, mmap_mode: Optional[str] = None) \
        -> Tuple[Dict[str, np.ndarray], Dict]:
    if mmap_mode is None:
        with np.load(path, allow_pickle=False) as z:
            meta = json.loads(str(z[META_KEY][()]))
            arrays = {k: z[k] for k in z.files if k != META_KEY}
        return arrays, meta

    arrays: Dict[str, np.ndarray] = {}
    meta: Dict = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
        for info in zf.infolist():
            name = info.filename[:-4] if info.filename.endswith(".npy") \
                else info.filename
            if name == META_KEY:
                with zf.open(info) as member:
                    meta = json.loads(
                        str(np.lib.format.read_array(member,
                                                     allow_pickle=False)[()])
                    )
            elif info.compress_type == zipfile.ZIP_STORED:
                arrays[name] = _mmap_member(path, fh, info, mmap_mode)
            else:  # compressed member: mapping impossible, read eagerly
                with zf.open(info) as member:
                    arrays[name] = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
    return arrays, meta
