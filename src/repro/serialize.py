"""The shared ``.npz``-plus-JSON-metadata persistence protocol.

Result objects and oracles all persist the same way: arrays stored
natively in one compressed ``.npz``, scalars/labels in a JSON header
embedded as a 0-d string array under ``META_KEY``. One implementation
here so the format cannot drift between consumers: plain ``open()``
(no implicit ``.npz`` suffixing by :func:`numpy.savez_compressed`),
``allow_pickle=False`` on read, ``None``-valued arrays skipped.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["META_KEY", "save_npz", "load_npz"]

META_KEY = "__meta__"


def save_npz(path, arrays: Dict[str, Optional[np.ndarray]], meta: Dict) -> None:
    payload = {k: np.asarray(v) for k, v in arrays.items() if v is not None}
    payload[META_KEY] = np.array(json.dumps(meta))
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)


def load_npz(path) -> Tuple[Dict[str, np.ndarray], Dict]:
    with np.load(path, allow_pickle=False) as z:
        meta = json.loads(str(z[META_KEY][()]))
        arrays = {k: z[k] for k in z.files if k != META_KEY}
    return arrays, meta
