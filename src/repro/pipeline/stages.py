"""The stage graph: 14 typed stages behind one ``Stage`` protocol.

Each stage declares its phase path (``substrate``/``core`` × name, used
for round attribution), the artifacts it consumes (``deps``) and the
pipeline parameters that enter its cache key (``params``). The bodies
are the exact computations the monolithic ``verify_mst`` /
``mst_sensitivity`` drivers used to run inline — moving them behind the
protocol is what lets :class:`~repro.pipeline.pipeline.Pipeline` cache,
replay and recombine them (Observation 4.2: the two theorems share
their machinery).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.adgraph import split_at_lca
from ..core.cluster_sens import run_cluster_sensitivity
from ..core.contraction_sens import SensContractionState, run_sensitivity_contraction
from ..core.hierarchy import build_hierarchy
from ..core.labeling import evaluate_pathmax, run_weight_labeling
from ..core.lca import all_edges_lca
from ..core.unwind import run_unwind
from ..graph.tree import RootedTree
from ..mpc.table import Table
from ..trees.connectivity import mpc_is_spanning_tree
from ..trees.doubling import diameter_estimate
from ..trees.euler import euler_intervals
from ..trees.rooting import root_tree
from .artifacts import (
    AdgraphArtifact,
    Artifact,
    ClusteringArtifact,
    DecideArtifact,
    DfsArtifact,
    DiameterArtifact,
    LabelsArtifact,
    LcaArtifact,
    PathmaxArtifact,
    RootingArtifact,
    SensClusterArtifact,
    SensContractArtifact,
    SensFinalizeArtifact,
    SensUnwindArtifact,
    ValidateArtifact,
    concat_mc,
)

__all__ = [
    "Stage",
    "StageContext",
    "VERIFICATION_STAGES",
    "SENSITIVITY_STAGES",
]


class StageContext:
    """Everything a stage may touch: graph, runtime, knobs, artifacts.

    The edge-array splits are row-local (free) and shared by several
    stages, so they are materialised once here.
    """

    def __init__(self, graph, rt, params, artifacts: Optional[Dict] = None):
        self.graph = graph
        self.rt = rt
        self.params = params
        self.artifacts: Dict[str, Artifact] = artifacts if artifacts is not None else {}
        self.tu, self.tv, self.tw = graph.tree_edges()
        self.nontree_index = np.flatnonzero(~graph.tree_mask)
        self.nu = graph.u[self.nontree_index]
        self.nv = graph.v[self.nontree_index]
        self.nw = graph.w[self.nontree_index]

    def art(self, name: str) -> Artifact:
        return self.artifacts[name]


class Stage:
    """One pipeline phase: named, typed inputs/outputs, cache-keyed."""

    #: stage name == artifact key == cost phase name
    name: str = ""
    #: top-level phase group ("substrate" = cited prior work, "core" = paper)
    group: str = "core"
    #: artifact keys this stage reads
    deps: Tuple[str, ...] = ()
    #: PipelineParams fields that enter this stage's cache key
    params: Tuple[str, ...] = ()
    #: graph-fingerprint scope for this stage's cache key: the
    #: narrowest :data:`~repro.pipeline.artifacts.FINGERPRINT_SCOPES`
    #: entry covering the graph data the body reads *directly*
    #: (dependence reaching it through an upstream artifact is carried
    #: by the Merkle-chained dep keys instead). Subgraph scopes hash
    #: edge subsequences, so e.g. a non-tree-only structural batch
    #: leaves every tree-scoped key valid. "full" is the always-safe
    #: default.
    weight_scope: str = "full"

    @property
    def phase(self) -> Tuple[str, str]:
        return (self.group, self.name)

    def run(self, ctx: StageContext) -> Artifact:
        """Execute inside the stage's cost phases; returns its artifact."""
        with ctx.rt.phase(self.group):
            with ctx.rt.phase(self.name):
                return self.compute(ctx)

    def compute(self, ctx: StageContext) -> Artifact:
        raise NotImplementedError

    def failure(self, artifact: Artifact) -> Optional[str]:
        """A reason string aborts the pipeline after this stage."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} deps={self.deps}>"


# -- substrate stages (cited prior work; DESIGN.md §3) ------------------------------


class ValidateStage(Stage):
    name = "validate"
    group = "substrate"
    weight_scope = "tree-structure"

    def compute(self, ctx):
        ok = mpc_is_spanning_tree(ctx.rt, ctx.graph.n, ctx.tu, ctx.tv)
        return ValidateArtifact(ok=bool(ok))

    def failure(self, artifact):
        return None if artifact.ok else "not-spanning-tree"


class RootingStage(Stage):
    name = "rooting"
    group = "substrate"
    deps = ("validate",)
    params = ("root", "oracle_labels")
    weight_scope = "tree"

    def compute(self, ctx):
        if ctx.params.oracle_labels:
            rooted = RootedTree.from_edges(
                ctx.graph.n, ctx.tu, ctx.tv, ctx.tw, root=ctx.params.root
            )
            parent, wpar = rooted.parent, rooted.weight
        else:
            parent, wpar = root_tree(
                ctx.rt, ctx.graph.n, ctx.tu, ctx.tv, ctx.tw,
                root=ctx.params.root,
            )
        return RootingArtifact(parent=parent, wpar=wpar)


class DfsStage(Stage):
    name = "dfs"
    group = "substrate"
    deps = ("rooting",)
    params = ("oracle_labels",)
    weight_scope = "none"

    def compute(self, ctx):
        rooting = ctx.art("rooting")
        if ctx.params.oracle_labels:
            rooted = RootedTree(parent=rooting.parent.copy(),
                                root=ctx.params.root,
                                weight=rooting.wpar)
            _, low, high = rooted.euler_intervals()
        else:
            _, low, high = euler_intervals(ctx.rt, rooting.parent,
                                           ctx.params.root)
        return DfsArtifact(low=low, high=high)


class DiameterStage(Stage):
    name = "diameter"
    group = "substrate"
    deps = ("rooting",)
    weight_scope = "none"

    def compute(self, ctx):
        d_hat, _depths = diameter_estimate(ctx.rt, ctx.art("rooting").parent,
                                           ctx.params.root)
        return DiameterArtifact(d_hat=int(d_hat))


# -- core verification stages (Theorem 3.1) -----------------------------------------


class ClusteringStage(Stage):
    name = "clustering"
    deps = ("rooting", "dfs", "diameter")
    params = ("coin_bias", "reduction_exponent")
    weight_scope = "none"

    def compute(self, ctx):
        rooting = ctx.art("rooting")
        dfs = ctx.art("dfs")
        hierarchy = build_hierarchy(
            ctx.rt, rooting.parent, rooting.wpar, ctx.params.root,
            dfs.low, dfs.high, ctx.art("diameter").d_hat,
            coin_bias=ctx.params.coin_bias,
            reduction_exponent=ctx.params.reduction_exponent,
        )
        return ClusteringArtifact(hierarchy=hierarchy)


class LcaStage(Stage):
    name = "lca"
    deps = ("clustering", "dfs", "diameter")
    weight_scope = "nontree-structure"

    def compute(self, ctx):
        dfs = ctx.art("dfs")
        lca = all_edges_lca(
            ctx.rt, ctx.art("clustering").hierarchy, dfs.low, dfs.high,
            ctx.nu, ctx.nv, ctx.art("diameter").d_hat,
        )
        return LcaArtifact(lca=lca)


class AdgraphStage(Stage):
    name = "adgraph"
    deps = ("lca",)
    weight_scope = "nontree"

    def compute(self, ctx):
        halves = split_at_lca(ctx.rt, ctx.nu, ctx.nv, ctx.nw,
                              ctx.art("lca").lca)
        return AdgraphArtifact(eid=halves.eid, lo=halves.lo, hi=halves.hi,
                               w=halves.w)


class LabelsStage(Stage):
    name = "labels"
    deps = ("clustering", "adgraph", "dfs")
    weight_scope = "none"

    def compute(self, ctx):
        dfs = ctx.art("dfs")
        labeled = run_weight_labeling(
            ctx.rt, ctx.art("clustering").hierarchy,
            ctx.art("adgraph").half_edges(), dfs.low, dfs.high,
        )
        return LabelsArtifact.from_labeled(labeled)


class PathmaxStage(Stage):
    name = "pathmax"
    deps = ("clustering", "labels", "adgraph")
    weight_scope = "none"

    def compute(self, ctx):
        labeled = ctx.art("labels").labeled(ctx.art("adgraph").half_edges())
        pm_half = evaluate_pathmax(ctx.rt, ctx.art("clustering").hierarchy,
                                   labeled)
        return PathmaxArtifact(pm_half=pm_half)


class DecideStage(Stage):
    name = "decide"
    deps = ("adgraph", "pathmax")
    weight_scope = "nontree"

    def compute(self, ctx):
        rt = ctx.rt
        halves = ctx.art("adgraph")
        pm_half = ctx.art("pathmax").pm_half
        if len(halves.eid) > 0:
            per_edge = rt.reduce_by_key(
                Table(eid=halves.eid, pm=pm_half), ("eid",),
                {"pm": ("pm", "max")},
            )
            got = rt.lookup(
                Table(eid=np.arange(len(ctx.nu), dtype=np.int64)), ("eid",),
                per_edge, ("eid",), {"pm": "pm"},
                default={"pm": -np.inf},
            )
            pathmax = got.col("pm")
        else:
            pathmax = np.full(len(ctx.nu), -np.inf, dtype=np.float64)
        bad = ctx.nw < pathmax
        n_bad = int(rt.scalar(Table(b=bad.astype(np.int64)), "b", "sum"))
        return DecideArtifact(pathmax=pathmax, bad=bad, n_bad=n_bad)


# -- core sensitivity stages (Theorem 4.1) ------------------------------------------


class SensContractStage(Stage):
    name = "sens-contract"
    deps = ("clustering", "adgraph", "dfs")
    weight_scope = "none"

    def compute(self, ctx):
        dfs = ctx.art("dfs")
        state = run_sensitivity_contraction(
            ctx.rt, ctx.art("clustering").hierarchy,
            ctx.art("adgraph").half_edges(), dfs.low, dfs.high,
        )
        return SensContractArtifact(
            edges=state.edges, clusters=state.clusters,
            notes_table=state.notes.table, notes_peak=state.notes.peak,
            mc1=concat_mc(state.mc_updates), leader=state.leader,
        )


class SensClusterStage(Stage):
    name = "sens-cluster"
    deps = ("clustering", "sens-contract")
    weight_scope = "none"

    def compute(self, ctx):
        contract = ctx.art("sens-contract")
        state = SensContractionState(
            edges=contract.edges, clusters=contract.clusters,
            notes=contract.notes(), mc_updates=[], leader=contract.leader,
        )
        mc2 = run_cluster_sensitivity(ctx.rt, ctx.art("clustering").hierarchy,
                                      state)
        return SensClusterArtifact(
            mc2=concat_mc(mc2), notes_table=state.notes.table,
            notes_peak=state.notes.peak,
        )


class SensUnwindStage(Stage):
    name = "sens-unwind"
    deps = ("clustering", "sens-cluster", "dfs")
    weight_scope = "none"

    def compute(self, ctx):
        dfs = ctx.art("dfs")
        notes = ctx.art("sens-cluster").notes()
        mc3 = run_unwind(ctx.rt, ctx.art("clustering").hierarchy, notes,
                         dfs.low, dfs.high)
        return SensUnwindArtifact(mc3=concat_mc(mc3), notes_peak=notes.peak)


class SensFinalizeStage(Stage):
    name = "sens-finalize"
    deps = ("sens-contract", "sens-cluster", "sens-unwind")
    weight_scope = "none"

    def compute(self, ctx):
        rt = ctx.rt
        updates = [
            t for t in (
                ctx.art("sens-contract").mc1,
                ctx.art("sens-cluster").mc2,
                ctx.art("sens-unwind").mc3,
            ) if len(t)
        ]
        n = ctx.graph.n
        if updates:
            allup = Table.concat([t.select(["key", "w"]) for t in updates])
            mins = rt.reduce_by_key(allup, ("key",), {"mc": ("w", "min")})
            got = rt.lookup(
                Table(v=np.arange(n, dtype=np.int64)), ("v",),
                mins, ("key",), {"mc": "mc"}, default={"mc": np.inf},
            )
            mc = got.col("mc")
        else:
            mc = np.full(n, np.inf, dtype=np.float64)
        return SensFinalizeArtifact(mc=mc)


#: Theorem 3.1 stage order (a topological order of the DAG).
VERIFICATION_STAGES: Tuple[Stage, ...] = (
    ValidateStage(), RootingStage(), DfsStage(), DiameterStage(),
    ClusteringStage(), LcaStage(), AdgraphStage(), LabelsStage(),
    PathmaxStage(), DecideStage(),
)

#: Theorem 4.1 = the full verification prefix + the four sens stages
#: (Observation 4.2: the machinery is shared, so the stages are too).
SENSITIVITY_STAGES: Tuple[Stage, ...] = VERIFICATION_STAGES + (
    SensContractStage(), SensClusterStage(), SensUnwindStage(),
    SensFinalizeStage(),
)
