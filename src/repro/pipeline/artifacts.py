"""Typed stage artifacts and the content-addressed :class:`ArtifactStore`.

Every pipeline stage produces exactly one artifact — a small dataclass
wrapping the arrays/objects the downstream stages consume, plus the
:class:`~repro.mpc.cost.CostDelta` the stage charged. Artifacts are
content-addressed by *graph fingerprint × stage-config hash × upstream
keys* (a Merkle chain: changing ``coin_bias`` invalidates clustering and
everything after it, but not the substrate prefix), and persist through
the shared :mod:`repro.serialize` npz protocol, so a store directory can
be handed to another process — batch workers warm-start from it.

Replaying a cached artifact re-charges its recorded rounds, which keeps
a warm :class:`~repro.mpc.cost.CostReport` bit-identical to a cold run.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Tuple, Type

import numpy as np

from ..core.adgraph import HalfEdges
from ..core.hierarchy import ClusterHierarchy, MergeLevel
from ..core.labeling import LabeledHalfEdges
from ..core.notes import NoteSet
from ..mpc.cost import CostDelta
from ..mpc.table import Table
from ..serialize import load_npz, save_npz

__all__ = [
    "Artifact",
    "ArtifactStore",
    "graph_fingerprint",
    "FINGERPRINT_SCOPES",
    "ARTIFACT_KINDS",
    "ValidateArtifact",
    "RootingArtifact",
    "DfsArtifact",
    "DiameterArtifact",
    "ClusteringArtifact",
    "LcaArtifact",
    "AdgraphArtifact",
    "LabelsArtifact",
    "PathmaxArtifact",
    "DecideArtifact",
    "SensContractArtifact",
    "SensClusterArtifact",
    "SensUnwindArtifact",
    "SensFinalizeArtifact",
]

#: Registry ``kind -> class`` used to rehydrate persisted artifacts.
ARTIFACT_KINDS: Dict[str, Type["Artifact"]] = {}


def register(cls: Type["Artifact"]) -> Type["Artifact"]:
    ARTIFACT_KINDS[cls.kind] = cls
    return cls


#: Fingerprint scopes, from graph-blind to weight-complete. A stage is
#: keyed by the narrowest scope covering what its body actually reads
#: (dep keys Merkle-chain the rest), so an update invalidates only the
#: stages whose scope intersects it — the incremental-rebuild lever the
#: service layer's write path and the streaming subsystem stand on.
#:
#: The subgraph-scoped entries hash *subsequences*: ``tree``-family
#: scopes see only the candidate-tree rows, ``nontree``-family scopes
#: only the non-tree rows. A structural batch that adds/removes/reprices
#: non-tree edges therefore leaves every tree-scoped fingerprint
#: untouched even though absolute edge-array positions shift.
FINGERPRINT_SCOPES = (
    "none",               # vertex count only
    "tree-structure",     # + candidate-tree endpoints
    "tree",               # + candidate-tree weights
    "nontree-structure",  # n + non-tree endpoints
    "nontree",            # + non-tree weights
    "topology",           # n + all endpoints + tree flags (legacy)
    "full",               # + all weights (always safe)
)


def graph_fingerprint(graph, scope: str = "full") -> str:
    """Content hash of an instance at the requested scope.

    ``none`` covers the vertex count only; the ``tree`` /
    ``nontree``-family scopes cover the respective edge *subsequence*
    (endpoints, then also weights); ``topology`` covers all endpoints
    plus tree flags and ``full`` adds every weight.
    """
    if scope not in FINGERPRINT_SCOPES:
        raise ValueError(f"unknown fingerprint scope {scope!r}")
    h = hashlib.sha256()
    h.update(scope.encode())
    h.update(str(int(graph.n)).encode())
    if scope in ("tree-structure", "tree"):
        sel = graph.tree_mask
        for arr in (graph.u[sel], graph.v[sel]):
            h.update(np.ascontiguousarray(arr).tobytes())
        if scope == "tree":
            h.update(np.ascontiguousarray(graph.w[sel]).tobytes())
    elif scope in ("nontree-structure", "nontree"):
        sel = ~graph.tree_mask
        for arr in (graph.u[sel], graph.v[sel]):
            h.update(np.ascontiguousarray(arr).tobytes())
        if scope == "nontree":
            h.update(np.ascontiguousarray(graph.w[sel]).tobytes())
    elif scope in ("topology", "full"):
        for arr in (graph.u, graph.v, graph.tree_mask):
            h.update(np.ascontiguousarray(arr).tobytes())
        if scope == "full":
            h.update(np.ascontiguousarray(graph.w).tobytes())
    return h.hexdigest()[:24]


# -- (de)serialisation helpers ------------------------------------------------------


def _pack_table(arrays: Dict, meta: Dict, prefix: str, table: Table) -> None:
    meta[f"{prefix}__cols"] = list(table.columns)
    for c in table.columns:
        arrays[f"{prefix}__{c}"] = table.col(c)


def _unpack_table(arrays: Dict, meta: Dict, prefix: str) -> Table:
    return Table({c: arrays[f"{prefix}__{c}"] for c in meta[f"{prefix}__cols"]})


MC_SCHEMA = {"key": np.int64, "w": np.float64}


def concat_mc(tables: List[Table]) -> Table:
    """Collapse a list of ``(key, w)`` mc-update tables into one."""
    keep = [t.select(["key", "w"]) for t in tables if len(t)]
    if not keep:
        return Table.empty(MC_SCHEMA)
    return Table.concat(keep)


class Artifact:
    """Base class: typed payload + the stage's recorded cost delta."""

    kind: ClassVar[str] = ""
    #: set by the pipeline right after the stage executes
    cost: Optional[CostDelta] = None

    def payload(self) -> Tuple[Dict, Dict]:
        """``(arrays, meta)`` for the npz protocol."""
        raise NotImplementedError

    @classmethod
    def from_payload(cls, arrays: Dict, meta: Dict) -> "Artifact":
        raise NotImplementedError

    # -- persistence (one .npz per artifact) ---------------------------------------

    def save(self, path: str) -> None:
        arrays, meta = self.payload()
        wrapped = {
            "artifact": self.kind,
            "cost": self.cost.to_dict() if self.cost is not None else None,
            "meta": meta,
        }
        # atomic write: concurrent batch workers may race on one key
        d = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
        try:
            os.close(fd)
            save_npz(tmp, arrays, wrapped)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> "Artifact":
        arrays, wrapped = load_npz(path)
        kind = wrapped.get("artifact")
        if kind not in ARTIFACT_KINDS:
            raise ValueError(f"{path!r} does not hold a pipeline artifact")
        art = ARTIFACT_KINDS[kind].from_payload(arrays, wrapped["meta"])
        if wrapped.get("cost") is not None:
            art.cost = CostDelta.from_dict(wrapped["cost"])
        return art


# -- verification-stage artifacts ---------------------------------------------------


@register
@dataclass
class ValidateArtifact(Artifact):
    """Remark 2.2 spanning-tree check verdict."""

    kind: ClassVar[str] = "validate"
    ok: bool = True

    def payload(self):
        return {}, {"ok": bool(self.ok)}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(ok=bool(meta["ok"]))


@register
@dataclass
class RootingArtifact(Artifact):
    """Per-vertex parent pointer and parent-edge weight."""

    kind: ClassVar[str] = "rooting"
    parent: np.ndarray = None
    wpar: np.ndarray = None

    def payload(self):
        return {"parent": self.parent, "wpar": self.wpar}, {}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(parent=arrays["parent"], wpar=arrays["wpar"])


@register
@dataclass
class DfsArtifact(Artifact):
    """Lemma 2.14 DFS interval labels."""

    kind: ClassVar[str] = "dfs"
    low: np.ndarray = None
    high: np.ndarray = None

    def payload(self):
        return {"low": self.low, "high": self.high}, {}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(low=arrays["low"], high=arrays["high"])


@register
@dataclass
class DiameterArtifact(Artifact):
    """Remark 2.3 2-approximate diameter estimate."""

    kind: ClassVar[str] = "diameter"
    d_hat: int = 0

    def payload(self):
        return {}, {"d_hat": int(self.d_hat)}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(d_hat=int(meta["d_hat"]))


_LEVEL_FIELDS = (
    ("junior", np.int64),
    ("parent_vertex", np.int64),
    ("senior", np.int64),
    ("cross_w", np.float64),
    ("junior_low", np.int64),
    ("junior_high", np.int64),
    ("junior_formed", np.int64),
    ("senior_prev_formed", np.int64),
)


@register
@dataclass
class ClusteringArtifact(Artifact):
    """The Lemma 2.8 / Corollary 3.6 cluster hierarchy."""

    kind: ClassVar[str] = "clustering"
    hierarchy: ClusterHierarchy = None

    def payload(self):
        h = self.hierarchy
        arrays = {
            "lv_level": np.asarray([lv.level for lv in h.levels], dtype=np.int64),
            "lv_sizes": np.asarray([len(lv) for lv in h.levels], dtype=np.int64),
            "final_leader": h.final_leader,
            "counts": np.asarray(h.counts, dtype=np.int64),
            "parent": h.parent,
            "wpar": h.wpar,
        }
        for name, dt in _LEVEL_FIELDS:
            parts = [getattr(lv, name) for lv in h.levels]
            arrays[f"lv_{name}"] = (
                np.concatenate(parts) if parts else np.empty(0, dtype=dt)
            )
        meta = {
            "n": int(h.n),
            "root": int(h.root),
            "target": int(h.target),
            "hit_target": bool(h.hit_target),
        }
        _pack_table(arrays, meta, "fc", h.final_clusters)
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta):
        sizes = arrays["lv_sizes"]
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        levels = []
        for i, lvl in enumerate(arrays["lv_level"]):
            lo, hi = offsets[i], offsets[i + 1]
            levels.append(MergeLevel(
                level=int(lvl),
                **{name: arrays[f"lv_{name}"][lo:hi] for name, _ in _LEVEL_FIELDS},
            ))
        h = ClusterHierarchy(
            n=int(meta["n"]),
            root=int(meta["root"]),
            levels=levels,
            final_leader=arrays["final_leader"],
            final_clusters=_unpack_table(arrays, meta, "fc"),
            counts=arrays["counts"].tolist(),
            target=int(meta["target"]),
            hit_target=bool(meta["hit_target"]),
            parent=arrays["parent"],
            wpar=arrays["wpar"],
        )
        return cls(hierarchy=h)


@register
@dataclass
class LcaArtifact(Artifact):
    """Theorem 2.15 all-edges LCA answers (per non-tree edge)."""

    kind: ClassVar[str] = "lca"
    lca: np.ndarray = None

    def payload(self):
        return {"lca": self.lca}, {}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(lca=arrays["lca"])


@register
@dataclass
class AdgraphArtifact(Artifact):
    """Corollary 2.19 ancestor–descendant half-edges."""

    kind: ClassVar[str] = "adgraph"
    eid: np.ndarray = None
    lo: np.ndarray = None
    hi: np.ndarray = None
    w: np.ndarray = None

    def half_edges(self) -> HalfEdges:
        return HalfEdges(eid=self.eid, lo=self.lo, hi=self.hi, w=self.w)

    def payload(self):
        return {"eid": self.eid, "lo": self.lo, "hi": self.hi, "w": self.w}, {}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(eid=arrays["eid"], lo=arrays["lo"], hi=arrays["hi"],
                   w=arrays["w"])


@register
@dataclass
class LabelsArtifact(Artifact):
    """Lemma 3.5 weight-labelling replay outputs (``(θ, ω)`` state)."""

    kind: ClassVar[str] = "labels"
    omega_lo: np.ndarray = None
    omega_hi: np.ndarray = None
    cl_lo: np.ndarray = None
    cl_hi: np.ndarray = None
    internal: np.ndarray = None
    clusters: Table = None

    @classmethod
    def from_labeled(cls, labeled: LabeledHalfEdges) -> "LabelsArtifact":
        return cls(
            omega_lo=labeled.omega_lo, omega_hi=labeled.omega_hi,
            cl_lo=labeled.cl_lo, cl_hi=labeled.cl_hi,
            internal=labeled.internal, clusters=labeled.clusters,
        )

    def labeled(self, half: HalfEdges) -> LabeledHalfEdges:
        return LabeledHalfEdges(
            half=half, omega_lo=self.omega_lo, omega_hi=self.omega_hi,
            cl_lo=self.cl_lo, cl_hi=self.cl_hi, internal=self.internal,
            clusters=self.clusters,
        )

    def payload(self):
        arrays = {
            "omega_lo": self.omega_lo, "omega_hi": self.omega_hi,
            "cl_lo": self.cl_lo, "cl_hi": self.cl_hi,
            "internal": self.internal,
        }
        meta: Dict = {}
        _pack_table(arrays, meta, "cl", self.clusters)
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(
            omega_lo=arrays["omega_lo"], omega_hi=arrays["omega_hi"],
            cl_lo=arrays["cl_lo"], cl_hi=arrays["cl_hi"],
            internal=arrays["internal"],
            clusters=_unpack_table(arrays, meta, "cl"),
        )


@register
@dataclass
class PathmaxArtifact(Artifact):
    """Observation 3.3 per-half-edge tree-path maxima."""

    kind: ClassVar[str] = "pathmax"
    pm_half: np.ndarray = None

    def payload(self):
        return {"pm_half": self.pm_half}, {}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(pm_half=arrays["pm_half"])


@register
@dataclass
class DecideArtifact(Artifact):
    """Per-non-tree-edge path maxima and the cycle-rule verdict."""

    kind: ClassVar[str] = "decide"
    pathmax: np.ndarray = None
    bad: np.ndarray = None
    n_bad: int = 0

    def payload(self):
        return ({"pathmax": self.pathmax, "bad": self.bad},
                {"n_bad": int(self.n_bad)})

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(pathmax=arrays["pathmax"], bad=arrays["bad"],
                   n_bad=int(meta["n_bad"]))


# -- sensitivity-stage artifacts ----------------------------------------------------


@register
@dataclass
class SensContractArtifact(Artifact):
    """Algorithm 5 output: truncated edges, notes, first mc bounds."""

    kind: ClassVar[str] = "sens-contract"
    edges: Table = None
    clusters: Table = None
    notes_table: Table = None
    notes_peak: int = 0
    mc1: Table = None
    leader: np.ndarray = None

    def notes(self) -> NoteSet:
        return NoteSet(table=self.notes_table, peak=self.notes_peak)

    def payload(self):
        arrays = {"leader": self.leader}
        meta: Dict = {"notes_peak": int(self.notes_peak)}
        _pack_table(arrays, meta, "edges", self.edges)
        _pack_table(arrays, meta, "clusters", self.clusters)
        _pack_table(arrays, meta, "notes", self.notes_table)
        _pack_table(arrays, meta, "mc1", self.mc1)
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(
            edges=_unpack_table(arrays, meta, "edges"),
            clusters=_unpack_table(arrays, meta, "clusters"),
            notes_table=_unpack_table(arrays, meta, "notes"),
            notes_peak=int(meta["notes_peak"]),
            mc1=_unpack_table(arrays, meta, "mc1"),
            leader=arrays["leader"],
        )


@register
@dataclass
class SensClusterArtifact(Artifact):
    """Algorithm 6 output: inter-cluster mc bounds + updated notes."""

    kind: ClassVar[str] = "sens-cluster"
    mc2: Table = None
    notes_table: Table = None
    notes_peak: int = 0

    def notes(self) -> NoteSet:
        return NoteSet(table=self.notes_table, peak=self.notes_peak)

    def payload(self):
        arrays: Dict = {}
        meta: Dict = {"notes_peak": int(self.notes_peak)}
        _pack_table(arrays, meta, "mc2", self.mc2)
        _pack_table(arrays, meta, "notes", self.notes_table)
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(
            mc2=_unpack_table(arrays, meta, "mc2"),
            notes_table=_unpack_table(arrays, meta, "notes"),
            notes_peak=int(meta["notes_peak"]),
        )


@register
@dataclass
class SensUnwindArtifact(Artifact):
    """Algorithm 7 output: intra-cluster mc bounds + final notes peak."""

    kind: ClassVar[str] = "sens-unwind"
    mc3: Table = None
    notes_peak: int = 0

    def payload(self):
        arrays: Dict = {}
        meta: Dict = {"notes_peak": int(self.notes_peak)}
        _pack_table(arrays, meta, "mc3", self.mc3)
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(mc3=_unpack_table(arrays, meta, "mc3"),
                   notes_peak=int(meta["notes_peak"]))


@register
@dataclass
class SensFinalizeArtifact(Artifact):
    """Per-vertex minimum covering weight ``mc`` (Definition 2.1)."""

    kind: ClassVar[str] = "sens-finalize"
    mc: np.ndarray = None

    def payload(self):
        return {"mc": self.mc}, {}

    @classmethod
    def from_payload(cls, arrays, meta):
        return cls(mc=arrays["mc"])


# -- the store ----------------------------------------------------------------------


class ArtifactStore:
    """Content-addressed artifact cache (in-memory, optionally on disk).

    ``cache_dir`` makes the store persistent and shareable: every ``put``
    also writes ``<key>.npz`` (atomically, so concurrent batch workers
    may race on a key), and ``get`` falls back to disk on a memory miss.
    Keys are computed by the pipeline (stage name + content digest), so
    a store can safely hold artifacts of many graphs, engines and knob
    settings side by side.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self._mem: Dict[str, Artifact] = {}
        self.cache_dir = cache_dir
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._mem)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.npz")

    def contains(self, key: str) -> bool:
        """Availability probe that does not touch the hit/miss counters."""
        if key in self._mem:
            return True
        return self.cache_dir is not None and os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[Artifact]:
        art = self._mem.get(key)
        if art is not None:
            self.hits += 1
            return art
        if self.cache_dir is not None:
            path = self._path(key)
            if os.path.exists(path):
                art = Artifact.load(path)
                self._mem[key] = art
                self.hits += 1
                self.disk_hits += 1
                return art
        self.misses += 1
        return None

    def put(self, key: str, artifact: Artifact) -> None:
        self._mem[key] = artifact
        self.stores += 1
        if self.cache_dir is not None:
            artifact.save(self._path(key))

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._mem), "hits": self.hits,
            "misses": self.misses, "disk_hits": self.disk_hits,
            "stores": self.stores,
        }
