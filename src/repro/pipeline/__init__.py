"""repro.pipeline — staged pipeline architecture with typed artifacts.

The Theorem 3.1 / 4.1 drivers are composed from 14 explicit stages
(DESIGN.md §4): each stage declares its inputs, outputs and cache-key
parameters, produces a typed artifact, and records the MPC rounds it
charged. An :class:`ArtifactStore` makes stage outputs content-addressed
and persistable, which gives every consumer (oracle, batch, CLI,
benchmarks) warm-start: shared prefixes run once, and replayed stages
re-charge their recorded rounds so warm and cold cost reports are
bit-identical.

Typical use::

    from repro.pipeline import ArtifactStore, run_verification, run_sensitivity

    store = ArtifactStore(cache_dir="/tmp/mst-cache")
    ver, _ = run_verification(graph, store=store)       # cold
    sens, run = run_sensitivity(graph, store=store)     # substrate+core replayed
"""

from .artifacts import (
    ARTIFACT_KINDS,
    AdgraphArtifact,
    Artifact,
    ArtifactStore,
    ClusteringArtifact,
    DecideArtifact,
    DfsArtifact,
    DiameterArtifact,
    LabelsArtifact,
    LcaArtifact,
    PathmaxArtifact,
    RootingArtifact,
    SensClusterArtifact,
    SensContractArtifact,
    SensFinalizeArtifact,
    SensUnwindArtifact,
    ValidateArtifact,
    graph_fingerprint,
)
from .pipeline import (
    Pipeline,
    PipelineParams,
    PipelineRun,
    PlanEntry,
    run_sensitivity,
    run_verification,
    sensitivity_pipeline,
    stage_key,
    verification_pipeline,
)
from .stages import SENSITIVITY_STAGES, VERIFICATION_STAGES, Stage, StageContext

__all__ = [
    "Artifact",
    "ArtifactStore",
    "ARTIFACT_KINDS",
    "graph_fingerprint",
    "Stage",
    "StageContext",
    "VERIFICATION_STAGES",
    "SENSITIVITY_STAGES",
    "Pipeline",
    "PipelineParams",
    "PipelineRun",
    "PlanEntry",
    "stage_key",
    "verification_pipeline",
    "sensitivity_pipeline",
    "run_verification",
    "run_sensitivity",
]
