"""Composing stages into cacheable pipelines with warm-start.

A :class:`Pipeline` executes a stage tuple in topological order on one
runtime. For every stage it derives a content-addressed cache key
(graph fingerprint × engine/runtime config × the stage's declared knobs
× the keys of its dependencies — a Merkle chain), consults the optional
:class:`~repro.pipeline.artifacts.ArtifactStore`, and either *replays*
the cached artifact's recorded :class:`~repro.mpc.cost.CostDelta` (so a
warm run's :class:`~repro.mpc.cost.CostReport` is bit-identical to a
cold one) or executes the stage and records its delta.

``run_verification`` / ``run_sensitivity`` assemble the classic result
objects; ``verify_mst`` and ``mst_sensitivity`` in :mod:`repro.core`
are thin wrappers over them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.results import SensitivityResult, VerificationResult
from ..core.verification import distributed_hint
from ..errors import ValidationError
from ..mpc import MPCConfig, make_runtime
from ..mpc.runtime import Runtime
from .artifacts import Artifact, ArtifactStore, graph_fingerprint
from .stages import (
    SENSITIVITY_STAGES,
    Stage,
    StageContext,
    VERIFICATION_STAGES,
)

__all__ = [
    "PipelineParams",
    "Pipeline",
    "PipelineRun",
    "graph_fingerprints",
    "verification_pipeline",
    "sensitivity_pipeline",
    "run_verification",
    "run_sensitivity",
]

#: Runtime/engine facts folded into *every* stage key: they change what
#: a stage charges (and, for the distributed engine, how it transports).
#: Physical-only knobs (``planner``, ``executor*``) are deliberately
#: absent — they cannot change a stage's outputs or its CostReport, so
#: cached results stay valid across them.
GLOBAL_KEY_FIELDS = (
    "engine", "cost_mode", "delta", "seed",
    "capacity_constant", "min_machine_words", "global_slack",
)


@dataclass(frozen=True)
class PipelineParams:
    """Every knob that can change a stage's output or its charged cost."""

    engine: str = "local"
    root: int = 0
    oracle_labels: bool = False
    coin_bias: float = 0.5
    reduction_exponent: float = 1.0
    # engine/runtime configuration (copied from the runtime's MPCConfig)
    cost_mode: str = "unit"
    delta: float = 0.35
    seed: int = 0x5EED
    capacity_constant: float = 4.0
    min_machine_words: int = 256
    global_slack: float = 4.0

    @classmethod
    def capture(cls, rt: Runtime, *, root: int = 0, oracle_labels: bool = False,
                coin_bias: float = 0.5, reduction_exponent: float = 1.0,
                engine: Optional[str] = None) -> "PipelineParams":
        """Derive params from a live runtime (its config is authoritative)."""
        cfg = rt.config
        if engine is None:
            engine = type(rt).__name__.removesuffix("Runtime").lower()
        return cls(
            engine=engine, root=root, oracle_labels=oracle_labels,
            coin_bias=coin_bias, reduction_exponent=reduction_exponent,
            cost_mode=cfg.cost_mode, delta=cfg.delta, seed=cfg.seed,
            capacity_constant=cfg.capacity_constant,
            min_machine_words=cfg.min_machine_words,
            global_slack=cfg.global_slack,
        )


def graph_fingerprints(graph) -> Dict[str, str]:
    """Every scope fingerprint of one instance, computed once.

    Stages are keyed by the scope they declare (``Stage.weight_scope``),
    so a change re-fingerprints just the stages whose scope sees it:
    re-pricing a non-tree edge leaves every tree-scoped key valid and
    the whole validate→lca prefix replays from cache, and — because
    subgraph scopes hash edge *subsequences* — a structural batch that
    only adds/removes non-tree edges still replays the tree-side
    substrate (rooting, dfs, diameter, clustering). This is the lever
    the service layer's incremental rebuild and the streaming
    subsystem's scoped replays stand on.
    """
    from .artifacts import FINGERPRINT_SCOPES

    return {s: graph_fingerprint(graph, s) for s in FINGERPRINT_SCOPES}


def stage_key(stage: Stage, graph_fps: Dict[str, str],
              params: PipelineParams, dep_keys: Dict[str, str]) -> str:
    """Content address of one stage invocation (Merkle-chained).

    ``graph_fps`` maps fingerprint scope → digest (see
    :func:`graph_fingerprints`); the stage picks its declared scope.
    Weight dependence that reaches a stage through an upstream artifact
    is covered by the chained dep keys, so narrow scopes stay sound.
    """
    payload = {
        "stage": stage.name,
        "graph": graph_fps[stage.weight_scope],
        "globals": {k: getattr(params, k) for k in GLOBAL_KEY_FIELDS},
        "params": {k: getattr(params, k) for k in stage.params},
        "deps": [dep_keys[d] for d in stage.deps],
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return f"{stage.name}-{digest[:20]}"


@dataclass
class PipelineRun:
    """Outcome of one :meth:`Pipeline.run`: artifacts, keys, cache trace."""

    artifacts: Dict[str, Artifact] = field(default_factory=dict)
    keys: Dict[str, str] = field(default_factory=dict)
    failed_stage: Optional[str] = None
    failure_reason: Optional[str] = None
    cached_stages: List[str] = field(default_factory=list)
    executed_stages: List[str] = field(default_factory=list)
    rt: Optional[Runtime] = None

    @property
    def ok(self) -> bool:
        return self.failed_stage is None


@dataclass(frozen=True)
class PlanEntry:
    """One row of :meth:`Pipeline.plan` — what would run, from where."""

    name: str
    group: str
    deps: Tuple[str, ...]
    params: Tuple[str, ...]
    key: Optional[str] = None
    cached: Optional[bool] = None


class Pipeline:
    """An explicit DAG of stages executed (or replayed) in topo order."""

    def __init__(self, stages: Tuple[Stage, ...]):
        self.stages = tuple(stages)
        names = set()
        for s in self.stages:
            missing = [d for d in s.deps if d not in names]
            if missing:
                raise ValidationError(
                    f"stage {s.name!r} depends on {missing} before they run"
                )
            names.add(s.name)

    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]

    def plan(self, graph=None, params: Optional[PipelineParams] = None,
             store: Optional[ArtifactStore] = None) -> List[PlanEntry]:
        """The stage schedule; with a graph, also keys and cache state."""
        entries: List[PlanEntry] = []
        keys: Dict[str, str] = {}
        gfp = graph_fingerprints(graph) if graph is not None else None
        for s in self.stages:
            key = cached = None
            if gfp is not None:
                key = stage_key(s, gfp, params or PipelineParams(), keys)
                keys[s.name] = key
                if store is not None:
                    cached = store.contains(key)
            entries.append(PlanEntry(
                name=s.name, group=s.group, deps=s.deps, params=s.params,
                key=key, cached=cached,
            ))
        return entries

    def run(self, graph, params: PipelineParams, rt: Runtime,
            store: Optional[ArtifactStore] = None,
            resume: Optional[PipelineRun] = None) -> PipelineRun:
        """Execute on ``rt``; cached stages replay their charged rounds.

        ``resume`` continues a run made earlier *on the same runtime*
        (e.g. sensitivity after verification): its stages are adopted
        as-is, without re-charging — their rounds are already on ``rt``.
        """
        out = PipelineRun(rt=rt)
        if resume is not None:
            out.artifacts.update(resume.artifacts)
            out.keys.update(resume.keys)
            out.cached_stages.extend(resume.cached_stages)
            out.executed_stages.extend(resume.executed_stages)
        ctx = StageContext(graph, rt, params, out.artifacts)
        gfp = graph_fingerprints(graph)
        for stage in self.stages:
            if stage.name in out.artifacts:
                continue
            key = stage_key(stage, gfp, params, out.keys)
            out.keys[stage.name] = key
            artifact = store.get(key) if store is not None else None
            if artifact is not None:
                rt.tracker.replay(artifact.cost)
                out.cached_stages.append(stage.name)
            else:
                mark = rt.tracker.mark()
                artifact = stage.run(ctx)
                # stage boundaries are plan flush points: deferred nodes
                # recorded by this stage execute before its cost delta is
                # cut, so the replayable CostDelta (charged at logical
                # record time either way) and the artifact's arrays are
                # both complete here — warm replays stay bit-identical
                rt.flush_plan()
                artifact.cost = rt.tracker.delta_since(mark)
                if store is not None:
                    store.put(key, artifact)
                out.executed_stages.append(stage.name)
            out.artifacts[stage.name] = artifact
            reason = stage.failure(artifact)
            if reason is not None:
                out.failed_stage = stage.name
                out.failure_reason = reason
                return out
        return out


_VERIFICATION = Pipeline(VERIFICATION_STAGES)
_SENSITIVITY = Pipeline(SENSITIVITY_STAGES)


def verification_pipeline() -> Pipeline:
    """The Theorem 3.1 stage DAG (validate → … → decide)."""
    return _VERIFICATION


def sensitivity_pipeline() -> Pipeline:
    """The Theorem 4.1 stage DAG (verification + the four sens stages)."""
    return _SENSITIVITY


# -- result assembly ----------------------------------------------------------------


def _make_rt(graph, engine: str, config: Optional[MPCConfig],
             runtime: Optional[Runtime]) -> Runtime:
    if runtime is not None:
        return runtime
    return make_runtime(engine, config,
                        total_words_hint=distributed_hint(graph))


def assemble_verification(graph, rt: Runtime, run: PipelineRun,
                          nontree_index: np.ndarray) -> VerificationResult:
    """Fold a pipeline run into the classic result object."""
    if not run.ok:
        return VerificationResult(
            is_mst=False, reason=run.failure_reason, n_violations=0,
            violating_edges=np.empty(0, dtype=np.int64),
            nontree_index=nontree_index, pathmax=None,
            diameter_estimate=0, rounds=rt.rounds, report=rt.report(),
            cluster_counts=[], failed_stage=run.failed_stage,
        )
    decide = run.artifacts["decide"]
    hierarchy = run.artifacts["clustering"].hierarchy
    return VerificationResult(
        is_mst=(decide.n_bad == 0),
        reason="ok" if decide.n_bad == 0 else "cheaper-nontree-edge",
        n_violations=decide.n_bad,
        violating_edges=nontree_index[decide.bad],
        nontree_index=nontree_index,
        pathmax=decide.pathmax,
        diameter_estimate=run.artifacts["diameter"].d_hat,
        rounds=rt.rounds,
        report=rt.report(),
        cluster_counts=list(hierarchy.counts),
    )


def assemble_sensitivity(graph, rt: Runtime, run: PipelineRun,
                         ver: VerificationResult) -> SensitivityResult:
    """Per-input-edge sensitivities from the finalize artifact (free)."""
    parent = run.artifacts["rooting"].parent
    mc = run.artifacts["sens-finalize"].mc
    tree_index = np.flatnonzero(graph.tree_mask)
    nontree_index = ver.nontree_index
    tu = graph.u[tree_index]
    tv = graph.v[tree_index]
    tw = graph.w[tree_index]
    child = np.where(parent[tu] == tv, tu, tv)
    sens = np.empty(graph.m, dtype=np.float64)
    sens[tree_index] = mc[child] - tw
    sens[nontree_index] = graph.w[nontree_index] - ver.pathmax
    return SensitivityResult(
        sensitivity=sens,
        mc=mc,
        tree_index=tree_index,
        nontree_index=nontree_index,
        diameter_estimate=ver.diameter_estimate,
        rounds=rt.rounds,
        report=rt.report(),
        notes_peak=run.artifacts["sens-unwind"].notes_peak,
        pathmax=ver.pathmax,
        parent=parent,
        root=_root_of(run),
    )


def _root_of(run: PipelineRun) -> int:
    # the rooting artifact satisfies parent[root] == root
    parent = run.artifacts["rooting"].parent
    return int(np.flatnonzero(parent == np.arange(len(parent)))[0])


# -- public entry points ------------------------------------------------------------


def run_verification(
    graph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    root: int = 0,
    oracle_labels: bool = False,
    runtime: Optional[Runtime] = None,
    reduction_exponent: float = 1.0,
    coin_bias: float = 0.5,
    store: Optional[ArtifactStore] = None,
) -> Tuple[VerificationResult, PipelineRun]:
    """Run Theorem 3.1 as a staged pipeline; returns (result, run)."""
    rt = _make_rt(graph, engine, config, runtime)
    params = PipelineParams.capture(
        rt, root=root, oracle_labels=oracle_labels, coin_bias=coin_bias,
        reduction_exponent=reduction_exponent,
        engine=engine if runtime is None else None,
    )
    run = _VERIFICATION.run(graph, params, rt, store=store)
    nontree_index = np.flatnonzero(~graph.tree_mask)
    return assemble_verification(graph, rt, run, nontree_index), run


def run_sensitivity(
    graph,
    engine: str = "local",
    config: Optional[MPCConfig] = None,
    root: int = 0,
    oracle_labels: bool = False,
    runtime: Optional[Runtime] = None,
    require_mst: bool = True,
    reduction_exponent: float = 1.0,
    coin_bias: float = 0.5,
    store: Optional[ArtifactStore] = None,
) -> Tuple[SensitivityResult, PipelineRun]:
    """Run Theorem 4.1 as a staged pipeline; returns (result, run).

    Raises :class:`~repro.errors.ValidationError` if the flagged tree is
    not a spanning tree, or (``require_mst=True``) not an MST.
    """
    rt = _make_rt(graph, engine, config, runtime)
    params = PipelineParams.capture(
        rt, root=root, oracle_labels=oracle_labels, coin_bias=coin_bias,
        reduction_exponent=reduction_exponent,
        engine=engine if runtime is None else None,
    )
    run = _VERIFICATION.run(graph, params, rt, store=store)
    nontree_index = np.flatnonzero(~graph.tree_mask)
    ver = assemble_verification(graph, rt, run, nontree_index)
    if ver.failed_stage is not None:
        raise ValidationError(
            f"input tree is not a spanning tree ({ver.reason})"
        )
    if require_mst and not ver.is_mst:
        raise ValidationError(
            f"sensitivity is defined for MSTs; verification failed "
            f"({ver.n_violations} violating edges)"
        )
    run = _SENSITIVITY.run(graph, params, rt, store=store, resume=run)
    return assemble_sensitivity(graph, rt, run, ver), run
