"""Batched multi-instance execution of the verify/sensitivity pipelines.

One :class:`BatchRunner` call fans a list of :class:`JobSpec` out over a
``multiprocessing`` pool — every job builds its own seeded instance,
runs the requested pipeline, and sends back a flat, picklable
:class:`JobResult` carrying the cost accounting. Sensitivity jobs can
additionally persist a ready-to-serve
:class:`~repro.oracle.SensitivityOracle` to disk, so a later process
answers weight-update queries without touching the MPC substrate.

The ``python -m repro batch`` subcommand wraps this module; library use::

    from repro.batch import BatchRunner, make_workload

    jobs = make_workload(count=16, n=300, base_seed=7)
    results = BatchRunner(processes=4).run(jobs)
    headers, rows = aggregate(results)
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .analysis.tables import aggregate_records
from .errors import ValidationError
from .graph.generators import TREE_SHAPES, known_mst_instance, perturb_break_mst
from .graph.graph import WeightedGraph
from .mpc import MPCConfig

__all__ = [
    "JobSpec",
    "JobResult",
    "BatchRunner",
    "make_workload",
    "aggregate",
    "JOB_KINDS",
]

JOB_KINDS = ("verify", "sensitivity")


@dataclass(frozen=True)
class JobSpec:
    """One seeded pipeline invocation (instance recipe + engine choice)."""

    kind: str = "verify"           # "verify" | "sensitivity"
    shape: str = "random"          # one of TREE_SHAPES
    n: int = 200
    extra_m: Optional[int] = None  # non-tree edges (default 2n)
    seed: int = 0
    break_mst: bool = False        # perturb one non-tree edge (verify only)
    engine: str = "local"          # "local" | "distributed"
    mode: str = "mst"              # instance generator mode

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValidationError(f"unknown job kind {self.kind!r}")
        if self.shape not in TREE_SHAPES:
            raise ValidationError(f"unknown tree shape {self.shape!r}")
        if self.kind == "sensitivity" and self.break_mst:
            raise ValidationError(
                "sensitivity jobs need an MST instance (break_mst=False)"
            )

    def build(self) -> WeightedGraph:
        """Materialise the (deterministic) instance this spec describes."""
        extra = self.extra_m if self.extra_m is not None else 2 * self.n
        g, _ = known_mst_instance(self.shape, self.n, extra_m=extra,
                                  rng=self.seed, mode=self.mode)
        if self.break_mst:
            g = perturb_break_mst(g, rng=self.seed + 1)
        return g

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "JobSpec":
        return cls(**d)


@dataclass
class JobResult:
    """Flat per-job outcome — every field is JSON/CSV-friendly."""

    job_id: int
    kind: str
    shape: str
    n: int
    m: int
    seed: int
    engine: str
    break_mst: bool
    ok: bool
    #: ``"ok"`` | ``"error"`` (the job raised; ``error``/``traceback``
    #: carry the details) | ``"crashed"`` (the worker process died —
    #: synthesized by the parent, the job never reported back)
    status: str = "ok"
    error: Optional[str] = None
    traceback: Optional[str] = None
    is_mst: Optional[bool] = None
    n_violations: Optional[int] = None
    rounds: Optional[int] = None
    core_rounds: Optional[int] = None
    substrate_rounds: Optional[int] = None
    peak_words: Optional[int] = None
    diameter_estimate: Optional[int] = None
    bridges: Optional[int] = None        # sensitivity jobs
    min_slack: Optional[float] = None    # sensitivity jobs
    oracle_path: Optional[str] = None
    cache_hits: Optional[int] = None     # stage artifacts replayed (cache_dir)
    wall_s: float = 0.0

    def as_record(self) -> Dict:
        return asdict(self)


#: Column order for per-job CSV/table emission.
RECORD_FIELDS = [f for f in JobResult.__dataclass_fields__]


def _execute_job(payload: Tuple[int, JobSpec, Optional[MPCConfig],
                                Optional[str], Optional[str]]) -> JobResult:
    """Pool worker: build the instance, run the pipeline, flatten the result."""
    job_id, spec, config, persist_dir, cache_dir = payload
    t0 = time.perf_counter()
    out = JobResult(
        job_id=job_id, kind=spec.kind, shape=spec.shape, n=spec.n, m=0,
        seed=spec.seed, engine=spec.engine, break_mst=spec.break_mst, ok=False,
    )
    store = None
    try:
        if cache_dir is not None:
            from .pipeline import ArtifactStore

            store = ArtifactStore(cache_dir=cache_dir)
        graph = spec.build()
        out.m = graph.m
        if spec.kind == "verify":
            from .core.verification import verify_mst

            r = verify_mst(graph, engine=spec.engine, config=config,
                           store=store)
            out.is_mst = r.is_mst
            out.n_violations = r.n_violations
        else:
            from .core.sensitivity import mst_sensitivity
            from .oracle import SensitivityOracle

            r = mst_sensitivity(graph, engine=spec.engine, config=config,
                                store=store)
            tree_sens = r.sensitivity[r.tree_index]
            finite = np.isfinite(tree_sens)
            out.bridges = int((~finite).sum())
            out.min_slack = float(tree_sens[finite].min()) if finite.any() else None
            if persist_dir is not None:
                oracle = SensitivityOracle.from_result(graph, r)
                path = os.path.join(persist_dir, f"oracle_{job_id:04d}.npz")
                oracle.save(path)
                out.oracle_path = path
        out.rounds = r.rounds
        out.core_rounds = r.core_rounds
        out.substrate_rounds = r.substrate_rounds
        out.peak_words = r.report.peak_global_words
        out.diameter_estimate = r.diameter_estimate
        out.ok = True
    except Exception as exc:  # noqa: BLE001 - report, don't kill the pool
        out.status = "error"
        out.error = f"{type(exc).__name__}: {exc}"
        out.traceback = _traceback.format_exc()
    if store is not None:
        out.cache_hits = store.hits
    out.wall_s = round(time.perf_counter() - t0, 4)
    return out


class BatchRunner:
    """Execute many jobs against a shared :class:`MPCConfig`.

    ``processes=1`` runs inline (no pool — handy under debuggers and in
    tests); otherwise jobs run on the shared fault-isolated
    :class:`~repro.mpc.parallel.WorkerPool` (the same pool the process
    executor uses, started from an explicit forkserver/spawn context —
    never implicit ``fork``, which would snapshot live service threads
    and event loops) and results come back in submission order
    regardless of completion order. Per-job failures are *contained*:
    a raising job returns a ``status="error"`` result with its
    traceback, a worker crash returns ``status="crashed"``, and every
    other job's result is delivered normally.

    ``cache_dir`` enables warm-starting: every worker reads/writes a
    persistent :class:`~repro.pipeline.ArtifactStore` there, so jobs
    that share a graph (e.g. a verify + sensitivity pair, or an
    ablation sweep varying only the clustering knobs) run their common
    stage prefix once and replay it afterwards — results and charged
    rounds stay bit-identical to cold runs. With a pool, sharing is
    best-effort (concurrent jobs may both run a prefix cold); inline
    execution (``processes=1``) reuses deterministically.
    """

    def __init__(self, config: Optional[MPCConfig] = None,
                 processes: Optional[int] = None,
                 persist_dir: Optional[str] = None,
                 cache_dir: Optional[str] = None):
        self.config = config
        self.processes = processes
        self.persist_dir = persist_dir
        self.cache_dir = cache_dir

    def run(self, jobs: Sequence[JobSpec]) -> List[JobResult]:
        if self.persist_dir is not None:
            os.makedirs(self.persist_dir, exist_ok=True)
        payloads = [(i, spec, self.config, self.persist_dir, self.cache_dir)
                    for i, spec in enumerate(jobs)]
        procs = self.processes or min(len(payloads), os.cpu_count() or 1)
        if procs <= 1 or len(payloads) <= 1:
            return [_execute_job(p) for p in payloads]
        from .mpc.parallel import get_pool

        pool = get_pool(procs)
        outcomes = pool.map(
            "call",
            [("repro.batch", "_execute_job", p) for p in payloads],
        )
        results = []
        for payload, o in zip(payloads, outcomes):
            if o.ok:
                results.append(o.value)
            else:
                # the job never produced a JobResult (worker crash, or a
                # dispatch-layer failure): synthesize one so sibling
                # results survive and the failure stays visible
                job_id, spec = payload[0], payload[1]
                results.append(JobResult(
                    job_id=job_id, kind=spec.kind, shape=spec.shape,
                    n=spec.n, m=0, seed=spec.seed, engine=spec.engine,
                    break_mst=spec.break_mst, ok=False,
                    status="crashed" if o.crashed else "error",
                    error=o.error, traceback=o.traceback,
                ))
        return results


def make_workload(
    count: int,
    kinds: Sequence[str] = JOB_KINDS,
    shapes: Sequence[str] = ("random", "binary", "caterpillar"),
    n: int = 200,
    extra_m: Optional[int] = None,
    base_seed: int = 0,
    broken_fraction: float = 0.25,
    engine: str = "local",
) -> List[JobSpec]:
    """A deterministic mixed workload: kinds × shapes round-robin.

    Every job gets its own derived seed; ``broken_fraction`` of the
    *verify* jobs use a perturbed (non-MST) instance so reject paths are
    exercised too.
    """
    if count < 1:
        raise ValidationError("workload needs at least one job")
    if not kinds or not shapes:
        raise ValidationError("workload needs at least one kind and one shape")
    for k in kinds:
        if k not in JOB_KINDS:
            raise ValidationError(f"unknown job kind {k!r}")
    rng = np.random.default_rng(base_seed)
    jobs = []
    for i in range(count):
        kind = kinds[i % len(kinds)]
        shape = shapes[(i // len(kinds)) % len(shapes)]
        broken = (kind == "verify"
                  and bool(rng.random() < broken_fraction))
        jobs.append(JobSpec(
            kind=kind, shape=shape, n=n, extra_m=extra_m,
            seed=base_seed + 1000 * i, break_mst=broken, engine=engine,
        ))
    return jobs


def aggregate(results: Sequence[JobResult]):
    """Cost roll-up grouped by (kind, shape) — the batch report table."""
    headers, rows = aggregate_records(
        [r.as_record() for r in results],
        group_by=("kind", "shape"),
        metrics=[
            ("jobs", "job_id", "count"),
            ("ok", "ok", "sum"),
            ("mean rounds", "rounds", "mean"),
            ("mean core", "core_rounds", "mean"),
            ("max peak words", "peak_words", "max"),
            ("wall (s)", "wall_s", "sum"),
        ],
    )
    return headers, rows
