"""Vectorised MPC engine with model-cost accounting.

Executes every runtime primitive as whole-column NumPy operations while
charging exactly the rounds the distributed realisation would. This is
the engine used for experiments at scale; the message-level engine
(:mod:`.distributed`) validates it on smaller inputs (tests assert both
produce identical outputs and identical charged rounds).

Each primitive is split into a *charged eager* method (``_sort`` ...,
used when the planner is off — behaviour identical to the pre-planner
engine, including the per-call ``_sorted_order`` fast paths) and an
uncharged *physical executor* (``_exec_sort`` ...) that the planner
invokes after logical charging, optionally with a precomputed
:class:`~repro.mpc.optimizer.JoinPlan` carrying the optimizer's
physical-operator choice. Both paths share the result-assembly code, so
planned and eager outputs are bit-identical by construction.

Because this engine declares the ``rewrite`` capability,
``MPCConfig(executor="process")`` additionally routes flushed plan
segments through the process-parallel executor
(:mod:`~repro.mpc.parallel`): independent deferred sorts run in pool
workers over shared-memory column buffers, with the elision decisions —
and the charged cost stream — unchanged.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError, ValidationError
from .kernels import forward_fill, op_identity, segment_starts, segmented_scan
from .runtime import Runtime, pack_columns, pack_pair
from .table import Table

__all__ = ["LocalRuntime"]


def _default_fill(n: int, src: np.ndarray, default) -> np.ndarray:
    """An output column prefilled with ``default``, dtype-widened if needed."""
    if src.dtype.kind == "f" or (
        isinstance(default, float) and not float(default).is_integer()
    ) or default in (float("inf"), float("-inf")):
        return np.full(n, float(default), dtype=np.float64)
    return np.full(n, int(default), dtype=src.dtype)


def _sorted_order(key: np.ndarray) -> np.ndarray | None:
    """Stable sort order of ``key``, or ``None`` when already sorted.

    A stable argsort of a non-decreasing array is the identity, so
    callers can skip both the argsort and the gathers it would feed.
    This per-call scan is the eager engine's fast path; with the
    planner on, the same decision comes from memoised array facts
    (:class:`~repro.mpc.plan.FactRegistry`) instead.
    """
    if len(key) > 1 and np.any(key[:-1] > key[1:]):
        return np.argsort(key, kind="stable")
    return None


class LocalRuntime(Runtime):
    """Single-process engine: NumPy semantics + MPC cost model."""

    plan_capabilities = frozenset({"rewrite"})

    # -- charged eager primitives --------------------------------------------------

    def _sort(self, table: Table, by: Sequence[str]) -> Table:
        key = pack_columns(table, by)
        self.tracker.charge("sort", table.words)
        return self._exec_sort(table, key)

    def _scan(
        self,
        table: Table,
        value_col: str,
        op: str,
        by: Sequence[str] = (),
        exclusive: bool = False,
        identity=None,
    ) -> np.ndarray:
        self._check_op(op)
        keys = pack_columns(table, by) if by else None
        self.tracker.charge("scan", table.words)
        return self._exec_scan(table, keys, value_col, op, exclusive)

    def _lookup(
        self,
        queries: Table,
        qkey: Sequence[str],
        data: Table,
        dkey: Sequence[str],
        payload: Mapping[str, str],
        default: Mapping[str, float] | None = None,
        check_unique: bool = True,
    ) -> Table:
        qk, dk = pack_pair(queries, qkey, data, dkey)
        self.tracker.charge("lookup", queries.words + data.words)
        return self._exec_lookup(queries, qk, data, dk, payload, default,
                                 check_unique, None)

    def _predecessor(
        self,
        queries: Table,
        qkey: str,
        data: Table,
        dkey: str,
        payload: Mapping[str, str],
        default: Mapping[str, float],
    ) -> Table:
        qk = queries.col(qkey)
        dk = data.col(dkey)
        if qk.dtype.kind != "i" or dk.dtype.kind != "i":
            raise ValidationError("predecessor keys must be integer columns")
        self.tracker.charge("predecessor", queries.words + data.words)
        return self._exec_predecessor(queries, qk, data, dk, payload,
                                      default, None)

    def _reduce_by_key(
        self,
        table: Table,
        by: Sequence[str],
        aggs: Mapping[str, Tuple[str, str]],
    ) -> Table:
        for _, (_, op) in aggs.items():
            self._check_op(op)
        key = pack_columns(table, by)
        self.tracker.charge("reduce", table.words)
        return self._exec_reduce(table, key, by, aggs, _sorted_order(key))

    def _filter(self, table: Table, mask: np.ndarray) -> Table:
        self.tracker.charge("filter", table.words)
        return self._exec_filter(table, mask)

    def _scalar(self, table: Table, value_col: str, op: str):
        self._check_op(op)
        self.tracker.charge("scalar", table.words)
        return self._exec_scalar(table, value_col, op)

    # -- uncharged physical executors (planner entry points) -----------------------

    def _exec_sort(self, table: Table, key: np.ndarray) -> Table:
        order = np.argsort(key, kind="stable")
        return table.take(order)

    def _exec_scan(self, table: Table, keys, value_col: str, op: str,
                   exclusive: bool) -> np.ndarray:
        vals = table.col(value_col)
        starts = segment_starts(keys, len(vals))
        return segmented_scan(vals, op, starts, exclusive=exclusive)

    def _exec_lookup(self, queries: Table, qk: np.ndarray, data: Table,
                     dk: np.ndarray, payload, default, check_unique,
                     jp) -> Table:
        nq = len(qk)
        if jp is not None:
            return self._join_assemble(queries, qk, data, payload, default,
                                       jp, exact=True)
        order = _sorted_order(dk)
        dks = dk if order is None else dk[order]
        if check_unique and len(dks) > 1 and np.any(dks[1:] == dks[:-1]):
            dup = dks[1:][dks[1:] == dks[:-1]][0]
            raise ProtocolError(f"lookup data has duplicate key {int(dup)}")
        if len(dks) == 0:
            hit = np.zeros(nq, dtype=bool)
            pos = np.zeros(nq, dtype=np.int64)
        else:
            pos = np.searchsorted(dks, qk, side="left")
            inside = pos < len(dks)
            pos_c = np.minimum(pos, len(dks) - 1)
            hit = inside & (dks[pos_c] == qk)
            pos = pos_c
        if default is None and not hit.all():
            missing = qk[~hit][:3].tolist()
            raise ProtocolError(f"lookup misses with no default (keys {missing})")
        out_cols = {}
        for out_name, src_name in payload.items():
            src = data.col(src_name)
            if order is not None:
                src = src[order]
            if hit.all():
                out_cols[out_name] = src[pos] if len(src) else np.empty(0, src.dtype)
            else:
                col = _default_fill(nq, src, default[out_name])
                if len(src):
                    col[hit] = src[pos[hit]].astype(col.dtype, copy=False)
                out_cols[out_name] = col
        return queries.with_cols(**out_cols)

    def _exec_predecessor(self, queries: Table, qk: np.ndarray, data: Table,
                          dk: np.ndarray, payload, default, jp) -> Table:
        nq = len(qk)
        if jp is not None:
            return self._join_assemble(queries, qk, data, payload, default,
                                       jp, exact=False)
        order = _sorted_order(dk)
        dks = dk if order is None else dk[order]
        if len(dks) == 0:
            hit = np.zeros(nq, dtype=bool)
            pos = np.zeros(nq, dtype=np.int64)
        else:
            pos = np.searchsorted(dks, qk, side="right") - 1
            hit = pos >= 0
            pos = np.maximum(pos, 0)
        out_cols = {}
        for out_name, src_name in payload.items():
            src = data.col(src_name)
            if order is not None:
                src = src[order]
            col = _default_fill(nq, src, default[out_name])
            if len(src):
                col[hit] = src[pos[hit]].astype(col.dtype, copy=False)
            out_cols[out_name] = col
        return queries.with_cols(**out_cols)

    def _join_assemble(self, queries: Table, qk: np.ndarray, data: Table,
                       payload, default, jp, *, exact) -> Table:
        """Planned-path result assembly from a resolved ``JoinPlan``.

        Values are bit-identical to the eager loops above; only the
        assembly differs: the hit gather indices are computed once per
        join (not once per payload column) and fully-hit joins gather
        straight into the fill dtype, skipping the fill pass the eager
        path would fully overwrite anyway.
        """
        nq = len(qk)
        order, pos, hit = jp.order, jp.pos, jp.hit
        all_hit = bool(hit.all())
        if exact and default is None and not all_hit:
            missing = qk[~hit][:3].tolist()
            raise ProtocolError(f"lookup misses with no default (keys {missing})")
        pos_hit = None if all_hit else pos[hit]
        out_cols = {}
        for out_name, src_name in payload.items():
            src = data.col(src_name)
            if order is not None:
                src = src[order]
            if not len(src):
                if exact and all_hit:
                    out_cols[out_name] = np.empty(0, src.dtype)
                else:
                    out_cols[out_name] = _default_fill(nq, src,
                                                       default[out_name])
                continue
            if all_hit:
                if exact:
                    # eager's fully-hit lookup keeps the source dtype
                    out_cols[out_name] = src[pos]
                else:
                    # eager's predecessor always fills first: the fill
                    # dtype wins even when fully overwritten
                    fill_dtype = _default_fill(0, src,
                                               default[out_name]).dtype
                    out_cols[out_name] = src[pos].astype(fill_dtype,
                                                         copy=False)
                continue
            col = _default_fill(nq, src, default[out_name])
            col[hit] = src[pos_hit].astype(col.dtype, copy=False)
            out_cols[out_name] = col
        return queries.with_cols(**out_cols)

    def _exec_reduce(self, table: Table, key: np.ndarray, by, aggs,
                     order) -> Table:
        if order is None:  # already grouped: no argsort, no row gather
            sorted_tab, ks = table, key
        else:
            sorted_tab = table.take(order)
            ks = key[order]
        n = len(ks)
        starts = segment_starts(ks, n)
        start_idx = np.flatnonzero(starts)
        out = {c: sorted_tab.col(c)[start_idx] for c in by}
        for out_name, (src_name, op) in aggs.items():
            vals = sorted_tab.col(src_name)
            if n == 0:
                out[out_name] = vals[:0]
                continue
            ufunc = {"sum": np.add, "max": np.maximum, "min": np.minimum}[op]
            out[out_name] = ufunc.reduceat(vals, start_idx)
        return Table(out)

    def _exec_filter(self, table: Table, mask: np.ndarray) -> Table:
        return table.mask(mask)

    def _exec_scalar(self, table: Table, value_col: str, op: str):
        vals = table.col(value_col)
        if len(vals) == 0:
            ident = op_identity(op, vals.dtype)
            return ident
        if op == "sum":
            total = vals.sum()
        elif op == "max":
            total = vals.max()
        else:
            total = vals.min()
        return total.item()

    # -- internal (engine-private, used by tests) ----------------------------------

    @staticmethod
    def _forward_fill(values: np.ndarray, valid: np.ndarray):
        return forward_fill(values, valid)
