"""Lazy logical-plan layer: plan nodes, physical properties, lazy tables.

The planner splits every runtime primitive into two halves:

* the **logical op** — charged to the cost tracker the moment algorithm
  code calls the primitive, with exactly the rounds/words the eager
  engines charge, under the phase active at the call site. The round
  claims of the paper are about this stream, so ``CostReport`` is
  bit-identical whether the planner is on or off;
* the **physical op** — how (and whether) the primitive actually
  executes. The optimizer (:mod:`.optimizer`) picks it from tracked
  *physical properties*: sortedness, key uniqueness, key density/range,
  cardinality, and machine-major block partitioning (which every table
  in this runtime shares, so it is a constant of the lattice).

Execution is lazy where laziness is useful: ``sort`` returns a
:class:`LazyTable` whose permutation runs at a *flush point* — the first
materialising access to its columns, a consuming primitive, a scalar
read, or a phase exit — so a sort whose input is discovered to already
be in order is elided outright, and a sort consumed only by key-grouped
operators can be fused. Joins, scans, filters and scalars execute at
their logical position (their data-dependent validation errors must
surface at the call site, exactly as the eager engines raise them), but
go through the optimizer's physical-operator selection first.

Physical properties live at two levels:

* **array facts** (:class:`FactRegistry`) — per ``np.ndarray`` identity:
  is this int64 column sorted / duplicate-free / a contiguous range?
  Facts are set structurally by planner ops (a sort's key column *is*
  sorted; a reduce's key column is sorted *and* unique), inherited
  where provable (a filter of a sorted column stays sorted), and
  otherwise *discovered* by a memoised one-pass verification — the
  generalisation of the old per-call ``_sorted_order`` scans. Columns
  handed to primitives must not be mutated in place afterwards (the
  same immutability the eager engines already rely on).
* **table props** — per ``Table`` identity: which key columns the table
  is sorted/unique by and which logical node produced it (so a lookup
  against a ``reduce_by_key`` output can be fused with it).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import KeyPackingError, ValidationError
from .table import Table, _as_column

__all__ = [
    "ArrayFacts",
    "FactRegistry",
    "PhysProps",
    "PlanNode",
    "PlanLog",
    "LazyTable",
    "Planner",
]


# ---------------------------------------------------------------------------
# array-level facts
# ---------------------------------------------------------------------------


class ArrayFacts:
    """Tri-state facts about one int64 column (``None`` = unknown)."""

    __slots__ = ("sorted", "unique")

    def __init__(self, sorted: Optional[bool] = None,
                 unique: Optional[bool] = None):
        self.sorted = sorted
        self.unique = unique


class FactRegistry:
    """Facts keyed by array identity, weakly held.

    Entries die with their arrays (a ``weakref.finalize`` removes them
    before the id can be reused), so the registry never serves a fact
    for a different array that happens to reuse an address.
    """

    def __init__(self):
        self._facts: Dict[int, ArrayFacts] = {}
        self._finalizers: Dict[int, weakref.finalize] = {}

    def get(self, arr: np.ndarray) -> ArrayFacts:
        key = id(arr)
        facts = self._facts.get(key)
        if facts is None:
            facts = ArrayFacts()
            self._facts[key] = facts
            self._finalizers[key] = weakref.finalize(
                arr, self._drop, key
            )
        return facts

    def _drop(self, key: int) -> None:
        self._facts.pop(key, None)
        self._finalizers.pop(key, None)

    # -- structural registration ------------------------------------------------

    def mark(self, arr: np.ndarray, *, sorted: Optional[bool] = None,
             unique: Optional[bool] = None) -> None:
        facts = self.get(arr)
        if sorted is not None:
            facts.sorted = sorted
        if unique is not None:
            facts.unique = unique

    # -- memoised discovery -----------------------------------------------------

    def ensure_sorted(self, arr: np.ndarray) -> bool:
        """Is ``arr`` non-decreasing? One verification pass, memoised."""
        facts = self.get(arr)
        if facts.sorted is None:
            facts.sorted = not (
                len(arr) > 1 and bool(np.any(arr[:-1] > arr[1:]))
            )
        return facts.sorted

    def ensure_unique_sorted(self, arr: np.ndarray) -> bool:
        """Is the (sorted) ``arr`` duplicate-free? Memoised."""
        facts = self.get(arr)
        if facts.unique is None:
            facts.unique = not (
                len(arr) > 1 and bool(np.any(arr[1:] == arr[:-1]))
            )
        return facts.unique


# ---------------------------------------------------------------------------
# plan nodes and the logical log
# ---------------------------------------------------------------------------


@dataclass
class PhysProps:
    """Tracked physical properties of one plan-node output.

    ``partitioning`` is constant in this runtime — every table is held
    machine-major in exact blocks — but is carried explicitly so the
    property lattice matches the model (and so ``explain`` can say so).
    """

    sorted_by: Optional[Tuple[str, ...]] = None
    unique_by: Optional[Tuple[str, ...]] = None
    cardinality: Optional[int] = None
    partitioning: str = "machine-major-blocks"
    source: Optional[Tuple[str, Tuple[str, ...]]] = None


@dataclass
class PlanNode:
    """One logical primitive invocation and its physical outcome."""

    nid: int
    op: str                      # logical primitive name
    phase: str                   # cost phase active at record time
    detail: str = ""             # key columns etc., for explain
    n_in: int = 0
    props: PhysProps = field(default_factory=PhysProps)
    status: str = "pending"      # pending|executed|elided|fused|reused|protocol
    physical: str = ""           # chosen physical operator
    note: str = ""
    reuse: bool = False          # a common sub-plan was reused (CSE or
                                 # a shared physical address table)
    # execution state (sort/derive nodes only). The node never holds a
    # strong reference to its materialised columns — they live on the
    # owning LazyTable (weakly linked via ``out_ref``), so the plan log
    # costs metadata, not retained table data.
    kind: str = "op"             # op|sort|derive
    input: object = None         # input Table, dropped after force
    key_col: Optional[str] = None
    packed_key: Optional[np.ndarray] = None
    derive: Optional[Tuple] = None   # (kind, payload) for derive nodes
    schema: Optional[Dict[str, np.dtype]] = None
    out_ref: object = None       # weakref to the owning LazyTable
    done: bool = False


class PlanLog:
    """The recorded logical plan plus per-node physical outcomes."""

    def __init__(self):
        self.nodes: List[PlanNode] = []

    def record(self, node: PlanNode) -> PlanNode:
        self.nodes.append(node)
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    # -- summaries (explain + golden plan-shape fixtures) -----------------------

    def phase_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-phase counters of logical ops and physical outcomes.

        Keys are stable strings (asserted by the golden plan-shape
        regression fixtures): ``n_<op>`` counts logical ops,
        ``elided_sort`` / ``fused_join`` / ``reused`` count optimizer
        rewrites, and ``phys_<operator>`` counts chosen physical
        operators for joins.
        """
        out: Dict[str, Dict[str, int]] = {}
        for node in self.nodes:
            c = out.setdefault(node.phase, {})
            c["nodes"] = c.get("nodes", 0) + 1
            c[f"n_{node.op}"] = c.get(f"n_{node.op}", 0) + 1
            if node.op == "sort" and node.status == "elided":
                c["elided_sort"] = c.get("elided_sort", 0) + 1
            if node.status == "fused":
                c["fused_join"] = c.get("fused_join", 0) + 1
            if node.status == "reused" or node.reuse:
                c["reused"] = c.get("reused", 0) + 1
            if node.physical:
                k = f"phys_{node.physical}"
                c[k] = c.get(k, 0) + 1
        return out

    def totals(self) -> Dict[str, int]:
        tot: Dict[str, int] = {}
        for counters in self.phase_summary().values():
            for k, v in counters.items():
                tot[k] = tot.get(k, 0) + v
        return tot


# ---------------------------------------------------------------------------
# lazy tables
# ---------------------------------------------------------------------------


class LazyTable(Table):
    """A table whose columns materialise at the first flush point.

    Schema and cardinality are known without execution (they are
    tracked physical properties), so ``len``, ``words``, ``columns``
    and further *derivations* (``with_cols`` / ``select`` / ``drop`` /
    ``rename``) stay lazy; any access to column *data* forces the
    owning plan node (and its ancestors).
    """

    __slots__ = ("_planner", "_node")

    def __init__(self, planner: "Planner", node: PlanNode):
        # deliberately not calling Table.__init__: columns do not exist yet
        self._planner = planner
        self._node = node
        self._cols = None
        self._n = int(node.props.cardinality)

    # -- forcing ---------------------------------------------------------------

    def _materialize(self) -> "LazyTable":
        if self._cols is None:
            self._cols = self._planner.force(self._node)
        return self

    @property
    def plan_node(self) -> PlanNode:
        return self._node

    # -- lazy-safe protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def columns(self) -> tuple:
        if self._cols is not None:
            return tuple(self._cols)
        return tuple(self._node.schema)

    @property
    def words(self) -> int:
        return self._n * max(1, len(self.columns))

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def __iter__(self):
        return iter(self.columns)

    # -- data access (flush points) --------------------------------------------

    def col(self, name: str) -> np.ndarray:
        return self._materialize()._cols[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.col(name)

    def take(self, idx: np.ndarray) -> Table:
        return Table._wrap(
            {k: v[idx] for k, v in self._materialize()._cols.items()}
        )

    def mask(self, m: np.ndarray) -> Table:
        self._materialize()
        return Table.mask(self, m)

    def head(self, k: int) -> Table:
        self._materialize()
        return Table.head(self, k)

    def to_records(self) -> list:
        self._materialize()
        return Table.to_records(self)

    def equals(self, other: Table) -> bool:
        self._materialize()
        return Table.equals(self, other)

    # -- lazy derivations ------------------------------------------------------

    def with_cols(self, **new) -> Table:
        if self._cols is not None:
            return Table.with_cols(self, **new)
        cols = {}
        for name, values in new.items():
            arr = _as_column(name, values)
            if len(arr) != self._n:
                raise ValidationError(
                    f"new column {name!r} has length {len(arr)}, "
                    f"expected {self._n}"
                )
            cols[name] = arr
        return self._planner.derive(self, "with_cols", cols)

    def select(self, names) -> Table:
        if self._cols is not None:
            return Table.select(self, names)
        names = list(names)
        missing = [n for n in names if n not in self._node.schema]
        if missing:
            raise ValidationError(f"unknown columns {missing}")
        return self._planner.derive(self, "select", names)

    def drop(self, *names: str) -> Table:
        if self._cols is not None:
            return Table.drop(self, *names)
        keep = [n for n in self._node.schema if n not in names]
        return self._planner.derive(self, "select", keep)

    def rename(self, mapping) -> Table:
        if self._cols is not None:
            return Table.rename(self, mapping)
        return self._planner.derive(self, "rename", dict(mapping))

    def __reduce__(self):
        # pickling materialises: a shipped table is data, not a plan
        return (Table, (dict(self._materialize()._cols),))


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


def _schema_of(table: Table) -> Dict[str, np.dtype]:
    if isinstance(table, LazyTable) and table._cols is None:
        return dict(table._node.schema)
    return {k: table.col(k).dtype for k in table.columns}


class Planner:
    """Records the logical plan and drives optimized physical execution.

    One planner per runtime. Engines declare capabilities via
    ``Runtime.plan_capabilities``:

    * ``"rewrite"`` — the engine exposes uncharged physical executors
      (``_exec_*``) and its primitives are pure data transforms, so the
      full rule set applies (the vectorised local engine);
    * otherwise the planner runs in *record* mode: the logical plan is
      still captured and property-based check elisions still apply, but
      every node executes its full protocol — for the message-level
      engine the transport schedule **is** the physical truth, so
      eliding exchanges would change the transport rounds the planner
      must keep bit-identical.
    """

    def __init__(self, rt):
        from .optimizer import Optimizer  # local import: optimizer uses plan types

        self.rt = rt
        self.log = PlanLog()
        self.facts = FactRegistry()
        self.rewrite = "rewrite" in rt.plan_capabilities
        self.opt = Optimizer(self)
        #: Optional process-parallel executor (:mod:`.parallel`); when
        #: attached, :meth:`flush` hands the pending queue to it so
        #: independent plan partitions dispatch to the worker pool.
        self.executor = None
        self._pending: List[PlanNode] = []
        self._next_id = 0
        # table identity -> (props, keepalive-check weakref)
        self._table_props: Dict[int, Tuple[PhysProps, object]] = {}
        self._table_final: Dict[int, weakref.finalize] = {}
        # sort CSE: (input table id, by) -> weakref to the output LazyTable
        self._sort_cse: Dict[Tuple[int, Tuple[str, ...]], object] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _node(self, op: str, **kw) -> PlanNode:
        node = PlanNode(
            nid=self._next_id, op=op,
            phase=self.rt.tracker.current_phase, **kw,
        )
        self._next_id += 1
        return self.log.record(node)

    def props_of(self, table: Table) -> Optional[PhysProps]:
        if isinstance(table, LazyTable):
            return table._node.props
        entry = self._table_props.get(id(table))
        if entry is not None:
            props, ref = entry
            if ref() is table:
                return props
        return None

    def set_props(self, table: Table, props: PhysProps) -> None:
        key = id(table)
        self._table_props[key] = (props, weakref.ref(table))
        if key not in self._table_final:
            self._table_final[key] = weakref.finalize(
                table, self._drop_props, key
            )

    def _drop_props(self, key: int) -> None:
        self._table_props.pop(key, None)
        self._table_final.pop(key, None)

    def hint_sorted_unique(self, arr: np.ndarray, *,
                           unique: bool = True) -> None:
        """Structural fact registration for caller-created key columns
        (e.g. ``np.arange`` skeletons inside ``expand_join``)."""
        self.facts.mark(arr, sorted=True, unique=unique)

    # -- flush points ----------------------------------------------------------

    def flush(self) -> None:
        """Execute every pending deferred node (phase exits, reports).

        This is the partition-aware flush point: with a process
        executor attached, the pending queue is handed over wholesale so
        independent segments dispatch to the worker pool; the serial
        path (and the executor's own drain) preserves FIFO order.
        """
        if self.executor is not None and self._pending:
            self.executor.flush_pending(self._pending)
            return
        while self._pending:
            node = self._pending.pop(0)
            if not node.done:
                self.force(node)

    def force(self, node: PlanNode) -> Dict[str, np.ndarray]:
        if node.done:
            tab = node.out_ref() if node.out_ref is not None else None
            if tab is not None and tab._cols is not None:
                return tab._cols
            raise ValidationError(  # pragma: no cover - table outlives node use
                "plan node output was discarded"
            )
        t0 = time.perf_counter()
        if node.kind == "derive":
            parent_cols = self._input_cols(node.input)
            kind, payload = node.derive
            if kind == "with_cols":
                cols = dict(parent_cols)
                cols.update(payload)
            elif kind == "select":
                cols = {n: parent_cols[n] for n in payload}
            else:  # rename
                cols = {payload.get(k, k): v for k, v in parent_cols.items()}
            node.status = "executed"
        elif node.kind == "sort":
            cols = self.opt.execute_sort(node)
            self.rt.tracker.record_wall("sort", time.perf_counter() - t0)
        else:  # pragma: no cover - op nodes execute at record time
            raise ValidationError(f"cannot force node kind {node.kind!r}")
        return self.complete_node(node, cols)

    def complete_node(self, node: PlanNode,
                      cols: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Install executed columns on a node (inline or worker-produced)."""
        node.done = True
        node.input = None
        node.packed_key = None
        # the columns live on the LazyTable only (the log keeps metadata);
        # a dead table means nobody can ever observe this output
        tab = node.out_ref() if node.out_ref is not None else None
        if tab is not None:
            tab._cols = cols
        return cols

    def _input_cols(self, table) -> Dict[str, np.ndarray]:
        table._materialize()
        return table._cols

    def input_table(self, table: Table) -> Table:
        """The forced input as a concrete-column table."""
        return table._materialize() if isinstance(table, LazyTable) else table

    def derive(self, parent_table: "LazyTable", kind: str,
               payload) -> LazyTable:
        parent = parent_table._node
        schema = dict(parent.schema)
        if kind == "with_cols":
            for name, arr in payload.items():
                schema[name] = arr.dtype
        elif kind == "select":
            schema = {n: schema[n] for n in payload}
        else:  # rename
            schema = {payload.get(k, k): v for k, v in schema.items()}
        props = PhysProps(cardinality=parent.props.cardinality)
        if kind == "with_cols":
            # a replaced column invalidates any fact naming it: the name
            # survives in the schema but the data is new
            replaced = set(payload)
            if parent.props.sorted_by and \
                    replaced.isdisjoint(parent.props.sorted_by):
                props.sorted_by = parent.props.sorted_by
            if parent.props.unique_by and \
                    replaced.isdisjoint(parent.props.unique_by):
                props.unique_by = parent.props.unique_by
        elif kind == "select":
            keep = set(schema)
            if parent.props.sorted_by and set(parent.props.sorted_by) <= keep:
                props.sorted_by = parent.props.sorted_by
            if parent.props.unique_by and set(parent.props.unique_by) <= keep:
                props.unique_by = parent.props.unique_by
        elif len(schema) == len(parent.schema):
            # rename without collisions maps facts through; a collision
            # (two columns mapped to one name) drops a column, so no
            # fact can be trusted by name afterwards
            if parent.props.sorted_by:
                props.sorted_by = tuple(
                    payload.get(c, c) for c in parent.props.sorted_by
                )
            if parent.props.unique_by:
                props.unique_by = tuple(
                    payload.get(c, c) for c in parent.props.unique_by
                )
        node = PlanNode(
            nid=-1, op="derive", phase=self.rt.tracker.current_phase,
            kind="derive", input=parent_table, derive=(kind, payload),
            schema=schema, props=props,
        )
        # derive nodes are free row algebra: tracked for execution but
        # not part of the logical (charged) plan, hence not logged
        self._pending.append(node)
        out = LazyTable(self, node)
        node.out_ref = weakref.ref(out)
        return out

    # -- logical primitives ----------------------------------------------------

    def sort(self, table: Table, by: Sequence[str]) -> Table:
        by = tuple(by)
        schema = _schema_of(table)
        missing = [c for c in by if c not in schema]
        if missing:
            raise ValidationError(f"unknown columns {missing}")
        if not by:
            raise ValidationError("pack_columns needs at least one key column")
        packed = None
        key_col = None
        if len(by) == 1:
            if schema[by[0]].kind != "i":
                raise KeyPackingError(f"key column {by[0]!r} must be integer")
            key_col = by[0]
        elif self.rewrite:
            # composite keys need data-dependent strides: pack eagerly so
            # overflow surfaces at the call site, exactly as eager does
            # (in record mode the engine packs at the call site anyway)
            from .runtime import pack_columns

            packed = pack_columns(self.input_table(table), by)
        n = len(table)
        words = table.words
        node = self._node(
            "sort", detail=",".join(by), n_in=n,
            props=PhysProps(cardinality=n, sorted_by=by),
        )
        if not self.rewrite:
            node.status = "protocol"
            node.physical = "sample-sort"
            out = self.rt._sort(self.input_table(table), by)
            self.set_props(out, node.props)
            return out
        self.rt.tracker.charge("sort", words)
        cse_key = (id(table), by)
        prior = self._sort_cse.get(cse_key)
        if prior is not None:
            prior_tab = prior[1]()
            if prior_tab is not None and prior[0]() is table:
                node.status = "reused"
                node.physical = "cse"
                node.note = "identical sort already planned"
                return prior_tab
        node.kind = "sort"
        node.input = table
        node.key_col = key_col
        node.packed_key = packed
        node.schema = schema
        out = LazyTable(self, node)
        node.out_ref = weakref.ref(out)
        self._pending.append(node)
        self._sort_cse[cse_key] = (weakref.ref(table), weakref.ref(out))
        return out

    def scan(self, table: Table, value_col: str, op: str,
             by: Sequence[str] = (), exclusive: bool = False,
             identity=None) -> np.ndarray:
        rt = self.rt
        rt._check_op(op)
        tab = self.input_table(table)
        node = self._node("scan", detail=value_col, n_in=len(tab))
        if not self.rewrite:
            node.status = "protocol"
            node.physical = "carry-chain"
            return rt._scan(tab, value_col, op, by, exclusive, identity)
        from .runtime import pack_columns

        keys = pack_columns(tab, by) if by else None
        rt.tracker.charge("scan", tab.words)
        t0 = time.perf_counter()
        out = rt._exec_scan(tab, keys, value_col, op, exclusive)
        rt.tracker.record_wall("scan", time.perf_counter() - t0)
        node.status = "executed"
        node.physical = "segmented-scan"
        return out

    def lookup(self, queries: Table, qkey, data: Table, dkey, payload,
               default=None, check_unique: bool = True) -> Table:
        return self._join(queries, qkey, data, dkey, payload, default,
                          check_unique, exact=True)

    def predecessor(self, queries: Table, qkey: str, data: Table, dkey: str,
                    payload, default) -> Table:
        return self._join(queries, (qkey,), data, (dkey,), payload, default,
                          False, exact=False)

    def _join(self, queries, qkey, data, dkey, payload, default,
              check_unique, *, exact) -> Table:
        rt = self.rt
        prim = "lookup" if exact else "predecessor"
        qtab = self.input_table(queries)
        dtab = self.input_table(data)
        dprops = self.props_of(data) or self.props_of(dtab)
        node = self._node(
            prim, detail=f"{','.join(qkey)}->{','.join(dkey)}",
            n_in=len(qtab),
        )
        fused = self.opt.fusion_with_reduce(dprops, tuple(dkey))
        if fused:
            node.status = "fused"
            node.note = "data is a reduce_by_key output on the same key"
        t0 = time.perf_counter()
        if not self.rewrite:
            node.physical = "co-sort-copy-down"
            if node.status != "fused":
                node.status = "protocol"
            if exact:
                out = rt._lookup(qtab, qkey, dtab, dkey, payload, default,
                                 check_unique and not fused)
            else:
                out = rt._predecessor(qtab, qkey[0], dtab, dkey[0], payload,
                                      default)
            rt.tracker.record_wall(prim, time.perf_counter() - t0)
            return out
        from .runtime import pack_pair

        if exact:
            qk, dk = pack_pair(qtab, qkey, dtab, dkey)
        else:
            qk = qtab.col(qkey[0])
            dk = dtab.col(dkey[0])
            if qk.dtype.kind != "i" or dk.dtype.kind != "i":
                raise ValidationError("predecessor keys must be integer columns")
        rt.tracker.charge("lookup" if exact else "predecessor",
                          qtab.words + dtab.words)
        jp = self.opt.join_plan(
            node, qk, dk, exact=exact,
            check_unique=check_unique, fused=fused,
            data_sorted_known=bool(fused) or self._sorted_by_props(
                dprops, tuple(dkey)),
        )
        if exact:
            out = rt._exec_lookup(qtab, qk, dtab, dk, payload, default,
                                  False, jp)
        else:
            out = rt._exec_predecessor(qtab, qk, dtab, dk, payload, default,
                                       jp)
        rt.tracker.record_wall(prim, time.perf_counter() - t0)
        if node.status == "pending":
            node.status = "executed"
        return out

    @staticmethod
    def _sorted_by_props(props: Optional[PhysProps],
                         dkey: Tuple[str, ...]) -> bool:
        return bool(props and props.sorted_by == dkey)

    def reduce_by_key(self, table: Table, by, aggs) -> Table:
        rt = self.rt
        by = tuple(by)
        for _, (_, op) in aggs.items():
            rt._check_op(op)
        node = self._node("reduce", detail=",".join(by), n_in=len(table))
        props = self.props_of(table)
        if not self.rewrite:
            node.status = "protocol"
            node.physical = "sort-scan-boundary"
            out = rt._reduce_by_key(self.input_table(table), by, aggs)
        else:
            from .runtime import pack_columns

            tab = self.input_table(table)
            key = pack_columns(tab, by)
            rt.tracker.charge("reduce", tab.words)
            t0 = time.perf_counter()
            order = self.opt.group_order(node, key, known_sorted=bool(
                props and props.sorted_by == by))
            out = rt._exec_reduce(tab, key, by, aggs, order)
            rt.tracker.record_wall("reduce", time.perf_counter() - t0)
            node.status = "executed"
        out_props = PhysProps(sorted_by=by, unique_by=by,
                              cardinality=len(out))
        out_props.source = ("reduce", by)  # type: ignore[attr-defined]
        self.set_props(out, out_props)
        if len(by) == 1 and by[0] in out:
            self.facts.mark(out.col(by[0]), sorted=True, unique=True)
        return out

    def filter(self, table: Table, mask: np.ndarray) -> Table:
        rt = self.rt
        tab = self.input_table(table)
        node = self._node("filter", n_in=len(tab))
        in_props = self.props_of(table) or self.props_of(tab)
        if not self.rewrite:
            node.status = "protocol"
            node.physical = "compact-rebalance"
            out = rt._filter(tab, mask)
        else:
            rt.tracker.charge("filter", tab.words)
            t0 = time.perf_counter()
            out = rt._exec_filter(tab, mask)
            rt.tracker.record_wall("filter", time.perf_counter() - t0)
            node.status = "executed"
            node.physical = "mask-compact"
        # a compaction preserves relative order: sortedness survives,
        # and subsequences of duplicate-free columns stay duplicate-free
        for name in out.columns:
            src = tab.col(name) if name in tab else None
            if src is not None:
                f = self.facts._facts.get(id(src))
                if f is not None and (f.sorted or f.unique):
                    self.facts.mark(out.col(name),
                                    sorted=True if f.sorted else None,
                                    unique=True if f.unique else None)
        if in_props is not None and in_props.sorted_by:
            props = PhysProps(sorted_by=in_props.sorted_by,
                              unique_by=in_props.unique_by,
                              cardinality=len(out))
            self.set_props(out, props)
        return out

    def scalar(self, table: Table, value_col: str, op: str):
        rt = self.rt
        rt._check_op(op)
        tab = self.input_table(table)
        node = self._node("scalar", detail=value_col, n_in=len(tab))
        self.flush()  # scalar reads are global flush points
        if not self.rewrite:
            node.status = "protocol"
            node.physical = "aggregation-tree"
            return rt._scalar(tab, value_col, op)
        rt.tracker.charge("scalar", tab.words)
        t0 = time.perf_counter()
        out = rt._exec_scalar(tab, value_col, op)
        rt.tracker.record_wall("scalar", time.perf_counter() - t0)
        node.status = "executed"
        node.physical = "aggregation-tree"
        return out
