"""Rule-based physical optimizer over the logical plan.

Rules are applied per node as the planner records it (joins, reduces)
or at flush time (deferred sorts). Every rewrite must be *provably*
output-identical to the eager engine — properties are either derived
structurally from producing ops, or discovered by a memoised one-pass
verification (never assumed). The rule set:

``elide-sort``
    a sort whose key is already non-decreasing is the identity (a
    stable argsort of a sorted key is ``arange``), so the permutation
    and the gathers it feeds are skipped.
``reuse-sort`` (common-sub-plan reuse)
    the same table sorted by the same key twice returns the first plan
    node's output.
``fuse-reduce-join``
    a lookup/predecessor whose data operand is the output of a
    ``reduce_by_key`` over the same key inherits sorted+unique from the
    reduce — the join runs directly on the grouped output with no
    re-sort, no sortedness scan and no duplicate check.
``elide-dup-check``
    ``lookup``'s uniqueness validation is skipped when uniqueness is a
    known fact (and registered as one after the first verification, so
    repeated lookups against the same data pay it once).
``join-operator-selection``
    the physical join kernel is chosen from the data key's properties:

    * ``dense-gather`` — sorted, unique, contiguous keys: the position
      is the key itself (one subtraction, no search);
    * ``direct-address`` — sorted keys over a modest integer range: a
      scatter into a range-indexed table plus one gather (for
      predecessor, plus a running maximum over the range) replaces the
      per-query binary search — ~6-20x faster than ``searchsorted`` at
      this repo's shapes;
    * ``binary-search`` — the eager kernel, used when the key range is
      too wide to address directly (e.g. packed composite keys).

The message-level engine accepts only check elisions and fusion facts:
its transport schedule is the physical ground truth the planner must
keep bit-identical, so no exchange is ever skipped there (see
``Planner`` in :mod:`.plan`).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ProtocolError

__all__ = ["JoinPlan", "Optimizer", "DIRECT_SPAN_SLACK"]

#: ``direct-address`` is used when the key span fits within this many
#: words per involved row (the scatter table must stay linear in the
#: join's own size to be a win — and to respect the memory model).
DIRECT_SPAN_SLACK = 8
DIRECT_SPAN_FLOOR = 4096


@dataclass
class JoinPlan:
    """Physical join decisions handed to the engine's ``_exec_*`` kernels.

    ``order`` is the stable sort order of the data keys (``None`` when
    they are already sorted — matching the eager ``_sorted_order``
    contract); ``pos``/``hit`` are the resolved join positions *in
    sorted-data coordinates*, valid wherever ``hit`` holds.
    """

    order: Optional[np.ndarray]
    dks: np.ndarray
    pos: np.ndarray
    hit: np.ndarray


class Optimizer:
    def __init__(self, planner):
        self.planner = planner
        self.facts = planner.facts
        # physical common-sub-plan reuse: scatter/accumulate address
        # tables keyed by data-key array identity (weakly guarded), so
        # repeated joins against the same data build them once
        self._addr_cache: dict = {}

    # -- rule: fuse-reduce-join --------------------------------------------------

    @staticmethod
    def fusion_with_reduce(data_props, dkey: Tuple[str, ...]) -> bool:
        return bool(
            data_props is not None
            and data_props.source is not None
            and data_props.source == ("reduce", dkey)
        )

    # -- rule: elide-sort (used by deferred sort nodes) --------------------------

    def sort_inputs(self, node) -> Tuple[dict, np.ndarray]:
        """A deferred sort node's concrete input columns and key array.

        Shared by the inline path and the process executor, so both
        sort exactly the same arrays (bit-identical permutations).
        """
        table = self.planner.input_table(node.input)
        cols = table._cols
        key = node.packed_key
        if key is None:
            key = cols[node.key_col]
        return cols, key

    def execute_sort(self, node) -> dict:
        """Run (or elide) one deferred sort node; returns concrete cols."""
        cols, key = self.sort_inputs(node)
        if self.facts.ensure_sorted(key):
            node.status = "elided"
            node.physical = "identity"
            node.note = "input already in key order"
            out = dict(cols)
        else:
            node.status = "executed"
            node.physical = "argsort-permute"
            order = np.argsort(key, kind="stable")
            out = {k: v[order] for k, v in cols.items()}
        if node.key_col is not None:
            out_key = out[node.key_col]
            self.facts.mark(out_key, sorted=True)
            in_facts = self.facts.get(key)
            if in_facts.unique:
                self.facts.mark(out_key, unique=True)
        return out

    # -- rule: partition (embarrassingly-parallel plan segments) ------------------

    def partition(self, pending, min_rows: int) -> list:
        """The dispatchable subset of ``pending``: independent sort roots.

        A deferred sort is its own plan partition — dispatchable to a
        worker — when its input columns are already concrete (not an
        unmaterialised LazyTable, so no pending ancestor orders before
        it) and large enough (``min_rows``) that the shared-memory copy
        is worth the kernel. Concrete input columns are immutable by the
        runtime's contract, so any set of such roots is mutually
        independent: they read disjoint-or-shared immutable data and
        write only their own fresh outputs — embarrassingly parallel.
        Derive nodes (free row algebra) and undersized sorts stay on the
        serial FIFO drain.
        """
        from .plan import LazyTable  # local import: plan imports optimizer

        roots = []
        for node in pending:
            if node.done or node.kind != "sort":
                continue
            inp = node.input
            if isinstance(inp, LazyTable) and inp._cols is None:
                continue
            if (node.props.cardinality or 0) < min_rows:
                continue
            roots.append(node)
        return roots

    # -- rule: group-order for reduce --------------------------------------------

    def group_order(self, node, key: np.ndarray,
                    known_sorted: bool) -> Optional[np.ndarray]:
        """The stable grouping order, or ``None`` when rows are already
        grouped — decided from facts instead of a per-call scan."""
        if known_sorted or self.facts.ensure_sorted(key):
            node.physical = "grouped-reduceat"
            node.note = "input already grouped by key"
            return None
        node.physical = "sort-reduceat"
        return np.argsort(key, kind="stable")

    # -- rule: join-operator-selection -------------------------------------------

    def join_plan(self, node, qk: np.ndarray, dk: np.ndarray, *,
                  exact: bool, check_unique: bool, fused: bool,
                  data_sorted_known: bool) -> JoinPlan:
        nd, nq = len(dk), len(qk)
        if nd == 0:
            node.physical = "empty-data"
            return JoinPlan(order=None, dks=dk,
                            pos=np.zeros(nq, dtype=np.int64),
                            hit=np.zeros(nq, dtype=bool))
        # 1. sortedness: structural fact, memoised discovery, or argsort
        if fused or data_sorted_known:
            self.facts.mark(dk, sorted=True, unique=True if fused else None)
        if self.facts.ensure_sorted(dk):
            order = None
            dks = dk
        else:
            order = np.argsort(dk, kind="stable")
            dks = dk[order]
        # 2. uniqueness (lookup only): elide when known, else verify once
        unique = None
        if exact and check_unique:
            unique_known = order is None and self.facts.get(dk).unique
            if unique_known:
                node.note = (node.note + "; " if node.note else "") + \
                    "dup-check elided"
            else:
                if len(dks) > 1 and np.any(dks[1:] == dks[:-1]):
                    dup = dks[1:][dks[1:] == dks[:-1]][0]
                    raise ProtocolError(
                        f"lookup data has duplicate key {int(dup)}"
                    )
                if order is None:
                    self.facts.mark(dk, unique=True)
            unique = True
        elif order is None:
            unique = self.facts.get(dk).unique
        # 3. physical kernel
        lo = int(dks[0])
        hi = int(dks[-1])
        span = hi - lo + 1
        cap = max(DIRECT_SPAN_FLOOR, DIRECT_SPAN_SLACK * (nd + nq))
        if span <= cap:
            table, shared = self._address_table(dks, lo, span, exact=exact,
                                                first_wins=not unique,
                                                cache=order is None)
            if shared:
                node.reuse = True
                node.note = (node.note + "; " if node.note else "") + \
                    "address table reused"
            inside = (qk >= lo) & (qk <= hi) if exact else (qk >= lo)
            raw = table[np.clip(qk - lo, 0, span - 1)]
            hit = inside & (raw >= 0)
            # misses keep raw (-1): join kernels only gather hit rows,
            # so the eager engines' position clipping is not re-done
            pos = raw
            node.physical = ("dense-gather" if unique and span == nd
                            else "direct-address")
        else:
            node.physical = "binary-search"
            if exact:
                pos = np.searchsorted(dks, qk, side="left")
                inside = pos < nd
                pos = np.minimum(pos, nd - 1)
                hit = inside & (dks[pos] == qk)
            else:
                pos = np.searchsorted(dks, qk, side="right") - 1
                hit = pos >= 0
                pos = np.maximum(pos, 0)
        return JoinPlan(order=order, dks=dks, pos=pos, hit=hit)

    def _address_table(self, dks, lo, span, *, exact, first_wins,
                       cache=True):
        """The range-indexed position table for ``dks``, built once.

        For equi-joins the table reproduces ``searchsorted(..,
        "left")``: with duplicate data keys the *first* occurrence wins,
        so the scatter runs in reverse order when uniqueness is not
        established. For predecessor joins a running maximum turns the
        scatter into "last data row with key <= offset" — identical to
        ``searchsorted(.., "right") - 1`` (last duplicate wins).
        """
        kind = "exact" if exact else "pred"
        key = (id(dks), kind)  # per kind: mixed lookup/predecessor
        entry = self._addr_cache.get(key) if cache else None
        if entry is not None:
            ref, elo, ewins, table = entry
            # any cached exact table is reusable: a first-wins scatter
            # and a unique-proven scatter agree whenever a non-first-wins
            # request is legal (uniqueness proven => no duplicates)
            if ref() is dks and elo == lo:
                return table, True
        fwd = np.full(span, -1, dtype=np.int64)
        idx = np.arange(len(dks), dtype=np.int64)
        if exact and first_wins:
            fwd[dks[::-1] - lo] = idx[::-1]
        else:
            fwd[dks - lo] = idx
        if not exact:
            fwd = np.maximum.accumulate(fwd)
        if cache:
            self._addr_cache[key] = (
                weakref.ref(dks,
                            lambda _, k=key: self._addr_cache.pop(k, None)),
                lo, first_wins, fwd,
            )
        return fwd, False
