"""Columnar record tables exchanged between MPC runtime primitives.

A :class:`Table` is an immutable-ish, named collection of equal-length
NumPy arrays. It is the unit of data the runtime primitives (sort,
scan, lookup, reduce) operate on; one row models one ``O(1)``-word MPC
record, one column one machine word per record.

Algorithm code builds tables, applies *free* row-aligned NumPy math on
their columns (local computation inside a round), and pays rounds only
when calling runtime primitives.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = ["Table"]

_ALLOWED_KINDS = ("i", "u", "f", "b")


def _as_column(name: str, values) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"column {name!r} must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind not in _ALLOWED_KINDS:
        raise ValidationError(
            f"column {name!r} has unsupported dtype {arr.dtype} "
            f"(records hold integer/float/bool words)"
        )
    if arr.dtype.kind == "i" and arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "u":
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "f" and arr.dtype != np.float64:
        arr = arr.astype(np.float64)
    return arr


class Table:
    """A named bundle of equal-length columns (one MPC record per row)."""

    __slots__ = ("_cols", "_n", "__weakref__")

    def __init__(self, cols: Mapping[str, np.ndarray] | None = None, **kw):
        merged: Dict[str, np.ndarray] = {}
        for src in (cols or {}), kw:
            for name, values in src.items():
                merged[name] = _as_column(name, values)
        n = None
        for name, arr in merged.items():
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValidationError(
                    f"column {name!r} has length {len(arr)}, expected {n}"
                )
        self._cols = merged
        self._n = 0 if n is None else int(n)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _wrap(cols: Dict[str, np.ndarray]) -> "Table":
        """Wrap already-validated, equal-length columns (trusted fast path).

        Row-algebra operations on an existing table (``take``, ``mask``,
        ``select``, ...) can only produce canonical column dtypes, so
        they skip the per-column validation of ``__init__`` — it showed
        up as real overhead once the distributed engine went columnar.
        """
        t = Table.__new__(Table)
        t._cols = cols
        t._n = len(next(iter(cols.values()))) if cols else 0
        return t

    @staticmethod
    def empty(schema: Mapping[str, np.dtype | type]) -> "Table":
        """An empty table with the given column schema."""
        return Table({k: np.empty(0, dtype=np.dtype(v)) for k, v in schema.items()})

    def _materialize(self) -> "Table":
        """Concrete columns guaranteed after this call (no-op here;
        lazy plan-produced tables override it to execute their node)."""
        return self

    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Row-wise concatenation; all tables must share a schema."""
        tables = [t._materialize() for t in tables]
        if not tables:
            raise ValidationError("Table.concat needs at least one table")
        names = list(tables[0]._cols)
        for t in tables[1:]:
            if list(t._cols) != names:
                raise ValidationError(
                    f"schema mismatch in concat: {list(t._cols)} vs {names}"
                )
        return Table._wrap(
            {k: np.concatenate([t._cols[k] for t in tables]) for k in names}
        )

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __iter__(self) -> Iterator[str]:
        return iter(self._cols)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._cols[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{k}:{v.dtype.str[1:]}" for k, v in self._cols.items())
        return f"Table[{self._n} rows]({cols})"

    @property
    def columns(self) -> tuple:
        return tuple(self._cols)

    @property
    def words(self) -> int:
        """Memory footprint in machine words (rows x columns)."""
        return self._n * max(1, len(self._cols))

    # -- row/column algebra (local, free operations) ---------------------------

    def col(self, name: str) -> np.ndarray:
        return self._cols[name]

    def select(self, names: Iterable[str]) -> "Table":
        names = list(names)
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise ValidationError(f"unknown columns {missing}")
        return Table._wrap({n: self._cols[n] for n in names})

    def drop(self, *names: str) -> "Table":
        return Table._wrap(
            {k: v for k, v in self._cols.items() if k not in names}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        return Table._wrap(
            {mapping.get(k, k): v for k, v in self._cols.items()}
        )

    def with_cols(self, **new) -> "Table":
        if not self._cols:
            return Table(new)
        cols = dict(self._cols)
        for name, values in new.items():
            arr = _as_column(name, values)
            if len(arr) != self._n:
                raise ValidationError(
                    f"new column {name!r} has length {len(arr)}, expected {self._n}"
                )
            cols[name] = arr
        return Table._wrap(cols)

    def take(self, idx: np.ndarray) -> "Table":
        return Table._wrap({k: v[idx] for k, v in self._cols.items()})

    def mask(self, m: np.ndarray) -> "Table":
        m = np.asarray(m, dtype=bool)
        if len(m) != self._n:
            raise ValidationError("mask length mismatch")
        return Table._wrap({k: v[m] for k, v in self._cols.items()})

    def head(self, k: int) -> "Table":
        return Table._wrap({name: v[:k] for name, v in self._cols.items()})

    # -- test/debug helpers ----------------------------------------------------

    def to_records(self) -> list:
        """Rows as a list of dicts (test helper; not for hot paths)."""
        names = list(self._cols)
        return [
            {n: self._cols[n][i].item() for n in names} for i in range(self._n)
        ]

    def equals(self, other: "Table") -> bool:
        other = other._materialize()
        if set(self._cols) != set(other._cols) or self._n != other._n:
            return False
        return all(np.array_equal(self._cols[k], other._cols[k]) for k in self._cols)
