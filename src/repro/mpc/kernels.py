"""Shared NumPy kernels used by both runtime engines.

The local engine applies these to whole columns; the distributed engine
applies them shard-locally inside its message-level protocols. Keeping
one implementation guarantees the engines agree bit-for-bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ProtocolError

__all__ = [
    "segment_starts",
    "segmented_scan",
    "forward_fill",
    "op_identity",
    "op_combine",
]


def op_identity(op: str, dtype: np.dtype):
    """Identity element of ``op`` for values of ``dtype``."""
    kind = np.dtype(dtype).kind
    if op == "sum":
        return 0.0 if kind == "f" else 0
    if op == "max":
        return -np.inf if kind == "f" else np.iinfo(np.int64).min
    if op == "min":
        return np.inf if kind == "f" else np.iinfo(np.int64).max
    raise ProtocolError(f"unsupported op {op!r}")


def op_combine(op: str, a, b):
    """Scalar combine for carry propagation."""
    if op == "sum":
        return a + b
    if op == "max":
        return a if a >= b else b
    if op == "min":
        return a if a <= b else b
    raise ProtocolError(f"unsupported op {op!r}")


def segment_starts(keys: np.ndarray | None, n: int) -> np.ndarray:
    """Boolean mask of segment-start positions for contiguous equal keys."""
    starts = np.zeros(n, dtype=bool)
    if n == 0:
        return starts
    starts[0] = True
    if keys is not None:
        starts[1:] = keys[1:] != keys[:-1]
    return starts


def _seg_ids(starts: np.ndarray) -> np.ndarray:
    return np.cumsum(starts) - 1


def segmented_scan(
    values: np.ndarray,
    op: str,
    starts: np.ndarray,
    exclusive: bool = False,
) -> np.ndarray:
    """Prefix aggregation within contiguous segments.

    ``starts`` marks the first row of each segment. Sum uses an exact
    cumulative-sum-with-offset; max/min use O(log n) doubling passes
    (the same structure an MPC scan would use).
    """
    n = len(values)
    if n == 0:
        return values.copy()
    if op == "sum":
        c = np.cumsum(values)
        start_idx = np.flatnonzero(starts)
        base = np.where(start_idx > 0, c[start_idx - 1] if n > 1 else 0, 0)
        if len(start_idx):
            base = np.where(start_idx > 0, c[np.maximum(start_idx - 1, 0)], 0)
        inc = c - base[_seg_ids(starts)]
    elif op in ("max", "min"):
        seg = _seg_ids(starts)
        inc = values.astype(np.float64 if values.dtype.kind == "f" else np.int64).copy()
        func = np.maximum if op == "max" else np.minimum
        k = 1
        while k < n:
            same = seg[k:] == seg[:-k]
            upd = func(inc[k:], inc[:-k])
            inc[k:] = np.where(same, upd, inc[k:])
            k <<= 1
    else:
        raise ProtocolError(f"unsupported scan op {op!r}")
    if not exclusive:
        return inc
    ident = op_identity(op, inc.dtype)
    out = np.empty_like(inc, dtype=np.float64 if isinstance(ident, float) else inc.dtype)
    out[1:] = inc[:-1]
    out[starts] = ident
    return out


def forward_fill(
    values: np.ndarray, valid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Replace each entry by the latest preceding valid entry.

    Returns ``(filled_values, filled_valid)``; positions before the first
    valid entry keep their original value with ``filled_valid`` False.
    """
    n = len(values)
    if n == 0:
        return values.copy(), valid.copy()
    idx = np.where(valid, np.arange(n), -1)
    idx = np.maximum.accumulate(idx)
    ok = idx >= 0
    out = values.copy()
    out[ok] = values[np.maximum(idx[ok], 0)]
    return out, ok
