"""MPC simulation substrate: tables, cost model, and two runtime engines.

See DESIGN.md (systems S1/S2). Quick use::

    from repro.mpc import LocalRuntime, MPCConfig, Table

    rt = LocalRuntime(MPCConfig(delta=0.35))
    t = Table(k=[2, 1, 2], v=[1.0, 5.0, 3.0])
    grouped = rt.reduce_by_key(t, ("k",), {"best": ("v", "min")})
"""

from .config import MPCConfig
from .cost import CostModel, CostReport, CostTracker
from .distributed import DistributedRuntime
from .local import LocalRuntime
from .machines import Fabric, FleetState
from .optimizer import JoinPlan, Optimizer
from .parallel import ProcessExecutor, WorkerPool, run_partitions
from .plan import LazyTable, PhysProps, PlanLog, PlanNode, Planner
from .runtime import NEG_INF, POS_INF, Runtime, float_sort_key, pack_columns
from .table import Table

__all__ = [
    "MPCConfig",
    "CostModel",
    "CostReport",
    "CostTracker",
    "DistributedRuntime",
    "LocalRuntime",
    "Fabric",
    "FleetState",
    "JoinPlan",
    "LazyTable",
    "Optimizer",
    "PhysProps",
    "PlanLog",
    "PlanNode",
    "Planner",
    "ProcessExecutor",
    "Runtime",
    "WorkerPool",
    "run_partitions",
    "Table",
    "pack_columns",
    "float_sort_key",
    "NEG_INF",
    "POS_INF",
]


def make_runtime(engine: str = "local", config: MPCConfig | None = None,
                 total_words_hint: int = 4096) -> Runtime:
    """Construct a runtime engine by name (``"local"`` or ``"distributed"``)."""
    if engine == "local":
        return LocalRuntime(config)
    if engine == "distributed":
        return DistributedRuntime(config, total_words_hint=total_words_hint)
    raise ValueError(f"unknown engine {engine!r}")
