"""Message-level MPC engine.

Every runtime primitive is realised as an explicit multi-round protocol
over the :class:`~repro.mpc.machines.Fabric`: records are block-
partitioned into shards, machines exchange real packets, and the
per-machine memory cap ``s`` is enforced on every round. The protocols
are the classical [GSZ11] constructions:

* ``sort``   — sample sort (local sort, sampled splitters on machine 0,
  splitter broadcast, bucket routing with tie-spreading, exact block
  rebalance);
* ``scan``   — local segmented scans + carry chain resolved on machine 0;
* ``lookup``/``predecessor`` — co-sort of tagged records + distributed
  forward-fill ("copy down"), then routing answers back to the callers;
* ``reduce_by_key`` — sort, scan, boundary exchange, compaction;
* ``filter``/``scalar`` — compaction / aggregation trees.

Outputs are bit-identical to :class:`~repro.mpc.local.LocalRuntime`
(tests assert this), and model rounds are charged identically; actual
transport rounds are additionally counted by the fabric.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, ProtocolError, ValidationError
from .config import MPCConfig
from .kernels import (
    forward_fill,
    op_combine,
    op_identity,
    segment_starts,
    segmented_scan,
)
from .local import _default_fill
from .machines import Fabric
from .runtime import Runtime, pack_columns, pack_pair
from .table import Table

__all__ = ["DistributedRuntime"]


class DistributedRuntime(Runtime):
    """Message-level engine; see module docstring."""

    def __init__(self, config: MPCConfig | None = None, total_words_hint: int = 4096):
        super().__init__(config)
        self.s = self.config.machine_capacity(total_words_hint)
        self.m = self.config.machine_count(total_words_hint)
        if self.m > self.s:
            raise ValidationError(
                f"deployment has m={self.m} > s={self.s}: single-level protocols "
                f"need m <= s (raise delta or min_machine_words for this input size)"
            )
        self.fabric = Fabric(self.m, self.s, self.tracker)

    # ------------------------------------------------------------------ plumbing

    def _rows_cap(self, ncols: int) -> int:
        return max(1, self.s // (2 * max(1, ncols)))

    def _scatter(self, table: Table) -> Tuple[List[Table], int]:
        cap = self._rows_cap(len(table.columns))
        need = -(-len(table) // cap) if len(table) else 0
        if need > self.m:
            raise CapacityError(self.m - 1, len(table) * len(table.columns),
                                self.m * cap * len(table.columns), what="hold input of")
        shards = []
        for j in range(self.m):
            lo, hi = j * cap, min((j + 1) * cap, len(table))
            if lo >= len(table):
                shards.append(table.head(0))
            else:
                shards.append(table.take(np.arange(lo, hi)))
            self.tracker.observe_machine_words(shards[-1].words)
        return shards, cap

    @staticmethod
    def _gather(shards: List[Table]) -> Table:
        return Table.concat(shards)

    def _broadcast_tree(self, src: int, table: Table) -> List[Table]:
        """Deliver ``table`` to every machine via an f-ary fan-out tree.

        Per round each informed machine forwards at most
        ``f = s // words`` copies, so no machine exceeds its send cap.
        """
        m = self.m
        w = max(1, table.words)
        if 2 * w > self.s:
            raise CapacityError(src, 2 * w, self.s, what="broadcast")
        f = max(1, self.s // w)
        delivered: dict[int, Table] = {src: table}
        while len(delivered) < m:
            outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
            targets = [j for j in range(m) if j not in delivered]
            ti = 0
            for sender in sorted(delivered):
                for _ in range(f):
                    if ti >= len(targets):
                        break
                    outbox[sender].append((targets[ti], table))
                    ti += 1
                if ti >= len(targets):
                    break
            inbox = self.fabric.exchange(outbox)
            for j in range(m):
                if j not in delivered and inbox[j]:
                    delivered[j] = inbox[j][0]
        return [delivered[j] for j in range(m)]

    def _rebalance(self, shards: List[Table], cap: int) -> List[Table]:
        """Exactly block-redistribute shard rows, preserving order (3 rounds)."""
        m = self.m
        # round 1: counts to machine 0
        outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            outbox[j].append((0, Table(__j=[j], __c=[len(sh)])))
        inbox = self.fabric.exchange(outbox)
        counts = np.zeros(m, dtype=np.int64)
        for t in inbox[0]:
            counts[t.col("__j")[0]] = t.col("__c")[0]
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        # round 2: offsets back out
        outbox = [[] for _ in range(m)]
        for j in range(m):
            outbox[0].append((j, Table(__o=[offsets[j]])))
        inbox = self.fabric.exchange(outbox)
        # round 3: route rows to block positions
        outbox = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) == 0:
                continue
            off = int(inbox[j][0].col("__o")[0])
            pos = off + np.arange(len(sh), dtype=np.int64)
            dst = pos // cap
            aug = sh.with_cols(__p=pos)
            for d in np.unique(dst):
                outbox[j].append((int(d), aug.mask(dst == d)))
        inbox = self.fabric.exchange(outbox)
        out = []
        for j in range(m):
            if inbox[j]:
                merged = Table.concat(inbox[j])
                merged = merged.take(np.argsort(merged.col("__p"), kind="stable"))
                out.append(merged.drop("__p"))
            else:
                out.append(shards[j].head(0))
        return out

    # ------------------------------------------------------------------ sort

    def _sort_impl(self, table: Table, key: np.ndarray) -> Table:
        """Sample sort by ``key`` with original-order tiebreak; not charged."""
        n = len(table)
        if n <= 1:
            return table
        aug = table.with_cols(__k=key, __g=np.arange(n, dtype=np.int64))
        shards, cap = self._scatter(aug)
        m = self.m

        def _local_sort(sh: Table) -> Table:
            if len(sh) == 0:
                return sh
            return sh.take(np.lexsort((sh.col("__g"), sh.col("__k"))))

        shards = [_local_sort(sh) for sh in shards]
        # sample round
        q = max(1, min(self.s // max(1, m), 8 * int(np.ceil(np.log2(m + 1)))))
        outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) == 0:
                continue
            take = min(q, len(sh))
            idxs = np.linspace(0, len(sh) - 1, num=take).astype(np.int64)
            outbox[j].append((0, Table(__k=sh.col("__k")[idxs])))
        inbox = self.fabric.exchange(outbox)
        samples = (
            np.sort(np.concatenate([t.col("__k") for t in inbox[0]]))
            if inbox[0]
            else np.empty(0, dtype=np.int64)
        )
        if len(samples) and m > 1:
            pos = (np.arange(1, m, dtype=np.int64) * len(samples)) // m
            splitters = samples[np.minimum(pos, len(samples) - 1)]
        else:
            splitters = np.empty(0, dtype=np.int64)
        # splitter broadcast (fan-out tree)
        sp_everywhere = self._broadcast_tree(0, Table(__s=splitters))
        # bucket routing (monotone tie-spreading keeps total order)
        outbox = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) == 0:
                continue
            sp = sp_everywhere[j].col("__s")
            k, g = sh.col("__k"), sh.col("__g")
            lo = np.searchsorted(sp, k, side="left")
            hi = np.searchsorted(sp, k, side="right")
            bucket = lo + (g * (hi - lo + 1)) // n
            for d in np.unique(bucket):
                outbox[j].append((int(d), sh.mask(bucket == d)))
        inbox = self.fabric.exchange(outbox)
        shards = [
            _local_sort(Table.concat(parts)) if parts else aug.head(0)
            for parts in inbox
        ]
        shards = self._rebalance(shards, cap)
        return self._gather(shards).drop("__k", "__g")

    def sort(self, table: Table, by: Sequence[str]) -> Table:
        key = pack_columns(table, by)
        self.tracker.charge("sort", table.words)
        return self._sort_impl(table, key)

    # ------------------------------------------------------------------ scan

    def _scan_impl(
        self,
        keys: np.ndarray | None,
        values: np.ndarray,
        op: str,
        exclusive: bool,
    ) -> np.ndarray:
        n = len(values)
        if n == 0:
            return values.copy()
        tab = Table(
            __k=keys if keys is not None else np.zeros(n, dtype=np.int64),
            __v=values,
        )
        shards, _ = self._scatter(tab)
        m = self.m
        ident = op_identity(op, values.dtype)
        # local inclusive scans + summaries to machine 0
        local_inc: List[np.ndarray] = []
        outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) == 0:
                local_inc.append(np.empty(0, dtype=values.dtype))
                outbox[j].append((0, Table(__j=[j], __e=[1], __fk=[0], __lk=[0],
                                           __tail=[0.0], __single=[0])))
                continue
            k = sh.col("__k")
            starts = segment_starts(k, len(sh))
            inc = segmented_scan(sh.col("__v"), op, starts, exclusive=False)
            local_inc.append(inc)
            outbox[j].append(
                (0, Table(
                    __j=[j], __e=[0], __fk=[int(k[0])], __lk=[int(k[-1])],
                    __tail=[float(inc[-1])],
                    __single=[int(starts.sum() == 1)],
                ))
            )
        inbox = self.fabric.exchange(outbox)
        info = {}
        for t in inbox[0]:
            info[int(t.col("__j")[0])] = (
                int(t.col("__e")[0]), int(t.col("__fk")[0]), int(t.col("__lk")[0]),
                float(t.col("__tail")[0]), int(t.col("__single")[0]),
            )
        carries = {}
        for j in range(m):
            e, fk, lk, tail, single = info[j]
            if e:
                continue
            carry = None
            for i in range(j - 1, -1, -1):
                ei, fki, lki, taili, singlei = info[i]
                if ei:
                    continue
                if lki != fk:
                    break
                carry = taili if carry is None else op_combine(op, taili, carry)
                if not singlei:
                    break
            if carry is not None:
                carries[j] = carry
        # send carries
        outbox = [[] for _ in range(m)]
        for j, c in carries.items():
            outbox[0].append((j, Table(__c=[float(c)])))
        inbox = self.fabric.exchange(outbox)
        # apply carries; derive exclusive locally
        out_parts: List[np.ndarray] = []
        for j, sh in enumerate(shards):
            inc = local_inc[j]
            if len(sh) == 0:
                out_parts.append(inc)
                continue
            k = sh.col("__k")
            starts = segment_starts(k, len(sh))
            if inbox[j]:
                c = inbox[j][0].col("__c")[0]
                if values.dtype.kind != "f":
                    c = int(c)
                first_run = np.cumsum(starts) == 1  # rows of the leading segment
                upd = np.array(
                    [op_combine(op, c, v) for v in inc[first_run]],
                    dtype=inc.dtype,
                ) if first_run.any() else inc[:0]
                inc = inc.copy()
                inc[first_run] = upd
            else:
                c = None
            if exclusive:
                exc = np.empty_like(inc, dtype=np.float64 if isinstance(ident, float) else inc.dtype)
                exc[1:] = inc[:-1]
                exc[starts] = ident
                if c is not None:
                    exc[0] = c
                out_parts.append(exc)
            else:
                out_parts.append(inc)
        return np.concatenate(out_parts)

    def scan(
        self,
        table: Table,
        value_col: str,
        op: str,
        by: Sequence[str] = (),
        exclusive: bool = False,
        identity=None,
    ) -> np.ndarray:
        self._check_op(op)
        keys = pack_columns(table, by) if by else None
        self.tracker.charge("scan", table.words)
        return self._scan_impl(keys, table.col(value_col), op, exclusive)

    # ------------------------------------------------------------------ joins

    def _copy_down(self, shards: List[Table], cols: Sequence[str]) -> List[Table]:
        """Distributed forward-fill of ``cols`` where __val marks valid rows."""
        m = self.m
        filled: List[Table] = []
        outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) == 0:
                filled.append(sh)
                outbox[j].append((0, Table(__j=[j], __has=[0])))
                continue
            valid = sh.col("__val").astype(bool)
            new_cols = {}
            for c in cols:
                fv, ok = forward_fill(sh.col(c), valid)
                new_cols[c] = fv
            _, ok = forward_fill(sh.col(cols[0]), valid)
            filled.append(sh.with_cols(**new_cols, __val=ok.astype(np.int64)))
            if valid.any():
                last = int(np.flatnonzero(valid)[-1])
                payload = {c: [sh.col(c)[last]] for c in cols}
                outbox[j].append((0, Table(__j=[j], __has=[1], **payload)))
            else:
                outbox[j].append((0, Table(__j=[j], __has=[0])))
        inbox = self.fabric.exchange(outbox)
        info = {}
        for t in inbox[0]:
            j = int(t.col("__j")[0])
            info[j] = t if int(t.col("__has")[0]) else None
        # nearest preceding machine with a valid row
        outbox = [[] for _ in range(m)]
        latest = None
        for j in range(m):
            if latest is not None:
                outbox[0].append((j, latest))
            if info.get(j) is not None:
                latest = info[j]
        inbox = self.fabric.exchange(outbox)
        out = []
        for j, sh in enumerate(filled):
            if len(sh) == 0 or not inbox[j]:
                out.append(sh)
                continue
            carry = inbox[j][0]
            valid = sh.col("__val").astype(bool)
            lead = ~np.logical_or.accumulate(valid)  # prefix of still-invalid rows
            if lead.any():
                new_cols = {}
                for c in cols:
                    col = sh.col(c).copy()
                    col[lead] = carry.col(c)[0]
                    new_cols[c] = col
                v = sh.col("__val").copy()
                v[lead] = 1
                sh = sh.with_cols(**new_cols, __val=v)
            out.append(sh)
        return out

    def _merge_join(
        self,
        queries: Table,
        qk: np.ndarray,
        data: Table,
        dk: np.ndarray,
        payload: Mapping[str, str],
        default: Mapping[str, float] | None,
        exact: bool,
    ) -> Table:
        nq, nd = len(queries), len(data)
        if nq == 0:
            out = {o: _default_fill(0, data.col(s), 0) for o, s in payload.items()}
            return queries.with_cols(**out)
        pay_cols = list(payload.values())
        combo_cols = {
            "__jk": np.concatenate([dk, qk]),
            "__t": np.concatenate(
                [np.zeros(nd, dtype=np.int64), np.ones(nq, dtype=np.int64)]
            ),
            "__q": np.concatenate(
                [np.zeros(nd, dtype=np.int64), np.arange(nq, dtype=np.int64)]
            ),
            "__val": np.concatenate(
                [np.ones(nd, dtype=np.int64), np.zeros(nq, dtype=np.int64)]
            ),
        }
        fill_cols = ["__dk"]
        combo_cols["__dk"] = np.concatenate([dk, np.zeros(nq, dtype=np.int64)])
        for i, src in enumerate(pay_cols):
            arr = data.col(src)
            name = f"__p{i}"
            fill_cols.append(name)
            combo_cols[name] = np.concatenate(
                [arr, np.zeros(nq, dtype=arr.dtype)]
            )
        combo = Table(combo_cols)
        skey = pack_columns(combo, ("__jk", "__t", "__q"))
        scombo = self._sort_impl(combo, skey)
        shards, _ = self._scatter(scombo)
        shards = self._copy_down(shards, fill_cols)
        merged = self._gather(shards)
        is_q = merged.col("__t") == 1
        qrows = merged.mask(is_q)
        hit = qrows.col("__val").astype(bool)
        if exact:
            hit = hit & (qrows.col("__dk") == qrows.col("__jk"))
        if default is None and not hit.all():
            raise ProtocolError("lookup misses with no default")
        # route answers back to query order (1 round via rebalance by __q)
        ans_cols = {"__q": qrows.col("__q"), "__hit": hit.astype(np.int64)}
        for i in range(len(pay_cols)):
            ans_cols[f"__p{i}"] = qrows.col(f"__p{i}")
        ans = Table(ans_cols)
        ans = self._sort_impl(ans, ans.col("__q"))
        out_cols = {}
        hit = ans.col("__hit").astype(bool)
        for i, (out_name, src_name) in enumerate(payload.items()):
            src = data.col(src_name)
            got = ans.col(f"__p{i}")
            if hit.all():
                out_cols[out_name] = got.astype(src.dtype, copy=False)
            else:
                col = _default_fill(nq, src, default[out_name])
                col[hit] = got[hit].astype(col.dtype, copy=False)
                out_cols[out_name] = col
        return queries.with_cols(**out_cols)

    def lookup(
        self,
        queries: Table,
        qkey: Sequence[str],
        data: Table,
        dkey: Sequence[str],
        payload: Mapping[str, str],
        default: Mapping[str, float] | None = None,
        check_unique: bool = True,
    ) -> Table:
        qk, dk = pack_pair(queries, qkey, data, dkey)
        if check_unique and len(dk) > 1:
            sdk = np.sort(dk)
            if np.any(sdk[1:] == sdk[:-1]):
                raise ProtocolError("lookup data has duplicate keys")
        self.tracker.charge("lookup", queries.words + data.words)
        return self._merge_join(queries, qk, data, dk, payload, default, exact=True)

    def predecessor(
        self,
        queries: Table,
        qkey: str,
        data: Table,
        dkey: str,
        payload: Mapping[str, str],
        default: Mapping[str, float],
    ) -> Table:
        qk = queries.col(qkey)
        dk = data.col(dkey)
        if qk.dtype.kind != "i" or dk.dtype.kind != "i":
            raise ValidationError("predecessor keys must be integer columns")
        self.tracker.charge("predecessor", queries.words + data.words)
        return self._merge_join(queries, qk, data, dk, payload, default, exact=False)

    # ------------------------------------------------------------------ reduce

    def reduce_by_key(
        self,
        table: Table,
        by: Sequence[str],
        aggs: Mapping[str, Tuple[str, str]],
    ) -> Table:
        for _, (_, op) in aggs.items():
            self._check_op(op)
        key = pack_columns(table, by)
        self.tracker.charge("reduce", table.words)
        n = len(table)
        if n == 0:
            out = {c: table.col(c)[:0] for c in by}
            for out_name, (src_name, _) in aggs.items():
                out[out_name] = table.col(src_name)[:0]
            return Table(out)
        need = list(dict.fromkeys(list(by) + [s for s, _ in aggs.values()]))
        aug = table.select(need).with_cols(__rk=key)
        saug = self._sort_impl(aug, key)
        sk = saug.col("__rk")
        results = {}
        for out_name, (src_name, op) in aggs.items():
            results[out_name] = self._scan_impl(sk, saug.col(src_name), op, False)
        # boundary exchange: last row of each key group holds the aggregate
        shards, cap = self._scatter(saug)
        m = self.m
        outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) and j > 0:
                outbox[j].append((j - 1, Table(__nk=[int(sh.col("__rk")[0])])))
        inbox = self.fabric.exchange(outbox)
        keep = np.zeros(n, dtype=bool)
        offset = 0
        for j, sh in enumerate(shards):
            ln = len(sh)
            if ln == 0:
                continue
            k = sh.col("__rk")
            last = np.zeros(ln, dtype=bool)
            last[:-1] = k[:-1] != k[1:]
            nxt = None
            for t in inbox[j]:
                nxt = int(t.col("__nk")[0])
            last[-1] = nxt is None or nxt != int(k[-1])
            keep[offset: offset + ln] = last
            offset += ln
        out = {c: saug.col(c)[keep] for c in by}
        for out_name in aggs:
            out[out_name] = results[out_name][keep]
        # charge a physical compaction round
        self.fabric.exchange([[] for _ in range(m)])
        return Table(out)

    # ------------------------------------------------------------------ misc

    def filter(self, table: Table, mask: np.ndarray) -> Table:
        self.tracker.charge("filter", table.words)
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(table):
            raise ValidationError("mask length mismatch")
        if len(table) == 0:
            return table
        shards, cap = self._scatter(table.with_cols(__m=mask.astype(np.int64)))
        shards = [sh.mask(sh.col("__m").astype(bool)).drop("__m") for sh in shards]
        shards = self._rebalance(shards, cap)
        return self._gather(shards)

    def scalar(self, table: Table, value_col: str, op: str):
        self._check_op(op)
        vals = table.col(value_col)
        self.tracker.charge("scalar", table.words)
        if len(vals) == 0:
            return op_identity(op, vals.dtype)
        shards, _ = self._scatter(Table(__v=vals))
        m = self.m
        outbox: List[List[Tuple[int, Table]]] = [[] for _ in range(m)]
        for j, sh in enumerate(shards):
            if len(sh) == 0:
                continue
            v = sh.col("__v")
            part = v.sum() if op == "sum" else (v.max() if op == "max" else v.min())
            outbox[j].append((0, Table(__v=[part])))
        inbox = self.fabric.exchange(outbox)
        parts = np.array([t.col("__v")[0] for t in inbox[0]])
        total = parts.sum() if op == "sum" else (parts.max() if op == "max" else parts.min())
        # broadcast round (physical, result conceptually known everywhere)
        self.fabric.exchange([[] for _ in range(m)])
        if vals.dtype.kind != "f":
            return int(total)
        return float(total)
