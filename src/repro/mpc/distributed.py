"""Message-level MPC engine on the columnar fabric.

Every runtime primitive is realised as an explicit multi-round protocol
over the :class:`~repro.mpc.machines.Fabric`: records are block-
partitioned into shards, machines exchange real (now columnar) rounds,
and the per-machine memory cap ``s`` is enforced on every round. The
protocols are the classical [GSZ11] constructions:

* ``sort``   — sample sort (local sort, sampled splitters on machine 0,
  splitter broadcast, bucket routing with tie-spreading, exact block
  rebalance);
* ``scan``   — local segmented scans + carry chain resolved on machine 0;
* ``lookup``/``predecessor`` — co-sort of tagged records + distributed
  forward-fill ("copy down"), then routing answers back to the callers;
* ``reduce_by_key`` — sort, scan, boundary exchange, compaction;
* ``filter``/``scalar`` — compaction / aggregation trees.

Rather than materialising ``m`` per-machine ``Table`` shards and packet
lists, the engine keeps the fleet as whole struct-of-arrays columns plus
a machine-id column (machine-major, so shard ``j`` is a contiguous
block) and executes each protocol phase with whole-fleet NumPy kernels:
bulk routing is one :meth:`Fabric.route` permutation, constant-size
control traffic (counts, offsets, summaries, carries) goes through
:meth:`Fabric.control` with exact per-machine word vectors. Round
structure, capacity enforcement and delivery order are identical to a
packet-by-packet simulation — only the interpreter-level per-packet work
is gone (see DESIGN.md §2.4).

Outputs are bit-identical to :class:`~repro.mpc.local.LocalRuntime`
(tests assert this), and model rounds are charged identically; actual
transport rounds are additionally counted by the fabric.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, ProtocolError, ValidationError
from .config import MPCConfig
from .kernels import (
    op_combine,
    op_identity,
    segmented_scan,
)
from .local import _default_fill, _sorted_order
from .machines import Fabric, FleetState
from .runtime import Runtime, pack_columns, pack_pair
from .table import Table

__all__ = ["DistributedRuntime"]


class DistributedRuntime(Runtime):
    """Message-level engine; see module docstring.

    Under the planner this engine runs in *record* mode (no
    ``"rewrite"`` capability): the logical plan is captured and
    property-proven check elisions apply (e.g. the duplicate-key scan
    of a lookup fused with its producing reduce), but every protocol
    executes in full — the transport-round schedule is part of the
    engine's contract and must stay bit-identical, planned or eager.

    ``MPCConfig(executor="process")`` is accepted but intra-plan
    dispatch is a deliberate no-op here for the same reason (there is
    no uncharged physical segment to ship); workload-level partitions
    (:func:`repro.mpc.parallel.run_partitions`) still parallelise whole
    record-mode pipelines across worker processes.
    """

    def __init__(self, config: MPCConfig | None = None, total_words_hint: int = 4096):
        super().__init__(config)
        self.s = self.config.machine_capacity(total_words_hint)
        self.m = self.config.machine_count(total_words_hint)
        if self.m > self.s:
            raise ValidationError(
                f"deployment has m={self.m} > s={self.s}: single-level protocols "
                f"need m <= s (raise delta or min_machine_words for this input size)"
            )
        self.fabric = Fabric(self.m, self.s, self.tracker)

    # ------------------------------------------------------------------ plumbing

    def _rows_cap(self, ncols: int) -> int:
        return max(1, self.s // (2 * max(1, ncols)))

    def _scatter(self, n: int, ncols: int) -> Tuple[int, int]:
        """Block-partition ``n`` rows of ``ncols``-word records over the fleet.

        Machine ``j`` holds rows ``[j*cap, (j+1)*cap)`` — the machine-id
        column is implicit in the row position, so scattering costs no
        data movement in the simulation (the input is modelled as
        arriving pre-partitioned). Returns ``(cap, need)`` where ``need``
        is the number of non-empty shards.
        """
        cap = self._rows_cap(ncols)
        need = -(-n // cap) if n else 0
        if need > self.m:
            raise CapacityError(self.m - 1, n * ncols, self.m * cap * ncols,
                                what="hold input of")
        self.tracker.observe_machine_words(min(cap, n) * ncols)
        return cap, need

    def _block_counts(self, n: int, cap: int) -> np.ndarray:
        """Per-machine row counts of the exact block partition."""
        counts = np.zeros(self.m, dtype=np.int64)
        if n:
            need = -(-n // cap)
            counts[:need] = cap
            counts[need - 1] = n - (need - 1) * cap
        return counts

    def _block_mid(self, n: int, cap: int) -> np.ndarray:
        return np.arange(n, dtype=np.int64) // cap

    def _broadcast_tree(self, src: int, table: Table) -> List[Table]:
        """Deliver ``table`` to every machine via an f-ary fan-out tree.

        Per round each informed machine forwards at most
        ``f = s // words`` copies, so no machine exceeds its send cap;
        the number of informed machines grows by ``min(f * informed,
        remaining)`` per round. The fabric charges each fan-out round
        (words moved = newly informed x table words).
        """
        m = self.m
        w = max(1, table.words)
        if 2 * w > self.s:
            raise CapacityError(src, 2 * w, self.s, what="broadcast")
        f = max(1, self.s // w)
        # uninformed machines are informed in ascending id order; senders
        # (sorted, each forwarding up to f copies) stay under the send cap
        # by construction of f — the fabric still checks every round
        others = np.setdiff1d(np.arange(m, dtype=np.int64), [src])
        informed = np.array([src], dtype=np.int64)
        ti = 0
        while ti < len(others):
            newly = min(f * len(informed), len(others) - ti)
            send = np.zeros(m, dtype=np.int64)
            recv = np.zeros(m, dtype=np.int64)
            nfull, rem = divmod(newly, f)
            senders = np.sort(informed)
            send[senders[:nfull]] = f * w
            if rem:
                send[senders[nfull]] = rem * w
            recv[others[ti:ti + newly]] = w
            self.fabric.control(send, recv)
            informed = np.concatenate([informed, others[ti:ti + newly]])
            ti += newly
        return [table] * m

    def _rebalance(self, counts: np.ndarray, ncols: int, cap: int) -> None:
        """Exactly block-redistribute shard rows, preserving order (3 rounds).

        On the columnar fleet the rows are already held in global
        (machine-major) order, so the redistribution itself is a no-op
        permutation; the three protocol rounds — counts to machine 0,
        offsets back out, rows to their block positions (each row
        shipped with its global-position word ``__p``) — are charged
        with their exact per-machine word vectors.
        """
        m = self.m
        n = int(counts.sum())
        # round 1: counts to machine 0 (every machine reports, 2 words each)
        send = np.full(m, 2, dtype=np.int64)
        recv = np.zeros(m, dtype=np.int64)
        recv[0] = 2 * m
        self.fabric.control(send, recv)
        # round 2: offsets back out (1 word to each machine)
        send = np.zeros(m, dtype=np.int64)
        send[0] = m
        recv = np.ones(m, dtype=np.int64)
        self.fabric.control(send, recv)
        # round 3: route rows to block positions (records carry __p)
        send = counts * (ncols + 1)
        recv = self._block_counts(n, cap) * (ncols + 1)
        self.fabric.control(send, recv)

    # ------------------------------------------------------------------ sort

    def _sort_impl(self, table: Table, key: np.ndarray) -> Table:
        """Sample sort by ``key`` with original-order tiebreak; not charged."""
        n = len(table)
        if n <= 1:
            return table
        m = self.m
        ncols = len(dict.fromkeys((*table.columns, "__k", "__g")))
        cap, need = self._scatter(n, ncols)
        k = np.asarray(key)
        g = np.arange(n, dtype=np.int64)
        # local sort inside each shard by (key, original order): shards are
        # contiguous blocks, so one machine-major lexsort does all of them
        mid = self._block_mid(n, cap)
        perm = np.lexsort((g, k, mid))
        k, g = k[perm], g[perm]
        counts = self._block_counts(n, cap)
        offs = np.concatenate(([0], np.cumsum(counts)))
        # sample round: q evenly spaced local keys from every shard to 0
        q = max(1, min(self.s // max(1, m), 8 * int(np.ceil(np.log2(m + 1)))))
        send = np.zeros(m, dtype=np.int64)
        sample_parts = []
        for j in range(need):
            lj = int(counts[j])
            take = min(q, lj)
            idxs = offs[j] + np.linspace(0, lj - 1, num=take).astype(np.int64)
            sample_parts.append(k[idxs])
            send[j] = take
        recv = np.zeros(m, dtype=np.int64)
        recv[0] = int(send.sum())
        self.fabric.control(send, recv)
        samples = (
            np.sort(np.concatenate(sample_parts))
            if sample_parts
            else np.empty(0, dtype=np.int64)
        )
        if len(samples) and m > 1:
            pos = (np.arange(1, m, dtype=np.int64) * len(samples)) // m
            splitters = samples[np.minimum(pos, len(samples) - 1)]
        else:
            splitters = np.empty(0, dtype=np.int64)
        # splitter broadcast (fan-out tree)
        self._broadcast_tree(0, Table(__s=splitters))
        # bucket routing (monotone tie-spreading keeps total order)
        lo = np.searchsorted(splitters, k, side="left")
        hi = np.searchsorted(splitters, k, side="right")
        bucket = lo + (g * (hi - lo + 1)) // n
        state = self.fabric.route(
            FleetState({"k": k, "g": g, "perm": perm}, mid), bucket, ncols
        )
        # local sort of the received buckets
        order = np.lexsort((state.cols["g"], state.cols["k"], state.mid))
        perm = state.cols["perm"][order]
        self._rebalance(np.bincount(state.mid, minlength=m), ncols, cap)
        return table.take(perm)

    def _sort(self, table: Table, by: Sequence[str]) -> Table:
        key = pack_columns(table, by)
        self.tracker.charge("sort", table.words)
        return self._sort_impl(table, key)

    # ------------------------------------------------------------------ scan

    def _scan_impl(
        self,
        keys: np.ndarray | None,
        values: np.ndarray,
        op: str,
        exclusive: bool,
    ) -> np.ndarray:
        n = len(values)
        if n == 0:
            return values.copy()
        m = self.m
        cap, need = self._scatter(n, 2)  # records are (__k, __v) pairs
        counts = self._block_counts(n, cap)
        offs = np.concatenate(([0], np.cumsum(counts)))
        firsts = offs[:need]
        k = keys if keys is not None else np.zeros(n, dtype=np.int64)
        # segment starts, with every machine boundary restarting the local scan
        starts = np.zeros(n, dtype=bool)
        starts[0] = True
        starts[1:] = k[1:] != k[:-1]
        starts[firsts] = True
        if op == "sum" and values.dtype.kind == "f":
            # float cumsums must accumulate shard-locally to reproduce the
            # per-machine rounding of a real deployment bit-for-bit
            inc = np.empty_like(values)
            for j in range(need):
                lo, hi = int(offs[j]), int(offs[j + 1])
                inc[lo:hi] = segmented_scan(values[lo:hi], op, starts[lo:hi])
        else:
            inc = segmented_scan(values, op, starts)
        # summaries to machine 0: (__j, __e, __fk, __lk, __tail, __single)
        lasts = offs[1:need + 1] - 1
        nseg = (np.add.reduceat(starts.astype(np.int64), firsts)
                if need else np.empty(0, dtype=np.int64))
        info = {}
        for j in range(m):
            if j >= need:
                info[j] = (1, 0, 0, 0.0, 0)
            else:
                info[j] = (0, int(k[firsts[j]]), int(k[lasts[j]]),
                           float(inc[lasts[j]]), int(nseg[j] == 1))
        send = np.full(m, 6, dtype=np.int64)
        recv = np.zeros(m, dtype=np.int64)
        recv[0] = 6 * m
        self.fabric.control(send, recv)
        # machine 0 resolves the carry chain
        carries = {}
        for j in range(m):
            e, fk, lk, tail, single = info[j]
            if e:
                continue
            carry = None
            for i in range(j - 1, -1, -1):
                ei, fki, lki, taili, singlei = info[i]
                if ei:
                    continue
                if lki != fk:
                    break
                carry = taili if carry is None else op_combine(op, taili, carry)
                if not singlei:
                    break
            if carry is not None:
                carries[j] = carry
        # send carries (1 word each)
        send = np.zeros(m, dtype=np.int64)
        recv = np.zeros(m, dtype=np.int64)
        send[0] = len(carries)
        for j in carries:
            recv[j] = 1
        self.fabric.control(send, recv)
        # apply carries to each leading segment; derive exclusive locally
        applied = {}
        for j, c in carries.items():
            if values.dtype.kind != "f":
                c = int(c)
            applied[j] = c
            lo, hi = int(offs[j]), int(offs[j + 1])
            rel = np.flatnonzero(starts[lo + 1:hi])
            end = lo + 1 + int(rel[0]) if len(rel) else hi
            seg = inc[lo:end]
            if op == "sum":
                upd = c + seg
            elif op == "max":
                upd = np.where(c >= seg, c, seg)
            else:
                upd = np.where(c <= seg, c, seg)
            inc[lo:end] = upd.astype(inc.dtype, copy=False)
        if not exclusive:
            return inc
        ident = op_identity(op, values.dtype)
        exc = np.empty_like(
            inc, dtype=np.float64 if isinstance(ident, float) else inc.dtype
        )
        exc[1:] = inc[:-1]
        exc[starts] = ident
        for j, c in applied.items():
            exc[int(offs[j])] = c
        return exc

    def _scan(
        self,
        table: Table,
        value_col: str,
        op: str,
        by: Sequence[str] = (),
        exclusive: bool = False,
        identity=None,
    ) -> np.ndarray:
        self._check_op(op)
        keys = pack_columns(table, by) if by else None
        self.tracker.charge("scan", table.words)
        return self._scan_impl(keys, table.col(value_col), op, exclusive)

    # ------------------------------------------------------------------ joins

    def _copy_down(
        self, table: Table, cols: Sequence[str], cap: int
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Distributed forward-fill of ``cols`` where ``__val`` marks valid rows.

        Round 1: every machine forward-fills locally and reports its last
        valid row (or ``has=0``) to machine 0; round 2: machine 0 sends
        each machine the nearest *preceding* valid row, which fills the
        machine's still-invalid leading prefix. The composition equals a
        plain fleet-wide forward fill, so that is what the columnar
        engine computes — the two rounds are charged with the exact
        per-machine payload words.
        """
        n = len(table)
        m = self.m
        counts = self._block_counts(n, cap)
        need = int(np.count_nonzero(counts))
        firsts = np.concatenate(([0], np.cumsum(counts)))[:need]
        valid = table.col("__val").astype(bool)
        F = len(cols)
        hasj = np.zeros(m, dtype=bool)
        if need:
            hasj[:need] = np.logical_or.reduceat(valid, firsts)
        # round 1: last valid row (2 + F words) or a has=0 marker (2 words)
        send = np.where(hasj, 2 + F, 2).astype(np.int64)
        recv = np.zeros(m, dtype=np.int64)
        recv[0] = int(send.sum())
        self.fabric.control(send, recv)
        # round 2: nearest preceding valid row to every later machine
        send = np.zeros(m, dtype=np.int64)
        recv = np.zeros(m, dtype=np.int64)
        with_valid = np.flatnonzero(hasj)
        if len(with_valid):
            fv = int(with_valid[0])
            send[0] = (m - fv - 1) * (2 + F)
            recv[fv + 1:] = 2 + F
        self.fabric.control(send, recv)
        # the rounds above realise exactly a fleet-wide forward fill
        idx = np.where(valid, np.arange(n, dtype=np.int64), -1)
        idx = np.maximum.accumulate(idx)
        ok = idx >= 0
        gather = np.maximum(idx, 0)
        filled = {}
        for c in cols:
            v = table.col(c)
            out = v.copy()
            out[ok] = v[gather[ok]]
            filled[c] = out
        return filled, ok

    def _merge_join(
        self,
        queries: Table,
        qk: np.ndarray,
        data: Table,
        dk: np.ndarray,
        payload: Mapping[str, str],
        default: Mapping[str, float] | None,
        exact: bool,
    ) -> Table:
        nq, nd = len(queries), len(data)
        if nq == 0:
            out = {o: _default_fill(0, data.col(s), 0) for o, s in payload.items()}
            return queries.with_cols(**out)
        pay_cols = list(payload.values())
        combo_cols = {
            "__jk": np.concatenate([dk, qk]),
            "__t": np.concatenate(
                [np.zeros(nd, dtype=np.int64), np.ones(nq, dtype=np.int64)]
            ),
            "__q": np.concatenate(
                [np.zeros(nd, dtype=np.int64), np.arange(nq, dtype=np.int64)]
            ),
            "__val": np.concatenate(
                [np.ones(nd, dtype=np.int64), np.zeros(nq, dtype=np.int64)]
            ),
        }
        fill_cols = ["__dk"]
        combo_cols["__dk"] = np.concatenate([dk, np.zeros(nq, dtype=np.int64)])
        for i, src in enumerate(pay_cols):
            arr = data.col(src)
            name = f"__p{i}"
            fill_cols.append(name)
            combo_cols[name] = np.concatenate(
                [arr, np.zeros(nq, dtype=arr.dtype)]
            )
        combo = Table(combo_cols)
        skey = pack_columns(combo, ("__jk", "__t", "__q"))
        scombo = self._sort_impl(combo, skey)
        cap, _ = self._scatter(len(scombo), len(scombo.columns))
        filled, ok = self._copy_down(scombo, fill_cols, cap)
        merged = scombo.with_cols(**filled, __val=ok.astype(np.int64))
        is_q = merged.col("__t") == 1
        qrows = merged.mask(is_q)
        hit = qrows.col("__val").astype(bool)
        if exact:
            hit = hit & (qrows.col("__dk") == qrows.col("__jk"))
        if default is None and not hit.all():
            raise ProtocolError("lookup misses with no default")
        # route answers back to query order (1 round via rebalance by __q)
        ans_cols = {"__q": qrows.col("__q"), "__hit": hit.astype(np.int64)}
        for i in range(len(pay_cols)):
            ans_cols[f"__p{i}"] = qrows.col(f"__p{i}")
        ans = Table(ans_cols)
        ans = self._sort_impl(ans, ans.col("__q"))
        out_cols = {}
        hit = ans.col("__hit").astype(bool)
        for i, (out_name, src_name) in enumerate(payload.items()):
            src = data.col(src_name)
            got = ans.col(f"__p{i}")
            if hit.all():
                out_cols[out_name] = got.astype(src.dtype, copy=False)
            else:
                col = _default_fill(nq, src, default[out_name])
                col[hit] = got[hit].astype(col.dtype, copy=False)
                out_cols[out_name] = col
        return queries.with_cols(**out_cols)

    def _lookup(
        self,
        queries: Table,
        qkey: Sequence[str],
        data: Table,
        dkey: Sequence[str],
        payload: Mapping[str, str],
        default: Mapping[str, float] | None = None,
        check_unique: bool = True,
    ) -> Table:
        qk, dk = pack_pair(queries, qkey, data, dkey)
        if check_unique and len(dk) > 1:
            order = _sorted_order(dk)
            sdk = dk if order is None else dk[order]
            if np.any(sdk[1:] == sdk[:-1]):
                raise ProtocolError("lookup data has duplicate keys")
        self.tracker.charge("lookup", queries.words + data.words)
        return self._merge_join(queries, qk, data, dk, payload, default, exact=True)

    def _predecessor(
        self,
        queries: Table,
        qkey: str,
        data: Table,
        dkey: str,
        payload: Mapping[str, str],
        default: Mapping[str, float],
    ) -> Table:
        qk = queries.col(qkey)
        dk = data.col(dkey)
        if qk.dtype.kind != "i" or dk.dtype.kind != "i":
            raise ValidationError("predecessor keys must be integer columns")
        self.tracker.charge("predecessor", queries.words + data.words)
        return self._merge_join(queries, qk, data, dk, payload, default, exact=False)

    # ------------------------------------------------------------------ reduce

    def _reduce_by_key(
        self,
        table: Table,
        by: Sequence[str],
        aggs: Mapping[str, Tuple[str, str]],
    ) -> Table:
        for _, (_, op) in aggs.items():
            self._check_op(op)
        key = pack_columns(table, by)
        self.tracker.charge("reduce", table.words)
        n = len(table)
        if n == 0:
            out = {c: table.col(c)[:0] for c in by}
            for out_name, (src_name, _) in aggs.items():
                out[out_name] = table.col(src_name)[:0]
            return Table(out)
        need = list(dict.fromkeys(list(by) + [s for s, _ in aggs.values()]))
        aug = table.select(need).with_cols(__rk=key)
        saug = self._sort_impl(aug, key)
        sk = saug.col("__rk")
        results = {}
        for out_name, (src_name, op) in aggs.items():
            results[out_name] = self._scan_impl(sk, saug.col(src_name), op, False)
        # boundary exchange: each machine ships its first key to its
        # predecessor so the last row of every key group can be found
        m = self.m
        cap, nneed = self._scatter(n, len(saug.columns))
        send = np.zeros(m, dtype=np.int64)
        recv = np.zeros(m, dtype=np.int64)
        if nneed > 1:
            send[1:nneed] = 1
            recv[:nneed - 1] = 1
        self.fabric.control(send, recv)
        # shards are contiguous, so a machine-last row keeps iff its key
        # differs from the next machine's first key — i.e. the next row
        keep = np.empty(n, dtype=bool)
        keep[:-1] = sk[:-1] != sk[1:]
        keep[-1] = True
        out = {c: saug.col(c)[keep] for c in by}
        for out_name in aggs:
            out[out_name] = results[out_name][keep]
        # charge a physical compaction round
        zeros = np.zeros(m, dtype=np.int64)
        self.fabric.control(zeros, zeros)
        return Table(out)

    # ------------------------------------------------------------------ misc

    def _filter(self, table: Table, mask: np.ndarray) -> Table:
        self.tracker.charge("filter", table.words)
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(table):
            raise ValidationError("mask length mismatch")
        n = len(table)
        if n == 0:
            return table
        ncols_in = len(dict.fromkeys((*table.columns, "__m")))
        cap, _ = self._scatter(n, ncols_in)
        # compaction is shard-local and free; the survivors then block-
        # rebalance (3 rounds) carrying their original columns
        mid = self._block_mid(n, cap)
        kept = np.bincount(mid[mask], minlength=self.m)
        self._rebalance(kept, len(table.columns), cap)
        return table.mask(mask)

    def _scalar(self, table: Table, value_col: str, op: str):
        self._check_op(op)
        vals = table.col(value_col)
        self.tracker.charge("scalar", table.words)
        if len(vals) == 0:
            return op_identity(op, vals.dtype)
        n = len(vals)
        m = self.m
        cap, need = self._scatter(n, 1)
        offs = np.concatenate(([0], np.cumsum(self._block_counts(n, cap))))
        parts = []
        for j in range(need):
            v = vals[offs[j]:offs[j + 1]]
            parts.append(v.sum() if op == "sum" else (v.max() if op == "max" else v.min()))
        send = np.zeros(m, dtype=np.int64)
        send[:need] = 1
        recv = np.zeros(m, dtype=np.int64)
        recv[0] = need
        self.fabric.control(send, recv)
        parts = np.array(parts)
        total = parts.sum() if op == "sum" else (parts.max() if op == "max" else parts.min())
        # broadcast round (physical, result conceptually known everywhere)
        zeros = np.zeros(m, dtype=np.int64)
        self.fabric.control(zeros, zeros)
        if vals.dtype.kind != "f":
            return int(total)
        return float(total)
