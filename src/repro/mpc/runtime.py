"""The MPC dataflow runtime API shared by both engines.

Algorithms in :mod:`repro.trees` and :mod:`repro.core` are written against
this interface only; they never touch machines directly. The primitives
correspond to the classical O(1)-round MPC building blocks [GSZ11]:

- :meth:`Runtime.sort` — global sort of a record table by integer keys;
- :meth:`Runtime.scan` — (segmented) prefix aggregation in current order;
- :meth:`Runtime.lookup` — equi-join against a unique-key table
  ("bring the value to the record");
- :meth:`Runtime.predecessor` — merge-rank join: for each query key the
  payload of the last data row with key <= query (powers interval
  stabbing / "which cluster contains this vertex" searches);
- :meth:`Runtime.reduce_by_key` — grouped min/max/sum;
- :meth:`Runtime.filter` — compaction of a filtered table;
- :meth:`Runtime.scalar` — global aggregate broadcast to every machine.

Row-aligned NumPy arithmetic on columns is free (it models local
computation on records already resident on a machine within a round).

Keys are int64 columns; composite keys are packed into a single 63-bit
word via :func:`pack_columns` (with overflow checking) so that both the
vectorised and the message-level engine compare them identically.
"""

from __future__ import annotations

import contextlib
import functools
import time
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..errors import KeyPackingError, ProtocolError, ValidationError
from .config import MPCConfig
from .cost import CostModel, CostReport, CostTracker
from .table import Table

__all__ = [
    "Runtime",
    "pack_columns",
    "float_sort_key",
    "AGG_OPS",
    "NEG_INF",
    "POS_INF",
]

#: Sentinels used for "no value" in weight columns. Weights in instances are
#: finite; +/-inf survive max/min reductions as identities.
NEG_INF = float("-inf")
POS_INF = float("inf")

#: Supported aggregation operators for scans and reductions.
AGG_OPS = ("sum", "max", "min")


def pack_columns(table: Table, cols: Sequence[str]) -> np.ndarray:
    """Pack integer key columns into one int64 preserving lexicographic order.

    Each column is shifted to be non-negative and assigned a stride equal
    to the product of later columns' ranges. Raises
    :class:`~repro.errors.KeyPackingError` if 63 bits do not suffice.
    """
    cols = list(cols)
    if not cols:
        raise ValidationError("pack_columns needs at least one key column")
    if len(cols) == 1:
        arr = table.col(cols[0])
        if arr.dtype.kind != "i":
            raise KeyPackingError(f"key column {cols[0]!r} must be integer")
        return arr
    arrays = []
    ranges = []
    for c in cols:
        arr = table.col(c)
        if arr.dtype.kind != "i":
            raise KeyPackingError(f"key column {c!r} must be integer")
        if len(arr) == 0:
            return np.empty(0, dtype=np.int64)
        lo = int(arr.min())
        hi = int(arr.max())
        arrays.append(arr - lo)
        ranges.append(hi - lo + 1)
    packed = np.zeros(len(arrays[0]), dtype=np.int64)
    limit = 1 << 62
    stride = 1
    for arr, rng in zip(reversed(arrays), reversed(ranges)):
        packed = packed + arr * stride
        stride *= rng
        if stride > limit:
            raise KeyPackingError(
                f"composite key {cols} exceeds 62 bits (stride {stride})"
            )
    return packed


def pack_pair(
    left: Table, lcols: Sequence[str], right: Table, rcols: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack composite keys of two tables with *shared* bounds.

    Keys joined across tables must be packed with identical offsets and
    strides, otherwise equal tuples pack to different words. Returns the
    packed key arrays ``(left_keys, right_keys)``.
    """
    lcols, rcols = list(lcols), list(rcols)
    if len(lcols) != len(rcols):
        raise ValidationError("join key arity mismatch")
    if len(lcols) == 1:
        lk = left.col(lcols[0])
        rk = right.col(rcols[0])
        if lk.dtype.kind != "i" or rk.dtype.kind != "i":
            raise KeyPackingError("join keys must be integer columns")
        return lk, rk
    nl, nr = len(left), len(right)
    combined = Table(
        {
            f"k{i}": np.concatenate([left.col(lc), right.col(rc)])
            for i, (lc, rc) in enumerate(zip(lcols, rcols))
        }
    )
    packed = pack_columns(combined, [f"k{i}" for i in range(len(lcols))])
    return packed[:nl], packed[nl:]


def float_sort_key(values: np.ndarray) -> np.ndarray:
    """Map float64 values to int64 keys with the same total order.

    Standard IEEE-754 trick: reinterpret bits, then flip negative values'
    magnitude bits (and the sign bit of non-negatives).
    """
    v = np.ascontiguousarray(values, dtype=np.float64)
    bits = v.view(np.int64)
    return np.where(bits < 0, np.int64(-0x8000000000000000) - bits - 1, bits)


#: Engine method -> cost-phase primitive name (for wall attribution).
#: The charged eager implementations are wrapped; the planner times its
#: own record+execute path and reports through the same channel.
_TIMED_PRIMITIVES = {
    "_sort": "sort",
    "_scan": "scan",
    "_lookup": "lookup",
    "_predecessor": "predecessor",
    "_reduce_by_key": "reduce",
    "_filter": "filter",
    "_scalar": "scalar",
}


def _timed_method(primitive: str, fn):
    @functools.wraps(fn)
    def run(self, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return fn(self, *args, **kwargs)
        finally:
            self.tracker.record_wall(primitive, time.perf_counter() - t0)

    run._wall_timed = True
    return run


class Runtime(ABC):
    """Abstract MPC engine; see module docstring for the primitive set.

    Primitives are *logical* operations: calling one charges its rounds
    and memory immediately (the logical plan is the charged op stream —
    the object of the paper's round claims). Physical execution runs
    through the planner (:mod:`.plan`) when ``config.planner`` is set:
    sorts defer to flush points and the optimizer elides/fuses provably
    redundant physical work, with outputs and :class:`CostReport`
    bit-identical to eager execution. With the planner off, the
    engine's charged eager implementations (``_sort`` ...) run
    directly, exactly as before.
    """

    #: Planner capability flags; ``{"rewrite"}`` enables the full
    #: physical rule set (requires the ``_exec_*`` executor split).
    plan_capabilities: frozenset = frozenset()

    def __init_subclass__(cls, **kwargs):
        # per-primitive wall attribution (``CostTracker.wall_profile``):
        # wrap each concrete engine's primitives at class-definition time
        # (instances stay clean and picklable) so both engines report
        # where the time actually goes
        super().__init_subclass__(**kwargs)
        for meth, prim in _TIMED_PRIMITIVES.items():
            fn = cls.__dict__.get(meth)
            if fn is not None and not getattr(fn, "_wall_timed", False):
                setattr(cls, meth, _timed_method(prim, fn))

    def __init__(self, config: MPCConfig | None = None):
        self.config = config or MPCConfig()
        self.tracker = CostTracker(CostModel(mode=self.config.cost_mode,
                                             delta=self.config.delta))
        self._rng = np.random.default_rng(self.config.seed)
        if self.config.planner:
            from .plan import Planner

            self._planner = Planner(self)
            if (self.config.executor == "process"
                    and "rewrite" in self.plan_capabilities):
                # process dispatch needs the executor split (_exec_*):
                # record-mode engines run their full message-level
                # protocol per node — the transport schedule is the
                # physical truth there, so there is nothing to ship
                from .parallel import ProcessExecutor

                self._planner.executor = ProcessExecutor(self._planner,
                                                         self.config)
        else:
            self._planner = None

    # -- bookkeeping ------------------------------------------------------------

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def planner(self):
        """The logical-plan recorder/executor (``None`` when disabled)."""
        return self._planner

    def flush_plan(self) -> None:
        """Execute pending deferred plan nodes (an explicit flush point)."""
        if self._planner is not None:
            self._planner.flush()

    @contextlib.contextmanager
    def phase(self, name: str):
        """Attribute all rounds charged inside the block to ``name``."""
        self.tracker.push_phase(name)
        try:
            yield self
        finally:
            # phase exits are flush points: deferred nodes recorded in
            # this phase execute before the phase closes
            if self._planner is not None:
                self._planner.flush()
            self.tracker.pop_phase(name)

    def report(self) -> CostReport:
        self.flush_plan()
        return self.tracker.report()

    @property
    def rounds(self) -> int:
        return self.tracker.rounds_total

    def retain(self, key: str, table_or_words) -> None:
        words = table_or_words.words if isinstance(table_or_words, Table) else int(table_or_words)
        self.tracker.retain(key, words)

    def release(self, key: str) -> None:
        self.tracker.release(key)

    # -- primitives (logical layer: plan when enabled, else eager) ----------------

    def sort(self, table: Table, by: Sequence[str]) -> Table:
        """Globally sort ``table`` by the integer key columns ``by``.

        Stable with respect to the current row order. Costs one ``sort``.
        """
        if self._planner is not None:
            return self._planner.sort(table, by)
        return self._sort(table, by)

    def scan(
        self,
        table: Table,
        value_col: str,
        op: str,
        by: Sequence[str] = (),
        exclusive: bool = False,
        identity: float | int | None = None,
    ) -> np.ndarray:
        """Prefix aggregation of ``value_col`` in current row order.

        With ``by`` non-empty, rows form contiguous segments of equal key
        (caller must have sorted/grouped accordingly) and the scan resets
        at segment boundaries. ``exclusive`` yields the aggregate of
        strictly preceding rows (``identity`` at segment starts).
        Costs one ``scan``.
        """
        if self._planner is not None:
            return self._planner.scan(table, value_col, op, by, exclusive,
                                      identity)
        return self._scan(table, value_col, op, by, exclusive, identity)

    def lookup(
        self,
        queries: Table,
        qkey: Sequence[str],
        data: Table,
        dkey: Sequence[str],
        payload: Mapping[str, str],
        default: Mapping[str, float | int] | None = None,
        check_unique: bool = True,
    ) -> Table:
        """Equi-join: attach ``payload`` columns of ``data`` to ``queries``.

        ``payload`` maps output column name -> data column name. ``data``
        keys must be unique (validated when ``check_unique``). Missing keys
        produce ``default[out_col]`` (required if misses can occur). The
        result is ``queries`` extended with the payload columns, original
        order preserved. Costs one ``lookup``.
        """
        if self._planner is not None:
            return self._planner.lookup(queries, qkey, data, dkey, payload,
                                        default, check_unique)
        return self._lookup(queries, qkey, data, dkey, payload, default,
                            check_unique)

    def predecessor(
        self,
        queries: Table,
        qkey: str,
        data: Table,
        dkey: str,
        payload: Mapping[str, str],
        default: Mapping[str, float | int],
    ) -> Table:
        """Merge-rank join: payload of the *last* data row with key <= query.

        ``data`` is sorted internally by ``dkey`` (stably), so among equal
        data keys the one latest in input order wins. Costs one
        ``predecessor``.
        """
        if self._planner is not None:
            return self._planner.predecessor(queries, qkey, data, dkey,
                                             payload, default)
        return self._predecessor(queries, qkey, data, dkey, payload, default)

    def reduce_by_key(
        self,
        table: Table,
        by: Sequence[str],
        aggs: Mapping[str, Tuple[str, str]],
    ) -> Table:
        """Group rows by ``by`` and aggregate.

        ``aggs`` maps output column -> (input column, op in AGG_OPS). The
        result has one row per distinct key, sorted by key, with the key
        columns and the aggregate columns. Costs one ``reduce``.
        """
        if self._planner is not None:
            return self._planner.reduce_by_key(table, by, aggs)
        return self._reduce_by_key(table, by, aggs)

    def filter(self, table: Table, mask: np.ndarray) -> Table:
        """Compact the rows where ``mask`` holds. Costs one ``filter``."""
        if self._planner is not None:
            return self._planner.filter(table, mask)
        return self._filter(table, mask)

    def scalar(self, table: Table, value_col: str, op: str) -> float | int:
        """Global aggregate of a column, made known to all machines.

        Returns the Python scalar; identity (0 / -inf / +inf) on an empty
        table. Costs one ``scalar``. A scalar read is a plan flush point:
        pending deferred nodes execute before the value is produced.
        """
        if self._planner is not None:
            return self._planner.scalar(table, value_col, op)
        return self._scalar(table, value_col, op)

    # -- charged eager implementations (one per engine) ---------------------------

    @abstractmethod
    def _sort(self, table: Table, by: Sequence[str]) -> Table:
        ...

    @abstractmethod
    def _scan(self, table, value_col, op, by=(), exclusive=False,
              identity=None) -> np.ndarray:
        ...

    @abstractmethod
    def _lookup(self, queries, qkey, data, dkey, payload, default=None,
                check_unique=True) -> Table:
        ...

    @abstractmethod
    def _predecessor(self, queries, qkey, data, dkey, payload,
                     default) -> Table:
        ...

    @abstractmethod
    def _reduce_by_key(self, table, by, aggs) -> Table:
        ...

    @abstractmethod
    def _filter(self, table, mask) -> Table:
        ...

    @abstractmethod
    def _scalar(self, table, value_col, op):
        ...

    # -- conveniences built on primitives -------------------------------------------

    def count(self, table: Table) -> int:
        """Number of rows, as a broadcast global aggregate (one ``scalar``)."""
        ones = Table(one=np.ones(len(table), dtype=np.int64))
        return int(self.scalar(ones, "one", "sum"))

    def unique_keys(self, table: Table, by: Sequence[str]) -> Table:
        """Distinct key combinations, sorted (one ``reduce``)."""
        marker = table.select(by).with_cols(__m=np.ones(len(table), dtype=np.int64))
        out = self.reduce_by_key(marker, by, {"__m": ("__m", "sum")})
        return out.drop("__m")

    def expand_join(
        self,
        queries: Table,
        qkey: Sequence[str],
        data: Table,
        dkey: Sequence[str],
        payload: Mapping[str, str],
        carry: Sequence[str] = (),
    ) -> Table:
        """One-to-many join: one output row per (query row, matching data row).

        Output columns: the query's ``carry`` columns plus the ``payload``
        columns (mapping output name -> data column). Queries with no
        match produce no rows. This is a *derived* operation composed of
        O(1) primitives (sort + reduce + lookup + scan + filter +
        predecessor + lookup), so it costs a constant number of rounds;
        its output size is the number of matches (the caller is
        responsible for that being within the memory budget, as the paper
        is in Lemma 3.7).
        """
        carry = list(carry)
        out_schema = {c: queries.col(c).dtype for c in carry}
        for out_name, src in payload.items():
            out_schema[out_name] = data.col(src).dtype
        if len(queries) == 0 or len(data) == 0:
            return Table.empty(out_schema)
        qk, dk = pack_pair(queries, qkey, data, dkey)
        dsort = self.sort(data.with_cols(__ek=dk), ("__ek",))
        pos_ids = np.arange(len(dsort), dtype=np.int64)
        if self._planner is not None:
            # structural fact: a fresh arange is sorted, unique and dense,
            # so the final fetch below joins by one gather, no search
            self._planner.hint_sorted_unique(pos_ids)
        dsort = dsort.with_cols(__pos=pos_ids)
        ones = np.ones(len(dsort), dtype=np.int64)
        groups = self.reduce_by_key(
            dsort.with_cols(__one=ones),
            ("__ek",),
            {"__start": ("__pos", "min"), "__cnt": ("__one", "sum")},
        )
        q2 = queries.select(carry).with_cols(__qk=qk)
        q2 = self.lookup(
            q2, ("__qk",), groups, ("__ek",),
            {"__start": "__start", "__cnt": "__cnt"},
            default={"__start": 0, "__cnt": 0},
        )
        off = self.scan(q2, "__cnt", "sum", exclusive=True)
        q2 = q2.with_cols(__off=off)
        total = int(self.scalar(q2.with_cols(__end=off + q2.col("__cnt")), "__end", "max"))
        total = max(total, 0)
        qnz = self.filter(q2, q2.col("__cnt") > 0)
        if total == 0 or len(qnz) == 0:
            return Table.empty(out_schema)
        skel_ids = np.arange(total, dtype=np.int64)
        if self._planner is not None:
            self._planner.hint_sorted_unique(skel_ids)
        skel = Table(__o=skel_ids)
        pred_payload = {"__off2": "__off", "__start2": "__start"}
        pred_payload.update({f"__c_{c}": c for c in carry})
        defaults = {"__off2": 0, "__start2": 0}
        defaults.update({f"__c_{c}": 0 for c in carry})
        skel = self.predecessor(skel, "__o", qnz, "__off", pred_payload, defaults)
        dpos = skel.col("__start2") + (skel.col("__o") - skel.col("__off2"))
        skel = skel.with_cols(__dpos=dpos)
        fetched = self.lookup(
            skel, ("__dpos",), dsort, ("__pos",), dict(payload), default=None
        )
        out_cols = {c: fetched.col(f"__c_{c}").astype(out_schema[c], copy=False)
                    for c in carry}
        for out_name in payload:
            out_cols[out_name] = fetched.col(out_name)
        return Table(out_cols)

    # -- internal shared validation ---------------------------------------------

    @staticmethod
    def _check_op(op: str) -> None:
        if op not in AGG_OPS:
            raise ProtocolError(f"unsupported aggregation op {op!r}")

    @staticmethod
    def _identity(op: str, kind: str):
        if op == "sum":
            return 0
        if op == "max":
            return NEG_INF if kind == "f" else np.iinfo(np.int64).min
        if op == "min":
            return POS_INF if kind == "f" else np.iinfo(np.int64).max
        raise ProtocolError(f"unsupported aggregation op {op!r}")
