"""Round and memory accounting for MPC runtime engines.

The complexity currency of the MPC model is the number of synchronous
communication rounds and the memory footprint (global ``g`` and
per-machine ``s``). Every runtime primitive charges rounds here, tagged
with the *phase* that is currently active, so experiments can report
both end-to-end and per-phase round counts (e.g. "substrate" vs "this
paper's contribution"; see DESIGN.md section 2.3).

Two charging modes are provided:

``unit``
    every communication primitive costs one round. This is the standard
    proxy used when MPC papers say "O(1) sorts and prefix sums per
    round"; it is what benchmarks report by default.
``theory``
    primitives are charged the round constants of their [GSZ11]
    realisations on an ``s = n^delta`` machine (a sort is ``O(1/delta)``
    rounds, etc.). Shapes are identical; constants differ.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["CostModel", "CostTracker", "CostReport", "CostDelta", "PRIMITIVES"]

#: Communication primitives the runtimes may charge.
PRIMITIVES = (
    "sort",
    "scan",
    "lookup",
    "predecessor",
    "reduce",
    "filter",
    "scalar",
    "broadcast",
    "route",
)


@dataclass(frozen=True)
class CostModel:
    """Maps a primitive invocation to a round charge."""

    mode: str = "unit"
    delta: float = 0.35

    def rounds_for(self, primitive: str) -> int:
        if primitive not in PRIMITIVES:
            raise ValueError(f"unknown primitive {primitive!r}")
        if self.mode == "unit":
            return 1
        if self.mode == "theory":
            # [GSZ11]: sorting N records on machines with s = N^delta local
            # words takes O(1/delta) rounds; scans/broadcasts use an
            # s-ary aggregation tree of depth ceil(1/delta).
            depth = max(1, math.ceil(1.0 / self.delta))
            per = {
                "sort": depth,
                "scan": depth,
                "lookup": depth + 2,  # co-sort + copy-down + route back
                "predecessor": depth + 2,
                "reduce": depth + 1,
                "filter": 1,
                "scalar": depth,
                "broadcast": depth,
                "route": 1,
            }
            return per[primitive]
        raise ValueError(f"unknown cost mode {self.mode!r}")


@dataclass
class CostReport:
    """Immutable summary of a tracked computation."""

    rounds_total: int
    rounds_by_phase: Dict[str, int]
    primitives_by_phase: Dict[str, Counter]
    peak_global_words: int
    peak_machine_words: int
    transport_rounds: int

    def rounds_in(self, prefix: str) -> int:
        """Total rounds charged to phases whose path starts with ``prefix``."""
        return sum(
            r
            for phase, r in self.rounds_by_phase.items()
            if phase == prefix or phase.startswith(prefix + "/")
        )

    # -- serialization (results persistence, batch workers) ----------------------

    def to_dict(self) -> Dict:
        """A JSON-able representation (see :meth:`from_dict`)."""
        return {
            "rounds_total": int(self.rounds_total),
            "rounds_by_phase": {k: int(v) for k, v in self.rounds_by_phase.items()},
            "primitives_by_phase": {
                phase: {p: int(c) for p, c in counts.items()}
                for phase, counts in self.primitives_by_phase.items()
            },
            "peak_global_words": int(self.peak_global_words),
            "peak_machine_words": int(self.peak_machine_words),
            "transport_rounds": int(self.transport_rounds),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "CostReport":
        return cls(
            rounds_total=int(d["rounds_total"]),
            rounds_by_phase={k: int(v) for k, v in d["rounds_by_phase"].items()},
            primitives_by_phase={
                phase: Counter({p: int(c) for p, c in counts.items()})
                for phase, counts in d["primitives_by_phase"].items()
            },
            peak_global_words=int(d["peak_global_words"]),
            peak_machine_words=int(d["peak_machine_words"]),
            transport_rounds=int(d["transport_rounds"]),
        )

    def phases(self) -> List[str]:
        return list(self.rounds_by_phase)

    def as_rows(self) -> List[Tuple[str, int]]:
        return sorted(self.rounds_by_phase.items())

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"rounds={self.rounds_total} peak_words={self.peak_global_words}"]
        for phase, r in sorted(self.rounds_by_phase.items()):
            lines.append(f"  {phase}: {r}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CostDelta:
    """The rounds charged between two tracker marks (one pipeline stage).

    Stored alongside cached stage artifacts so that a warm-started run
    can *replay* the charge without re-executing the stage: warm and
    cold runs then produce bit-identical :class:`CostReport`\\ s. The
    peaks are the tracker's cumulative peaks at the *end* of the stage
    (replaying in stage order reproduces the running maximum exactly).
    """

    rounds_by_phase: Dict[str, int]
    primitives_by_phase: Dict[str, Dict[str, int]]
    transport_rounds: int
    peak_global_words: int
    peak_machine_words: int

    @property
    def rounds_total(self) -> int:
        return sum(self.rounds_by_phase.values())

    def to_dict(self) -> Dict:
        return {
            "rounds_by_phase": {k: int(v) for k, v in self.rounds_by_phase.items()},
            "primitives_by_phase": {
                phase: {p: int(c) for p, c in counts.items()}
                for phase, counts in self.primitives_by_phase.items()
            },
            "transport_rounds": int(self.transport_rounds),
            "peak_global_words": int(self.peak_global_words),
            "peak_machine_words": int(self.peak_machine_words),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "CostDelta":
        return cls(
            rounds_by_phase={k: int(v) for k, v in d["rounds_by_phase"].items()},
            primitives_by_phase={
                phase: {p: int(c) for p, c in counts.items()}
                for phase, counts in d["primitives_by_phase"].items()
            },
            transport_rounds=int(d["transport_rounds"]),
            peak_global_words=int(d["peak_global_words"]),
            peak_machine_words=int(d["peak_machine_words"]),
        )


class CostTracker:
    """Mutable accumulator used by runtimes while an algorithm executes."""

    def __init__(self, model: CostModel | None = None):
        self.model = model or CostModel()
        self._rounds_total = 0
        self._rounds_by_phase: Dict[str, int] = {}
        self._prims_by_phase: Dict[str, Counter] = {}
        self._phase_stack: List[str] = []
        self._resident: Dict[str, int] = {}
        self._peak_global = 0
        self._peak_machine = 0
        self._transport_rounds = 0
        self._wall_by_primitive: Dict[str, float] = {}
        self._calls_by_primitive: Counter = Counter()

    # -- phases ---------------------------------------------------------------

    @property
    def current_phase(self) -> str:
        return "/".join(self._phase_stack) if self._phase_stack else "<root>"

    def push_phase(self, name: str) -> None:
        if "/" in name:
            raise ValueError("phase names must not contain '/'")
        self._phase_stack.append(name)

    def pop_phase(self, name: str) -> None:
        if not self._phase_stack or self._phase_stack[-1] != name:
            raise ValueError(f"phase stack corruption popping {name!r}")
        self._phase_stack.pop()

    # -- charging ---------------------------------------------------------------

    def charge(self, primitive: str, words_touched: int = 0) -> None:
        rounds = self.model.rounds_for(primitive)
        phase = self.current_phase
        self._rounds_total += rounds
        self._rounds_by_phase[phase] = self._rounds_by_phase.get(phase, 0) + rounds
        self._prims_by_phase.setdefault(phase, Counter())[primitive] += 1
        if words_touched:
            self.observe_global_words(words_touched)

    def charge_transport_round(self, count: int = 1) -> None:
        """Record actual message-exchange rounds (distributed engine only)."""
        self._transport_rounds += count

    # -- wall attribution (``python -m repro profile``) ---------------------------

    def record_wall(self, primitive: str, seconds: float) -> None:
        """Attribute measured wall time (one call) to a primitive."""
        self._wall_by_primitive[primitive] = (
            self._wall_by_primitive.get(primitive, 0.0) + seconds
        )
        self._calls_by_primitive[primitive] += 1

    def wall_profile(self) -> List[Tuple[str, int, float]]:
        """``(primitive, calls, wall_seconds)`` rows, slowest first.

        Deliberately *not* part of :class:`CostReport`: reports must stay
        bit-identical between cold and warm-started pipeline runs, and
        wall time is the one quantity that cannot be replayed.
        """
        return sorted(
            ((p, int(self._calls_by_primitive[p]), w)
             for p, w in self._wall_by_primitive.items()),
            key=lambda r: r[2], reverse=True,
        )

    # -- stage deltas (pipeline warm-start) --------------------------------------

    def mark(self) -> Dict:
        """Snapshot the charge state; pair with :meth:`delta_since`."""
        return {
            "rounds_by_phase": dict(self._rounds_by_phase),
            "prims_by_phase": {k: Counter(v) for k, v in self._prims_by_phase.items()},
            "transport_rounds": self._transport_rounds,
        }

    def delta_since(self, mark: Dict) -> CostDelta:
        """Everything charged since ``mark``, as a replayable delta."""
        before_r = mark["rounds_by_phase"]
        before_p = mark["prims_by_phase"]
        rounds = {
            phase: r - before_r.get(phase, 0)
            for phase, r in self._rounds_by_phase.items()
            if r - before_r.get(phase, 0)
        }
        prims = {}
        for phase, counts in self._prims_by_phase.items():
            diff = counts - before_p.get(phase, Counter())
            if diff:
                prims[phase] = dict(diff)
        return CostDelta(
            rounds_by_phase=rounds,
            primitives_by_phase=prims,
            transport_rounds=self._transport_rounds - mark["transport_rounds"],
            peak_global_words=self._peak_global,
            peak_machine_words=self._peak_machine,
        )

    def replay(self, delta: CostDelta) -> None:
        """Re-charge a recorded stage delta without executing the stage."""
        for phase, r in delta.rounds_by_phase.items():
            self._rounds_total += r
            self._rounds_by_phase[phase] = self._rounds_by_phase.get(phase, 0) + r
        for phase, counts in delta.primitives_by_phase.items():
            self._prims_by_phase.setdefault(phase, Counter()).update(counts)
        self._transport_rounds += delta.transport_rounds
        if delta.peak_global_words > self._peak_global:
            self._peak_global = delta.peak_global_words
        if delta.peak_machine_words > self._peak_machine:
            self._peak_machine = delta.peak_machine_words

    # -- memory -----------------------------------------------------------------

    def retain(self, key: str, words: int) -> None:
        """Register long-lived storage (counts toward global memory peaks)."""
        self._resident[key] = int(words)
        self.observe_global_words(0)

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    @property
    def resident_words(self) -> int:
        return sum(self._resident.values())

    def observe_global_words(self, transient_words: int) -> None:
        total = self.resident_words + int(transient_words)
        if total > self._peak_global:
            self._peak_global = total

    def observe_machine_words(self, words: int) -> None:
        if words > self._peak_machine:
            self._peak_machine = words

    # -- reporting ----------------------------------------------------------------

    @property
    def rounds_total(self) -> int:
        return self._rounds_total

    @property
    def peak_global_words(self) -> int:
        return self._peak_global

    def snapshot_rounds(self) -> int:
        return self._rounds_total

    def report(self) -> CostReport:
        return CostReport(
            rounds_total=self._rounds_total,
            rounds_by_phase=dict(self._rounds_by_phase),
            primitives_by_phase={k: Counter(v) for k, v in self._prims_by_phase.items()},
            peak_global_words=self._peak_global,
            peak_machine_words=self._peak_machine,
            transport_rounds=self._transport_rounds,
        )

    def iter_phases(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._rounds_by_phase.items()))
