"""Process-parallel physical executor behind the planner (S21).

The PR-5 planner/executor split charges every primitive's rounds and
words at the *logical* call site, which frees *physical* execution to
run anywhere — including other processes. This module is that "anywhere":

* :class:`WorkerPool` — a persistent pool of worker processes started
  from an **explicit** ``multiprocessing`` context (``forkserver`` by
  default on platforms that have it, else ``spawn``; never the implicit
  platform default, which on Linux is ``fork`` and can snapshot a parent
  mid-flight holding live asyncio loops, service rebuild threads or
  zip-member memmap handles). Tasks travel over a shared queue; each
  worker records the task it is executing in a crash-proof shared
  *claim slot* before starting, so a worker that dies mid-task is
  detected, its task fails with a clean crashed outcome, and the slot
  is respawned — one bad task never takes down the pool or the other
  tasks' results.
* shared-memory **column blocks** — a dict of NumPy columns packed into
  one ``multiprocessing.shared_memory`` segment (64-byte-aligned offsets,
  metadata shipped separately), so workers attach to the parent's
  buffers by name instead of pickling table payloads through pipes.
* :class:`ProcessExecutor` — the planner hook. At a flush point the
  optimizer's partition rule (:meth:`~repro.mpc.optimizer.Optimizer.
  partition`) picks the pending deferred sort nodes that are mutually
  independent (concrete inputs, immutable columns — embarrassingly
  parallel segments); their argsort+permute work is dispatched to the
  pool over shared memory while everything else drains in the usual
  FIFO order. The *decision* layer (sort elision, fact registration,
  status strings) stays in the parent, so planned outputs — and the
  CostReport, which is charged at logical record time — are bit-identical
  whether physical execution happened in-process or in a worker.
* :func:`run_partitions` — the workload-level partition API: N
  independent verify/sensitivity plan partitions (one per instance, the
  "one worker per machine shard" topology of the pia-mpc exemplar run
  as local processes) execute concurrently, each worker attaching to
  the parent's graph columns via shared memory and running the full
  pipeline with its own logical accounting. Per-partition CostReports
  are bit-identical to serial execution of the same partition — the E15
  benchmark asserts this wholesale and gates the wall speedup.

A worker crash during a dispatched segment falls back to inline
execution in the parent (same kernels, bit-identical result), so
``executor="process"`` degrades to ``"serial"`` under faults instead of
failing the run.
"""

from __future__ import annotations

import atexit
import importlib
import os
import time
import traceback as _traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutorError, ValidationError, WorkerCrashed

__all__ = [
    "ShmBlock",
    "share_columns",
    "attach_columns",
    "copy_columns",
    "Outcome",
    "WorkerPool",
    "ProcessExecutor",
    "run_partitions",
    "default_start_method",
    "get_pool",
    "shutdown_pool",
]

#: Env override for the worker start method (CI runs the fault-isolation
#: tests under both ``fork`` and ``forkserver``).
START_METHOD_ENV = "REPRO_MP_START_METHOD"
WORKERS_ENV = "REPRO_EXECUTOR_WORKERS"

_ALIGN = 64  # cache-line-aligned column offsets inside a block


def default_start_method() -> str:
    """The explicit start method for every pool this package creates.

    ``forkserver`` where available (the server process forks from a
    clean, thread-free template, so a parent holding asyncio loops,
    worker threads or mmap handles is safe), else ``spawn``. The
    implicit platform default is deliberately never used.
    """
    import multiprocessing as mp

    method = os.environ.get(START_METHOD_ENV, "").strip()
    available = mp.get_all_start_methods()
    if method:
        if method not in available:
            raise ValidationError(
                f"{START_METHOD_ENV}={method!r} is not available here "
                f"(have {available})"
            )
        return method
    return "forkserver" if "forkserver" in available else "spawn"


def get_context():
    """The explicit multiprocessing context (see :func:`default_start_method`)."""
    import multiprocessing as mp

    return mp.get_context(default_start_method())


def _default_workers() -> int:
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# shared-memory column blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShmBlock:
    """Handle to one shared-memory segment holding named columns.

    ``meta`` is ``((name, dtype_str, shape, offset), ...)`` — everything
    needed to rebuild zero-copy views after attaching by ``name``. The
    handle itself is tiny and picklable; the column bytes never travel
    through a pipe.
    """

    name: str
    meta: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    nbytes: int


def share_columns(cols: Mapping[str, np.ndarray]
                  ) -> Tuple[shared_memory.SharedMemory, ShmBlock]:
    """Pack ``cols`` into one fresh shared-memory segment.

    Returns the live segment (caller closes; the final owner unlinks)
    and the picklable :class:`ShmBlock` handle.

    Resource-tracker accounting: every process in one multiprocessing
    tree shares a single tracker (the fd travels with spawn/forkserver
    preparation data), and CPython registers a segment on *attach* as
    well as on create. Within the tree the duplicate registration is a
    set no-op, so the balanced protocol is simply create-register +
    unlink-unregister — explicitly *unregistering* on attach (the usual
    bpo-39959 workaround for unrelated processes) would strip the
    creator's sole registration and break crash cleanup.
    """
    meta = []
    offset = 0
    arrays = []
    for name, arr in cols.items():
        arr = np.ascontiguousarray(arr)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        meta.append((name, arr.dtype.str, tuple(arr.shape), offset))
        arrays.append((arr, offset))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for (arr, off) in arrays:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                          offset=off)
        view[...] = arr
    return shm, ShmBlock(name=shm.name, meta=tuple(meta),
                         nbytes=max(1, offset))


def attach_columns(block: ShmBlock
                   ) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Attach to a block and return zero-copy views into it.

    The views are valid only while the returned segment stays open; the
    caller closes it (and unlinks iff it owns the segment's lifetime).
    """
    shm = shared_memory.SharedMemory(name=block.name)
    cols = {
        name: np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf,
                         offset=off)
        for name, dt, shape, off in block.meta
    }
    return shm, cols


def copy_columns(block: ShmBlock, *, unlink: bool = False
                 ) -> Dict[str, np.ndarray]:
    """Attach, copy every column out, detach (and optionally unlink)."""
    shm, views = attach_columns(block)
    try:
        return {name: np.array(arr, copy=True) for name, arr in views.items()}
    finally:
        shm.close()
        if unlink:
            shm.unlink()


# ---------------------------------------------------------------------------
# worker-side task registry
# ---------------------------------------------------------------------------


def _task_ping(payload: Any) -> Any:
    return payload


def _task_crash(payload: Any) -> None:
    """Test/chaos hook: die without a result (exercises crash recovery)."""
    os._exit(int(payload) if payload else 11)


def _task_call(payload: Tuple[str, str, Any]) -> Any:
    """Generic dispatch: ``(module, function, arg)`` resolved by import.

    This is how :mod:`repro.batch` ships jobs through the shared pool
    without this module importing the batch layer (no import cycles),
    and how tests register custom workloads.
    """
    mod_name, fn_name, arg = payload
    fn = getattr(importlib.import_module(mod_name), fn_name)
    return fn(arg)


def _task_sort(payload: Dict) -> Dict:
    """One dispatched physical sort: stable argsort + permute over shm.

    The elision decision already happened in the parent (the key is
    known unsorted), so this is pure mechanical work: the same
    ``np.argsort(kind="stable")`` the inline executor runs, hence a
    bit-identical permutation.
    """
    block: ShmBlock = payload["block"]
    key_name: str = payload["key"]
    shm, cols = attach_columns(block)
    try:
        key = cols.pop("__key__") if "__key__" in cols else cols[key_name]
        order = np.argsort(key, kind="stable")
        out = {name: arr[order] for name, arr in cols.items()}
    finally:
        shm.close()
    out_shm, out_block = share_columns(out)
    out_shm.close()
    return {"block": out_block}


def _task_pipeline(payload: Dict) -> Dict:
    """One workload partition: a full verify/sensitivity pipeline.

    The graph columns arrive via shared memory (every partition of the
    same instance attaches to the same buffer); the pipeline runs with
    its own runtime and logical accounting, ``executor`` forced to
    ``"serial"`` (workers never nest pools), and returns outputs plus
    the full CostReport dict for wholesale bit-identity assertions.
    """
    from ..graph.graph import WeightedGraph

    cols = copy_columns(payload["block"])
    graph = WeightedGraph(n=payload["n"], u=cols["u"], v=cols["v"],
                          w=cols["w"], tree_mask=cols["tree_mask"])
    config = payload["config"].with_(executor="serial")
    kind = payload["kind"]
    engine = payload["engine"]
    if kind == "verify":
        from ..core.verification import verify_mst

        r = verify_mst(graph, engine=engine, config=config)
        return {
            "is_mst": r.is_mst,
            "n_violations": r.n_violations,
            "violating_edges": r.violating_edges,
            "pathmax": r.pathmax,
            "rounds": r.rounds,
            "report": r.report.to_dict(),
        }
    if kind == "sensitivity":
        from ..core.sensitivity import mst_sensitivity

        r = mst_sensitivity(graph, engine=engine, config=config)
        return {
            "sensitivity": r.sensitivity,
            "mc": r.mc,
            "pathmax": r.pathmax,
            "rounds": r.rounds,
            "report": r.report.to_dict(),
        }
    raise ValidationError(f"unknown partition kind {kind!r}")


_TASK_KINDS = {
    "ping": _task_ping,
    "crash": _task_crash,
    "call": _task_call,
    "sort": _task_sort,
    "pipeline": _task_pipeline,
}


def _worker_main(slot: int, task_q, conn, claim) -> None:
    """Worker loop: claim, execute, report — never die on a task error.

    Crash-safety of the reporting channel is load-bearing:

    * the claim is a direct write into a shared ``Value``, not a queue
      message — queue puts flush through a feeder thread, so a worker
      dying right after claiming would lose the message and leave its
      task unattributable (a permanent hang for the waiter);
    * results go over a dedicated pipe with *synchronous* ``send`` —
      by the time the worker picks up its next task, every earlier
      result is in the OS pipe buffer and survives even ``os._exit``.
      A shared result queue's feeder thread would let one crashing task
      destroy its predecessors' buffered results.

    The claim is deliberately *not* reset after a task — a stale claim
    for a completed task is filtered by the parent's outstanding-set.
    """
    while True:
        msg = task_q.get()
        if msg[0] == "stop":
            return
        _, task_id, kind, payload = msg
        claim.value = task_id
        try:
            fn = _TASK_KINDS[kind]
            out = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - report, keep serving
            conn.send((task_id, False,
                       (type(exc).__name__, str(exc),
                        _traceback.format_exc())))
        else:
            conn.send((task_id, True, out))


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


@dataclass
class Outcome:
    """Flat result of one pool task (always returned, never raised)."""

    ok: bool
    value: Any = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    crashed: bool = False

    def unwrap(self) -> Any:
        """``value`` on success; raise on failure — for callers that
        prefer exceptions to checking ``ok`` (:class:`WorkerCrashed`
        when the worker process died, :class:`ExecutorError` when the
        task itself raised)."""
        if self.ok:
            return self.value
        if self.crashed:
            raise WorkerCrashed(self.error or "worker crashed")
        raise ExecutorError(self.error or "task failed")


class WorkerPool:
    """Persistent worker processes with crash isolation and respawn.

    One shared task queue, one result pipe and one shared *claim slot*
    per worker. A worker writes the task id it is about to execute into
    its claim slot (a direct shared-memory write — crash-proof, unlike
    a buffered queue message), so when a worker process dies the parent
    knows exactly which task went down with it: that task resolves to a
    ``crashed`` :class:`Outcome`, the slot is respawned, and every
    other task — queued, running elsewhere, or already reported over a
    surviving pipe — completes normally. (A worker killed in the sliver
    between dequeuing and writing the claim cannot be attributed; the
    pool is built for fault *isolation*, not byzantine delivery
    guarantees.)
    """

    def __init__(self, workers: int, method: Optional[str] = None):
        import multiprocessing as mp

        self.method = method or default_start_method()
        self._ctx = mp.get_context(self.method)
        self._task_q = self._ctx.Queue()
        self._procs: List = []
        self._readers: List = []         # per-slot result pipe (parent end)
        self._claims: List = []          # per-slot shared Values (task ids)
        self._next_task = 0
        self._done: Dict[int, Outcome] = {}
        self._outstanding: set = set()
        self.crashes = 0
        self.closed = False
        for slot in range(max(1, int(workers))):
            self._spawn(slot)

    # -- lifecycle ---------------------------------------------------------------

    def _spawn(self, slot: int) -> None:
        if slot < len(self._claims):
            self._claims[slot].value = -1
        else:
            self._claims.append(self._ctx.Value("q", -1, lock=False))
        reader, writer = self._ctx.Pipe(duplex=False)
        p = self._ctx.Process(
            target=_worker_main,
            args=(slot, self._task_q, writer, self._claims[slot]),
            daemon=True, name=f"repro-worker-{slot}",
        )
        p.start()
        writer.close()  # child holds the write end now
        if slot < len(self._procs):
            self._readers[slot].close()
            self._readers[slot] = reader
            self._procs[slot] = p
        else:
            self._readers.append(reader)
            self._procs.append(p)

    @property
    def workers(self) -> int:
        return len(self._procs)

    def grow(self, workers: int) -> None:
        """Add worker slots up to ``workers`` total (never shrinks)."""
        for slot in range(len(self._procs), workers):
            self._spawn(slot)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for _ in self._procs:
            self._task_q.put(("stop",))
        for p in self._procs:
            p.join(timeout=5)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=1)
        self._task_q.close()
        for r in self._readers:
            r.close()

    # -- submission & collection --------------------------------------------------

    def submit(self, kind: str, payload: Any) -> int:
        if self.closed:
            raise ExecutorError("worker pool is closed")
        task_id = self._next_task
        self._next_task += 1
        self._outstanding.add(task_id)
        self._task_q.put(("task", task_id, kind, payload))
        return task_id

    def wait(self, task_ids: Sequence[int]) -> List[Outcome]:
        """Block until every listed task resolved; order preserved."""
        task_ids = list(task_ids)
        while not all(t in self._done for t in task_ids):
            self._pump(0.2)
        return [self._done.pop(t) for t in task_ids]

    def map(self, kind: str, payloads: Sequence[Any],
            max_inflight: Optional[int] = None) -> List[Outcome]:
        """Run ``payloads`` through the pool, at most ``max_inflight``
        submitted at a time (the concurrency knob batch callers use)."""
        n = len(payloads)
        cap = max(1, max_inflight if max_inflight is not None else n)
        results: List[Optional[Outcome]] = [None] * n
        inflight: Dict[int, int] = {}
        next_i = 0
        done_ct = 0
        while done_ct < n:
            while next_i < n and len(inflight) < cap:
                inflight[self.submit(kind, payloads[next_i])] = next_i
                next_i += 1
            ready = [t for t in inflight if t in self._done]
            if not ready:
                self._pump(0.2)
                ready = [t for t in inflight if t in self._done]
            for t in ready:
                results[inflight.pop(t)] = self._done.pop(t)
                done_ct += 1
        return results  # type: ignore[return-value]

    def ping(self, timeout_s: float = 30.0) -> None:
        """Round-trip a no-op task (pool warm-up for fair benchmarks)."""
        t = self.submit("ping", None)
        deadline = time.perf_counter() + timeout_s
        while t not in self._done:
            self._pump(0.2)
            if time.perf_counter() > deadline:  # pragma: no cover
                raise ExecutorError("worker pool did not answer a ping")
        self._done.pop(t)

    # -- internals ---------------------------------------------------------------

    def _pump(self, timeout: float) -> None:
        from multiprocessing import connection

        ready = connection.wait(self._readers, timeout)
        if not ready:
            self._reap()
            return
        saw_eof = False
        for r in ready:
            try:
                task_id, ok, payload = r.recv()
            except (EOFError, OSError):
                saw_eof = True  # the slot's worker died; attribute below
                continue
            if ok:
                self._done[task_id] = Outcome(ok=True, value=payload)
            else:
                etype, emsg, tb = payload
                self._done[task_id] = Outcome(
                    ok=False, error=f"{etype}: {emsg}", traceback=tb,
                )
            self._outstanding.discard(task_id)
        if saw_eof:
            self._reap()

    def _reap(self) -> None:
        """Detect dead workers: fail their claimed tasks, respawn slots."""
        for slot, p in enumerate(self._procs):
            if p.is_alive() or p.exitcode is None:
                continue
            t = int(self._claims[slot].value)
            if t >= 0 and t in self._outstanding:
                self.crashes += 1
                self._done[t] = Outcome(
                    ok=False, crashed=True,
                    error=(f"worker {slot} died (exitcode {p.exitcode}) "
                           f"while executing task {t}"),
                )
                self._outstanding.discard(t)
            self._spawn(slot)  # replaces the dead slot's pipe too


# -- module-level shared pool (the executor, batch and benches share it) --------

_POOL: Optional[WorkerPool] = None


def get_pool(min_workers: Optional[int] = None) -> WorkerPool:
    """The process-wide shared :class:`WorkerPool`, created on first use.

    Grown (never shrunk) to ``min_workers`` when asked; recreated if the
    configured start method changed since creation (tests sweep this).
    """
    global _POOL
    method = default_start_method()
    if _POOL is not None and (_POOL.closed or _POOL.method != method):
        shutdown_pool()
    if _POOL is None:
        _POOL = WorkerPool(max(1, min_workers or _default_workers()),
                           method=method)
    elif min_workers and _POOL.workers < min_workers:
        _POOL.grow(min_workers)
    return _POOL


def shutdown_pool() -> None:
    """Stop and forget the shared pool (idempotent; atexit-registered)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# the planner-facing executor
# ---------------------------------------------------------------------------


class ProcessExecutor:
    """Executes flushed physical plan segments on the worker pool.

    Attached to a :class:`~repro.mpc.plan.Planner` when
    ``MPCConfig(executor="process")`` and the engine declares the
    ``rewrite`` capability. At each flush point the optimizer's
    partition rule selects the independent deferred sorts worth
    shipping (``>= config.executor_min_rows`` rows); the parent decides
    elision from (memoised) facts exactly as the inline path does, so
    only mechanical argsort+permute work crosses the process boundary
    and every status/fact/CostReport observable stays bit-identical.
    """

    def __init__(self, planner, config):
        self.planner = planner
        self.min_rows = int(config.executor_min_rows)
        self.requested_workers = config.executor_workers
        self.dispatched = 0
        self.inline_fallbacks = 0

    def pool(self) -> WorkerPool:
        return get_pool(self.requested_workers)

    # -- the partition-aware flush point ----------------------------------------

    def flush_pending(self, pending: List) -> None:
        planner = self.planner
        opt = planner.opt
        tickets: Dict[int, Tuple] = {}   # node id -> (ticket, shm, meta)
        pool = None

        def dispatch_ready() -> None:
            # ship every pending sort whose input is concrete *now*;
            # called again after each drained node because forcing a
            # node materialises downstream sort inputs (pipelines chain
            # sorts through intermediate ops, so eligibility arrives
            # incrementally, not all at the flush point)
            nonlocal pool
            for node in opt.partition(pending, self.min_rows):
                if id(node) in tickets:
                    continue
                cols, key = opt.sort_inputs(node)
                if opt.facts.ensure_sorted(key):
                    # elide: the FIFO drain below completes it inline
                    # for free (the fact is memoised — no second scan)
                    continue
                if pool is None:
                    pool = self.pool()
                payload_cols = dict(cols)
                key_name = node.key_col
                if node.packed_key is not None:
                    payload_cols["__key__"] = key
                    key_name = "__key__"
                shm, block = share_columns(payload_cols)
                t0 = time.perf_counter()
                ticket = pool.submit("sort",
                                     {"block": block, "key": key_name})
                in_unique = bool(opt.facts.get(key).unique)
                tickets[id(node)] = (ticket, shm, in_unique, t0)
                self.dispatched += 1

        dispatch_ready()
        # FIFO drain, exactly like the serial flush — dispatched nodes
        # install their worker results in plan order (pending is in
        # creation = topological order, so a sort is always installed
        # before anything depending on it is forced)
        while pending:
            node = pending.pop(0)
            if node.done:
                continue
            entry = tickets.pop(id(node), None)
            if entry is None:
                planner.force(node)
            else:
                self._install(node, *entry)
            if pending:
                dispatch_ready()

    def _install(self, node, ticket: int, shm, in_unique: bool,
                 t0: float) -> None:
        planner = self.planner
        outcome = self.pool().wait([ticket])[0]
        shm.close()
        shm.unlink()
        if not outcome.ok:
            # fault isolation: a crashed/failed worker never fails the
            # run — re-execute the segment inline (bit-identical kernels)
            self.inline_fallbacks += 1
            planner.force(node)
            return
        out_cols = copy_columns(outcome.value["block"], unlink=True)
        node.status = "executed"
        node.physical = "argsort-permute"
        node.note = "dispatched to worker pool"
        if node.key_col is not None:
            out_key = out_cols[node.key_col]
            planner.facts.mark(out_key, sorted=True)
            if in_unique:
                planner.facts.mark(out_key, unique=True)
        planner.rt.tracker.record_wall("sort", time.perf_counter() - t0)
        planner.complete_node(node, out_cols)


# ---------------------------------------------------------------------------
# workload-level partitions
# ---------------------------------------------------------------------------


def run_partitions(graphs: Sequence, kind: str = "sensitivity",
                   engine: str = "local", config=None,
                   pool: Optional[WorkerPool] = None,
                   workers: Optional[int] = None,
                   max_inflight: Optional[int] = None) -> List[Outcome]:
    """Execute independent plan partitions concurrently across the pool.

    Each graph is one partition: its columns are shared (not copied)
    into a shared-memory block, a worker attaches and runs the full
    verify/sensitivity pipeline with serial physical execution and its
    own logical accounting, and the parent gets outputs plus the full
    CostReport dict. Partition ``i``'s report is bit-identical to
    running partition ``i`` serially in this process — parallelism
    never touches the cost stream.
    """
    from .config import MPCConfig

    if kind not in ("verify", "sensitivity"):
        raise ValidationError(f"unknown partition kind {kind!r}")
    config = config or MPCConfig()
    pool = pool or get_pool(workers)
    shms = []
    payloads = []
    try:
        for g in graphs:
            shm, block = share_columns(
                {"u": g.u, "v": g.v, "w": g.w, "tree_mask": g.tree_mask}
            )
            shms.append(shm)
            payloads.append({"block": block, "n": int(g.n), "kind": kind,
                             "engine": engine, "config": config})
        return pool.map("pipeline", payloads, max_inflight=max_inflight)
    finally:
        for shm in shms:
            shm.close()
            shm.unlink()
