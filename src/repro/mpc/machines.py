"""Message-level fabric of simulated MPC machines — columnar fleet state.

A :class:`Fabric` owns ``m`` machines with ``s`` words of local memory
each and executes synchronous message-exchange rounds. Each round, every
machine may address arbitrary peers, but its total sent words and total
received words must both fit in ``s`` — exactly the constraint of the
MPC model (§1 of the paper). Violations raise
:class:`~repro.errors.CapacityError` rather than silently succeeding, so
algorithm bugs that would break the model are surfaced.

The fleet is held *columnar*: instead of ``m`` per-machine record lists,
all machine-resident rows live in single struct-of-arrays columns plus
an int64 ``machine_id`` column (:class:`FleetState`, machine-major row
order). A bulk exchange is then one vectorised permutation
(:meth:`Fabric.route`): a destination-keyed stable argsort moves every
record to its receiver at once, and ``np.bincount`` over sender/receiver
ids enforces the per-machine word caps — raising :class:`CapacityError`
on the same machine (and with the same send-before-receive precedence)
that a packet-by-packet delivery loop would. Constant-size control
traffic (shard counts, scan summaries, carries) goes through
:meth:`Fabric.control`, which performs the same cap enforcement and
round charging from per-machine word vectors without materialising
packets. Every :meth:`route`/:meth:`control` call still charges exactly
one transport round.

A thin packet-level compatibility view (:meth:`Fabric.exchange`, one
``(destination, Table)`` list per machine) is kept so protocol tests can
exercise the round structure directly; it shares the cap-enforcement and
accounting code with the columnar path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, ValidationError
from .cost import CostTracker
from .table import Table

__all__ = ["Fabric", "FleetState", "Packet"]

Packet = Tuple[int, Table]


class FleetState:
    """Struct-of-arrays snapshot of every machine-resident record.

    ``cols`` maps column name to one array spanning the *whole fleet*;
    ``mid`` is the int64 machine-id column (row ``i`` lives on machine
    ``mid[i]``). Rows are kept machine-major (``mid`` non-decreasing),
    so a machine's shard is a contiguous slice and never needs to be
    materialised separately.
    """

    __slots__ = ("cols", "mid")

    def __init__(self, cols: Mapping[str, np.ndarray], mid: np.ndarray):
        self.cols: Dict[str, np.ndarray] = dict(cols)
        self.mid = mid

    def __len__(self) -> int:
        return len(self.mid)


class Fabric:
    """Synchronous message fabric with per-round, per-machine word caps."""

    def __init__(self, n_machines: int, capacity_words: int, tracker: CostTracker):
        if n_machines < 1:
            raise ValidationError("need at least one machine")
        self.m = int(n_machines)
        self.s = int(capacity_words)
        self.tracker = tracker
        self.rounds_executed = 0
        self.words_moved = 0

    # ------------------------------------------------------------ shared bookkeeping

    def _enforce_caps(self, send_words: np.ndarray, recv_words: np.ndarray) -> None:
        """Raise on the first machine over cap — sends first (in machine
        order), then receives, matching packet-loop delivery precedence."""
        over = np.flatnonzero(send_words > self.s)
        if len(over):
            j = int(over[0])
            raise CapacityError(j, int(send_words[j]), self.s, what="send")
        over = np.flatnonzero(recv_words > self.s)
        if len(over):
            j = int(over[0])
            raise CapacityError(j, int(recv_words[j]), self.s, what="receive")

    def _finish_round(self, moved_words: int, max_recv_words: int) -> None:
        self.words_moved += int(moved_words)
        self.tracker.observe_machine_words(int(max_recv_words))
        self.rounds_executed += 1
        self.tracker.charge_transport_round()

    # ------------------------------------------------------------ columnar rounds

    def route(self, state: FleetState, dst: np.ndarray,
              words_per_row: int) -> FleetState:
        """One bulk exchange as a single vectorised permutation.

        Every record of ``state`` is sent from its current machine to
        ``dst[i]`` in one synchronous round. ``words_per_row`` is the
        modelled record width in machine words (the *protocol* record
        may be wider than the columns physically carried, e.g. when a
        permutation index stands in for the payload). Delivery order is
        deterministic: receiver-major, then sender, then send order —
        i.e. a stable argsort by destination of the machine-major rows.
        """
        m = self.m
        dst = np.asarray(dst)
        bad = (dst < 0) | (dst >= m)
        if bad.any():
            i = int(np.argmax(bad))
            raise ValidationError(
                f"machine {int(state.mid[i])} addressed bad peer {int(dst[i])}"
            )
        send = np.bincount(state.mid, minlength=m) * words_per_row
        recv = np.bincount(dst, minlength=m) * words_per_row
        self._enforce_caps(send, recv)
        order = np.argsort(dst, kind="stable")
        out = FleetState({k: v[order] for k, v in state.cols.items()}, dst[order])
        self._finish_round(int(send.sum()), int(recv.max(initial=0)))
        return out

    def control(self, send_words: np.ndarray, recv_words: np.ndarray) -> None:
        """A control round: cap-check + charge from per-machine word vectors.

        Used for the constant-size protocol traffic (counts, offsets,
        scan summaries, carries, boundary keys) whose *values* the
        columnar engine computes directly from fleet columns; the fabric
        still accounts for the words that would cross the network and
        still charges one transport round.
        """
        send = np.asarray(send_words, dtype=np.int64)
        recv = np.asarray(recv_words, dtype=np.int64)
        self._enforce_caps(send, recv)
        self._finish_round(int(send.sum()), int(recv.max(initial=0)))

    # ------------------------------------------------------------ packet view

    def exchange(self, outboxes: Sequence[List[Packet]]) -> List[List[Table]]:
        """Run one synchronous round at packet level (compatibility view).

        ``outboxes[j]`` is machine ``j``'s list of ``(destination, table)``
        packets. Returns ``inboxes`` where ``inboxes[j]`` lists the tables
        received by machine ``j``, ordered by sender id then send order
        (deterministic delivery) — the same order :meth:`route` realises
        columnarly.
        """
        if len(outboxes) != self.m:
            raise ValidationError(
                f"outboxes for {len(outboxes)} machines, fabric has {self.m}"
            )
        inboxes: List[List[Table]] = [[] for _ in range(self.m)]
        send_words = np.zeros(self.m, dtype=np.int64)
        recv_words = np.zeros(self.m, dtype=np.int64)
        for src, packets in enumerate(outboxes):
            for dst, tab in packets:
                if not (0 <= dst < self.m):
                    raise ValidationError(f"machine {src} addressed bad peer {dst}")
                w = tab.words
                send_words[src] += w
                recv_words[dst] += w
                inboxes[dst].append(tab)
        self._enforce_caps(send_words, recv_words)
        self._finish_round(int(send_words.sum()), int(recv_words.max(initial=0)))
        return inboxes
