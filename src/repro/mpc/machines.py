"""Message-level fabric of simulated MPC machines.

A :class:`Fabric` owns ``m`` machines with ``s`` words of local memory
each and executes synchronous message-exchange rounds. Each round, every
machine may address arbitrary peers, but its total sent words and total
received words must both fit in ``s`` — exactly the constraint of the
MPC model (§1 of the paper). Violations raise
:class:`~repro.errors.CapacityError` rather than silently succeeding, so
algorithm bugs that would break the model are surfaced.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import CapacityError, ValidationError
from .cost import CostTracker
from .table import Table

__all__ = ["Fabric"]

Packet = Tuple[int, Table]


class Fabric:
    """Synchronous message fabric with per-round, per-machine word caps."""

    def __init__(self, n_machines: int, capacity_words: int, tracker: CostTracker):
        if n_machines < 1:
            raise ValidationError("need at least one machine")
        self.m = int(n_machines)
        self.s = int(capacity_words)
        self.tracker = tracker
        self.rounds_executed = 0
        self.words_moved = 0

    def exchange(self, outboxes: Sequence[List[Packet]]) -> List[List[Table]]:
        """Run one synchronous round.

        ``outboxes[j]`` is machine ``j``'s list of ``(destination, table)``
        packets. Returns ``inboxes`` where ``inboxes[j]`` lists the tables
        received by machine ``j``, ordered by sender id then send order
        (deterministic delivery).
        """
        if len(outboxes) != self.m:
            raise ValidationError(
                f"outboxes for {len(outboxes)} machines, fabric has {self.m}"
            )
        inboxes: List[List[Table]] = [[] for _ in range(self.m)]
        recv_words = [0] * self.m
        for src, packets in enumerate(outboxes):
            sent = 0
            for dst, tab in packets:
                if not (0 <= dst < self.m):
                    raise ValidationError(f"machine {src} addressed bad peer {dst}")
                w = tab.words
                sent += w
                recv_words[dst] += w
                inboxes[dst].append(tab)
            if sent > self.s:
                raise CapacityError(src, sent, self.s, what="send")
            self.words_moved += sent
        for j, w in enumerate(recv_words):
            if w > self.s:
                raise CapacityError(j, w, self.s, what="receive")
            self.tracker.observe_machine_words(w)
        self.rounds_executed += 1
        self.tracker.charge_transport_round()
        return inboxes
