"""Configuration of the simulated MPC deployment.

The model: ``m`` machines, each with ``s = O(n^delta)`` words of local
memory, global memory ``g = m * s``. For graph problems the paper targets
*optimal utilisation*: ``g = Theta(m + n)`` (linear in the input size).

:class:`MPCConfig` derives concrete ``s`` and ``m`` from an input size and
is shared by both engines; the distributed engine additionally enforces
the per-machine cap at message level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import ValidationError

__all__ = ["MPCConfig"]


@dataclass(frozen=True)
class MPCConfig:
    """Parameters of the simulated MPC.

    Parameters
    ----------
    delta:
        Local-memory exponent; machines get ``s = max(s_min, c * N^delta)``
        words for an input of ``N`` words. The paper allows any constant
        ``delta in (0, 1)``.
    capacity_constant:
        The ``c`` above. Protocol headroom (splitter tables, boundary
        exchange buffers) lives inside the same budget.
    min_machine_words:
        Floor on ``s`` so that tiny test inputs still satisfy protocol
        preconditions (e.g. the splitter table of a sample sort must fit
        on one machine).
    global_slack:
        Global memory is provisioned as ``global_slack * N`` words; the
        distributed engine refuses to allocate more machines than that
        (this is the ``g = O(m + n)`` optimal-utilisation constraint).
    cost_mode:
        ``"unit"`` or ``"theory"`` round charging (see :mod:`.cost`).
    seed:
        Seed for randomised protocol choices (sample sort splitters,
        head/tail contraction coins). Fixed seed => reproducible runs.
    planner:
        Route primitives through the lazy logical-plan layer
        (:mod:`.plan` / :mod:`.optimizer`). Rounds and memory are
        charged from the logical op stream either way, so planned and
        eager execution produce bit-identical :class:`CostReport`\\ s;
        the planner only changes *physical* execution (elided sorts,
        direct-address joins). ``False`` restores the eager engines —
        the baseline the differential suite and E14 compare against.
    executor:
        Physical execution substrate: ``"serial"`` runs every physical
        kernel inline; ``"process"`` dispatches independent flushed
        plan segments to the shared worker pool
        (:mod:`repro.mpc.parallel`) over shared-memory column buffers.
        Purely physical — rounds/words are charged at the logical call
        site either way, so CostReports are bit-identical across
        executors (asserted by the differential suite and E15).
    executor_workers:
        Worker-process count for ``executor="process"`` (``None`` =
        one per CPU core, or ``REPRO_EXECUTOR_WORKERS``).
    executor_min_rows:
        Don't ship a plan segment to a worker below this many rows —
        the shared-memory copy + queue hop outweighs the kernel.
        Tests set 0 to force dispatch on small instances.
    """

    delta: float = 0.35
    capacity_constant: float = 4.0
    min_machine_words: int = 256
    global_slack: float = 4.0
    cost_mode: str = "unit"
    seed: int = 0x5EED
    planner: bool = True
    executor: str = "serial"
    executor_workers: int | None = None
    executor_min_rows: int = 32768

    def __post_init__(self):
        if not (0.0 < self.delta < 1.0):
            raise ValidationError(f"delta must be in (0,1), got {self.delta}")
        if self.capacity_constant <= 0:
            raise ValidationError("capacity_constant must be positive")
        if self.min_machine_words < 16:
            raise ValidationError("min_machine_words must be at least 16")
        if self.global_slack < 1.0:
            raise ValidationError("global_slack must be >= 1")
        if self.executor not in ("serial", "process"):
            raise ValidationError(
                f"executor must be 'serial' or 'process', got {self.executor!r}"
            )
        if self.executor_workers is not None and self.executor_workers < 1:
            raise ValidationError("executor_workers must be >= 1")
        if self.executor_min_rows < 0:
            raise ValidationError("executor_min_rows must be >= 0")

    # -- derived deployment sizes -------------------------------------------------

    def machine_capacity(self, total_words: int) -> int:
        """Local memory ``s`` in words for an input of ``total_words``."""
        total_words = max(1, int(total_words))
        s = int(math.ceil(self.capacity_constant * total_words**self.delta))
        return max(self.min_machine_words, s)

    def machine_count(self, total_words: int) -> int:
        """Number of machines ``m`` so that ``m*s >= global_slack * N``."""
        total_words = max(1, int(total_words))
        s = self.machine_capacity(total_words)
        m = int(math.ceil(self.global_slack * total_words / s))
        return max(1, m)

    def global_budget_words(self, total_words: int) -> int:
        """The linear global-memory budget ``g`` for this input size."""
        return self.machine_capacity(total_words) * self.machine_count(total_words)

    def with_(self, **kw) -> "MPCConfig":
        return replace(self, **kw)
