"""ASCII table / CSV rendering and record aggregation for reports."""

from __future__ import annotations

import csv
import io
from collections import OrderedDict
from typing import Iterable, List, Mapping, Sequence, Tuple

__all__ = ["render_table", "to_csv", "aggregate_records"]


def _fmt(x) -> str:
    if isinstance(x, float):
        if x != x:  # nan
            return "-"
        if x == float("inf"):
            return "inf"
        if abs(x) >= 1000 or (x and abs(x) < 0.01):
            return f"{x:.3e}"
        return f"{x:.3f}".rstrip("0").rstrip(".")
    return str(x)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A monospace table with a header rule, ready for printing."""
    srows: List[List[str]] = [[_fmt(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    out = io.StringIO()
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("-" * len(line) + "\n")
    for r in srows:
        out.write("  ".join(c.rjust(w) for c, w in zip(r, widths)) + "\n")
    return out.getvalue()


def _agg(values: List, how: str):
    if how == "count":
        return len(values)
    if not values:
        return float("nan")
    if how == "sum":
        return sum(values)
    if how == "mean":
        return sum(values) / len(values)
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    raise ValueError(f"unknown aggregation {how!r}")


def aggregate_records(
    records: Iterable[Mapping],
    group_by: Sequence[str],
    metrics: Sequence[Tuple[str, str, str]],
) -> Tuple[List[str], List[Tuple]]:
    """Group dict records and fold metrics — the batch-report reducer.

    ``metrics`` entries are ``(header, field, how)`` with ``how`` one of
    ``count | sum | mean | min | max``; records where ``field`` is
    ``None`` (or absent) are skipped for that metric. Returns
    ``(headers, rows)`` ready for :func:`render_table` / :func:`to_csv`;
    groups appear in first-seen order.
    """
    groups: "OrderedDict[Tuple, List[Mapping]]" = OrderedDict()
    for rec in records:
        key = tuple(rec.get(k) for k in group_by)
        groups.setdefault(key, []).append(rec)
    headers = list(group_by) + [h for h, _, _ in metrics]
    rows = []
    for key, recs in groups.items():
        row = list(key)
        for _, field, how in metrics:
            vals = [r[field] for r in recs
                    if r.get(field) is not None]
            row.append(_agg(vals, how))
        rows.append(tuple(row))
    return headers, rows


def to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(headers)
    for r in rows:
        writer.writerow([_fmt(c) for c in r])
    return out.getvalue()
