"""ASCII table / CSV rendering for experiment reports."""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence

__all__ = ["render_table", "to_csv"]


def _fmt(x) -> str:
    if isinstance(x, float):
        if x != x:  # nan
            return "-"
        if x == float("inf"):
            return "inf"
        if abs(x) >= 1000 or (x and abs(x) < 0.01):
            return f"{x:.3e}"
        return f"{x:.3f}".rstrip("0").rstrip(".")
    return str(x)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A monospace table with a header rule, ready for printing."""
    srows: List[List[str]] = [[_fmt(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    out = io.StringIO()
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("-" * len(line) + "\n")
    for r in srows:
        out.write("  ".join(c.rjust(w) for c, w in zip(r, widths)) + "\n")
    return out.getvalue()


def to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for r in rows:
        out.write(",".join(_fmt(c) for c in r) + "\n")
    return out.getvalue()
