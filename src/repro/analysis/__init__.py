"""Experiment harness: tables, sweeps, complexity-shape diagnostics."""

from .complexity import LogFit, fit_log, growth_ratio
from .experiments import (
    ExperimentRow,
    diameter_sweep_instances,
    sensitivity_rounds_row,
    verification_rounds_row,
)
from .tables import aggregate_records, render_table, to_csv

__all__ = [
    "aggregate_records",
    "LogFit",
    "fit_log",
    "growth_ratio",
    "ExperimentRow",
    "diameter_sweep_instances",
    "sensitivity_rounds_row",
    "verification_rounds_row",
    "render_table",
    "to_csv",
]
