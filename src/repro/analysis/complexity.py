"""Complexity-shape diagnostics: fit measured rounds against log D_T.

The reproduction's headline claim is *shape*, not constants: measured
rounds should be ``a * log2(D_T) + b`` for the paper's algorithms and
``~ c * log2(n)`` (flat in ``D_T``) for the baselines. These helpers fit
the models and report goodness so benchmarks/tests can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["LogFit", "fit_log", "growth_ratio"]


@dataclass
class LogFit:
    slope: float          # rounds per doubling of D
    intercept: float
    r2: float

    def predict(self, d: np.ndarray) -> np.ndarray:
        return self.slope * np.log2(np.maximum(d, 1)) + self.intercept


def fit_log(d_values: Sequence[float], rounds: Sequence[float]) -> LogFit:
    """Least-squares fit of ``rounds = a*log2(d) + b``."""
    d = np.asarray(d_values, dtype=np.float64)
    r = np.asarray(rounds, dtype=np.float64)
    x = np.log2(np.maximum(d, 1.0))
    A = np.vstack([x, np.ones_like(x)]).T
    coef, *_ = np.linalg.lstsq(A, r, rcond=None)
    pred = A @ coef
    ss_res = float(((r - pred) ** 2).sum())
    ss_tot = float(((r - r.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LogFit(slope=float(coef[0]), intercept=float(coef[1]), r2=r2)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """``(y_last - y_first) / (log2(x_last) - log2(x_first))``.

    A quick slope estimate used by tests to assert logarithmic (not
    polynomial) growth without a full fit.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    dx = np.log2(xs[-1]) - np.log2(xs[0])
    if dx <= 0:
        return 0.0
    return float((ys[-1] - ys[0]) / dx)
