"""Experiment sweep helpers shared by the benchmark harness and examples.

Each function runs one of the DESIGN.md experiments over a parameter
sweep and returns printable rows; the pytest-benchmark targets wrap
these so ``pytest benchmarks/ --benchmark-only`` both times the
pipelines and prints the reproduced tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..core.sensitivity import mst_sensitivity
from ..core.verification import verify_mst
from ..graph.generators import attach_nontree_edges, backbone_tree
from ..graph.graph import WeightedGraph
from ..mpc import LocalRuntime, MPCConfig

__all__ = [
    "diameter_sweep_instances",
    "verification_rounds_row",
    "sensitivity_rounds_row",
    "ExperimentRow",
]


@dataclass
class ExperimentRow:
    params: Dict
    values: Dict

    def flat(self) -> Dict:
        out = dict(self.params)
        out.update(self.values)
        return out


def diameter_sweep_instances(
    n: int, diameters: Sequence[int], extra_m: int, seed: int = 0
) -> List[Tuple[int, WeightedGraph]]:
    """Backbone-tree MST instances with exact diameters, fixed n and m."""
    out = []
    for i, d in enumerate(diameters):
        tree = backbone_tree(n, d, rng=seed + i)
        g = attach_nontree_edges(tree, extra_m, rng=seed + 100 + i, mode="mst")
        out.append((d, g))
    return out


def verification_rounds_row(
    graph: WeightedGraph,
    oracle_labels: bool = True,
    config: MPCConfig | None = None,
) -> Dict:
    r = verify_mst(graph, oracle_labels=oracle_labels, config=config)
    assert r.is_mst, "sweep instances are MSTs by construction"
    return {
        "rounds_total": r.rounds,
        "rounds_core": r.core_rounds,
        "rounds_substrate": r.substrate_rounds,
        "peak_words": r.report.peak_global_words,
        "d_hat": r.diameter_estimate,
        "clusters_final": r.cluster_counts[-1] if r.cluster_counts else 0,
    }


def sensitivity_rounds_row(
    graph: WeightedGraph,
    oracle_labels: bool = True,
    config: MPCConfig | None = None,
) -> Dict:
    r = mst_sensitivity(graph, oracle_labels=oracle_labels, config=config)
    return {
        "rounds_total": r.rounds,
        "rounds_core": r.core_rounds,
        "peak_words": r.report.peak_global_words,
        "notes_peak": r.notes_peak,
        "d_hat": r.diameter_estimate,
    }
