"""O(1) weight-update query oracle over a precomputed sensitivity result.

The paper's Theorem 4.1 output is exactly the precomputation needed to
answer "does the flagged MST survive if edge ``e``'s weight changes to
``x``?" without rerunning anything: after the one-time ``O(log D_T)``
-round MPC pipeline, every query is a constant number of comparisons
against a per-edge threshold.

* Tree edge ``e``: the MST survives iff ``x <= mc(e)`` — the minimum
  weight of a non-tree edge covering ``e`` (decreasing a tree edge's
  weight can only slacken the cycle rule; ties keep ``T`` minimal).
  The *replacement edge* is the non-tree edge attaining ``mc(e)``: the
  edge that swaps in if ``e`` is priced past its threshold.
* Non-tree edge ``e``: the MST survives iff ``x >= pathmax(e)`` — the
  maximum tree weight on ``e``'s cycle (Observation 4.2); below that
  *entry threshold* the edge forces its way into every MST.

The oracle is built from a :class:`~repro.core.results.SensitivityResult`
plus the input graph; thresholds are taken verbatim from the pipeline
(``mc``/``pathmax`` are exact copies of input weights, so tie queries
compare exactly). Replacement-edge identities, which the round-efficient
pipeline deliberately does not materialise, are recovered at build time
by one near-linear Tarjan-style covering ascent and cross-checked
against the pipeline's ``mc`` values.

Oracles pickle/save to a single ``.npz`` and rehydrate anywhere — batch
workers persist them so a service process can answer millions of
queries without ever touching the MPC substrate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .errors import ValidationError
from .graph.graph import WeightedGraph
from .graph.tree import RootedTree
from .serialize import load_npz, save_npz

__all__ = ["SensitivityOracle", "build_oracle"]


def _covering_ascent(tree: RootedTree, nu, nv, nw, nt_index):
    """Min-cover weight and covering-edge id per vertex (Tarjan ascent).

    Processes non-tree edges by ascending weight and walks both
    endpoints to the LCA through a "next uncovered ancestor" DSU; the
    first cover to reach a tree edge is its cheapest one. Returns
    ``(mc, cover)`` where ``cover[v]`` is the *input* edge index covering
    the edge ``(v, parent(v))`` at weight ``mc[v]`` (or -1 / inf).
    """
    n = tree.n
    depth = tree.depths()
    parent = tree.parent
    lca = tree.lca(nu, nv) if len(nu) else np.empty(0, dtype=np.int64)

    mc = np.full(n, np.inf, dtype=np.float64)
    cover = np.full(n, -1, dtype=np.int64)
    jump = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        r = x
        while jump[r] != r:
            r = jump[r]
        while jump[x] != r:
            jump[x], x = r, jump[x]
        return r

    order = np.argsort(nw, kind="stable")
    for i in order:
        w = float(nw[i])
        eid = int(nt_index[i])
        top = int(lca[i])
        for end in (int(nu[i]), int(nv[i])):
            x = find(end)
            while depth[x] > depth[top]:
                mc[x] = w            # first (smallest) cover wins
                cover[x] = eid
                jump[x] = find(int(parent[x]))
                x = find(x)
    return mc, cover


class SensitivityOracle:
    """Constant-time ``survives``/``replacement`` queries for one instance.

    Build with :meth:`from_result` (or the :func:`build_oracle`
    convenience), then query point-wise or in NumPy bulk. All state is
    six flat arrays; :meth:`save`/:meth:`load` move it between machines.
    """

    def __init__(self, *, u, v, w, tree_mask, sensitivity, threshold,
                 cover_edge, parent, root: int, precompute_rounds: int = 0,
                 diameter_estimate: int = 0):
        self.u = np.asarray(u, dtype=np.int64)
        self.v = np.asarray(v, dtype=np.int64)
        self.w = np.asarray(w, dtype=np.float64)
        self.tree_mask = np.asarray(tree_mask, dtype=bool)
        self.sens = np.asarray(sensitivity, dtype=np.float64)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.cover_edge = np.asarray(cover_edge, dtype=np.int64)
        self.parent = np.asarray(parent, dtype=np.int64)
        self.root = int(root)
        self.precompute_rounds = int(precompute_rounds)
        self.diameter_estimate = int(diameter_estimate)
        self._cover_mask: Optional[np.ndarray] = None
        m = len(self.u)
        if not (len(self.v) == len(self.w) == len(self.tree_mask)
                == len(self.sens) == len(self.threshold)
                == len(self.cover_edge) == m):
            raise ValidationError("oracle arrays must have equal length")

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_result(cls, graph: WeightedGraph, result,
                    validate: bool = True) -> "SensitivityOracle":
        """Assemble the oracle from a pipeline result and its input graph.

        ``result`` may come straight from
        :func:`~repro.core.sensitivity.mst_sensitivity` or be rehydrated
        with :meth:`~repro.core.results.SensitivityResult.load`. With
        ``validate=True`` the build-time covering ascent is cross-checked
        against the pipeline's ``mc`` array (a free differential test).
        """
        if result.parent is not None and len(result.parent) == graph.n:
            parent = np.asarray(result.parent, dtype=np.int64)
            root = int(result.root)
        else:  # older snapshot without the rooting: rebuild it
            root = int(result.root)
            tu, tv, tw = graph.tree_edges()
            rooted = RootedTree.from_edges(graph.n, tu, tv, tw, root=root)
            parent = rooted.parent

        tree_index = np.asarray(result.tree_index, dtype=np.int64)
        nontree_index = np.asarray(result.nontree_index, dtype=np.int64)
        # per-vertex weight of the parent edge, and the child endpoint of
        # every tree edge (the vertex whose parent edge it is)
        tu, tv, tw = graph.u[tree_index], graph.v[tree_index], graph.w[tree_index]
        child = np.where(parent[tu] == tv, tu, tv)
        weight = np.zeros(graph.n, dtype=np.float64)
        weight[child] = tw
        tree = RootedTree(parent=parent.copy(), root=root, weight=weight)

        nu, nv, nw = (graph.u[nontree_index], graph.v[nontree_index],
                      graph.w[nontree_index])
        mc, cover = _covering_ascent(tree, nu, nv, nw, nontree_index)
        if validate and not np.array_equal(mc, result.mc):
            raise ValidationError(
                "covering ascent disagrees with the pipeline's mc array; "
                "result does not belong to this graph"
            )

        threshold = np.empty(graph.m, dtype=np.float64)
        threshold[tree_index] = mc[child]
        if result.pathmax is not None:
            threshold[nontree_index] = result.pathmax
        else:  # derived fallback (exact pathmax preferred: no re-rounding)
            threshold[nontree_index] = nw - result.sensitivity[nontree_index]

        cover_edge = np.full(graph.m, -1, dtype=np.int64)
        cover_edge[tree_index] = cover[child]
        return cls(
            u=graph.u, v=graph.v, w=graph.w, tree_mask=graph.tree_mask,
            sensitivity=result.sensitivity, threshold=threshold,
            cover_edge=cover_edge, parent=parent, root=root,
            precompute_rounds=result.rounds,
            diameter_estimate=result.diameter_estimate,
        )

    @classmethod
    def from_store(cls, graph: WeightedGraph, store, engine: str = "local",
                   config=None, **kw) -> "SensitivityOracle":
        """Build by warm-starting the pipeline from an artifact store.

        ``store`` is a :class:`~repro.pipeline.ArtifactStore` (typically
        the one a batch run populated): every stage already cached for
        this graph/engine/knob combination is replayed instead of
        re-executed, so building an oracle after a verification run only
        pays for the four sensitivity stages.
        """
        from .core.sensitivity import mst_sensitivity

        result = mst_sensitivity(graph, engine=engine, config=config,
                                 store=store, **kw)
        return cls.from_result(graph, result)

    # -- point queries (O(1) each) ---------------------------------------------

    @property
    def m(self) -> int:
        return len(self.u)

    def __len__(self) -> int:
        return len(self.u)

    def _check(self, e) -> int:
        e = int(e)
        if not 0 <= e < len(self.u):
            raise IndexError(f"edge index {e} out of range [0, {len(self.u)})")
        return e

    def sensitivity(self, e) -> float:
        """Slack of edge ``e`` (Theorem 4.1 semantics, ``inf`` = bridge)."""
        return float(self.sens[self._check(e)])

    def survives(self, e, new_weight: float) -> bool:
        """Does the flagged tree remain an MST with ``w(e) = new_weight``?

        Ties survive: at exactly the threshold the tree is still *an*
        MST (the cycle rule is non-strict).
        """
        e = self._check(e)
        if self.tree_mask[e]:
            return bool(new_weight <= self.threshold[e])
        return bool(new_weight >= self.threshold[e])

    def replacement_edge(self, e) -> Optional[int]:
        """Input index of the edge that swaps in if tree edge ``e`` is
        priced past its threshold; ``None`` for bridges. Tree edges only."""
        e = self._check(e)
        if not self.tree_mask[e]:
            raise ValidationError(
                f"edge {e} is not a tree edge; replacement_edge is defined "
                "for tree edges (use entry_threshold for non-tree edges)"
            )
        c = int(self.cover_edge[e])
        return None if c < 0 else c

    def entry_threshold(self, e) -> float:
        """Weight below which non-tree edge ``e`` enters every MST
        (its tree-path maximum). Non-tree edges only."""
        e = self._check(e)
        if self.tree_mask[e]:
            raise ValidationError(
                f"edge {e} is a tree edge; entry_threshold is defined for "
                "non-tree edges (use replacement_edge for tree edges)"
            )
        return float(self.threshold[e])

    # -- bulk queries (O(batch), vectorised) -----------------------------------

    def _check_bulk(self, edges) -> np.ndarray:
        e = np.asarray(edges, dtype=np.int64)
        if len(e) and (e.min() < 0 or e.max() >= len(self.u)):
            raise IndexError("edge index out of range in bulk query")
        return e

    def sensitivity_bulk(self, edges) -> np.ndarray:
        """Vectorised :meth:`sensitivity` over an index array."""
        return self.sens[self._check_bulk(edges)]

    def survives_bulk(self, edges, new_weights) -> np.ndarray:
        """Vectorised :meth:`survives` over (edge, weight) pair arrays."""
        e = self._check_bulk(edges)
        x = np.asarray(new_weights, dtype=np.float64)
        if len(e) != len(x):
            raise ValidationError("edges and new_weights must align")
        thr = self.threshold[e]
        return np.where(self.tree_mask[e], x <= thr, x >= thr)

    def replacement_edge_bulk(self, edges) -> np.ndarray:
        """Vectorised :meth:`replacement_edge`; ``-1`` marks bridges.

        All queried edges must be tree edges (the service pre-splits
        mixed micro-batches on :attr:`tree_mask` before dispatching).
        """
        e = self._check_bulk(edges)
        if len(e) and not self.tree_mask[e].all():
            raise ValidationError(
                "replacement_edge_bulk is defined for tree edges only"
            )
        return self.cover_edge[e]

    def entry_threshold_bulk(self, edges) -> np.ndarray:
        """Vectorised :meth:`entry_threshold` (non-tree edges only)."""
        e = self._check_bulk(edges)
        if len(e) and self.tree_mask[e].any():
            raise ValidationError(
                "entry_threshold_bulk is defined for non-tree edges only"
            )
        return self.threshold[e]

    # -- incremental weight updates --------------------------------------------

    def covering_edges(self) -> np.ndarray:
        """Bool mask over input edges: attains some tree edge's ``mc``.

        An edge in this mask is the recorded minimiser of at least one
        covering minimum — re-pricing it can move thresholds, so the
        update path must rebuild. Computed lazily, cached.
        """
        if self._cover_mask is None:
            mask = np.zeros(len(self.u), dtype=bool)
            covers = self.cover_edge[self.cover_edge >= 0]
            mask[covers] = True
            self._cover_mask = mask
        return self._cover_mask

    def reprice(self, e, new_weight: float) -> None:
        """Patch ``w(e)`` (and its own slack) in place.

        Only valid for *oracle-preserving* updates — ones where every
        stored threshold provably keeps its value (see
        :mod:`repro.service.updates` for the classification). All other
        query answers depend solely on thresholds, so this patch plus
        the slack recomputation is the entire update. Copy-on-write:
        read-only (memory-mapped) ``w``/``sens`` arrays are thawed to
        private copies first; the large threshold/topology arrays stay
        mapped and shared.
        """
        e = self._check(e)
        if not self.w.flags.writeable:
            self.w = np.array(self.w)
        if not self.sens.flags.writeable:
            self.sens = np.array(self.sens)
        self.w[e] = new_weight
        thr = self.threshold[e]
        if self.tree_mask[e]:
            self.sens[e] = thr - new_weight  # inf stays inf for bridges
        else:
            self.sens[e] = new_weight - thr

    # -- persistence -----------------------------------------------------------

    def save(self, path, compressed: bool = True) -> None:
        """Write the oracle to ``path`` as one ``.npz`` (see :meth:`load`).

        ``compressed=False`` stores the arrays verbatim so that
        :meth:`load` with ``mmap_mode`` can map them zero-copy.
        """
        save_npz(
            path,
            {
                "u": self.u, "v": self.v, "w": self.w,
                "tree_mask": self.tree_mask, "sensitivity": self.sens,
                "threshold": self.threshold, "cover_edge": self.cover_edge,
                "parent": self.parent,
            },
            {
                "kind": "sensitivity-oracle",
                "root": self.root,
                "precompute_rounds": self.precompute_rounds,
                "diameter_estimate": self.diameter_estimate,
            },
            compressed=compressed,
        )

    @classmethod
    def load(cls, path, mmap_mode: Optional[str] = None) -> "SensitivityOracle":
        """Rehydrate from :meth:`save` output.

        ``mmap_mode`` (e.g. ``"r"``) passes through to the npz loader:
        arrays of an uncompressed snapshot come back as read-only
        :class:`numpy.memmap` views, so N shard workers mapping one
        file share a single page-cached copy instead of each
        materialising all arrays. Compressed snapshots silently fall
        back to an eager read (``np.load`` semantics).
        """
        arrays, meta = load_npz(path, mmap_mode=mmap_mode)
        if meta.get("kind") != "sensitivity-oracle":
            raise ValidationError(f"{path!r} does not hold an oracle")
        return cls(
            u=arrays["u"], v=arrays["v"], w=arrays["w"],
            tree_mask=arrays["tree_mask"], sensitivity=arrays["sensitivity"],
            threshold=arrays["threshold"], cover_edge=arrays["cover_edge"],
            parent=arrays["parent"], root=meta["root"],
            precompute_rounds=meta["precompute_rounds"],
            diameter_estimate=meta["diameter_estimate"],
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SensitivityOracle(m={len(self.u)}, "
                f"tree={int(self.tree_mask.sum())}, "
                f"precompute_rounds={self.precompute_rounds})")


def build_oracle(graph: WeightedGraph, engine: str = "local", config=None,
                 store=None, **kw) -> SensitivityOracle:
    """Run the Theorem 4.1 pipeline and wrap the result as an oracle.

    ``store`` (an :class:`~repro.pipeline.ArtifactStore`) warm-starts
    the pipeline from cached stage artifacts when available.
    """
    from .core.sensitivity import mst_sensitivity

    result = mst_sensitivity(graph, engine=engine, config=config,
                             store=store, **kw)
    return SensitivityOracle.from_result(graph, result)
