"""Deterministic, seeded fault injection for the router fleet.

Recovery code that is only exercised by real outages is recovery code
that does not work. This module injects the three failure modes the
supervisor must survive — as a *plan*, parsed from a compact spec
string, executed on a schedule, and fully deterministic (the ``rand``
form derives every choice from an explicit seed), so CI can kill a
worker mid-storm and assert zero failed reads on every run:

* ``kill:W@T`` — SIGKILL worker ``W`` at ``T`` seconds (a hard crash:
  no shutdown handler runs, sockets drop mid-request);
* ``sever:W@T`` — close every router→worker connection of ``W`` (the
  process survives; the supervisor should re-dial, not respawn);
* ``delay:W@T:D[:S]`` — add ``D`` seconds of latency to every read
  forwarded to ``W`` for ``S`` seconds (default 1.0) starting at ``T``
  (a slow, not dead, worker — retries must *not* fire);
* ``rand:SEED@WINDOW[:KILLS]`` — ``KILLS`` (default 1) kill events at
  seeded-random times in ``(0.2, WINDOW)`` on seeded-random workers.

Events compose with commas: ``"kill:1@0.5,sever:0@2.0"``. Worker ids
are taken modulo the live fleet at fire time, so a spec written for
three workers stays valid after an eviction.

Entry points: ``repro route --chaos SPEC`` / ``repro serve --chaos
SPEC`` arm a plan at boot; the ``chaos`` wire op (used by ``loadgen
--chaos``) arms one against a running router through the front door.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .router import RouterTier

__all__ = ["ChaosEvent", "ChaosPlan", "ChaosInjector"]

ACTIONS = ("kill", "sever", "delay")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault."""

    action: str          #: "kill" | "sever" | "delay"
    worker: int          #: worker index (mod the live fleet at fire time)
    at_s: float          #: seconds after the plan starts
    delay_s: float = 0.0      #: per-request added latency ("delay" only)
    duration_s: float = 1.0   #: how long the latency window lasts


class ChaosPlan:
    """An ordered, deterministic schedule of :class:`ChaosEvent`."""

    def __init__(self, events: List[ChaosEvent]):
        self.events = sorted(events, key=lambda e: e.at_s)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        events: List[ChaosEvent] = []
        for token in filter(None, (t.strip() for t in spec.split(","))):
            events.extend(cls._parse_token(token))
        if not events:
            raise ValidationError(f"empty chaos spec {spec!r}")
        return cls(events)

    @staticmethod
    def _parse_token(token: str) -> List[ChaosEvent]:
        try:
            action, rest = token.split(":", 1)
            head, tail = rest.split("@", 1)
            parts = tail.split(":")
            if action == "rand":
                kills = int(parts[1]) if len(parts) > 1 else 1
                return ChaosPlan.random(
                    seed=int(head), window_s=float(parts[0]),
                    kills=kills).events
            if action not in ACTIONS:
                raise ValueError(f"unknown action {action!r}")
            worker, at_s = int(head), float(parts[0])
            if action == "delay":
                if len(parts) < 2:
                    raise ValueError("delay needs :DELAY after the time")
                return [ChaosEvent(
                    action, worker, at_s, delay_s=float(parts[1]),
                    duration_s=float(parts[2]) if len(parts) > 2 else 1.0)]
            return [ChaosEvent(action, worker, at_s)]
        except (ValueError, IndexError) as exc:
            raise ValidationError(
                f"bad chaos token {token!r}: {exc} "
                f"(grammar: kill:W@T | sever:W@T | delay:W@T:D[:S] | "
                f"rand:SEED@WINDOW[:KILLS])")

    @classmethod
    def random(cls, seed: int, window_s: float,
               kills: int = 1) -> "ChaosPlan":
        """Seeded kill schedule: same seed, same plan, every run."""
        rng = np.random.default_rng(seed)
        lo = min(0.2, window_s / 2)
        events = [
            ChaosEvent("kill", int(rng.integers(0, 1 << 16)),
                       float(rng.uniform(lo, max(lo + 1e-3, window_s))))
            for _ in range(max(1, int(kills)))
        ]
        return cls(events)


class ChaosInjector:
    """Executes a :class:`ChaosPlan` against a live router."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.fired: List[str] = []
        self._task: Optional[asyncio.Task] = None

    def start(self, router: "RouterTier") -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(router))

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self, router: "RouterTier") -> None:
        t0 = time.perf_counter()
        for ev in self.plan.events:
            lag = ev.at_s - (time.perf_counter() - t0)
            if lag > 0:
                await asyncio.sleep(lag)
            if router._stopped:
                return
            await self._fire(router, ev)

    async def _fire(self, router: "RouterTier", ev: ChaosEvent) -> None:
        ids = sorted(router.workers)
        if not ids:
            return
        w = router.workers[ids[ev.worker % len(ids)]]
        self.fired.append(f"{ev.action}:{w.worker_id}@{ev.at_s:.2f}")
        if ev.action == "kill":
            if w.proc.is_alive():
                w.proc.kill()  # SIGKILL: a crash, not a shutdown
        elif ev.action == "sever":
            for link in w.all_links():
                await link.close()
        elif ev.action == "delay":
            w.chaos_delay_s = ev.delay_s

            def _clear(worker=w, amount=ev.delay_s) -> None:
                if worker.chaos_delay_s == amount:
                    worker.chaos_delay_s = 0.0

            asyncio.get_running_loop().call_later(ev.duration_s, _clear)
