"""The write path: committed weight updates against a live instance.

Every update ``w(e) := x`` is triaged with the serving oracle's own
thresholds — no pipeline work — into one of three outcomes:

``rejected``
    ``survives(e, x)`` is false: the flagged tree would stop being an
    MST, so the update would invalidate the structure every query is
    about. The service refuses it and reports the threshold crossed
    (callers see exactly how far they can re-price).

``patched`` (oracle-preserving)
    Every stored threshold provably keeps its value, so the update is
    a two-cell in-place patch served with zero pipeline stages. The
    preserved cases, with the one-line proofs:

    * *no-op* (``x == w(e)``): nothing changed.
    * *bridge tree edge*: no non-tree edge covers ``e`` (``mc = ∞``),
      so no ``pathmax`` crosses it and no ``mc`` mentions it.
    * *non-tree edge, raised, not a covering minimiser*
      (``x ≥ w(e)`` and ``e ∉ cover_edge``): ``e`` attains no tree
      edge's ``mc``, and raising a non-minimum keeps every minimum;
      ``pathmax`` never reads non-tree weights. (Old weight ≥ its
      pathmax on a served MST, so ``survives`` holds automatically.)

    Only the edge's own slack depends on its weight, so the patch is
    ``w[e] = x; sens[e] = ±(threshold[e] - x)``.

``rebuilt`` (structure-changing)
    Any other update can move thresholds, so the Theorem 4.1 pipeline
    re-runs — against the instance's artifact store, where the
    weight-scoped stage keys (``Stage.weight_scope``) replay every
    stage that did not read the changed weights. A non-tree re-pricing
    replays the whole validate→lca prefix and re-runs only the
    weight-reading suffix. The new oracle swaps into every shard as
    one new generation; in-flight batches finish on their snapshot.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.adgraph import HalfEdges, split_at_lca
from ..core.labeling import (
    LabeledHalfEdges,
    evaluate_pathmax,
    run_weight_labeling,
)
from ..core.lca import all_edges_lca
from ..errors import ServiceError
from ..graph.graph import WeightedGraph
from ..graph.mutations import BatchEffect, apply_ops, coalesce_ops
from ..mpc import MPCConfig
from ..mpc.table import Table
from ..oracle import SensitivityOracle
from ..pipeline import (
    ArtifactStore,
    run_sensitivity,
    sensitivity_pipeline,
    verification_pipeline,
)
from ..pipeline.artifacts import (
    AdgraphArtifact,
    DecideArtifact,
    LabelsArtifact,
    LcaArtifact,
    PathmaxArtifact,
    graph_fingerprint,
)
from ..pipeline.pipeline import PipelineParams, PipelineRun, _make_rt
from ..serialize import file_digest
from .metrics import UpdateMetrics
from .shards import OracleShard, route

__all__ = ["UpdateReport", "BatchReport", "InstanceUpdater"]

#: Stage names the scoped batch path splices instead of re-running.
SPLICED_STAGE_NAMES = ("lca", "adgraph", "labels", "pathmax", "decide")

#: Stage names of the Theorem 3.1 prefix (for re-run accounting).
VERIFICATION_STAGE_NAMES = tuple(verification_pipeline().stage_names())


@dataclass
class UpdateReport:
    """Flat, JSON-friendly outcome of one weight update."""

    instance: str
    edge: int
    old_weight: float
    new_weight: float
    action: str                     # "rejected" | "patched" | "rebuilt"
    survives: bool
    threshold: float
    generation: int
    stages_executed: int = 0
    stages_cached: int = 0
    verification_reruns: int = 0
    executed: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    wall_s: float = 0.0
    #: With ``mmap_dir`` set, a rebuild publishes its oracle snapshot
    #: to a digest-addressed file — the handoff the router ships to
    #: replicas instead of rebuilding everywhere.
    snapshot_path: Optional[str] = None
    snapshot_digest: Optional[str] = None

    def to_dict(self) -> Dict:
        return asdict(self)


class InstanceUpdater:
    """Owns one instance's authoritative weights and its rebuild loop."""

    def __init__(self, name: str, graph: WeightedGraph,
                 oracle: SensitivityOracle, *,
                 engine: str = "local", config: Optional[MPCConfig] = None,
                 oracle_labels: bool = True,
                 store: Optional[ArtifactStore] = None,
                 mmap_dir: Optional[str] = None):
        self.name = name
        self.graph = graph          # authoritative (mutated by updates)
        self.oracle = oracle        # latest generation (shared or template)
        self.engine = engine
        self.config = config
        self.oracle_labels = oracle_labels
        self.store = store if store is not None else ArtifactStore()
        self.mmap_dir = mmap_dir
        self.generation = 0
        self.metrics = UpdateMetrics()
        #: Latest published snapshot (digest-addressed), if any — the
        #: handoff a router ships to replica workers.
        self.snapshot_path: Optional[str] = None
        self.snapshot_digest: Optional[str] = None
        #: The most recent full pipeline run over ``self.graph`` — the
        #: artifact set the scoped batch path splices against — plus
        #: the graph fingerprint it belongs to (splice precondition).
        self.last_run: Optional[PipelineRun] = None
        self._splice_fp: Optional[str] = None

    def _remember_run(self, run: PipelineRun, graph: WeightedGraph) -> None:
        self.last_run = run
        self._splice_fp = graph_fingerprint(graph, "full")

    def publish_snapshot(self) -> str:
        """Persist the current oracle to a digest-addressed ``.npz``.

        The file is written uncompressed (mmap-able), hashed, and
        renamed to ``<name>-<digest16>.npz`` — content-addressed, so a
        replica can verify the bytes it maps against the digest it was
        told to adopt, and re-publishing identical content is a no-op
        rename onto the same name. The superseded snapshot is unlinked
        (already-mapped pages stay valid on POSIX).
        """
        os.makedirs(self.mmap_dir, exist_ok=True)
        tmp = os.path.join(
            self.mmap_dir, f".{self.name}-gen{self.generation:04d}.tmp.npz"
        )
        self.oracle.save(tmp, compressed=False)
        digest = file_digest(tmp)
        path = os.path.join(self.mmap_dir,
                            f"{self.name}-{digest[:16]}.npz")
        os.replace(tmp, path)
        if self.snapshot_path not in (None, path):
            try:
                os.unlink(self.snapshot_path)
            except OSError:  # pragma: no cover - e.g. mapped on Windows
                pass
        self.snapshot_path = path
        self.snapshot_digest = digest
        return path

    def shard_oracles(self, n_shards: int) -> List[SensitivityOracle]:
        """The oracle objects a new generation hands to its shards.

        Without ``mmap_dir`` every shard shares the in-memory oracle.
        With it, the generation is snapshotted once to an uncompressed
        digest-addressed ``.npz`` and every shard maps that file
        read-only — one page-cached copy behind N workers (or N
        processes: the router ships exactly this file to replicas).
        """
        if self.mmap_dir is None:
            return [self.oracle] * n_shards
        path = self.publish_snapshot()
        return [SensitivityOracle.load(path, mmap_mode="r")
                for _ in range(n_shards)]

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, name: str, graph: WeightedGraph, *,
              engine: str = "local", config: Optional[MPCConfig] = None,
              oracle_labels: bool = True,
              store: Optional[ArtifactStore] = None,
              mmap_dir: Optional[str] = None) -> "InstanceUpdater":
        """Cold-build the first oracle generation (populates the store)."""
        store = store if store is not None else ArtifactStore()
        result, run = run_sensitivity(
            graph, engine=engine, config=config,
            oracle_labels=oracle_labels, store=store,
        )
        oracle = SensitivityOracle.from_result(graph, result)
        updater = cls(name, graph, oracle, engine=engine, config=config,
                      oracle_labels=oracle_labels, store=store,
                      mmap_dir=mmap_dir)
        updater._remember_run(run, graph)
        return updater

    # -- classification --------------------------------------------------------

    def classify(self, edge: int, new_weight: float) -> str:
        """Triage one update: ``rejected`` / ``patched`` / ``rebuilt``."""
        oracle = self.oracle
        if not oracle.survives(edge, new_weight):
            return "rejected"
        old = float(oracle.w[edge])
        if new_weight == old:
            return "patched"  # no-op
        if oracle.tree_mask[edge]:
            if not float("-inf") < oracle.threshold[edge] < float("inf"):
                return "patched"  # bridge: nothing covers it
            return "rebuilt"
        if new_weight >= old and not oracle.covering_edges()[edge]:
            return "patched"
        return "rebuilt"

    # -- application (synchronous; the server serialises + offloads it) --------

    def apply(self, shards: List[OracleShard], edge: int,
              new_weight: float) -> UpdateReport:
        t0 = time.perf_counter()
        oracle = self.oracle
        edge = int(edge)
        new_weight = float(new_weight)
        if not 0 <= edge < self.graph.m:
            # wire input: a structured bad_request, never an IndexError
            # escaping into the connection handler (negative ids would
            # otherwise silently wrap into the wrong edge)
            raise ServiceError(
                f"edge id {edge} out of range [0, {self.graph.m})",
                kind="bad_request",
            )
        old = float(self.graph.w[edge])
        action = self.classify(edge, new_weight)
        report = UpdateReport(
            instance=self.name, edge=edge, old_weight=old,
            new_weight=new_weight, action=action,
            survives=action != "rejected",
            threshold=float(oracle.threshold[edge]),
            generation=self.generation,
        )
        if action == "rejected":
            self.metrics.rejected += 1
        elif action == "patched":
            self.graph.w[edge] = new_weight
            patched = set()
            owner = shards[route([s.spec for s in shards], edge)]
            owner.reprice(edge, new_weight)
            patched.add(id(owner.oracle))
            # mmap mode gives every shard (and the updater) its own
            # oracle object over shared pages; patch each one once
            for other in shards:
                if id(other.oracle) not in patched:
                    other.oracle.reprice(edge, new_weight)
                    patched.add(id(other.oracle))
            if id(self.oracle) not in patched:
                self.oracle.reprice(edge, new_weight)
            self.metrics.applied_preserving += 1
            # the retained artifact set now lags the live weights; the
            # next batch takes one full rebuild before splicing resumes
            self._splice_fp = None
        else:
            self.graph.w[edge] = new_weight
            result, run = run_sensitivity(
                self.graph, engine=self.engine, config=self.config,
                oracle_labels=self.oracle_labels, store=self.store,
            )
            self.oracle = SensitivityOracle.from_result(self.graph, result)
            self.generation += 1
            self._remember_run(run, self.graph)
            for shard, orc in zip(shards, self.shard_oracles(len(shards))):
                shard.swap(orc, self.generation)
            report.generation = self.generation
            report.snapshot_path = self.snapshot_path
            report.snapshot_digest = self.snapshot_digest
            report.executed = list(run.executed_stages)
            report.cached = list(run.cached_stages)
            report.stages_executed = len(run.executed_stages)
            report.stages_cached = len(run.cached_stages)
            report.verification_reruns = sum(
                1 for s in run.executed_stages
                if s in VERIFICATION_STAGE_NAMES
            )
            self.metrics.applied_rebuild += 1
            self.metrics.stages_executed += report.stages_executed
            self.metrics.stages_cached += report.stages_cached
        report.wall_s = time.perf_counter() - t0
        if action == "rebuilt":
            self.metrics.rebuild_wall_s += report.wall_s
        return report

    # -- structural batches (the streaming write path) --------------------------

    def apply_batch(self, ops: Sequence[Dict]) -> "BatchReport":
        """Apply one coalesced batch of structural ops; one generation swap.

        The batch is classified by what it actually did to the candidate
        tree (:func:`~repro.graph.mutations.apply_ops` repairs the MST
        exactly): a *non-tree-only* batch takes the scoped path — the
        per-edge stages (lca, adgraph, labels, pathmax, decide) are
        *spliced* from the previous generation's artifacts, with only
        the touched rows recomputed, and the pipeline then replays them
        from the primed store and re-runs just the sensitivity
        aggregation. A *tree-affecting* batch re-runs honestly through
        whatever the narrowed fingerprint scopes still cache. Either
        way the resulting oracle is rebuilt through
        :meth:`SensitivityOracle.from_result`, whose validation
        cross-checks it against an independent covering ascent — a
        splice bug fails loudly instead of shipping.
        """
        t0 = time.perf_counter()
        received = list(ops)
        coalesced = coalesce_ops(received)
        old_graph = self.graph
        new_graph, effect = apply_ops(old_graph, coalesced)
        report = BatchReport(
            instance=self.name, action="rejected",
            n_ops=len(received), n_coalesced=len(coalesced),
            n_applied=effect.applied, tree_affected=effect.tree_affected,
            generation=self.generation, m=old_graph.m,
            m_tree=old_graph.m_tree, counts=dict(effect.counts),
            rejected_ops=[[int(i), r] for i, r in effect.rejected],
        )
        if effect.applied == 0:
            self.metrics.rejected += 1
            report.wall_s = time.perf_counter() - t0
            return report
        spliced = 0
        if not effect.tree_affected:
            spliced = self._prime_scoped(old_graph, new_graph, effect)
        result, run = run_sensitivity(
            new_graph, engine=self.engine, config=self.config,
            oracle_labels=self.oracle_labels, store=self.store,
        )
        self.oracle = SensitivityOracle.from_result(new_graph, result)
        self.graph = new_graph
        self.generation += 1
        self._remember_run(run, new_graph)
        report.action = "rebuilt"
        report.scoped = spliced > 0
        report.generation = self.generation
        report.m = new_graph.m
        report.m_tree = new_graph.m_tree
        report.added_ids = [int(i) for i in effect.added_ids]
        report.removed_ids = [
            int(i) for i in np.flatnonzero(effect.old_to_new < 0)
        ]
        report.stages_spliced = spliced
        report.stages_executed = len(run.executed_stages)
        report.stages_cached = len(run.cached_stages)
        report.executed = list(run.executed_stages)
        report.cached = list(run.cached_stages)
        self.metrics.applied_rebuild += 1
        self.metrics.stages_executed += report.stages_executed
        self.metrics.stages_cached += report.stages_cached
        report.wall_s = time.perf_counter() - t0
        self.metrics.rebuild_wall_s += report.wall_s
        return report

    def _prime_scoped(self, old_graph: WeightedGraph,
                      new_graph: WeightedGraph, effect: BatchEffect) -> int:
        """Splice per-edge artifacts for a non-tree-only batch.

        Returns the number of stages primed into the store under the
        new graph's keys (0 when the preconditions fail and the caller
        must fall back to an ordinary cached rebuild).

        Soundness: the candidate tree is unchanged, so the hierarchy,
        DFS labels and diameter estimate — everything the per-edge
        stages consult besides the non-tree rows themselves — are
        exactly the previous generation's. Each non-tree edge's lca /
        half-edges / labels / path maxima are functions of that shared
        state and the edge's own row, so surviving rows keep their old
        values (eids remapped) and only touched rows are recomputed.
        Downstream consumers reduce over half-edges with min/max/count
        — order-insensitive even in floats — so the reordered splice
        leaves the final oracle bit-identical (pinned by tests and E17).
        """
        run = self.last_run
        if run is None or self._splice_fp is None:
            return 0
        if graph_fingerprint(old_graph, "full") != self._splice_fp:
            return 0
        needed = ("clustering", "dfs", "diameter", "lca", "adgraph",
                  "labels", "pathmax", "decide")
        if any(k not in run.artifacts for k in needed):
            return 0

        o_nt = np.flatnonzero(~old_graph.tree_mask)
        n_nt = np.flatnonzero(~new_graph.tree_mask)
        q0, q1 = len(o_nt), len(n_nt)
        npos_of_input = np.full(new_graph.m, -1, dtype=np.int64)
        npos_of_input[n_nt] = np.arange(q1, dtype=np.int64)
        mapped = effect.old_to_new[o_nt]
        opos2npos = np.where(mapped >= 0,
                             npos_of_input[np.clip(mapped, 0, None)], -1)
        kept = opos2npos >= 0
        same_w = np.zeros(q0, dtype=bool)
        same_w[kept] = (new_graph.w[np.clip(mapped, 0, None)][kept]
                        == old_graph.w[o_nt][kept])
        kept &= same_w
        covered = np.zeros(q1, dtype=bool)
        covered[opos2npos[kept]] = True
        delta = np.flatnonzero(~covered)

        nnu = new_graph.u[n_nt]
        nnv = new_graph.v[n_nt]
        nnw = new_graph.w[n_nt]
        hier = run.artifacts["clustering"].hierarchy
        dfs = run.artifacts["dfs"]
        d_hat = run.artifacts["diameter"].d_hat
        old_lca = run.artifacts["lca"].lca
        old_ad = run.artifacts["adgraph"]
        old_lb = run.artifacts["labels"]
        old_pm = run.artifacts["pathmax"]
        old_dec = run.artifacts["decide"]

        rt2 = _make_rt(new_graph, self.engine, self.config, None)
        params = PipelineParams.capture(
            rt2, root=0, oracle_labels=self.oracle_labels,
            engine=self.engine,
        )
        keys = {e.name: e.key
                for e in sensitivity_pipeline().plan(new_graph, params)}

        def staged(name, build):
            mark = rt2.tracker.mark()
            with rt2.phase("core"):
                with rt2.phase(name):
                    art = build()
            rt2.flush_plan()
            art.cost = rt2.tracker.delta_since(mark)
            self.store.put(keys[name], art)
            return art

        kept_npos = opos2npos[kept]

        def build_lca():
            lca_new = np.empty(q1, dtype=np.int64)
            lca_new[kept_npos] = old_lca[kept]
            if len(delta):
                lca_new[delta] = all_edges_lca(
                    rt2, hier, dfs.low, dfs.high,
                    nnu[delta], nnv[delta], d_hat,
                )
            return LcaArtifact(lca=lca_new)

        lca_art = staged("lca", build_lca)

        keep_half = kept[old_ad.eid]

        def build_adgraph():
            if len(delta):
                halves = split_at_lca(rt2, nnu[delta], nnv[delta],
                                      nnw[delta], lca_art.lca[delta])
                d_eid = delta[halves.eid]
                d_lo, d_hi, d_w = halves.lo, halves.hi, halves.w
            else:
                d_eid = np.empty(0, dtype=np.int64)
                d_lo = d_hi = d_eid
                d_w = np.empty(0, dtype=np.float64)
            return AdgraphArtifact(
                eid=np.concatenate([opos2npos[old_ad.eid[keep_half]], d_eid]),
                lo=np.concatenate([old_ad.lo[keep_half], d_lo]),
                hi=np.concatenate([old_ad.hi[keep_half], d_hi]),
                w=np.concatenate([old_ad.w[keep_half], d_w]),
            )

        ad_art = staged("adgraph", build_adgraph)
        # view of just the delta halves (they sit after the kept rows)
        n_keep_half = int(keep_half.sum())
        d_half = HalfEdges(eid=ad_art.eid[n_keep_half:],
                           lo=ad_art.lo[n_keep_half:],
                           hi=ad_art.hi[n_keep_half:],
                           w=ad_art.w[n_keep_half:])

        def build_labels():
            if len(d_half):
                lab = run_weight_labeling(rt2, hier, d_half,
                                          dfs.low, dfs.high)
                arrs = {
                    f: np.concatenate([getattr(old_lb, f)[keep_half],
                                       getattr(lab, f)])
                    for f in ("omega_lo", "omega_hi", "cl_lo", "cl_hi",
                              "internal")
                }
            else:
                arrs = {f: getattr(old_lb, f)[keep_half]
                        for f in ("omega_lo", "omega_hi", "cl_lo", "cl_hi",
                                  "internal")}
            # the cluster-state table depends only on the (unchanged)
            # hierarchy, so the previous generation's is exact
            return LabelsArtifact(clusters=old_lb.clusters, **arrs)

        lb_art = staged("labels", build_labels)

        def build_pathmax():
            if len(d_half):
                # the label view restricted to the delta rows
                d_labeled = LabeledHalfEdges(
                    half=d_half,
                    omega_lo=lb_art.omega_lo[n_keep_half:],
                    omega_hi=lb_art.omega_hi[n_keep_half:],
                    cl_lo=lb_art.cl_lo[n_keep_half:],
                    cl_hi=lb_art.cl_hi[n_keep_half:],
                    internal=lb_art.internal[n_keep_half:],
                    clusters=lb_art.clusters,
                )
                d_pm = evaluate_pathmax(rt2, hier, d_labeled)
            else:
                d_pm = np.empty(0, dtype=np.float64)
            return PathmaxArtifact(
                pm_half=np.concatenate([old_pm.pm_half[keep_half], d_pm])
            )

        pm_art = staged("pathmax", build_pathmax)

        def build_decide():
            pathmax = np.empty(q1, dtype=np.float64)
            pathmax[kept_npos] = old_dec.pathmax[kept]
            if len(delta):
                d_pm_half = pm_art.pm_half[n_keep_half:]
                if len(d_half):
                    per = rt2.reduce_by_key(
                        Table(eid=d_half.eid, pm=d_pm_half), ("eid",),
                        {"pm": ("pm", "max")},
                    )
                    got = rt2.lookup(
                        Table(eid=delta.astype(np.int64)), ("eid",),
                        per, ("eid",), {"pm": "pm"},
                        default={"pm": -np.inf},
                    )
                    pathmax[delta] = got.col("pm")
                else:
                    pathmax[delta] = -np.inf
            bad = nnw < pathmax
            n_bad = int(rt2.scalar(Table(b=bad.astype(np.int64)), "b",
                                   "sum"))
            return DecideArtifact(pathmax=pathmax, bad=bad, n_bad=n_bad)

        staged("decide", build_decide)
        return len(SPLICED_STAGE_NAMES)


@dataclass
class BatchReport:
    """Flat, JSON-friendly outcome of one structural batch."""

    instance: str
    action: str                     # "rejected" | "rebuilt"
    n_ops: int = 0                  # ops received (pre-coalesce)
    n_coalesced: int = 0            # ops after coalescing
    n_applied: int = 0
    tree_affected: bool = False
    scoped: bool = False            # splice path used
    generation: int = 0
    m: int = 0
    m_tree: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    rejected_ops: List = field(default_factory=list)
    added_ids: List[int] = field(default_factory=list)
    removed_ids: List[int] = field(default_factory=list)
    stages_spliced: int = 0
    stages_executed: int = 0
    stages_cached: int = 0
    executed: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    wall_s: float = 0.0
    snapshot_path: Optional[str] = None
    snapshot_digest: Optional[str] = None

    def to_dict(self) -> Dict:
        return asdict(self)
