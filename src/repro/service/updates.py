"""The write path: committed weight updates against a live instance.

Every update ``w(e) := x`` is triaged with the serving oracle's own
thresholds — no pipeline work — into one of three outcomes:

``rejected``
    ``survives(e, x)`` is false: the flagged tree would stop being an
    MST, so the update would invalidate the structure every query is
    about. The service refuses it and reports the threshold crossed
    (callers see exactly how far they can re-price).

``patched`` (oracle-preserving)
    Every stored threshold provably keeps its value, so the update is
    a two-cell in-place patch served with zero pipeline stages. The
    preserved cases, with the one-line proofs:

    * *no-op* (``x == w(e)``): nothing changed.
    * *bridge tree edge*: no non-tree edge covers ``e`` (``mc = ∞``),
      so no ``pathmax`` crosses it and no ``mc`` mentions it.
    * *non-tree edge, raised, not a covering minimiser*
      (``x ≥ w(e)`` and ``e ∉ cover_edge``): ``e`` attains no tree
      edge's ``mc``, and raising a non-minimum keeps every minimum;
      ``pathmax`` never reads non-tree weights. (Old weight ≥ its
      pathmax on a served MST, so ``survives`` holds automatically.)

    Only the edge's own slack depends on its weight, so the patch is
    ``w[e] = x; sens[e] = ±(threshold[e] - x)``.

``rebuilt`` (structure-changing)
    Any other update can move thresholds, so the Theorem 4.1 pipeline
    re-runs — against the instance's artifact store, where the
    weight-scoped stage keys (``Stage.weight_scope``) replay every
    stage that did not read the changed weights. A non-tree re-pricing
    replays the whole validate→lca prefix and re-runs only the
    weight-reading suffix. The new oracle swaps into every shard as
    one new generation; in-flight batches finish on their snapshot.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..oracle import SensitivityOracle
from ..pipeline import ArtifactStore, run_sensitivity, verification_pipeline
from ..serialize import file_digest
from .metrics import UpdateMetrics
from .shards import OracleShard, route

__all__ = ["UpdateReport", "InstanceUpdater"]

#: Stage names of the Theorem 3.1 prefix (for re-run accounting).
VERIFICATION_STAGE_NAMES = tuple(verification_pipeline().stage_names())


@dataclass
class UpdateReport:
    """Flat, JSON-friendly outcome of one weight update."""

    instance: str
    edge: int
    old_weight: float
    new_weight: float
    action: str                     # "rejected" | "patched" | "rebuilt"
    survives: bool
    threshold: float
    generation: int
    stages_executed: int = 0
    stages_cached: int = 0
    verification_reruns: int = 0
    executed: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    wall_s: float = 0.0
    #: With ``mmap_dir`` set, a rebuild publishes its oracle snapshot
    #: to a digest-addressed file — the handoff the router ships to
    #: replicas instead of rebuilding everywhere.
    snapshot_path: Optional[str] = None
    snapshot_digest: Optional[str] = None

    def to_dict(self) -> Dict:
        return asdict(self)


class InstanceUpdater:
    """Owns one instance's authoritative weights and its rebuild loop."""

    def __init__(self, name: str, graph: WeightedGraph,
                 oracle: SensitivityOracle, *,
                 engine: str = "local", config: Optional[MPCConfig] = None,
                 oracle_labels: bool = True,
                 store: Optional[ArtifactStore] = None,
                 mmap_dir: Optional[str] = None):
        self.name = name
        self.graph = graph          # authoritative (mutated by updates)
        self.oracle = oracle        # latest generation (shared or template)
        self.engine = engine
        self.config = config
        self.oracle_labels = oracle_labels
        self.store = store if store is not None else ArtifactStore()
        self.mmap_dir = mmap_dir
        self.generation = 0
        self.metrics = UpdateMetrics()
        #: Latest published snapshot (digest-addressed), if any — the
        #: handoff a router ships to replica workers.
        self.snapshot_path: Optional[str] = None
        self.snapshot_digest: Optional[str] = None

    def publish_snapshot(self) -> str:
        """Persist the current oracle to a digest-addressed ``.npz``.

        The file is written uncompressed (mmap-able), hashed, and
        renamed to ``<name>-<digest16>.npz`` — content-addressed, so a
        replica can verify the bytes it maps against the digest it was
        told to adopt, and re-publishing identical content is a no-op
        rename onto the same name. The superseded snapshot is unlinked
        (already-mapped pages stay valid on POSIX).
        """
        import os

        os.makedirs(self.mmap_dir, exist_ok=True)
        tmp = os.path.join(
            self.mmap_dir, f".{self.name}-gen{self.generation:04d}.tmp.npz"
        )
        self.oracle.save(tmp, compressed=False)
        digest = file_digest(tmp)
        path = os.path.join(self.mmap_dir,
                            f"{self.name}-{digest[:16]}.npz")
        os.replace(tmp, path)
        if self.snapshot_path not in (None, path):
            try:
                os.unlink(self.snapshot_path)
            except OSError:  # pragma: no cover - e.g. mapped on Windows
                pass
        self.snapshot_path = path
        self.snapshot_digest = digest
        return path

    def shard_oracles(self, n_shards: int) -> List[SensitivityOracle]:
        """The oracle objects a new generation hands to its shards.

        Without ``mmap_dir`` every shard shares the in-memory oracle.
        With it, the generation is snapshotted once to an uncompressed
        digest-addressed ``.npz`` and every shard maps that file
        read-only — one page-cached copy behind N workers (or N
        processes: the router ships exactly this file to replicas).
        """
        if self.mmap_dir is None:
            return [self.oracle] * n_shards
        path = self.publish_snapshot()
        return [SensitivityOracle.load(path, mmap_mode="r")
                for _ in range(n_shards)]

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, name: str, graph: WeightedGraph, *,
              engine: str = "local", config: Optional[MPCConfig] = None,
              oracle_labels: bool = True,
              store: Optional[ArtifactStore] = None,
              mmap_dir: Optional[str] = None) -> "InstanceUpdater":
        """Cold-build the first oracle generation (populates the store)."""
        store = store if store is not None else ArtifactStore()
        result, _run = run_sensitivity(
            graph, engine=engine, config=config,
            oracle_labels=oracle_labels, store=store,
        )
        oracle = SensitivityOracle.from_result(graph, result)
        return cls(name, graph, oracle, engine=engine, config=config,
                   oracle_labels=oracle_labels, store=store,
                   mmap_dir=mmap_dir)

    # -- classification --------------------------------------------------------

    def classify(self, edge: int, new_weight: float) -> str:
        """Triage one update: ``rejected`` / ``patched`` / ``rebuilt``."""
        oracle = self.oracle
        if not oracle.survives(edge, new_weight):
            return "rejected"
        old = float(oracle.w[edge])
        if new_weight == old:
            return "patched"  # no-op
        if oracle.tree_mask[edge]:
            if not float("-inf") < oracle.threshold[edge] < float("inf"):
                return "patched"  # bridge: nothing covers it
            return "rebuilt"
        if new_weight >= old and not oracle.covering_edges()[edge]:
            return "patched"
        return "rebuilt"

    # -- application (synchronous; the server serialises + offloads it) --------

    def apply(self, shards: List[OracleShard], edge: int,
              new_weight: float) -> UpdateReport:
        t0 = time.perf_counter()
        oracle = self.oracle
        edge = int(edge)
        new_weight = float(new_weight)
        old = float(self.graph.w[edge])
        action = self.classify(edge, new_weight)
        report = UpdateReport(
            instance=self.name, edge=edge, old_weight=old,
            new_weight=new_weight, action=action,
            survives=action != "rejected",
            threshold=float(oracle.threshold[edge]),
            generation=self.generation,
        )
        if action == "rejected":
            self.metrics.rejected += 1
        elif action == "patched":
            self.graph.w[edge] = new_weight
            patched = set()
            owner = shards[route([s.spec for s in shards], edge)]
            owner.reprice(edge, new_weight)
            patched.add(id(owner.oracle))
            # mmap mode gives every shard (and the updater) its own
            # oracle object over shared pages; patch each one once
            for other in shards:
                if id(other.oracle) not in patched:
                    other.oracle.reprice(edge, new_weight)
                    patched.add(id(other.oracle))
            if id(self.oracle) not in patched:
                self.oracle.reprice(edge, new_weight)
            self.metrics.applied_preserving += 1
        else:
            self.graph.w[edge] = new_weight
            result, run = run_sensitivity(
                self.graph, engine=self.engine, config=self.config,
                oracle_labels=self.oracle_labels, store=self.store,
            )
            self.oracle = SensitivityOracle.from_result(self.graph, result)
            self.generation += 1
            for shard, orc in zip(shards, self.shard_oracles(len(shards))):
                shard.swap(orc, self.generation)
            report.generation = self.generation
            report.snapshot_path = self.snapshot_path
            report.snapshot_digest = self.snapshot_digest
            report.executed = list(run.executed_stages)
            report.cached = list(run.cached_stages)
            report.stages_executed = len(run.executed_stages)
            report.stages_cached = len(run.cached_stages)
            report.verification_reruns = sum(
                1 for s in run.executed_stages
                if s in VERIFICATION_STAGE_NAMES
            )
            self.metrics.applied_rebuild += 1
            self.metrics.stages_executed += report.stages_executed
            self.metrics.stages_cached += report.stages_cached
        report.wall_s = time.perf_counter() - t0
        if action == "rebuilt":
            self.metrics.rebuild_wall_s += report.wall_s
        return report
