"""The binary columnar wire protocol (S25): zero-parse framing.

JSON-lines made the data plane debuggable; at router scale it is the
dominant hot path — one ``json.loads`` per request on the server, a
full parse per forwarded line on the router, and a loadgen driver that
saturates a core on ``json.dumps`` alone. This module defines a
versioned binary protocol that rides the *same* TCP ports: the first
byte of a connection disambiguates (``MAGIC`` ``0xB7`` can never open a
JSON request, ``{`` ``0x7B`` can never open a binary frame), so old
clients keep working untouched.

Design rules, in order of importance:

1. **Every frame's length is derivable from its first 8 bytes.** The
   type byte alone fixes the grammar (point frames are 16 bytes flat;
   bulk and escape frames carry an explicit count/length in the
   header), so a relay can split a byte stream into frames without
   understanding — or parsing — any payload.
2. **Point frames are uniform 16-byte records** so a whole pipelined
   read decodes with ONE ``np.frombuffer`` into columns (and a whole
   response batch encodes with one ``tobytes``). The ``weight`` field
   is present for every op and meaningful only for ``survives`` — 8
   padding bytes per frame buy vectorised codecs on both ends, which
   is the entire point.
3. **Correlation is FIFO order**, exactly like the JSON-lines path:
   the k-th response frame on a connection answers the k-th request
   frame. No ids on the wire.
4. **Instance names are interned** into ``u16`` symbol ids by a
   ``hello`` handshake (an escape frame), so the hot-path header
   carries a fixed-width id instead of a variable-length name. Ids are
   assigned by the responder (dense, append-only); the router dictates
   the same global order to every worker so relays never rewrite ids.
5. **Control ops stay JSON** inside a length-prefixed *escape frame*
   (type ``0x7E``): ``metrics``, ``update``, ``adopt``, ``chaos``, …
   keep their debuggable representation — only the hot path changes.

Frame grammar (all little-endian; full table in DESIGN.md §6.5)::

    point request   16B  <u8 magic, u8 op(0x01..0x04), u16 iid,
                          u32 edge, f64 weight>
    bulk request    var  <u8 magic, u8 op(0x11..0x14), u16 iid,
                          u32 count> + count*u32 edges
                          [+ count*f64 weights  (survives only)]
    point response  16B  <u8 magic, u8 0x40|status, u16 shard,
                          u32 generation, f64 value>
    bulk response   var  <u8 magic, u8 0x51..0x54, u16 shard,
                          u32 count, u32 generation, u32 reserved>
                          + count*u8 statuses + count*f64 values
    escape          var  <u8 magic, u8 0x7E, u16 reserved, u32 length>
                          + length bytes of JSON (either direction)

Values are ``f64`` pass-through of the oracle's own float64 kernels —
bit-identical to the JSON path, which round-trips the same doubles
through ``repr`` (``survives`` booleans ride as 0.0/1.0 and
``replacement_edge``'s bridge sentinel as -1.0; the client maps them
back). Error envelopes map to compact status codes; the client-side
decoder reconstructs the service's exact error strings for the
deterministic kinds (type/range/shed) from the op, edge and the value
field, so a differential test can demand dict-equality across
protocols.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "MAGIC", "WIRE_VERSION", "HEADER_LEN", "POINT_LEN", "MAX_FRAME_LEN",
    "OP_CODE", "OP_NAME", "BULK_OF", "POINT_OF_BULK",
    "ESCAPE", "RESP_BASE", "BULK_RESP_BASE",
    "ST_OK", "ST_TYPE", "ST_RANGE", "ST_BAD_REQUEST", "ST_INTERNAL",
    "ST_SHED", "ST_SHED_ROUTER", "ST_UNKNOWN_INSTANCE",
    "ST_DISCONNECTED", "ST_ERROR",
    "STATUS_TO_KIND", "KIND_TO_STATUS",
    "POINT_DTYPE", "RESP_DTYPE",
    "dumps", "dumps_line", "join_lines",
    "WireError", "WireSymbols", "WireMetrics",
    "frame_length", "point_run_length",
    "encode_point_requests", "encode_escape", "decode_escape",
    "encode_bulk_request", "decode_bulk_request",
    "encode_bulk_response", "decode_bulk_response",
    "point_response_to_dict", "response_to_status",
]

#: First byte of every binary frame. Chosen so no JSON request can ever
#: start with it (JSON objects open with ``{`` = 0x7B) and vice versa.
MAGIC = 0xB7

#: Protocol version carried in the ``hello`` handshake.
WIRE_VERSION = 1

HEADER_LEN = 8        #: fixed header prefix every frame starts with
POINT_LEN = 16        #: point request and point response frames
#: Upper bound on any single frame (bulk payloads, escape JSON). An
#: advertised length beyond this is a protocol error, not an alloc.
MAX_FRAME_LEN = 64 * 1024 * 1024

# -- type bytes ---------------------------------------------------------------

#: Point-request op codes 0x01..0x04 (order matches QUERY_OPS).
OP_CODE: Dict[str, int] = {
    "sensitivity": 0x01,
    "survives": 0x02,
    "replacement_edge": 0x03,
    "entry_threshold": 0x04,
}
OP_NAME: Dict[int, str] = {v: k for k, v in OP_CODE.items()}

#: Bulk-request op codes 0x11..0x14 mirror the point codes.
BULK_OF: Dict[int, int] = {code: code | 0x10 for code in OP_NAME}
POINT_OF_BULK: Dict[int, int] = {v: k for k, v in BULK_OF.items()}

ESCAPE = 0x7E           #: length-prefixed JSON escape frame
RESP_BASE = 0x40        #: point response: 0x40 | status
BULK_RESP_BASE = 0x50   #: bulk response: 0x50 | point op code

_POINT_MIN, _POINT_MAX = 0x01, 0x04
_BULK_MIN, _BULK_MAX = 0x11, 0x14
_RESP_MIN, _RESP_MAX = 0x40, 0x4F
_BRESP_MIN, _BRESP_MAX = 0x51, 0x54

# -- status codes -------------------------------------------------------------

ST_OK = 0x0                #: success; value field holds the answer
ST_TYPE = 0x1              #: wrong edge kind for the op
ST_RANGE = 0x2             #: edge index out of range (value = m)
ST_BAD_REQUEST = 0x3       #: malformed query
ST_INTERNAL = 0x4          #: kernel raised; answer, don't die
ST_SHED = 0x5              #: shard queue full (shard=id, value=bound)
ST_SHED_ROUTER = 0x6       #: router-tier backpressure shed
ST_UNKNOWN_INSTANCE = 0x7  #: iid not registered at the responder
ST_DISCONNECTED = 0x8      #: no live replica within the retry deadline
ST_ERROR = 0x9             #: other structured error

#: status → the JSON path's ``error_kind`` string (and back).
STATUS_TO_KIND: Dict[int, Optional[str]] = {
    ST_OK: None,
    ST_TYPE: "type",
    ST_RANGE: "range",
    ST_BAD_REQUEST: "bad-request",
    ST_INTERNAL: "internal",
    ST_DISCONNECTED: "worker-disconnected",
}
KIND_TO_STATUS: Dict[str, int] = {
    "type": ST_TYPE,
    "range": ST_RANGE,
    "bad-request": ST_BAD_REQUEST,
    "internal": ST_INTERNAL,
    "worker-disconnected": ST_DISCONNECTED,
}

# -- columnar dtypes ----------------------------------------------------------

#: One 16-byte point request. Uniform stride across all four ops is
#: what lets a whole pipelined read decode with one ``frombuffer``.
POINT_DTYPE = np.dtype([
    ("magic", "u1"), ("type", "u1"), ("iid", "<u2"),
    ("edge", "<u4"), ("weight", "<f8"),
])

#: One 16-byte point response (type = RESP_BASE | status).
RESP_DTYPE = np.dtype([
    ("magic", "u1"), ("type", "u1"), ("shard", "<u2"),
    ("generation", "<u4"), ("value", "<f8"),
])

assert POINT_DTYPE.itemsize == POINT_LEN
assert RESP_DTYPE.itemsize == POINT_LEN

_HEADER = struct.Struct("<BBHI")       #: magic, type, u16, u32

# -- compact JSON (the separator-optimised fast path) -------------------------


def dumps(obj) -> str:
    """``json.dumps`` without the default ``", "`` / ``": "`` padding.

    The separators are pure wire fat — ~8–12% of a typical response
    line — and every hot path (server, router, loadgen, escape frames)
    encodes through here so the JSON baseline stays honest in E19.
    """
    return json.dumps(obj, separators=(",", ":"))


def dumps_line(obj) -> bytes:
    """One compact JSON-lines record, newline included, encoded."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def join_lines(objs) -> bytes:
    """Encode many records with a single join (one write per chunk)."""
    return "".join(
        json.dumps(o, separators=(",", ":")) + "\n" for o in objs
    ).encode()


class WireError(Exception):
    """A framing violation: bad magic, unknown type, absurd length.

    Handlers answer with a structured escape error frame where they
    still can, then close — never hang, never leak a raw exception.
    """


# -- frame splitting ----------------------------------------------------------


def frame_length(buf) -> Optional[int]:
    """Total length of the frame opening ``buf``, or ``None`` if the
    header itself is still incomplete. Raises :class:`WireError` on bad
    magic, an unknown type byte, or an oversized advertised length."""
    if len(buf) < HEADER_LEN:
        return None
    magic, ftype, _u16, u32 = _HEADER.unpack_from(bytes(buf[:HEADER_LEN]))
    if magic != MAGIC:
        raise WireError(
            f"bad magic 0x{magic:02x} at frame boundary "
            f"(expected 0x{MAGIC:02x}; is this a JSON client on a "
            f"binary-negotiated connection?)")
    if _POINT_MIN <= ftype <= _POINT_MAX or _RESP_MIN <= ftype <= _RESP_MAX:
        return POINT_LEN
    if _BULK_MIN <= ftype <= _BULK_MAX:
        n = HEADER_LEN + 4 * u32
        if ftype == BULK_OF[OP_CODE["survives"]]:
            n += 8 * u32
        if n > MAX_FRAME_LEN:
            raise WireError(
                f"bulk request advertises {u32} edges "
                f"({n} bytes > {MAX_FRAME_LEN} cap)")
        return n
    if _BRESP_MIN <= ftype <= _BRESP_MAX:
        n = HEADER_LEN + 8 + 9 * u32
        if n > MAX_FRAME_LEN:
            raise WireError(
                f"bulk response advertises {u32} rows "
                f"({n} bytes > {MAX_FRAME_LEN} cap)")
        return n
    if ftype == ESCAPE:
        if HEADER_LEN + u32 > MAX_FRAME_LEN:
            raise WireError(
                f"escape frame advertises {u32} payload bytes "
                f"(> {MAX_FRAME_LEN} cap)")
        return HEADER_LEN + u32
    raise WireError(f"unknown frame type 0x{ftype:02x}")


def point_run_length(buf, *, lo: int = _POINT_MIN,
                     hi: int = _POINT_MAX) -> int:
    """How many leading complete frames of ``buf`` form a uniform run
    of 16-byte point frames with type in ``[lo, hi]``.

    One vectorised scan over the candidate records — the relay and the
    server both use this to lift a whole pipelined read into columns
    without a per-frame Python loop. Returns 0 when the first frame is
    not a point frame (callers then fall back to :func:`frame_length`).
    """
    k = len(buf) // POINT_LEN
    if k == 0:
        return 0
    view = np.frombuffer(buf, dtype=POINT_DTYPE, count=k)
    bad = np.flatnonzero((view["magic"] != MAGIC)
                         | (view["type"] < lo) | (view["type"] > hi))
    return int(bad[0]) if len(bad) else k


# -- codecs -------------------------------------------------------------------


def encode_point_requests(ops: np.ndarray, iids: np.ndarray,
                          edges: np.ndarray,
                          weights: Optional[np.ndarray] = None) -> bytes:
    """Vectorised client-side encode: columns in, one buffer out."""
    n = len(ops)
    out = np.empty(n, dtype=POINT_DTYPE)
    out["magic"] = MAGIC
    out["type"] = ops
    out["iid"] = iids
    out["edge"] = edges
    out["weight"] = weights if weights is not None else 0.0
    return out.tobytes()


def encode_escape(obj) -> bytes:
    """One control request/response as a length-prefixed JSON frame."""
    payload = dumps(obj).encode()
    return _HEADER.pack(MAGIC, ESCAPE, 0, len(payload)) + payload


def decode_escape(frame: bytes) -> Dict:
    """Parse an escape frame's JSON payload (the frame is complete)."""
    try:
        obj = json.loads(frame[HEADER_LEN:])
        if not isinstance(obj, dict):
            raise ValueError("escape payload must be a JSON object")
        return obj
    except ValueError as exc:
        raise WireError(f"bad escape payload: {exc}")


def encode_bulk_request(op: str, iid: int, edges: np.ndarray,
                        weights: Optional[np.ndarray] = None) -> bytes:
    """Columnar bulk query: header + raw u32 edge ids (+ f64 weights)."""
    code = BULK_OF[OP_CODE[op]]
    edges = np.ascontiguousarray(edges, dtype="<u4")
    head = _HEADER.pack(MAGIC, code, iid, len(edges))
    if op == "survives":
        if weights is None:
            raise WireError("bulk survives needs a weights column")
        weights = np.ascontiguousarray(weights, dtype="<f8")
        return head + edges.tobytes() + weights.tobytes()
    return head + edges.tobytes()


def decode_bulk_request(frame: bytes) -> Tuple[str, int, np.ndarray,
                                               Optional[np.ndarray]]:
    """(op, iid, edges, weights|None) from a complete bulk frame."""
    _m, ftype, iid, count = _HEADER.unpack_from(frame)
    op = OP_NAME[POINT_OF_BULK[ftype]]
    edges = np.frombuffer(frame, dtype="<u4", count=count,
                          offset=HEADER_LEN)
    weights = None
    if op == "survives":
        weights = np.frombuffer(frame, dtype="<f8", count=count,
                                offset=HEADER_LEN + 4 * count)
    return op, iid, edges, weights


def encode_bulk_response(op_code: int, shard: int, generation: int,
                         statuses: np.ndarray,
                         values: np.ndarray) -> bytes:
    """Columnar bulk answer: statuses and values as raw buffers."""
    count = len(statuses)
    head = _HEADER.pack(MAGIC, BULK_RESP_BASE | op_code, shard, count)
    head += struct.pack("<II", generation, 0)
    return (head + np.ascontiguousarray(statuses, dtype="u1").tobytes()
            + np.ascontiguousarray(values, dtype="<f8").tobytes())


def decode_bulk_response(frame: bytes) -> Tuple[int, int, np.ndarray,
                                                np.ndarray]:
    """(shard, generation, statuses, values) from a bulk response."""
    _m, _t, shard, count = _HEADER.unpack_from(frame)
    generation, _r = struct.unpack_from("<II", frame, HEADER_LEN)
    statuses = np.frombuffer(frame, dtype="u1", count=count,
                             offset=HEADER_LEN + 8)
    values = np.frombuffer(frame, dtype="<f8", count=count,
                           offset=HEADER_LEN + 8 + count)
    return shard, generation, statuses, values


# -- response → JSON-envelope mapping -----------------------------------------


def _wrap_value(op: str, value: float):
    """Map an f64 wire value back to the op's JSON result type."""
    if op == "survives":
        return bool(value)
    if op == "replacement_edge":
        return None if value < 0 else int(value)
    return float(value)


def point_response_to_dict(op: str, edge: int, rec,
                           instance: Optional[str] = None) -> Dict:
    """Decode one point response record into the exact dict the JSON
    path would have produced for the same query.

    The deterministic error kinds (type/range/shed) reconstruct the
    service's error strings verbatim — the frame carries the missing
    operand in its ``value``/``shard`` fields — which is what lets the
    cross-protocol differential test assert dict equality, not just
    value equality.
    """
    status = rec["type"] & 0x0F
    generation = int(rec["generation"])
    shard = int(rec["shard"])
    value = float(rec["value"])
    if status == ST_OK:
        return {"ok": True, "generation": generation, "shard": shard,
                "result": _wrap_value(op, value)}
    if status == ST_TYPE:
        kind = "tree" if op == "replacement_edge" else "non-tree"
        return {"ok": False, "generation": generation, "shard": shard,
                "error": f"edge {edge} is not a {kind} edge",
                "error_kind": "type"}
    if status == ST_RANGE:
        # the JSON path rejects these at route() time, before any shard
        # is chosen — reconstruct that envelope exactly (no shard keys)
        return {"ok": False,
                "error": f"edge index {edge} out of range "
                         f"[0, {int(value)})"}
    if status == ST_SHED:
        return {"ok": False, "shed": True,
                "error": f"shard {shard} queue full ({int(value)})"}
    if status == ST_SHED_ROUTER:
        return {"ok": False, "shed": True, "where": "router",
                "error": f"all {int(value)} replica(s) of {instance!r} "
                         f"are past the shed watermark"}
    if status == ST_UNKNOWN_INSTANCE:
        return {"ok": False, "error": f"unknown instance {instance!r}"}
    if status == ST_DISCONNECTED:
        # value distinguishes the router's two retry-deadline messages
        msg = (f"no live replica of {instance!r} within the retry "
               f"deadline" if value < 1.0 else
               f"replicas of {instance!r} kept disconnecting within "
               f"the retry deadline")
        return {"ok": False, "error": msg,
                "error_kind": "worker-disconnected"}
    if status == ST_BAD_REQUEST:
        return {"ok": False, "generation": generation, "shard": shard,
                "error": "survives needs a weight",
                "error_kind": "bad-request"}
    if status == ST_INTERNAL:
        return {"ok": False, "generation": generation, "shard": shard,
                "error": "internal error", "error_kind": "internal"}
    return {"ok": False, "error": f"wire status 0x{status:x}"}


def response_to_status(resp: Dict) -> int:
    """Classify a JSON response dict into a compact status code."""
    if resp.get("ok"):
        return ST_OK
    if resp.get("shed"):
        return (ST_SHED_ROUTER if resp.get("where") == "router"
                else ST_SHED)
    return KIND_TO_STATUS.get(resp.get("error_kind", ""), ST_ERROR)


# -- symbol interning ---------------------------------------------------------


class WireSymbols:
    """Append-only instance-name → dense ``u16`` id registry.

    One registry per responder process. Ids are assigned in intern
    order and never reused, so a ``hello`` reply is always a superset
    of every earlier reply on the same process — connections cache the
    mapping without invalidation. The router keeps its own registry
    and *dictates* it to workers (hello with the full name list in
    global-id order), so a relayed frame's iid means the same instance
    on both sides of the splice — no rewriting.
    """

    MAX = 0xFFFF

    def __init__(self):
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def __len__(self) -> int:
        return len(self._names)

    @property
    def version(self) -> int:
        """Monotone registry size — links compare this to re-hello."""
        return len(self._names)

    def intern(self, name: str) -> int:
        iid = self._ids.get(name)
        if iid is None:
            if len(self._names) >= self.MAX:
                raise WireError("symbol table full (65535 instances)")
            iid = len(self._names)
            self._ids[name] = iid
            self._names.append(name)
        return iid

    def intern_all(self, names) -> Dict[str, int]:
        return {name: self.intern(name) for name in names}

    def name_of(self, iid: int) -> Optional[str]:
        return self._names[iid] if 0 <= iid < len(self._names) else None

    def names(self) -> List[str]:
        """All names in id order (id k is ``names()[k]``)."""
        return list(self._names)

    def table(self) -> Dict[str, int]:
        return dict(self._ids)


# -- per-protocol accounting --------------------------------------------------


class WireMetrics:
    """Per-protocol wire counters for one listener (or relay side).

    ``frames_*``/``bytes_*`` count data-plane traffic; ``json_decodes``
    / ``json_encodes`` count JSON parser invocations on the same path —
    the zero-parse assertion for binary relays is exactly "frames grew,
    json_decodes did not". Decode/encode wall time is recorded per
    *batch* (vectorised codecs amortise it) and reported as mean ns per
    frame.
    """

    def __init__(self):
        self.connections = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.json_decodes = 0
        self.json_encodes = 0
        self.decode_ns = 0
        self.decode_frames = 0
        self.encode_ns = 0
        self.encode_frames = 0

    def record_decode(self, frames: int, ns: int) -> None:
        self.decode_frames += frames
        self.decode_ns += ns

    def record_encode(self, frames: int, ns: int) -> None:
        self.encode_frames += frames
        self.encode_ns += ns

    def snapshot(self) -> Dict:
        return {
            "connections": self.connections,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "json_decodes": self.json_decodes,
            "json_encodes": self.json_encodes,
            "decode_ns_per_frame": (
                round(self.decode_ns / self.decode_frames, 1)
                if self.decode_frames else None),
            "encode_ns_per_frame": (
                round(self.encode_ns / self.encode_frames, 1)
                if self.encode_frames else None),
        }
