"""Micro-batching: point queries in, vectorised oracle calls out.

One :class:`MicroBatcher` per shard. ``submit`` enqueues a point query
and returns a future; the worker task takes the first waiting item,
sleeps the configured batching window (letting concurrent clients pile
in behind it), drains the queue up to ``max_batch``, and dispatches the
batch as grouped ``*_bulk`` oracle calls on ONE ``(generation,
oracle)`` snapshot. Answers are bit-identical to point queries — the
bulk kernels are the same comparisons — so batching is purely a
throughput lever: its amortised per-query cost is one future + one
queue hop instead of a full dispatch.

Backpressure is a bounded queue: a full queue sheds the query at
submit time (:class:`ServiceOverloaded`), which the server surfaces as
a structured load-shed response rather than unbounded latency.

``max_batch=1`` degenerates to one dispatch per query (the E13
baseline); the batching window is skipped entirely so the comparison
isolates exactly the micro-batching win.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from .shards import OracleShard
from .wire import (ST_INTERNAL, ST_OK, ST_RANGE, ST_TYPE)

__all__ = ["MicroBatcher", "ServiceOverloaded", "QUERY_OPS"]

#: The four point-query operations (read path).
QUERY_OPS = ("sensitivity", "survives", "replacement_edge",
             "entry_threshold")

class ServiceOverloaded(Exception):
    """Raised at submit time when a shard's queue is at its bound."""


def _resolve(fut, payload) -> None:
    """Resolve a query future, tolerating client-side cancellation.

    A client that stopped waiting (e.g. an ``asyncio.wait_for`` timeout)
    leaves a *cancelled* — hence done — future in the batch; calling
    ``set_result`` on it raises ``InvalidStateError``, which the broad
    per-op handler would then convert into spurious ``internal`` errors
    for every healthy query co-batched with it. Dropping the orphaned
    answer is correct: nobody is listening.
    """
    if not fut.done():
        fut.set_result(payload)


class MicroBatcher:
    """Collects point queries for one shard and dispatches them bulk."""

    def __init__(self, shard: OracleShard, *, max_batch: int = 512,
                 window_s: float = 0.002, queue_depth: int = 4096):
        if max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        self.shard = shard
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.queue_depth = max(1, int(queue_depth))
        # a plain deque + wake event instead of asyncio.Queue: submit
        # and drain are the per-query hot path (every queue hop is paid
        # even at occupancy 1), and Queue's waiter machinery costs
        # several times a deque append
        self._items: deque = deque()
        self._n_queued = 0  # queries queued; a vector item counts len(edges)
        self._wake = asyncio.Event()
        self._close_wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._closing = False

    @property
    def depth(self) -> int:
        """Currently queued (not yet dispatched) queries.

        Vector submissions count every query they carry — the router's
        backpressure shed watches this number, and a 512-row columnar
        frame is 512 queries' worth of queue, not one.
        """
        return self._n_queued

    # -- client side -----------------------------------------------------------

    def submit(self, op: str, edge: int, weight: Optional[float] = None
               ) -> "asyncio.Future":
        """Enqueue one point query.

        The returned future resolves to ``(generation, ok, value,
        error_kind)`` — ``error_kind`` is ``None`` on success, else one
        of ``"type"`` (wrong edge kind for the op), ``"range"`` (edge
        index out of range), ``"bad-request"`` or ``"internal"``, so
        consumers classify failures structurally instead of matching
        error strings.
        """
        if self._closing:
            raise ServiceOverloaded("service is shutting down")
        if self._task is None:
            raise ValidationError(
                "shard worker not running — call `await service.start()` "
                "before querying"
            )
        if self._n_queued >= self.queue_depth:
            self.shard.metrics.shed += 1
            raise ServiceOverloaded(
                f"shard {self.shard.spec.shard_id} queue full "
                f"({self.queue_depth})"
            )
        fut = asyncio.get_running_loop().create_future()
        self._items.append((op, int(edge), weight, fut,
                            time.perf_counter()))
        self._n_queued += 1
        self._wake.set()
        return fut

    def submit_vector(self, op: str, edges: np.ndarray,
                      weights: Optional[np.ndarray] = None
                      ) -> "asyncio.Future":
        """Enqueue one already-columnar group of point queries.

        The binary wire path decodes a whole pipelined read into
        columns; this is its entry point — one queue item, one future,
        zero per-query boxing. The future resolves to ``(generation,
        statuses, values)``: a ``u8`` status per row (wire status
        codes; ``ST_OK`` rows carry their answer in ``values``, range
        errors carry the edge bound) computed by exactly the same
        pre-filters and bulk kernels as :meth:`submit`, so answers are
        bit-identical to the scalar path.

        The whole group sheds as one unit when it does not fit in the
        remaining queue budget — the wire layer surfaces that as one
        shed status per row, mirroring what per-query submits against
        a full queue would have produced.
        """
        if self._closing:
            raise ServiceOverloaded("service is shutting down")
        if self._task is None:
            raise ValidationError(
                "shard worker not running — call `await service.start()` "
                "before querying"
            )
        n = len(edges)
        if self._n_queued + n > self.queue_depth:
            self.shard.metrics.shed += n
            raise ServiceOverloaded(
                f"shard {self.shard.spec.shard_id} queue full "
                f"({self.queue_depth})"
            )
        fut = asyncio.get_running_loop().create_future()
        self._items.append((op, np.asarray(edges, dtype=np.int64),
                            weights, fut, time.perf_counter()))
        self._n_queued += n
        self._wake.set()
        return fut

    # -- worker side -----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain queued queries, then stop the worker — promptly.

        ``_close_wake`` cuts short a fill window already in progress:
        without it, a ``stop()`` issued mid-window would still sleep
        the full ``window_s`` before the drain batch dispatches.
        """
        if self._task is None:
            return
        self._closing = True
        self._close_wake.set()
        self._wake.set()
        await self._task
        self._task = None

    async def _run(self) -> None:
        items = self._items
        while True:
            if not items:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if (self.window_s > 0 and self.max_batch > 1
                    and len(items) < self.max_batch
                    and not self._closing):
                # let concurrently-submitting clients fill the window;
                # a backlog already holding a full batch dispatches
                # immediately (the window buys occupancy, not delay).
                # The wait (not a plain sleep) aborts the instant
                # stop() sets the close event, so shutdown drains now
                try:
                    await asyncio.wait_for(self._close_wake.wait(),
                                           self.window_s)
                except asyncio.TimeoutError:
                    pass
            n = min(len(items), self.max_batch)
            batch = [items.popleft() for _ in range(n)]
            self._n_queued -= sum(
                len(it[1]) if isinstance(it[1], np.ndarray) else 1
                for it in batch)
            self._dispatch(batch)
            # yield between back-to-back full batches so submitters
            # (and the rest of the loop) are never starved
            await asyncio.sleep(0)

    def _dispatch(self, batch: List[Tuple]) -> None:
        generation, oracle = self.shard.snapshot()  # one consistent read
        n_queries = 0
        by_op = {}
        for pos, item in enumerate(batch):
            if isinstance(item[1], np.ndarray):
                n_queries += len(item[1])
                self._dispatch_vector(item, generation, oracle)
            else:
                n_queries += 1
                by_op.setdefault(item[0], []).append(pos)
        for op, positions in by_op.items():
            try:
                self._dispatch_op(op, positions, batch, generation, oracle)
            except Exception as exc:  # noqa: BLE001 - answer, don't die
                for pos in positions:
                    _resolve(batch[pos][3],
                             (generation, False,
                              f"{type(exc).__name__}: {exc}", "internal"))
        done = time.perf_counter()
        # p50/p99 come from a stride sample (full batches would spend
        # more time bookkeeping latencies than serving large batches)
        step = max(1, len(batch) // 32)
        lats = np.array([done - item[4] for item in batch[::step]])
        self.shard.metrics.record_batch(n_queries, lats)

    def _dispatch_op(self, op: str, positions: List[int],
                     batch: List[Tuple], generation: int, oracle) -> None:
        edges = np.array([batch[p][1] for p in positions], dtype=np.int64)
        if len(edges) and (edges.min() < 0 or edges.max() >= len(oracle)):
            self._edge_range_errors(positions, batch, generation, oracle)
            positions = [p for p in positions
                         if 0 <= batch[p][1] < len(oracle)]
            edges = np.array([batch[p][1] for p in positions],
                             dtype=np.int64)
        if not len(edges):
            return
        if op == "sensitivity":
            vals = oracle.sensitivity_bulk(edges).tolist()
            for p, v in zip(positions, vals):
                _resolve(batch[p][3], (generation, True, v, None))
        elif op == "survives":
            ws = [batch[p][2] for p in positions]
            if None in ws:
                for p, w in zip(list(positions), ws):
                    if w is None:
                        _resolve(batch[p][3],
                                 (generation, False,
                                  "survives needs a weight", "bad-request"))
                positions = [p for p, w in zip(positions, ws)
                             if w is not None]
                ws = [w for w in ws if w is not None]
                edges = np.array([batch[p][1] for p in positions],
                                 dtype=np.int64)
                if not len(edges):
                    return
            vals = oracle.survives_bulk(
                edges, np.array(ws, dtype=np.float64)).tolist()
            for p, v in zip(positions, vals):
                _resolve(batch[p][3], (generation, True, v, None))
        elif op == "replacement_edge":
            self._typed(positions, batch, generation, oracle, edges,
                        want_tree=True,
                        bulk=lambda e: oracle.replacement_edge_bulk(e),
                        wrap=lambda v: None if v < 0 else int(v))
        elif op == "entry_threshold":
            self._typed(positions, batch, generation, oracle, edges,
                        want_tree=False,
                        bulk=lambda e: oracle.entry_threshold_bulk(e),
                        wrap=float)
        else:
            raise ValidationError(f"unknown query op {op!r}")

    def _dispatch_vector(self, item: Tuple, generation: int,
                         oracle) -> None:
        """Answer one columnar group with wire status codes per row.

        Semantics mirror :meth:`_dispatch_op` exactly — range
        pre-filter first (the status row carries the edge bound so the
        client can reconstruct the service's error string verbatim),
        then the tree/non-tree kind check for the typed ops, then the
        same bulk kernels on the surviving rows. A kernel exception
        answers the in-range rows as internal errors instead of
        killing the worker.
        """
        op, edges, weights, fut, _t0 = item
        n = len(edges)
        statuses = np.zeros(n, dtype=np.uint8)
        values = np.zeros(n, dtype=np.float64)
        in_range = (edges >= 0) & (edges < len(oracle))
        if not in_range.all():
            statuses[~in_range] = ST_RANGE
            values[~in_range] = float(len(oracle))  # the bound, for the msg
        idx = np.flatnonzero(in_range)
        e = edges[idx]
        try:
            if op == "sensitivity":
                values[idx] = oracle.sensitivity_bulk(e)
            elif op == "survives":
                values[idx] = oracle.survives_bulk(
                    e, np.asarray(weights, dtype=np.float64)[idx])
            elif op == "replacement_edge" or op == "entry_threshold":
                want_tree = op == "replacement_edge"
                mask = oracle.tree_mask[e]
                ok = mask if want_tree else ~mask
                bad = idx[~ok]
                if len(bad):
                    statuses[bad] = ST_TYPE
                    self.shard.metrics.type_errors += len(bad)
                good = idx[ok]
                if len(good):
                    values[good] = (oracle.replacement_edge_bulk(e[ok])
                                    if want_tree
                                    else oracle.entry_threshold_bulk(e[ok]))
            else:
                raise ValidationError(f"unknown query op {op!r}")
        except Exception:  # noqa: BLE001 - answer, don't die
            statuses[idx] = ST_INTERNAL
            values[idx] = 0.0
        assert ST_OK == 0  # zeros() above == "row answered fine"
        _resolve(fut, (generation, statuses, values))

    def _typed(self, positions, batch, generation, oracle, edges, *,
               want_tree: bool, bulk, wrap) -> None:
        """Tree-only / non-tree-only ops: split out wrong-kind queries."""
        mask = oracle.tree_mask[edges]
        ok = mask if want_tree else ~mask
        kind = "tree" if want_tree else "non-tree"
        for p, good in zip(positions, ok):
            if not good:
                self.shard.metrics.type_errors += 1
                _resolve(batch[p][3],
                         (generation, False,
                          f"edge {batch[p][1]} is not a {kind} edge", "type"))
        keep = [p for p, good in zip(positions, ok) if good]
        if not keep:
            return
        vals = bulk(edges[ok])
        for p, v in zip(keep, vals):
            _resolve(batch[p][3], (generation, True, wrap(v), None))

    def _edge_range_errors(self, positions, batch, generation, oracle):
        for p in positions:
            e = batch[p][1]
            if not 0 <= e < len(oracle):
                _resolve(batch[p][3],
                         (generation, False,
                          f"edge index {e} out of range [0, {len(oracle)})",
                          "range"))
