"""The asyncio query service: sharded, micro-batching, updateable.

One :class:`SensitivityService` hosts any number of named graph
instances. Per instance it keeps the authoritative weights, an
:class:`~repro.pipeline.ArtifactStore` (for incremental rebuilds), and
``shards`` edge-range :class:`~repro.service.shards.OracleShard`
workers, each fronted by a
:class:`~repro.service.batching.MicroBatcher`. Reads route by edge
index to a shard queue and come back micro-batched; writes serialise
through the instance's update lock and either patch in place
(oracle-preserving) or rebuild + atomically swap a new oracle
generation (see :mod:`repro.service.updates`). Rebuilds run on a
worker thread, so the event loop keeps serving reads from the old
generation throughout.

Two front doors share one dispatch path:

* in-process: :class:`ServiceClient` (tests, benchmarks, embedding) —
  no serialisation, plain dicts;
* TCP JSON-lines: one request object per line, one response per line,
  ``id`` echoed when present (``python -m repro serve`` +
  :mod:`repro.service.loadgen`). Non-finite floats use Python's JSON
  extension (``Infinity``/``NaN`` literals), matching the stdlib on
  both ends.

Wire ops: the four point queries (``sensitivity`` / ``survives`` /
``replacement_edge`` / ``entry_threshold``), ``update``,
``update_batch`` (streamed structural ops — see
:mod:`repro.service.streaming`), ``metrics``, ``depth``,
``instances``, ``ping``, ``shutdown``. Overload is a structured
``{"ok": false, "shed": true}`` response, not an ever-growing queue.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ServiceError, ValidationError
from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..oracle import SensitivityOracle
from ..pipeline import ArtifactStore
from . import wire
from .batching import QUERY_OPS, MicroBatcher, ServiceOverloaded
from .metrics import merged_latency
from .shards import OracleShard, ShardSpec, plan_shards, route
from .streaming import StreamIngestor
from .updates import BatchReport, InstanceUpdater, UpdateReport

__all__ = ["ServiceConfig", "SensitivityService", "ServiceClient"]


@dataclass
class ServiceConfig:
    """Deployment knobs for one service process."""

    shards: int = 2                  #: edge-range shards per instance
    max_batch: int = 512             #: micro-batch size cap
    batch_window_s: float = 0.002    #: latency window a batch may wait
    queue_depth: int = 4096          #: per-shard bound before shedding
    engine: str = "local"            #: pipeline engine for (re)builds
    oracle_labels: bool = True       #: treat rooting/DFS as black boxes
    config: Optional[MPCConfig] = None
    cache_dir: Optional[str] = None  #: persistent artifact store
    mmap_dir: Optional[str] = None   #: share oracle snapshots via mmap
    stream_depth: int = 64           #: pending structural batches before shed
    host: str = "127.0.0.1"
    port: int = 7464


@dataclass
class _Instance:
    name: str
    updater: InstanceUpdater
    shards: List[OracleShard]
    batchers: List[MicroBatcher]
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    ingestor: Optional[StreamIngestor] = None  #: created on first batch

    @property
    def specs(self) -> List[ShardSpec]:
        return [s.spec for s in self.shards]


class SensitivityService:
    """Front-end + shard pool + write path for N graph instances."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.instances: Dict[str, _Instance] = {}
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._started = False
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        #: per-connection-negotiated protocols share one listener; the
        #: symbol registry interns instance names to dense u16 ids and
        #: the per-protocol WireMetrics account both front doors
        self.wire_symbols = wire.WireSymbols()
        self.wire = {"json": wire.WireMetrics(),
                     "binary": wire.WireMetrics()}

    # -- instance lifecycle ----------------------------------------------------

    def add_instance(self, name: str, graph: WeightedGraph,
                     oracle: Optional[SensitivityOracle] = None) -> None:
        """Register ``name`` and build (or adopt) its first generation.

        The graph is copied — the service owns the authoritative
        weights from here on. With ``oracle`` given the build is
        skipped (it must belong to this graph).
        """
        if name in self.instances:
            raise ValidationError(f"instance {name!r} already registered")
        cfg = self.config
        graph = graph.copy()
        store = (ArtifactStore(cache_dir=cfg.cache_dir)
                 if cfg.cache_dir is not None else ArtifactStore())
        if oracle is None:
            updater = InstanceUpdater.build(
                name, graph, engine=cfg.engine, config=cfg.config,
                oracle_labels=cfg.oracle_labels, store=store,
                mmap_dir=cfg.mmap_dir,
            )
        else:
            updater = InstanceUpdater(
                name, graph, oracle, engine=cfg.engine, config=cfg.config,
                oracle_labels=cfg.oracle_labels, store=store,
                mmap_dir=cfg.mmap_dir,
            )
        specs = plan_shards(graph.m, cfg.shards)
        oracles = updater.shard_oracles(len(specs))
        shards = [OracleShard(spec, orc) for spec, orc in zip(specs, oracles)]
        batchers = [
            MicroBatcher(s, max_batch=cfg.max_batch,
                         window_s=cfg.batch_window_s,
                         queue_depth=cfg.queue_depth)
            for s in shards
        ]
        inst = _Instance(name=name, updater=updater, shards=shards,
                         batchers=batchers)
        self.instances[name] = inst
        if self._started:
            for b in batchers:
                b.start()

    # -- lifecycle -------------------------------------------------------------

    async def start(self, serve_tcp: bool = False) -> None:
        """Start shard workers (and, optionally, the TCP front door)."""
        self._started = True
        self.started_at = time.perf_counter()
        for inst in self.instances.values():
            for b in inst.batchers:
                b.start()
        if serve_tcp:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )

    @property
    def tcp_address(self) -> Optional[tuple]:
        """Actual ``(host, port)`` once TCP is up (port 0 resolves here)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Drain every shard queue, stop workers, close the listener.

        Open connections are closed server-side first so their handler
        tasks exit on EOF instead of being cancelled at loop teardown.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for inst in self.instances.values():
            if inst.ingestor is not None:
                await inst.ingestor.stop()
            for b in inst.batchers:
                await b.stop()
        self._started = False
        self._shutdown.set()

    async def serve_forever(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) arrives."""
        await self._shutdown.wait()

    # -- read path -------------------------------------------------------------

    def _instance(self, name: Optional[str]) -> _Instance:
        if name is None and len(self.instances) == 1:
            return next(iter(self.instances.values()))
        if name not in self.instances:
            raise ValidationError(
                f"unknown instance {name!r} "
                f"(have: {sorted(self.instances)})"
            )
        return self.instances[name]

    def submit_nowait(self, op: str, edge: int,
                      weight: Optional[float] = None,
                      instance: Optional[str] = None) -> "asyncio.Future":
        """Pipelined fast path: enqueue without awaiting.

        Returns the shard future resolving to ``(generation, ok,
        value, error_kind)``. This is how a multiplexing in-process
        client keeps
        hundreds of point queries in flight (the wire analogue is
        HTTP/2-style pipelining); the batcher sees exactly the same
        queue items as :meth:`query`. Raises
        :class:`~repro.service.batching.ServiceOverloaded` on a full
        queue and :class:`~repro.errors.ValidationError` on a bad
        instance/edge/op.
        """
        if op not in QUERY_OPS:
            raise ValidationError(f"unknown query op {op!r}")
        inst = self._instance(instance)
        shard_i = route(inst.specs, int(edge))
        return inst.batchers[shard_i].submit(op, edge, weight)

    async def query(self, op: str, edge: int,
                    weight: Optional[float] = None,
                    instance: Optional[str] = None) -> Dict:
        """One point query; resolves when its micro-batch dispatches."""
        if op not in QUERY_OPS:
            return {"ok": False, "error": f"unknown query op {op!r}"}
        try:
            inst = self._instance(instance)
            shard_i = route(inst.specs, int(edge))
        except (ValidationError, TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}
        try:
            fut = inst.batchers[shard_i].submit(op, edge, weight)
        except ServiceOverloaded as exc:
            return {"ok": False, "shed": True, "error": str(exc)}
        except ValidationError as exc:  # e.g. service not started
            return {"ok": False, "error": str(exc)}
        generation, ok, value, error_kind = await fut
        resp = {"ok": ok, "generation": generation, "shard": shard_i}
        resp["result" if ok else "error"] = value
        if error_kind is not None:
            resp["error_kind"] = error_kind
        return resp

    # -- write path ------------------------------------------------------------

    async def update(self, edge: int, weight: float,
                     instance: Optional[str] = None) -> Dict:
        """Commit ``w(edge) := weight`` (serialised per instance).

        Rebuilds run on a worker thread so reads keep flowing from the
        old generation; the swap is atomic per shard.
        """
        try:
            inst = self._instance(instance)
            edge = int(edge)
            weight = float(weight)
            if not 0 <= edge < inst.updater.graph.m:
                raise ValidationError(
                    f"edge index {edge} out of range "
                    f"[0, {inst.updater.graph.m})"
                )
        except (ValidationError, TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}
        async with inst.lock:
            try:
                report: UpdateReport = await asyncio.get_running_loop() \
                    .run_in_executor(None, inst.updater.apply, inst.shards,
                                     edge, weight)
            except ServiceError as exc:
                return {"ok": False, "error": str(exc),
                        "error_kind": exc.kind}
        out = report.to_dict()
        out["ok"] = report.action != "rejected"
        return out

    # -- streaming structural write path ---------------------------------------

    async def update_batch(self, ops, instance: Optional[str] = None) -> Dict:
        """Stream one batch of structural ops through the ingestor.

        The per-instance :class:`StreamIngestor` bounds, coalesces and
        serialises structural batches; concurrent callers may find
        their ops folded into a single rebuild (the response then
        carries ``coalesced_requests > 1`` and the shared report).
        """
        try:
            inst = self._instance(instance)
        except ValidationError as exc:
            return {"ok": False, "error": str(exc)}
        if inst.ingestor is None:
            inst.ingestor = StreamIngestor(self, inst.name,
                                           depth=self.config.stream_depth)
        return await inst.ingestor.submit(ops)

    async def _apply_structural(self, instance: str, ops) -> Dict:
        """Apply one coalesced op batch and install the new generation.

        Runs on the ingestor's drain loop: the rebuild happens on a
        worker thread under the instance update lock (reads keep
        flowing from the old generation), then the shard plan for the
        new edge count and the new shard/batcher tuples are swapped in
        **synchronously** — ``submit_nowait`` reads specs and batchers
        with no await between them, so it sees old or new, never a mix.
        Old batchers drain their queued queries on the generation they
        were routed to before stopping.
        """
        inst = self.instances[instance]
        async with inst.lock:
            report: BatchReport = await asyncio.get_running_loop() \
                .run_in_executor(None, inst.updater.apply_batch, list(ops))
            old_batchers: List[MicroBatcher] = []
            if report.action == "rebuilt":
                old_batchers = self._install_generation(inst, report)
        for b in old_batchers:
            await b.stop()
        out = report.to_dict()
        out["ok"] = report.action != "rejected"
        out["report"] = report  # for StreamMetrics; popped by the ingestor
        return out

    def _install_generation(self, inst: _Instance,
                            report: BatchReport) -> List[MicroBatcher]:
        """Re-plan shards for the new ``m`` and swap — synchronously.

        Returns the superseded batchers for the caller to drain/stop
        outside the instance lock.
        """
        cfg = self.config
        updater = inst.updater
        specs = plan_shards(updater.graph.m, cfg.shards)
        oracles = updater.shard_oracles(len(specs))
        shards = [OracleShard(spec, orc, generation=updater.generation)
                  for spec, orc in zip(specs, oracles)]
        batchers = [
            MicroBatcher(s, max_batch=cfg.max_batch,
                         window_s=cfg.batch_window_s,
                         queue_depth=cfg.queue_depth)
            for s in shards
        ]
        # shard counters survive the reshard (positionally: the shard
        # count only shrinks when m collapses below cfg.shards)
        for new, old in zip(shards, inst.shards):
            new.metrics = old.metrics
        old_batchers = inst.batchers
        inst.shards = shards          # no await between these two
        inst.batchers = batchers      # assignments: atomic vs the loop
        if self._started:
            for b in batchers:
                b.start()
        for s in inst.shards:
            s.metrics.swaps += 1
        report.snapshot_path = updater.snapshot_path
        report.snapshot_digest = updater.snapshot_digest
        return old_batchers

    # -- introspection ---------------------------------------------------------

    def describe_instances(self) -> Dict:
        return {
            name: {
                "n": inst.updater.graph.n,
                "m": inst.updater.graph.m,
                "m_tree": inst.updater.graph.m_tree,
                "generation": inst.updater.generation,
                "shards": [
                    {"shard": s.spec.shard_id, "edge_lo": s.spec.edge_lo,
                     "edge_hi": s.spec.edge_hi}
                    for s in inst.shards
                ],
            }
            for name, inst in self.instances.items()
        }

    def metrics(self) -> Dict:
        uptime = (time.perf_counter() - self.started_at
                  if self.started_at is not None else 0.0)
        per_instance = {}
        total_queries = total_shed = 0
        reservoirs = []
        for name, inst in self.instances.items():
            shard_snaps = [s.metrics.snapshot(uptime) for s in inst.shards]
            total_queries += sum(s["queries"] for s in shard_snaps)
            total_shed += sum(s["shed"] for s in shard_snaps)
            reservoirs.extend(s.metrics.latency for s in inst.shards)
            per_instance[name] = {
                "generation": inst.updater.generation,
                "shards": shard_snaps,
                "updates": inst.updater.metrics.snapshot(),
                "store": inst.updater.store.stats(),
            }
            if inst.ingestor is not None:
                per_instance[name]["stream"] = inst.ingestor.metrics.snapshot()
        return {
            "uptime_s": round(uptime, 3),
            "queries": total_queries,
            "qps": round(total_queries / uptime, 1) if uptime else 0.0,
            "shed": total_shed,
            # service-wide percentiles: pooled shard reservoirs, not a
            # percentile of per-shard percentiles (which composes wrong)
            "latency": merged_latency(reservoirs),
            "wire": {proto: wm.snapshot()
                     for proto, wm in self.wire.items()},
            "instances": per_instance,
        }

    def queue_depths(self) -> Dict:
        """Per-instance queued-query totals — the backpressure signal.

        The router polls this (wire op ``depth``) and sheds at its own
        tier before forwarding once an instance's fraction of its total
        queue bound crosses the shed watermark.
        """
        out = {}
        for name, inst in self.instances.items():
            queued = sum(b.depth for b in inst.batchers)
            bound = sum(b.queue_depth for b in inst.batchers)
            out[name] = {
                "queued": queued,
                "bound": bound,
                "fraction": round(queued / bound, 4) if bound else 0.0,
                "generation": inst.updater.generation,
            }
        return out

    # -- TCP JSON-lines front door ---------------------------------------------

    async def handle_request(self, req: Dict) -> Dict:
        """Dispatch one already-parsed request object (shared path)."""
        op = req.get("op")
        if op in QUERY_OPS:
            resp = await self.query(op, req.get("edge", -1),
                                    weight=req.get("weight"),
                                    instance=req.get("instance"))
        elif op == "update":
            resp = await self.update(req.get("edge", -1),
                                     req.get("weight", float("nan")),
                                     instance=req.get("instance"))
        elif op == "update_batch":
            resp = await self.update_batch(req.get("ops"),
                                           instance=req.get("instance"))
        elif op == "metrics":
            resp = {"ok": True, "result": self.metrics()}
        elif op == "depth":
            resp = {"ok": True, "result": self.queue_depths()}
        elif op == "instances":
            resp = {"ok": True, "result": self.describe_instances()}
        elif op == "ping":
            resp = {"ok": True, "result": "pong"}
        elif op == "hello":
            resp = self.hello(req)
        elif op == "shutdown":
            resp = {"ok": True, "result": "bye"}
        else:
            resp = {"ok": False, "error": f"unknown op {op!r}"}
        if "id" in req:
            resp["id"] = req["id"]
        return resp

    def hello(self, req: Dict) -> Dict:
        """Binary-protocol negotiation: intern names, return the table.

        With an explicit ``instances`` list the names are interned *in
        the given order* — the router uses this to dictate its own
        global id order to every worker, so relayed frames never need
        id rewriting. Without one, every currently registered instance
        is interned in sorted order (what a standalone client wants).
        Ids are dense, append-only and process-global, so repeated
        hellos only ever extend the table.
        """
        names = req.get("instances")
        if names is None:
            names = sorted(self.instances)
        try:
            symbols = self.wire_symbols.intern_all(str(n) for n in names)
        except wire.WireError as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True,
                "result": {"wire": wire.WIRE_VERSION, "symbols": symbols}}

    #: In-flight pipelined requests allowed per connection before the
    #: reader stops pulling new lines (per-shard queues bound the real
    #: backlog; this only stops one connection from hogging the loop).
    PIPELINE_LIMIT = 1024

    #: bytes pulled per read on a binary connection (a few thousand
    #: point frames per syscall when the client pipelines deeply)
    READ_SIZE = 1 << 16

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One connection, protocol negotiated by its very first byte.

        ``0xB7`` (:data:`~repro.service.wire.MAGIC`) can never open a
        JSON request and ``{`` can never open a binary frame, so the
        first byte routes the whole connection to the matching handler
        — old JSON-lines clients keep working untouched on the same
        port, new clients opt into the binary framing per connection.
        """
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        try:
            try:
                first = await reader.readexactly(1)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if first[0] == wire.MAGIC:
                self.wire["binary"].connections += 1
                await self._serve_binary(reader, writer, first)
            else:
                self.wire["json"].connections += 1
                await self._serve_jsonl(reader, writer, first)
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_jsonl(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           first: bytes) -> None:
        """One JSON-lines connection, **pipelined with in-order replies**.

        The reader keeps pulling request lines and dispatches each as
        its own task; a writer coroutine awaits those tasks strictly in
        arrival order and writes one response line per request. Clients
        may therefore keep many requests in flight on one connection
        (the response order IS the request order — no ids needed for
        correlation), which is what makes a micro-batching shard fill
        its batches from a single TCP peer, and what the router tier's
        FIFO-correlated worker links are built on. A serial
        one-request-at-a-time client observes exactly the old protocol.
        """
        wm = self.wire["json"]
        order: asyncio.Queue = asyncio.Queue(maxsize=self.PIPELINE_LIMIT)

        async def write_in_order() -> None:
            while True:
                item = await order.get()
                if item is None:
                    return
                fut, is_shutdown = item
                try:
                    resp = await fut
                except Exception as exc:  # noqa: BLE001 - answer, don't die
                    resp = {"ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
                t0 = time.perf_counter_ns()
                payload = wire.dumps_line(resp)
                wm.record_encode(1, time.perf_counter_ns() - t0)
                wm.json_encodes += 1
                wm.frames_out += 1
                wm.bytes_out += len(payload)
                writer.write(payload)
                await writer.drain()
                if is_shutdown:
                    self._shutdown.set()
                    return

        wtask = asyncio.get_running_loop().create_task(write_in_order())
        try:
            while not wtask.done():
                try:
                    line = first + await reader.readline()
                    first = b""
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                wm.frames_in += 1
                wm.bytes_in += len(line)
                try:
                    t0 = time.perf_counter_ns()
                    req = json.loads(line)
                    wm.record_decode(1, time.perf_counter_ns() - t0)
                    wm.json_decodes += 1
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    fut: asyncio.Future = asyncio.get_running_loop() \
                        .create_future()
                    fut.set_result(
                        {"ok": False, "error": f"bad request: {exc}"})
                    await order.put((fut, False))
                    continue
                handling = asyncio.get_running_loop().create_task(
                    self.handle_request(req))
                await order.put((handling, req.get("op") == "shutdown"))
                if req.get("op") == "shutdown":
                    break
        finally:
            if not wtask.done():
                try:
                    order.put_nowait(None)
                except asyncio.QueueFull:
                    # writer stalled against a full pipeline (dead peer
                    # mid-drain): nothing left to deliver in order
                    wtask.cancel()
            try:
                await wtask
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # peer vanished mid-write: drop queued answers
            while not order.empty():
                item = order.get_nowait()
                if item is not None:
                    item[0].cancel()
                    try:
                        await item[0]
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass

    async def _serve_binary(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            first: bytes) -> None:
        """One binary connection: batched decode, columnar answers.

        Same pipelined in-order discipline as the JSON door, but the
        unit of work is a *run* of frames per read, not a line:
        contiguous 16-byte point frames lift into numpy columns with
        one ``frombuffer`` and answer with one ``tobytes``; bulk and
        escape frames dispatch individually. A framing violation (bad
        magic — e.g. a JSON client that negotiated binary — unknown
        type, oversized length) answers with a structured escape error
        and closes the connection; it never hangs and never kills the
        handler task.
        """
        wm = self.wire["binary"]
        loop = asyncio.get_running_loop()
        order: asyncio.Queue = asyncio.Queue(maxsize=self.PIPELINE_LIMIT)

        async def write_in_order() -> None:
            while True:
                item = await order.get()
                if item is None:
                    return
                fut, is_shutdown = item
                try:
                    payload = await fut
                except Exception as exc:  # noqa: BLE001 - answer, don't die
                    wm.json_encodes += 1
                    payload = wire.encode_escape(
                        {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}"})
                wm.bytes_out += len(payload)
                writer.write(payload)
                await writer.drain()
                if is_shutdown:
                    self._shutdown.set()
                    return

        wtask = loop.create_task(write_in_order())
        buf = bytearray(first)
        closing = False
        try:
            while not wtask.done() and not closing:
                try:
                    data = await reader.read(self.READ_SIZE)
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                buf += data
                while buf and not closing:
                    run = wire.point_run_length(buf)
                    if run:
                        t0 = time.perf_counter_ns()
                        arr = np.frombuffer(
                            bytes(buf[:run * wire.POINT_LEN]),
                            dtype=wire.POINT_DTYPE)
                        del buf[:run * wire.POINT_LEN]
                        wm.record_decode(run, time.perf_counter_ns() - t0)
                        wm.frames_in += run
                        wm.bytes_in += run * wire.POINT_LEN
                        await order.put(
                            (loop.create_task(
                                self._answer_point_run(arr, wm)), False))
                        continue
                    length = wire.frame_length(buf)
                    if length is None or len(buf) < length:
                        break  # incomplete frame: wait for more bytes
                    frame = bytes(buf[:length])
                    del buf[:length]
                    wm.frames_in += 1
                    wm.bytes_in += length
                    ftype = frame[1]
                    if ftype == wire.ESCAPE:
                        wm.json_decodes += 1
                        req = wire.decode_escape(frame)
                        is_shutdown = req.get("op") == "shutdown"
                        await order.put(
                            (loop.create_task(
                                self._answer_escape(req, wm)), is_shutdown))
                        if is_shutdown:
                            closing = True
                    elif wire.POINT_OF_BULK.get(ftype) is not None:
                        t0 = time.perf_counter_ns()
                        op, iid, edges, weights = \
                            wire.decode_bulk_request(frame)
                        wm.record_decode(1, time.perf_counter_ns() - t0)
                        await order.put(
                            (loop.create_task(
                                self._answer_bulk(op, int(iid), edges,
                                                  weights, wm)), False))
                    else:
                        raise wire.WireError(
                            f"frame type 0x{ftype:02x} is not a request")
        except wire.WireError as exc:
            wm.json_encodes += 1
            fut: asyncio.Future = loop.create_future()
            fut.set_result(wire.encode_escape(
                {"ok": False, "error": f"wire protocol error: {exc}",
                 "error_kind": "protocol"}))
            try:
                order.put_nowait((fut, False))
            except asyncio.QueueFull:  # pragma: no cover - dead peer
                pass
        finally:
            if not wtask.done():
                try:
                    order.put_nowait(None)
                except asyncio.QueueFull:
                    wtask.cancel()
            try:
                await wtask
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # peer vanished mid-write: drop queued answers
            while not order.empty():
                item = order.get_nowait()
                if item is not None:
                    item[0].cancel()
                    try:
                        await item[0]
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass

    def _group_point_columns(self, arr: np.ndarray, statuses: np.ndarray,
                             resp: np.ndarray) -> list:
        """Split one decoded run into per-(instance, op, shard) vector
        submissions.

        Rows that cannot be routed (unknown instance id, shed at
        submit time) get their status written in place; everything
        else comes back as ``(rows, shard_id, future)`` work for the
        caller to gather. No per-request dicts anywhere.
        """
        pending = []
        iids = arr["iid"]
        for iid in np.unique(iids):
            pos = np.flatnonzero(iids == iid)
            name = self.wire_symbols.name_of(int(iid))
            inst = self.instances.get(name) if name is not None else None
            if inst is None:
                statuses[pos] = wire.ST_UNKNOWN_INSTANCE
                continue
            specs, batchers = inst.specs, inst.batchers
            edges = arr["edge"][pos].astype(np.int64)
            if len(specs) == 1:
                shard_of = np.zeros(len(pos), dtype=np.int64)
            else:
                # out-of-range ids clip to the edge shards, whose
                # batchers answer them with the exact range error
                bounds = np.array([s.edge_lo for s in specs[1:]],
                                  dtype=np.int64)
                shard_of = np.searchsorted(bounds, edges, side="right")
            types = arr["type"][pos]
            for op_code in np.unique(types):
                op = wire.OP_NAME[int(op_code)]
                sel = types == op_code
                for shard_i in np.unique(shard_of[sel]):
                    take = np.flatnonzero(sel & (shard_of == shard_i))
                    rows = pos[take]
                    weights = (arr["weight"][rows]
                               if op == "survives" else None)
                    try:
                        fut = batchers[shard_i].submit_vector(
                            op, edges[take], weights)
                    except ServiceOverloaded:
                        statuses[rows] = wire.ST_SHED
                        resp["shard"][rows] = shard_i
                        resp["value"][rows] = batchers[shard_i].queue_depth
                        continue
                    pending.append((rows, int(shard_i), fut))
        return pending

    async def _answer_point_run(self, arr: np.ndarray, wm) -> bytes:
        """Answer one decoded run of point frames, columnar end to end."""
        n = len(arr)
        resp = np.zeros(n, dtype=wire.RESP_DTYPE)
        resp["magic"] = wire.MAGIC
        statuses = np.zeros(n, dtype=np.uint8)
        pending = self._group_point_columns(arr, statuses, resp)
        for rows, shard_i, fut in pending:
            generation, st, vals = await fut
            statuses[rows] = st
            resp["generation"][rows] = generation
            resp["shard"][rows] = shard_i
            resp["value"][rows] = vals
        t0 = time.perf_counter_ns()
        resp["type"] = wire.RESP_BASE | statuses
        payload = resp.tobytes()
        wm.record_encode(n, time.perf_counter_ns() - t0)
        wm.frames_out += n
        return payload

    async def _answer_bulk(self, op: str, iid: int, edges: np.ndarray,
                           weights, wm) -> bytes:
        """Answer one columnar bulk query with one columnar response.

        The response carries a single generation field; a query that
        spans shards reports the newest generation touched (per-row
        generations would cost 4 bytes/row on a path built to be lean
        — the point path carries them exactly).
        """
        n = len(edges)
        statuses = np.zeros(n, dtype=np.uint8)
        values = np.zeros(n, dtype=np.float64)
        name = self.wire_symbols.name_of(iid)
        inst = self.instances.get(name) if name is not None else None
        if inst is None:
            statuses[:] = wire.ST_UNKNOWN_INSTANCE
            return wire.encode_bulk_response(
                wire.OP_CODE[op], 0xFFFF, 0, statuses, values)
        arr = np.zeros(n, dtype=wire.POINT_DTYPE)
        arr["type"] = wire.OP_CODE[op]
        arr["iid"] = iid
        arr["edge"] = edges
        if weights is not None:
            arr["weight"] = weights
        resp = np.zeros(n, dtype=wire.RESP_DTYPE)  # scratch for shed rows
        pending = self._group_point_columns(arr, statuses, resp)
        generation, shard = 0, 0xFFFF
        for rows, shard_i, fut in pending:
            gen, st, vals = await fut
            statuses[rows] = st
            values[rows] = vals
            generation = max(generation, int(gen))
            shard = shard_i if len(pending) == 1 else 0xFFFF
        shed = statuses == wire.ST_SHED
        if shed.any():
            values[shed] = resp["value"][shed]
        t0 = time.perf_counter_ns()
        payload = wire.encode_bulk_response(
            wire.OP_CODE[op], shard, generation, statuses, values)
        wm.record_encode(1, time.perf_counter_ns() - t0)
        wm.frames_out += 1
        return payload

    async def _answer_escape(self, req: Dict, wm) -> bytes:
        """Control ops ride JSON inside the escape frame, both ways."""
        resp = await self.handle_request(req)
        wm.json_encodes += 1
        wm.frames_out += 1
        return wire.encode_escape(resp)


class ServiceClient:
    """One client, two transports: in-process dispatch or TCP.

    Construct with a :class:`SensitivityService` for in-process use
    (the wire protocol without the wire), or with
    ``await ServiceClient.connect(host, port)`` for a real JSON-lines
    connection. Typed helpers raise on error responses; :meth:`call`
    returns the raw response dict (what a TCP client would read back),
    which is what tests use to observe sheds and structured errors.

    Transport failures never leak raw socket exceptions: a server that
    drops the connection mid-call — a worker being restarted under the
    router, a ``shutdown`` racing a query — surfaces as
    :class:`~repro.errors.ServiceError` with ``kind="disconnected"``,
    so callers distinguish "peer said no" from "peer went away".
    """

    #: one point request/response frame (client side encodes one at a
    #: time under the call lock; pipelined encoding lives in loadgen)
    _POINT = struct.Struct("<BBHId")

    def __init__(self, service: Optional[SensitivityService] = None,
                 instance: Optional[str] = None):
        self.service = service
        self.instance = instance
        self.wire_mode = "json"
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock: Optional[asyncio.Lock] = None
        self._symbols: Dict[str, int] = {}

    @classmethod
    async def connect(cls, host: str, port: int,
                      instance: Optional[str] = None,
                      connect_timeout_s: float = 10.0,
                      wire_mode: str = "json") -> "ServiceClient":
        """Open a TCP connection to a running service.

        ``wire_mode="binary"`` negotiates the binary protocol on this
        connection (a ``hello`` handshake interns instance names); the
        default keeps the JSON-lines protocol byte-for-byte as before.
        """
        if wire_mode not in ("json", "binary"):
            raise ValidationError(f"unknown wire mode {wire_mode!r}")
        client = cls(instance=instance)
        client.wire_mode = wire_mode
        try:
            client._reader, client._writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout_s
            )
        except asyncio.TimeoutError:
            raise ServiceError(
                f"connect to {host}:{port} timed out "
                f"after {connect_timeout_s:.1f}s", kind="disconnected")
        except OSError as exc:
            raise ServiceError(f"connect to {host}:{port} failed: {exc}",
                               kind="disconnected")
        client._lock = asyncio.Lock()
        if wire_mode == "binary":
            await client._hello()
        return client

    async def _hello(self, names: Optional[List[str]] = None) -> None:
        """(Re-)negotiate the symbol table over an escape frame."""
        req = {"op": "hello"}
        if names is not None:
            req["instances"] = names
        resp = await self._roundtrip_escape(req)
        if not resp.get("ok"):
            raise ServiceError(
                f"hello rejected: {resp.get('error')}", kind="protocol")
        self._symbols.update(resp["result"]["symbols"])

    async def _read_frame(self) -> bytes:
        """One complete binary frame off the connection (under lock)."""
        head = await self._reader.readexactly(wire.HEADER_LEN)
        length = wire.frame_length(head)
        if length == wire.HEADER_LEN:
            return head
        return head + await self._reader.readexactly(length - wire.HEADER_LEN)

    async def _roundtrip_escape(self, req: Dict) -> Dict:
        """One control op as an escape frame, response decoded to dict."""
        async with self._lock:
            try:
                self._writer.write(wire.encode_escape(req))
                await self._writer.drain()
                frame = await self._read_frame()
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                raise ServiceError(
                    f"connection lost mid-call ({req.get('op')}): "
                    f"{type(exc).__name__}: {exc}", kind="disconnected")
        if frame[1] != wire.ESCAPE:
            raise ServiceError(
                f"expected escape response, got frame type "
                f"0x{frame[1]:02x}", kind="protocol")
        return wire.decode_escape(frame)

    def _iid_of(self, name: Optional[str]) -> Optional[int]:
        """Resolve an instance name to its interned id, if possible.

        ``None`` means "fall back to the escape frame" — an unnamed
        instance on a multi-instance server, or a name the server has
        not interned for us yet — where the JSON dispatch produces the
        exact error envelope this client should see.
        """
        if name is None:
            if len(self._symbols) == 1:
                return next(iter(self._symbols.values()))
            return None
        return self._symbols.get(name)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def call(self, op: str, **kw) -> Dict:
        req = {"op": op, **kw}
        if "instance" not in req and self.instance is not None:
            req["instance"] = self.instance
        if self.service is not None:
            return await self.service.handle_request(req)
        if self._writer is None:
            raise ServiceError("client is not connected",
                               kind="disconnected")
        if self.wire_mode == "binary":
            return await self._call_binary(op, req)
        async with self._lock:  # one request in flight per connection
            try:
                self._writer.write(wire.dumps_line(req))
                await self._writer.drain()
                line = await self._reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                raise ServiceError(
                    f"connection lost mid-call ({op}): "
                    f"{type(exc).__name__}: {exc}", kind="disconnected")
        if not line:
            raise ServiceError(
                f"server closed the connection mid-call ({op})",
                kind="disconnected")
        try:
            return json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"unparseable response line: {exc}",
                               kind="protocol")

    async def _call_binary(self, op: str, req: Dict) -> Dict:
        """One request over the binary connection.

        Point queries that fit the fixed frame (known instance, u32
        edge, real weight) go as 16-byte frames and decode back to the
        exact dict the JSON path would return. Everything else —
        control ops, and the degenerate queries whose error envelopes
        only the JSON dispatch can produce (negative edge, missing
        survives weight, unknown instance) — rides the escape frame
        and comes back as the server's own JSON.
        """
        if op in QUERY_OPS:
            iid = self._iid_of(req.get("instance"))
            if iid is None and req.get("instance") is not None:
                await self._hello()  # maybe interned since we connected
                iid = self._iid_of(req.get("instance"))
            edge, weight = req.get("edge"), req.get("weight")
            fits = (iid is not None
                    and isinstance(edge, int)
                    and 0 <= edge < 2 ** 32
                    and (weight is not None or op != "survives")
                    and "id" not in req)
            if fits:
                frame = self._POINT.pack(
                    wire.MAGIC, wire.OP_CODE[op], iid, edge,
                    float(weight) if weight is not None else 0.0)
                async with self._lock:
                    try:
                        self._writer.write(frame)
                        await self._writer.drain()
                        resp = await self._read_frame()
                    except (ConnectionError, asyncio.IncompleteReadError,
                            OSError) as exc:
                        raise ServiceError(
                            f"connection lost mid-call ({op}): "
                            f"{type(exc).__name__}: {exc}",
                            kind="disconnected")
                if resp[1] == wire.ESCAPE:
                    return wire.decode_escape(resp)
                rec = np.frombuffer(resp, dtype=wire.RESP_DTYPE)[0]
                name = req.get("instance")
                if name is None:  # the single interned instance
                    name = next(n for n, i in self._symbols.items()
                                if i == iid)
                return wire.point_response_to_dict(op, edge, rec, name)
        try:
            return await self._roundtrip_escape(req)
        except asyncio.IncompleteReadError:
            raise ServiceError(
                f"server closed the connection mid-call ({op})",
                kind="disconnected")

    async def bulk(self, op: str, edges, weights=None,
                   instance: Optional[str] = None):
        """One columnar bulk query over a binary connection.

        Returns ``(shard, generation, statuses, values)`` — raw wire
        columns, zero boxing. ``shard`` is 0xFFFF when the query
        spanned shards (or failed before reaching one).
        """
        if self.wire_mode != "binary" or self._writer is None:
            raise ServiceError(
                "bulk queries need a binary TCP connection "
                "(ServiceClient.connect(..., wire_mode='binary'))",
                kind="protocol")
        name = instance if instance is not None else self.instance
        iid = self._iid_of(name)
        if iid is None:
            await self._hello()
            iid = self._iid_of(name)
        if iid is None:
            raise ValidationError(f"unknown instance {name!r}")
        frame = wire.encode_bulk_request(op, iid, edges, weights)
        async with self._lock:
            try:
                self._writer.write(frame)
                await self._writer.drain()
                resp = await self._read_frame()
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                raise ServiceError(
                    f"connection lost mid-call (bulk {op}): "
                    f"{type(exc).__name__}: {exc}", kind="disconnected")
        if resp[1] == wire.ESCAPE:
            err = wire.decode_escape(resp)
            raise ServiceError(str(err.get("error")), kind="protocol")
        return wire.decode_bulk_response(resp)

    async def _value(self, op: str, **kw):
        resp = await self.call(op, **kw)
        if not resp.get("ok"):
            raise ValidationError(resp.get("error", "query failed"))
        return resp["result"]

    async def sensitivity(self, edge: int, **kw) -> float:
        return await self._value("sensitivity", edge=edge, **kw)

    async def survives(self, edge: int, weight: float, **kw) -> bool:
        return await self._value("survives", edge=edge, weight=weight, **kw)

    async def replacement_edge(self, edge: int, **kw) -> Optional[int]:
        return await self._value("replacement_edge", edge=edge, **kw)

    async def entry_threshold(self, edge: int, **kw) -> float:
        return await self._value("entry_threshold", edge=edge, **kw)

    async def update(self, edge: int, weight: float, **kw) -> Dict:
        return await self.call("update", edge=edge, weight=weight, **kw)

    async def update_batch(self, ops, **kw) -> Dict:
        """Submit one structural batch (add/remove/reprice op dicts)."""
        return await self.call("update_batch", ops=list(ops), **kw)

    async def metrics(self) -> Dict:
        return await self._value("metrics")
